"""Shared fixtures for the test suite.

Keeps expensive objects (records, bases, codebooks) session-scoped so the
several hundred tests stay fast, and pins every random seed so failures
reproduce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding.codebook import train_codebook
from repro.core.config import FrontEndConfig
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.quantizers import requantize_codes
from repro.signals.database import load_record
from repro.wavelets.operators import WaveletBasis


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def record_100():
    """A 20 s synthetic record (noisy, like the experiments use)."""
    return load_record("100", duration_s=20.0)


@pytest.fixture(scope="session")
def record_clean():
    """A 20 s noise-free record for tests needing a clean reference."""
    return load_record("103", duration_s=20.0, clean=True)


@pytest.fixture(scope="session")
def basis_128() -> WaveletBasis:
    """Small wavelet basis for solver tests (n = 128 keeps them quick)."""
    return WaveletBasis(128, "db4")


@pytest.fixture(scope="session")
def basis_512() -> WaveletBasis:
    """Full-size basis matching the default config."""
    return WaveletBasis(512, "db4")


@pytest.fixture(scope="session")
def codebook_7bit():
    """A 7-bit difference codebook trained on two records."""
    streams = [
        requantize_codes(load_record(name, duration_s=20.0).adu, 11, 7)
        for name in ("100", "101")
    ]
    return train_codebook(streams, 7)


@pytest.fixture
def fast_config(codebook_7bit) -> FrontEndConfig:
    """A small, quick front-end config for end-to-end tests.

    n = 128 windows and a loose solver keep a full pipeline run well under
    a second while exercising every code path.
    """
    return FrontEndConfig(
        window_len=128,
        n_measurements=48,
        solver=PdhgSettings(max_iter=600, tol=5e-4),
    )
