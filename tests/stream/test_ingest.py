"""Streaming ingest tests — the bit-identity acceptance criterion lives here."""

import numpy as np
import pytest

from repro.core.channel import payload_crc
from repro.core.codebooks import default_codebook
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.runtime.task import CodebookSpec
from repro.signals.database import iter_record_chunks
from repro.stream.ingest import IngestSession, codebook_spec_for


class TestCodebookSpecFor:
    def test_normal_needs_no_codebook(self, stream_config):
        assert codebook_spec_for(stream_config, "normal").kind == "none"

    def test_hybrid_defaults_to_trained_recipe(self, stream_config):
        spec = codebook_spec_for(stream_config, "hybrid")
        assert spec.kind == "default"
        assert spec.key.lowres_bits == stream_config.lowres_bits

    def test_explicit_codebook_inlined(self, stream_config, codebook_7bit):
        spec = codebook_spec_for(stream_config, "hybrid", codebook_7bit)
        assert spec.kind == "inline"

    def test_unknown_method_rejected(self, stream_config):
        with pytest.raises(ValueError):
            codebook_spec_for(stream_config, "turbo")

    def test_matches_batch_job_resolution(self, stream_config):
        # The root of bit-identity: the streaming spec equals the spec a
        # batch RecordJob would resolve for the same config.
        from repro.runtime.engine import RecordJob
        from repro.signals.database import load_record

        job = RecordJob(
            record=load_record("100", duration_s=2.0),
            config=stream_config,
            method="hybrid",
        )
        assert codebook_spec_for(stream_config, "hybrid") == (
            job.resolved_codebook_spec()
        )


class TestBitIdentity:
    """Chunked streaming output must be byte-equal to the batch encoder."""

    @pytest.mark.parametrize("chunk_size", [1, 37, 128, 181, 1000])
    def test_hybrid_chunking_is_byte_equal(
        self, stream_config, stream_record, chunk_size
    ):
        codebook = default_codebook(
            stream_config.lowres_bits, stream_config.acquisition_bits
        )
        batch = HybridFrontEnd(stream_config, codebook).process_record(
            stream_record
        )
        session = IngestSession(stream_record.name, stream_config)
        frames = []
        for chunk in iter_record_chunks(stream_record, chunk_size):
            frames.extend(session.push(chunk))
        assert len(frames) == len(batch)
        for frame, packet in zip(frames, batch):
            assert frame.packet.to_bytes() == packet.to_bytes()

    def test_normal_chunking_is_byte_equal(self, stream_config, stream_record):
        batch = NormalCsFrontEnd(stream_config).process_record(stream_record)
        session = IngestSession(
            stream_record.name, stream_config, method="normal"
        )
        frames = []
        for chunk in iter_record_chunks(stream_record, 73):
            frames.extend(session.push(chunk))
        assert [f.packet.to_bytes() for f in frames] == [
            p.to_bytes() for p in batch
        ]

    def test_batched_branch_equals_scalar_sessions(
        self, stream_config, stream_record
    ):
        # A large push completes many windows at once and takes the batch
        # engine; a batched=False session must emit identical frames.
        import dataclasses

        from repro.core.encode_batch import EncodeEngineSettings

        scalar_config = dataclasses.replace(
            stream_config, encode=EncodeEngineSettings(batched=False)
        )
        batched = IngestSession(stream_record.name, stream_config)
        scalar = IngestSession(stream_record.name, scalar_config)
        frames_batched = batched.push(stream_record.adu)
        frames_scalar = scalar.push(stream_record.adu)
        assert len(frames_batched) > 1
        assert [f.packet.to_bytes() for f in frames_batched] == [
            f.packet.to_bytes() for f in frames_scalar
        ]
        assert [f.crc for f in frames_batched] == [
            f.crc for f in frames_scalar
        ]

    def test_chunking_invariance(self, stream_config, stream_record):
        # Two arbitrary chunkings of the same stream emit identical frames.
        a = IngestSession(stream_record.name, stream_config)
        b = IngestSession(stream_record.name, stream_config)
        frames_a = [
            f
            for chunk in iter_record_chunks(stream_record, 53)
            for f in a.push(chunk)
        ]
        frames_b = [
            f
            for chunk in iter_record_chunks(stream_record, 499)
            for f in b.push(chunk)
        ]
        assert [f.packet.to_bytes() for f in frames_a] == [
            f.packet.to_bytes() for f in frames_b
        ]


class TestIngestSession:
    def test_window_indices_consecutive(self, stream_config, stream_record):
        session = IngestSession(stream_record.name, stream_config)
        frames = session.push(stream_record.adu)
        assert [f.window_index for f in frames] == list(range(len(frames)))

    def test_crc_matches_payload(self, stream_config, stream_record):
        session = IngestSession(stream_record.name, stream_config)
        for frame in session.push(stream_record.adu[:512]):
            assert frame.crc == payload_crc(frame.packet)

    def test_reference_is_the_raw_window(self, stream_config, stream_record):
        session = IngestSession(stream_record.name, stream_config)
        n = stream_config.window_len
        frames = session.push(stream_record.adu[: 2 * n])
        for i, frame in enumerate(frames):
            assert np.array_equal(
                frame.reference, stream_record.adu[i * n : (i + 1) * n]
            )

    def test_reference_optional(self, stream_config, stream_record):
        session = IngestSession(
            stream_record.name, stream_config, carry_reference=False
        )
        frames = session.push(stream_record.adu[:256])
        assert all(f.reference is None for f in frames)

    def test_pending_and_emitted_counters(self, stream_config, stream_record):
        session = IngestSession(stream_record.name, stream_config)
        n = stream_config.window_len
        assert session.push(stream_record.adu[: n - 1]) == []
        assert session.pending_samples == n - 1
        assert session.windows_emitted == 0
        frames = session.push(stream_record.adu[n - 1 : n + 1])
        assert len(frames) == 1
        assert session.pending_samples == 1
        assert session.windows_emitted == 1

    def test_flush_returns_partial(self, stream_config, stream_record):
        session = IngestSession(stream_record.name, stream_config)
        session.push(stream_record.adu[:100])
        tail = session.flush()
        assert np.array_equal(tail, stream_record.adu[:100])
        assert session.pending_samples == 0

    def test_float_samples_rejected(self, stream_config):
        session = IngestSession("x", stream_config)
        with pytest.raises(TypeError):
            session.push(np.zeros(16))

    def test_2d_samples_rejected(self, stream_config):
        session = IngestSession("x", stream_config)
        with pytest.raises(ValueError):
            session.push(np.zeros((4, 4), dtype=np.int64))

    def test_explicit_codebook_used(
        self, stream_config, stream_record, codebook_7bit
    ):
        session = IngestSession(
            stream_record.name, stream_config, codebook=codebook_7bit
        )
        assert session.codebook_spec == CodebookSpec.from_object(codebook_7bit)
        frames = session.push(stream_record.adu[:128])
        batch = HybridFrontEnd(stream_config, codebook_7bit).process_window(
            stream_record.adu[:128], 0
        )
        assert frames[0].packet.to_bytes() == batch.to_bytes()
