"""Tests of the sharded gateway runtime (repro.stream.cluster).

Three pillars:

* the consistent-hash ring — deterministic placement and bounded key
  movement on shard add/remove;
* serial-vs-sharded equivalence — a cluster (either transport) recovers
  byte-identical per-patient output with identical conceal/drop
  accounting to one big gateway fed the same frames;
* graceful drain/restart — sessions migrate mid-stream with their full
  decoder state and queued backlog, invisibly in the output.
"""

import numpy as np
import pytest

from repro.signals.database import iter_record_chunks
from repro.stream.cluster import HashRing, ShardedGateway, stable_hash
from repro.stream.gateway import StreamGateway
from repro.stream.ingest import IngestSession, StreamFrame
from repro.stream.loadgen import StepClock, recovered_digest


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("patient-7") == stable_hash("patient-7")

    def test_64_bit_range(self):
        for key in ("", "a", "patient-7", "x" * 100):
            assert 0 <= stable_hash(key) < 1 << 64


class TestHashRing:
    def test_placement_deterministic_for_fixed_topology(self):
        keys = [f"p{i:04d}" for i in range(500)]
        a = HashRing(["s0", "s1", "s2"])
        b = HashRing(["s0", "s1", "s2"])
        assert [a.assign(k) for k in keys] == [b.assign(k) for k in keys]

    def test_every_shard_gets_keys(self):
        ring = HashRing(["s0", "s1", "s2", "s3"])
        owners = {ring.assign(f"p{i:04d}") for i in range(1000)}
        assert owners == {"s0", "s1", "s2", "s3"}

    def test_add_shard_only_moves_keys_to_the_new_shard(self):
        keys = [f"p{i:04d}" for i in range(1000)]
        ring = HashRing(["s0", "s1", "s2"])
        before = {k: ring.assign(k) for k in keys}
        ring.add_shard("s3")
        moved = 0
        for k in keys:
            after = ring.assign(k)
            if after != before[k]:
                assert after == "s3"  # never between surviving shards
                moved += 1
        # Expected movement is ~1/4 of the keys; assert it stays bounded
        # well below a naive-modulo reshuffle (which moves ~3/4).
        assert 0 < moved < len(keys) // 2

    def test_remove_shard_only_moves_its_own_keys(self):
        keys = [f"p{i:04d}" for i in range(1000)]
        ring = HashRing(["s0", "s1", "s2", "s3"])
        before = {k: ring.assign(k) for k in keys}
        ring.remove_shard("s1")
        for k in keys:
            if before[k] != "s1":
                assert ring.assign(k) == before[k]
            else:
                assert ring.assign(k) != "s1"

    def test_add_then_remove_is_identity(self):
        keys = [f"p{i:04d}" for i in range(300)]
        ring = HashRing(["s0", "s1"])
        before = [ring.assign(k) for k in keys]
        ring.add_shard("s2")
        ring.remove_shard("s2")
        assert [ring.assign(k) for k in keys] == before

    def test_duplicate_and_unknown_shards_rejected(self):
        ring = HashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add_shard("s0")
        with pytest.raises(KeyError):
            ring.remove_shard("nope")
        with pytest.raises(ValueError):
            HashRing([], replicas=0)

    def test_empty_ring_cannot_assign(self):
        with pytest.raises(ValueError):
            HashRing([]).assign("p0")


def _drive(gateway, config, patient_ids, chunks, *, poll_every=4, events=None):
    """Replay the same chunk stream for every patient through a gateway."""
    encoders = {p: IngestSession(p, config) for p in patient_ids}
    for p in patient_ids:
        gateway.open_session(p, config)
    for r, chunk in enumerate(chunks):
        for p in patient_ids:
            for frame in encoders[p].push(chunk):
                gateway.submit(
                    StreamFrame(p, frame.packet, frame.crc, frame.reference)
                )
        if (r + 1) % poll_every == 0:
            gateway.poll()
        if events and r in events:
            events[r](gateway)
    gateway.finish()


@pytest.fixture(scope="module")
def playback(stream_record):
    """Window-misaligned chunked playback shared by the cluster tests."""
    return list(iter_record_chunks(stream_record, 97))[:8]


@pytest.fixture(scope="module")
def serial_baseline(stream_config, playback):
    """Digest + snapshot of a single-process run over the shared stream."""
    pids = [f"p{i}" for i in range(6)]
    gateway = StreamGateway(clock=StepClock())
    _drive(gateway, stream_config, pids, playback)
    return pids, recovered_digest(gateway), gateway.snapshot()


class TestShardedEquivalence:
    @pytest.mark.parametrize("transport", ["inproc", "wire"])
    def test_sharded_output_is_bit_identical(
        self, stream_config, playback, serial_baseline, transport
    ):
        pids, digest, snap = serial_baseline
        cluster = ShardedGateway(3, transport=transport, clock=StepClock())
        _drive(cluster, stream_config, pids, playback)
        assert recovered_digest(cluster) == digest
        merged = cluster.snapshot()
        assert merged.windows_completed == snap.windows_completed
        assert merged.concealed == snap.concealed
        assert merged.cs_fallbacks == snap.cs_fallbacks
        assert merged.frames_lost == snap.frames_lost

    def test_sessions_partition_across_shards(
        self, stream_config, playback, serial_baseline
    ):
        pids, _, _ = serial_baseline
        cluster = ShardedGateway(3, clock=StepClock())
        _drive(cluster, stream_config, pids, playback)
        balance = cluster.balance()
        assert sum(b["sessions"] for b in balance.values()) == len(pids)
        for pid in pids:
            assert cluster.owner_of(pid) == cluster.ring.assign(pid)
        per_session = {
            s.patient_id for shard in cluster.shard_snapshots().values()
            for s in shard.per_session
        }
        assert per_session == set(pids)

    def test_merged_snapshot_sums_and_latency_percentiles(
        self, stream_config, playback, serial_baseline
    ):
        pids, _, _ = serial_baseline
        cluster = ShardedGateway(2, clock=StepClock())
        _drive(cluster, stream_config, pids, playback)
        merged = cluster.snapshot()
        shards = cluster.shard_snapshots().values()
        assert merged.sessions == sum(s.sessions for s in shards)
        assert merged.windows_completed == sum(
            s.windows_completed for s in shards
        )
        assert len(merged.per_session) == len(pids)
        # Percentiles come from the union of shard samples, so the
        # merged p50 must lie within the per-shard extremes.
        p50s = [s.latency_p50_s for s in shards if s.latency_p50_s is not None]
        if p50s:
            assert merged.latency_p50_s is not None
            assert min(p50s) <= merged.latency_p50_s <= max(p50s)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedGateway(0)
        with pytest.raises(ValueError):
            ShardedGateway(2, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            ShardedGateway(2, shed_policy="drop-everything")
        with pytest.raises(ValueError):
            ShardedGateway(["a", "a"])


class TestMigration:
    @pytest.mark.parametrize("transport", ["inproc", "wire"])
    def test_midstream_topology_churn_is_invisible(
        self, stream_config, playback, serial_baseline, transport
    ):
        pids, digest, _ = serial_baseline

        def churn(cluster):
            moved_in = cluster.add_shard("shard-x")
            for pid in moved_in:
                assert cluster.owner_of(pid) == "shard-x"
            assert cluster.restart_shard("shard-0") == len(
                cluster.shard("shard-0").sessions
            )
            moved_out = cluster.remove_shard("shard-1")
            for pid in moved_out:
                assert cluster.owner_of(pid) != "shard-1"

        cluster = ShardedGateway(3, transport=transport, clock=StepClock())
        _drive(cluster, stream_config, pids, playback, events={2: churn})
        assert recovered_digest(cluster) == digest
        assert set(cluster.shard_names) == {"shard-0", "shard-2", "shard-x"}

    def test_drain_moves_queued_backlog(self, stream_config, stream_record):
        pids = [f"p{i}" for i in range(4)]
        cluster = ShardedGateway(2, clock=StepClock())
        encoders = {p: IngestSession(p, stream_config) for p in pids}
        for p in pids:
            cluster.open_session(p, stream_config)
        # Submit frames but never poll: they sit in ingress queues.
        for chunk in list(iter_record_chunks(stream_record, 97))[:4]:
            for p in pids:
                for frame in encoders[p].push(chunk):
                    cluster.submit(
                        StreamFrame(p, frame.packet, frame.crc, frame.reference)
                    )
        inflight_before = cluster.windows_inflight
        assert inflight_before > 0
        victim = cluster.shard_names[0]
        moved = cluster.remove_shard(victim)
        assert moved  # both shards held sessions for 4 spread patients
        assert cluster.windows_inflight == inflight_before
        assert cluster.finish() == cluster.snapshot().windows_completed

    def test_restart_preserves_counters_and_ring(
        self, stream_config, playback
    ):
        pids = [f"p{i}" for i in range(4)]
        cluster = ShardedGateway(2, clock=StepClock())
        _drive(cluster, stream_config, pids, playback, poll_every=2)
        before = {
            s.patient_id: (s.solved, s.concealed, s.ring.read().tobytes())
            for s in cluster.sessions
        }
        for name in cluster.shard_names:
            cluster.restart_shard(name)
        after = {
            s.patient_id: (s.solved, s.concealed, s.ring.read().tobytes())
            for s in cluster.sessions
        }
        assert after == before

    def test_remove_last_shard_refused(self, stream_config):
        cluster = ShardedGateway(1)
        with pytest.raises(ValueError):
            cluster.remove_shard(cluster.shard_names[0])


class TestSessionStateRoundTrip:
    def test_export_restore_is_lossless(self, stream_config, stream_record):
        from repro.stream.session import PatientSession

        source = PatientSession("p0", stream_config)
        encoder = IngestSession("p0", stream_config)
        frames = []
        for chunk in list(iter_record_chunks(stream_record, 97))[:6]:
            frames.extend(encoder.push(chunk))
        # Apply a couple of windows, skip one (concealment), hold one.
        for frame in [frames[0], frames[1], frames[3]]:
            for plan in source.offer(frame, arrival_ts=1.0):
                from repro.stream.session import execute_recovery_task

                result = (
                    execute_recovery_task(plan.task)
                    if plan.task is not None
                    else None
                )
                source.apply(plan, result)
        state = source.export_state()
        clone = PatientSession("p0", stream_config)
        clone.restore_state(state)
        assert clone.next_window == source.next_window
        assert clone.pending_reorder == source.pending_reorder
        assert clone.solved == source.solved
        assert clone.concealed == source.concealed
        assert np.array_equal(clone.ring.read(), source.ring.read())
        assert clone.ring.total_written == source.ring.total_written
        assert clone.snapshot() == source.snapshot()

    def test_restore_rejects_identity_mismatch(self, stream_config):
        from repro.stream.session import PatientSession

        state = PatientSession("p0", stream_config).export_state()
        with pytest.raises(ValueError):
            PatientSession("p1", stream_config).restore_state(state)
        other = PatientSession("p0", stream_config, method="normal")
        with pytest.raises(ValueError):
            other.restore_state(state)

    def test_state_is_picklable(self, stream_config):
        import pickle

        from repro.stream.session import PatientSession

        state = PatientSession("p0", stream_config).export_state()
        clone = pickle.loads(pickle.dumps(state))
        assert clone.patient_id == "p0"
        assert clone.next_window == 0
