"""Fuzz tests of the length-prefixed wire framing (repro.stream.wire).

Two properties, pinned under Hypothesis:

* reassembly is chunking-invariant — any re-chunking of an encoded
  frame sequence (including byte-at-a-time delivery) yields
  byte-identical frames in order;
* damage is loud — truncated tails and corrupted bytes (length headers
  included) raise :class:`WireError`; a damaged stream never silently
  yields a wrong frame.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packets import WindowPacket
from repro.stream.ingest import StreamFrame
from repro.stream.wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    FrameAssembler,
    WireError,
    decode_frame_body,
    encode_frame,
)

#: Offline shared state for every stream in these tests.
BITS = 12


@st.composite
def frames(draw) -> StreamFrame:
    """One arbitrary (but valid) transmit frame."""
    m = draw(st.integers(min_value=1, max_value=10))
    codes = np.array(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=(1 << BITS) - 1),
                min_size=m,
                max_size=m,
            )
        ),
        dtype=np.int64,
    )
    payload_bits = draw(st.integers(min_value=0, max_value=48))
    payload = draw(
        st.binary(
            min_size=(payload_bits + 7) // 8, max_size=(payload_bits + 7) // 8
        )
    )
    packet = WindowPacket(
        window_index=draw(st.integers(min_value=0, max_value=2**20)),
        n=draw(st.integers(min_value=1, max_value=512)),
        measurement_codes=codes,
        measurement_bits=BITS,
        lowres_payload=payload,
        lowres_bit_length=payload_bits,
    )
    reference = None
    if draw(st.booleans()):
        size = draw(st.integers(min_value=0, max_value=16))
        reference = np.array(
            draw(
                st.lists(
                    st.integers(min_value=-(2**31), max_value=2**31 - 1),
                    min_size=size,
                    max_size=size,
                )
            ),
            dtype=np.int64,
        )
    return StreamFrame(
        patient_id=draw(st.text(min_size=1, max_size=8)),
        packet=packet,
        crc=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        reference=reference,
    )


def _chunk(blob: bytes, cuts) -> list:
    """Split ``blob`` at the given sorted offsets."""
    edges = [0] + sorted(set(cuts)) + [len(blob)]
    return [blob[a:b] for a, b in zip(edges, edges[1:])]


def _assert_frames_equal(got: StreamFrame, want: StreamFrame) -> None:
    assert got.patient_id == want.patient_id
    assert got.crc == want.crc
    # Byte-identity of the on-air packet is the contract that matters.
    assert got.packet.to_bytes() == want.packet.to_bytes()
    assert got.packet.window_index == want.packet.window_index
    assert got.packet.n == want.packet.n
    if want.reference is None:
        assert got.reference is None
    else:
        assert got.reference is not None
        assert np.array_equal(got.reference, want.reference)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        frame_list=st.lists(frames(), min_size=1, max_size=4),
        data=st.data(),
    )
    def test_any_chunking_reassembles_identically(self, frame_list, data):
        blob = b"".join(encode_frame(f) for f in frame_list)
        cuts = data.draw(
            st.lists(st.integers(min_value=0, max_value=len(blob)), max_size=12)
        )
        assembler = FrameAssembler(BITS)
        decoded = []
        for chunk in _chunk(blob, cuts):
            decoded.extend(assembler.feed(chunk))
        assembler.close()
        assert len(decoded) == len(frame_list)
        for got, want in zip(decoded, frame_list):
            _assert_frames_equal(got, want)
        assert assembler.frames_out == len(frame_list)
        assert assembler.bytes_in == len(blob)
        assert assembler.pending_bytes == 0

    @settings(max_examples=25, deadline=None)
    @given(frame=frames())
    def test_byte_at_a_time(self, frame):
        blob = encode_frame(frame)
        assembler = FrameAssembler(BITS)
        decoded = []
        for i in range(len(blob)):
            decoded.extend(assembler.feed(blob[i : i + 1]))
        assembler.close()
        assert len(decoded) == 1
        _assert_frames_equal(decoded[0], frame)

    @settings(max_examples=40, deadline=None)
    @given(frame_list=st.lists(frames(), min_size=1, max_size=3), data=st.data())
    def test_truncated_tail_is_loud(self, frame_list, data):
        """A stream cut anywhere yields only whole frames, then an error."""
        encoded = [encode_frame(f) for f in frame_list]
        blob = b"".join(encoded)
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        boundaries = {0}
        offset = 0
        for part in encoded:
            offset += len(part)
            boundaries.add(offset)
        assembler = FrameAssembler(BITS)
        decoded = assembler.feed(blob[:cut])
        whole = sum(1 for b in sorted(boundaries) if b <= cut) - 1
        assert len(decoded) == whole
        if cut in boundaries:
            assembler.close()  # clean boundary: a short stream, not damage
        else:
            with pytest.raises(WireError):
                assembler.close()

    @settings(max_examples=60, deadline=None)
    @given(frame_list=st.lists(frames(), min_size=1, max_size=3), data=st.data())
    def test_corrupted_byte_is_loud(self, frame_list, data):
        """Any flipped byte — length header included — raises WireError."""
        blob = bytearray(b"".join(encode_frame(f) for f in frame_list))
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        blob[pos] ^= mask
        assembler = FrameAssembler(BITS)
        with pytest.raises(WireError):
            assembler.feed(bytes(blob))
            assembler.close()


class TestWireEdges:
    def _frame(self):
        packet = WindowPacket(
            window_index=0,
            n=16,
            measurement_codes=np.arange(4),
            measurement_bits=BITS,
            lowres_payload=b"\xa5",
            lowres_bit_length=8,
        )
        return StreamFrame(patient_id="p0", packet=packet, crc=123)

    def test_unsupported_version_rejected(self):
        body = bytearray(encode_frame(self._frame())[8:])
        body[0] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="version"):
            decode_frame_body(bytes(body), BITS)

    def test_unknown_flags_rejected(self):
        body = bytearray(encode_frame(self._frame())[8:])
        body[1] |= 0x80
        with pytest.raises(WireError, match="flags"):
            decode_frame_body(bytes(body), BITS)

    def test_oversized_length_prefix_rejected_before_buffering(self):
        assembler = FrameAssembler(BITS, max_frame_bytes=64)
        bogus = (1 << 16).to_bytes(4, "big") + b"\x00" * 4
        with pytest.raises(WireError, match="frame bound"):
            assembler.feed(bogus)

    def test_default_bound_is_max_frame_bytes(self):
        assert FrameAssembler(BITS).max_frame_bytes == MAX_FRAME_BYTES

    def test_reference_must_be_integer_vector(self):
        frame = self._frame()
        bad = StreamFrame(
            patient_id=frame.patient_id,
            packet=frame.packet,
            crc=frame.crc,
            reference=np.array([0.5, 1.5]),
        )
        with pytest.raises(WireError, match="integer"):
            encode_frame(bad)

    def test_empty_feed_yields_nothing(self):
        assembler = FrameAssembler(BITS)
        assert assembler.feed(b"") == []
        assembler.close()
