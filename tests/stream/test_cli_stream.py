"""CLI smoke tests for `repro stream` and `repro loadtest`."""

import json

from repro.cli import main


class TestStreamCommand:
    def test_smoke_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        code = main(
            [
                "stream",
                "--patients", "2",
                "--duration", "2",
                "--window", "128",
                "--measurements", "48",
                "--max-iter", "200",
                "--chunk", "97",
                "--erasure-rate", "0.2",
                "--output", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == "repro-stream-snapshot/v1"
        assert data["sessions"] == 2
        assert data["windows_completed"] > 0
        assert len(data["per_session"]) == 2
        text = capsys.readouterr().out
        assert "streaming 2 patients" in text
        assert "rolling PRD by patient" in text

    def test_invalid_patients_errors_cleanly(self, capsys):
        code = main(["stream", "--patients", "0", "--duration", "2"])
        assert code != 0
        assert "error:" in capsys.readouterr().err

    def test_policy_flag_selects_shedding(self, tmp_path):
        out = tmp_path / "snap.json"
        code = main(
            [
                "stream",
                "--patients", "1",
                "--duration", "1",
                "--window", "128",
                "--measurements", "48",
                "--max-iter", "200",
                "--chunk", "97",
                "--erasure-rate", "0",
                "--policy", "drop-newest",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["shed_policy"] == "drop-newest"


LOADTEST_FAST = [
    "loadtest",
    "--patients", "4",
    "--duration", "1.5",
    "--window", "128",
    "--measurements", "48",
    "--max-iter", "200",
    "--chunk", "97",
]


class TestLoadtestCommand:
    def test_single_process_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "BENCH_gateway.json"
        code = main(LOADTEST_FAST + ["--output", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == "repro-bench-gateway/v1"
        assert data["windows_completed"] > 0
        assert data["frames_lost"] == 0
        assert data["mode"]["shards"] == 1
        text = capsys.readouterr().out
        assert "loadtest: 4 patients" in text
        assert "wrote" in text

    def test_sharded_with_identity_check(self, tmp_path, capsys):
        out = tmp_path / "BENCH_gateway.json"
        code = main(
            LOADTEST_FAST
            + [
                "--shards", "2",
                "--transport", "wire",
                "--compare-single",
                "--output", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["identical_to_single"] is True
        assert data["mode"]["transport"] == "wire"
        assert data["per_shard"]
        assert (
            data["recovered_digest"]
            == data["baseline_single"]["recovered_digest"]
        )
        assert "identity vs single-process: True" in capsys.readouterr().out
