"""CLI smoke tests for `repro stream`."""

import json

from repro.cli import main


class TestStreamCommand:
    def test_smoke_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        code = main(
            [
                "stream",
                "--patients", "2",
                "--duration", "2",
                "--window", "128",
                "--measurements", "48",
                "--max-iter", "200",
                "--chunk", "97",
                "--erasure-rate", "0.2",
                "--output", str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == "repro-stream-snapshot/v1"
        assert data["sessions"] == 2
        assert data["windows_completed"] > 0
        assert len(data["per_session"]) == 2
        text = capsys.readouterr().out
        assert "streaming 2 patients" in text
        assert "rolling PRD by patient" in text

    def test_invalid_patients_errors_cleanly(self, capsys):
        code = main(["stream", "--patients", "0", "--duration", "2"])
        assert code != 0
        assert "error:" in capsys.readouterr().err
