"""Recovery-cache telemetry on gateway/cluster snapshots.

Satellite of the workspace PR: every snapshot now samples the
process-wide recovery caches (``PROBLEM_CACHE`` hit rates, operator-set
occupancy, link memo sizes) so cache effectiveness is visible in live
telemetry, not just in benchmark artifacts.  The cache is a per-process
singleton, so the cluster snapshot must carry *one* sample — never a
per-shard sum of the same counters.
"""

import json

from repro.stream.cluster import ShardedGateway
from repro.stream.gateway import StreamGateway
from repro.stream.metrics import GatewaySnapshot


class TestGatewayCacheTelemetry:
    def test_snapshot_carries_cache_stats(self, stream_config):
        gateway = StreamGateway()
        gateway.open_session("100", stream_config)
        snap = gateway.snapshot()
        stats = snap.recovery_cache
        assert stats is not None
        for key in (
            "size",
            "maxsize",
            "hits",
            "misses",
            "hit_rate",
            "operator_sets",
            "link_cache_size",
        ):
            assert key in stats

    def test_to_dict_and_json_round_trip(self, stream_config):
        gateway = StreamGateway()
        gateway.open_session("100", stream_config)
        snap = gateway.snapshot()
        payload = snap.to_dict()
        assert payload["recovery_cache"] == snap.recovery_cache
        parsed = json.loads(snap.to_json())
        assert parsed["recovery_cache"]["maxsize"] >= 1

    def test_default_is_none_for_hand_built_snapshots(self):
        snap = GatewaySnapshot(
            uptime_s=0.0,
            sessions=0,
            windows_inflight=0,
            windows_completed=0,
            reconstructed_per_sec=None,
            queue_drops=0,
            queue_high_water=0,
            late_drops=0,
            duplicate_drops=0,
            concealed=0,
            cs_fallbacks=0,
            latency_p50_s=None,
            latency_p95_s=None,
        )
        assert snap.recovery_cache is None
        assert snap.to_dict()["recovery_cache"] is None


class TestClusterCacheTelemetry:
    def test_cluster_samples_the_singleton_once(self, stream_config):
        cluster = ShardedGateway(2)
        cluster.open_session("100", stream_config)
        cluster.open_session("101", stream_config)
        snap = cluster.snapshot()
        assert snap.recovery_cache is not None
        # One process-wide sample: the cluster value equals any single
        # shard's view of the same singleton (no per-shard summing).
        shard_view = next(
            iter(cluster.shard_snapshots().values())
        ).recovery_cache
        assert snap.recovery_cache["hits"] == shard_view["hits"]
        assert snap.recovery_cache["misses"] == shard_view["misses"]
