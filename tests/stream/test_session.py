"""Receiver-session tests: reorder, concealment, fallback, bounded memory."""

import numpy as np
import pytest

from repro.core.channel import payload_crc
from repro.signals.database import iter_record_chunks
from repro.stream.ingest import IngestSession, StreamFrame
from repro.stream.session import (
    PatientSession,
    RecoveryTask,
    SignalRing,
    execute_recovery_task,
)


@pytest.fixture(scope="module")
def frames(stream_config, stream_record):
    """The record's frame stream, encoded once for the whole module."""
    session = IngestSession(stream_record.name, stream_config)
    out = []
    for chunk in iter_record_chunks(stream_record, 181):
        out.extend(session.push(chunk))
    assert len(out) >= 8
    return out


def _complete(session, planned):
    """Resolve planned windows serially, mirroring the gateway loop."""
    modes = []
    for plan in planned:
        result = (
            execute_recovery_task(plan.task) if plan.task is not None else None
        )
        modes.append(session.apply(plan, result))
    return modes


class TestSignalRing:
    def test_read_before_wrap(self):
        ring = SignalRing(8)
        ring.extend(np.arange(5.0))
        assert len(ring) == 5
        assert np.array_equal(ring.read(), np.arange(5.0))

    def test_wraparound_keeps_newest(self):
        ring = SignalRing(8)
        ring.extend(np.arange(6.0))
        ring.extend(np.arange(6.0, 11.0))
        assert len(ring) == 8
        assert np.array_equal(ring.read(), np.arange(3.0, 11.0))
        assert ring.total_written == 11

    def test_oversized_chunk_keeps_tail(self):
        ring = SignalRing(4)
        ring.extend(np.arange(10.0))
        assert np.array_equal(ring.read(), np.arange(6.0, 10.0))

    def test_many_irregular_chunks(self):
        ring = SignalRing(16)
        data = np.arange(100.0)
        pos = 0
        for size in (3, 7, 1, 12, 5, 16, 2, 30, 9, 15):
            ring.extend(data[pos : pos + size])
            pos += size
        assert len(ring) == 16
        assert np.array_equal(ring.read(), data[pos - 16 : pos])

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SignalRing(0)


class TestInOrderFlow:
    def test_all_windows_solved(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        modes = []
        for frame in frames:
            modes.extend(_complete(session, session.offer(frame, 0.0)))
        assert modes == ["hybrid"] * len(frames)
        assert session.solved == len(frames)
        assert session.concealed == 0
        assert session.windows_completed == len(frames)
        assert session.next_window == len(frames)

    def test_rolling_quality_populated(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        for frame in frames[:3]:
            _complete(session, session.offer(frame, 0.0))
        snap = session.snapshot()
        assert snap.rolling_prd_percent is not None
        assert 0.0 < snap.rolling_prd_percent < 50.0
        assert snap.rolling_snr_db is not None

    def test_ring_stays_bounded(self, stream_config, frames):
        session = PatientSession("100", stream_config, ring_windows=2)
        for frame in frames:
            _complete(session, session.offer(frame, 0.0))
        assert len(session.ring) == 2 * stream_config.window_len
        assert session.ring.total_written == (
            len(frames) * stream_config.window_len
        )


class TestReordering:
    def test_swap_within_depth_reorders(self, stream_config, frames):
        session = PatientSession("100", stream_config, reorder_depth=4)
        assert session.offer(frames[1], 0.0) == []
        assert session.pending_reorder == 1
        planned = session.offer(frames[0], 0.0)
        assert [p.window_index for p in planned] == [0, 1]
        assert all(p.task is not None for p in planned)
        modes = _complete(session, planned)
        assert modes == ["hybrid", "hybrid"]

    def test_gap_beyond_depth_concealed(self, stream_config, frames):
        session = PatientSession("100", stream_config, reorder_depth=2)
        _complete(session, session.offer(frames[0], 0.0))
        # Window 3 runs 2 ahead of next=1, hitting the reorder horizon:
        # window 1 is declared lost.  Window 2 is still within the
        # horizon (it may yet arrive), so 3 stays held.
        planned = session.offer(frames[3], 0.0)
        assert [(p.window_index, p.task is None) for p in planned] == [
            (1, True),
        ]
        modes = _complete(session, planned)
        assert modes == ["concealed"]
        # Window 2 does arrive late-but-in-horizon: both it and 3 release.
        planned = session.offer(frames[2], 0.0)
        assert [(p.window_index, p.task is None) for p in planned] == [
            (2, False),
            (3, False),
        ]
        assert _complete(session, planned) == ["hybrid", "hybrid"]
        assert session.concealed == 1

    def test_concealment_is_zero_order_hold(self, stream_config, frames):
        session = PatientSession("100", stream_config, reorder_depth=1)
        _complete(session, session.offer(frames[0], 0.0))
        previous = session.ring.read().copy()
        planned = session.offer(frames[2], 0.0)  # window 1 lost
        _complete(session, planned)
        held = session.ring.read()[
            stream_config.window_len : 2 * stream_config.window_len
        ]
        assert np.array_equal(held, previous[-stream_config.window_len :])

    def test_cold_start_concealment_is_baseline(self, stream_config, frames):
        session = PatientSession("100", stream_config, reorder_depth=0)
        # First frame ever is window 1: window 0 is concealed with no
        # history, so the mid-scale baseline fills in.
        planned = session.offer(frames[1], 0.0)
        _complete(session, planned)
        center = float(1 << (stream_config.acquisition_bits - 1))
        baseline = session.ring.read()[: stream_config.window_len]
        assert np.all(baseline == center)

    def test_finish_flushes_trailing_gap(self, stream_config, frames):
        session = PatientSession("100", stream_config, reorder_depth=8)
        _complete(session, session.offer(frames[0], 0.0))
        assert session.offer(frames[2], 0.0) == []  # held: gap at 1
        planned = session.finish()
        assert [(p.window_index, p.task is None) for p in planned] == [
            (1, True),
            (2, False),
        ]
        _complete(session, planned)
        assert session.windows_completed == 3


class TestDropsAndFallback:
    def test_late_frame_dropped(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        _complete(session, session.offer(frames[0], 0.0))
        assert session.offer(frames[0], 0.0) == []
        assert session.late_drops == 1
        assert session.solved == 1

    def test_duplicate_held_frame_dropped(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        session.offer(frames[1], 0.0)
        assert session.offer(frames[1], 0.0) == []
        assert session.duplicate_drops == 1

    def test_wrong_patient_rejected(self, stream_config, frames):
        session = PatientSession("999", stream_config)
        with pytest.raises(ValueError):
            session.offer(frames[0], 0.0)

    def test_crc_mismatch_falls_back_to_cs(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        frame = frames[0]
        bad = StreamFrame(
            patient_id=frame.patient_id,
            packet=frame.packet,
            crc=frame.crc ^ 0xDEAD,
            reference=frame.reference,
        )
        modes = _complete(session, session.offer(bad, 0.0))
        assert modes == ["cs-fallback"]
        assert session.cs_fallbacks == 1
        assert session.solved == 1

    def test_fallback_matches_crc_of_truth(self, stream_config, frames):
        # Sanity: an intact frame's recomputed CRC matches, so the full
        # hybrid path (not the fallback) runs.
        frame = frames[0]
        assert payload_crc(frame.packet) == frame.crc


class TestRecoveryTask:
    def test_task_validates_method(self, stream_config, frames):
        with pytest.raises(ValueError):
            RecoveryTask(
                patient_id="100",
                window_index=0,
                packet=frames[0].packet,
                crc=frames[0].crc,
                config=stream_config,
                method="turbo",
                codebook=PatientSession("100", stream_config).codebook_spec,
            )

    def test_unscored_when_no_reference(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        frame = StreamFrame(
            patient_id="100",
            packet=frames[0].packet,
            crc=frames[0].crc,
            reference=None,
        )
        planned = session.offer(frame, 0.0)
        result = execute_recovery_task(planned[0].task)
        assert result.prd_percent is None
        assert result.snr_db is None
        assert result.mode == "hybrid"

    def test_result_is_scored_with_reference(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        planned = session.offer(frames[0], 0.0)
        result = execute_recovery_task(planned[0].task)
        assert result.prd_percent is not None and result.prd_percent > 0
        assert result.snr_db is not None
        assert result.x_codes.shape == (stream_config.window_len,)


class TestWarmStart:
    def test_consecutive_windows_seed_from_previous(self, stream_config, frames):
        session = PatientSession("100", stream_config)
        planned0 = session.offer(frames[0], 0.0)
        assert planned0[0].task.warm_start is None  # cold start
        result0 = execute_recovery_task(planned0[0].task)
        session.apply(planned0[0], result0)
        planned1 = session.offer(frames[1], 0.1)
        seed = planned1[0].task.warm_start
        assert seed is not None
        assert np.array_equal(seed, result0.alpha)

    def test_no_seed_when_predecessor_not_applied(self, stream_config, frames):
        """Windows released in one batch (gap fill) are planned before
        their predecessors complete — they must all run cold so the
        results cannot depend on executor scheduling."""
        session = PatientSession("100", stream_config, reorder_depth=4)
        assert session.offer(frames[1], 0.0) == []  # held: gap at 0
        planned = session.offer(frames[0], 0.1)  # releases 0 and 1 together
        assert [p.window_index for p in planned] == [0, 1]
        assert planned[0].task.warm_start is None
        assert planned[1].task.warm_start is None

    def test_no_seed_across_concealed_gap(self, stream_config, frames):
        session = PatientSession("100", stream_config, reorder_depth=0)
        planned0 = session.offer(frames[0], 0.0)
        _complete(session, planned0)
        # Window 1 never arrives; offering window 2 conceals it.
        planned = session.offer(frames[2], 0.2)
        assert [p.window_index for p in planned] == [1, 2]
        assert planned[0].task is None  # concealed
        # Window 2's predecessor was concealed (no alpha) → cold start.
        assert planned[1].task.warm_start is None

    def test_flag_off_disables_seeding(self, stream_config, frames):
        import dataclasses

        from repro.recovery.opcache import RecoveryEngineSettings

        config = dataclasses.replace(
            stream_config,
            recovery=RecoveryEngineSettings(warm_start_streams=False),
        )
        session = PatientSession("100", config)
        planned0 = session.offer(frames[0], 0.0)
        _complete(session, planned0)
        planned1 = session.offer(frames[1], 0.1)
        assert planned1[0].task.warm_start is None

    def test_warm_result_close_to_cold(self, stream_config, frames):
        """Warm starting accelerates the solve; it must not change what
        the solver converges to (same convex program, same optimum)."""
        session = PatientSession("100", stream_config)
        planned0 = session.offer(frames[0], 0.0)
        _complete(session, planned0)
        planned1 = session.offer(frames[1], 0.1)
        warm = execute_recovery_task(planned1[0].task)
        cold_task = RecoveryTask(
            patient_id=planned1[0].task.patient_id,
            window_index=planned1[0].task.window_index,
            packet=planned1[0].task.packet,
            crc=planned1[0].task.crc,
            config=planned1[0].task.config,
            method=planned1[0].task.method,
            codebook=planned1[0].task.codebook,
            reference=planned1[0].task.reference,
            warm_start=None,
        )
        cold = execute_recovery_task(cold_task)
        scale = max(float(np.linalg.norm(cold.x_codes)), 1.0)
        assert (
            float(np.linalg.norm(warm.x_codes - cold.x_codes)) / scale < 0.05
        )
