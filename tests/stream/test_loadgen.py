"""Tests of the deterministic load-test harness (repro.stream.loadgen)."""

import json

import pytest

from repro.stream.loadgen import (
    PHASE_SCRIPTS,
    LoadPhase,
    LoadScenario,
    StepClock,
    build_gateway,
    run_loadtest,
)


def _scenario(stream_config, **overrides):
    params = dict(
        patients=6,
        duration_s=1.5,
        config=stream_config,
        chunk_size=97,
        seed=11,
    )
    params.update(overrides)
    return LoadScenario(**params)


class TestStepClock:
    def test_advances_monotonically(self):
        clock = StepClock()
        assert clock() == 0.0
        clock.advance(0.25)
        clock.advance(0.25)
        assert clock() == pytest.approx(0.5)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestScenarioValidation:
    def test_rejects_bad_parameters(self, stream_config):
        with pytest.raises(ValueError):
            _scenario(stream_config, patients=0)
        with pytest.raises(ValueError):
            _scenario(stream_config, shed_policy="drop-random")
        with pytest.raises(ValueError):
            _scenario(stream_config, phases=())
        with pytest.raises(ValueError):
            LoadPhase("bad", fraction=0.0)

    def test_patients_beyond_48_reuse_records(self, stream_config):
        scenario = _scenario(stream_config, patients=100)
        assert len(scenario.patient_ids()) == 100
        assert len(set(scenario.patient_ids())) == 100
        assert scenario.record_name_for(0) == scenario.record_name_for(48)

    def test_build_gateway_modes(self, stream_config):
        from repro.stream.cluster import ShardedGateway
        from repro.stream.gateway import StreamGateway

        scenario = _scenario(stream_config)
        single = build_gateway(scenario, StepClock(), shards=1)
        assert isinstance(single, StreamGateway)
        sharded = build_gateway(scenario, StepClock(), shards=3)
        assert isinstance(sharded, ShardedGateway)
        with pytest.raises(ValueError):
            build_gateway(scenario, StepClock(), shards=0)


class TestNominalRun:
    @pytest.fixture(scope="class")
    def payload(self, stream_config):
        return run_loadtest(_scenario(stream_config))

    def test_no_unexplained_loss_at_nominal_rate(self, payload):
        """The CI acceptance floor: steady traffic, zero frames lost."""
        assert payload["frames_erased"] == 0
        assert payload["frames_lost"] == 0
        assert payload["concealed"] == 0
        assert payload["windows_completed"] == payload["frames_delivered"]
        assert payload["windows_completed"] > 0

    def test_payload_is_strict_json_with_percentiles(self, payload):
        text = json.dumps(payload, allow_nan=False)
        data = json.loads(text)
        assert data["schema"] == "repro-bench-gateway/v1"
        assert data["latency_p50_s"] is not None
        assert data["latency_p99_s"] is not None
        assert data["latency_p50_s"] <= data["latency_p99_s"]
        assert data["frames_per_sec"] > 0
        assert data["per_shard"] is None  # single-process run
        assert data["scenario"]["phases"][0]["name"] == "nominal"

    def test_deterministic_modulo_wall_clock(self, payload, stream_config):
        again = run_loadtest(_scenario(stream_config))
        for key in (
            "frames_sent",
            "frames_delivered",
            "windows_completed",
            "latency_p50_s",
            "latency_p99_s",
            "concealed",
            "recovered_digest",
        ):
            assert again[key] == payload[key], key

    def test_sharded_run_is_identity_checked(self, payload, stream_config):
        sharded = run_loadtest(_scenario(stream_config), shards=2)
        assert sharded["recovered_digest"] == payload["recovered_digest"]
        assert sharded["per_shard"] is not None
        assert (
            sum(b["sessions"] for b in sharded["per_shard"].values())
            == payload["scenario"]["patients"]
        )


class TestScriptedPhases:
    def test_stress_script_exercises_loss_and_shedding(self, stream_config):
        payload = run_loadtest(
            _scenario(
                stream_config,
                duration_s=3.0,
                queue_capacity=2,
                phases=PHASE_SCRIPTS["stress"],
            )
        )
        by_name = {p["name"]: p for p in payload["per_phase"]}
        assert set(by_name) == {"nominal", "loss", "overload"}
        assert by_name["nominal"]["frames_erased"] == 0
        assert by_name["loss"]["frames_erased"] > 0
        # The poll-starved overload phase must overflow the tiny queue.
        assert payload["frames_lost"] > 0
        assert payload["concealed"] > 0

    def test_shed_policy_changes_who_pays(self, stream_config):
        def lost_counters(policy):
            payload = run_loadtest(
                _scenario(
                    stream_config,
                    duration_s=3.0,
                    queue_capacity=2,
                    shed_policy=policy,
                    phases=PHASE_SCRIPTS["stress"],
                )
            )
            return payload

        oldest = lost_counters("drop-oldest")
        newest = lost_counters("drop-newest")
        shed = lost_counters("shed-patient")
        assert oldest["queue_drops"] > 0 and oldest["shed_frames"] == 0
        assert newest["queue_rejects"] > 0 and newest["queue_drops"] == 0
        assert shed["patient_sheds"] > 0 and shed["queue_drops"] == 0
