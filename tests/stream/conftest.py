"""Shared fixtures for the streaming tests.

Everything here is sized for speed: n = 128 windows and a loose solver
keep a full gateway run well under a second, and the config is shared so
the per-process link cache is hit across tests.
"""

from __future__ import annotations

import pytest

from repro.core.config import FrontEndConfig
from repro.recovery.pdhg import PdhgSettings
from repro.signals.database import load_record

STREAM_CONFIG = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=300, tol=5e-4),
)


@pytest.fixture(scope="package")
def stream_config() -> FrontEndConfig:
    """Small shared config so link caches are reused across tests."""
    return STREAM_CONFIG


@pytest.fixture(scope="package")
def stream_record():
    """A short record used as the canonical patient stream."""
    return load_record("100", duration_s=4.0)
