"""Gateway tests: routing, backpressure bounds, telemetry, loss handling."""

import json

import numpy as np
import pytest

from repro.core.channel import LossyLink
from repro.runtime.executors import ParallelExecutor
from repro.signals.database import interleave_playback, load_record
from repro.stream.driver import StreamScenario, run_stream_scenario
from repro.stream.gateway import BoundedQueue, StreamGateway
from repro.stream.ingest import IngestSession, StreamFrame


class FakeClock:
    """Deterministic monotonic clock advanced by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBoundedQueue:
    def test_fifo_order(self):
        q = BoundedQueue(4)
        for i in range(3):
            assert q.push(i)
        assert [q.popleft() for _ in range(3)] == [0, 1, 2]

    def test_overflow_drops_oldest(self):
        q = BoundedQueue(2)
        q.push("a")
        q.push("b")
        assert not q.push("c")
        assert q.drops == 1
        assert [q.popleft(), q.popleft()] == ["b", "c"]

    def test_high_water_tracks_peak(self):
        q = BoundedQueue(8)
        for i in range(5):
            q.push(i)
        q.popleft()
        assert q.high_water == 5
        assert len(q) == 4

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


def _frames_for(name, config, duration_s=4.0):
    record = load_record(name, duration_s=duration_s)
    return IngestSession(name, config).push(record.adu)


class TestSheddingPolicies:
    def test_drop_newest_rejects_arrival(self):
        q = BoundedQueue(2, policy="drop-newest")
        q.push("a")
        q.push("b")
        assert not q.push("c")
        assert q.rejects == 1 and q.drops == 0 and q.sheds == 0
        assert [q.popleft(), q.popleft()] == ["a", "b"]  # backlog untouched

    def test_shed_patient_clears_backlog_and_accepts(self):
        q = BoundedQueue(3, policy="shed-patient")
        for item in "abc":
            q.push(item)
        assert not q.push("d")
        assert q.sheds == 1 and q.shed_frames == 3
        assert len(q) == 1 and q.popleft() == "d"

    def test_lost_sums_all_policies(self):
        q = BoundedQueue(1, policy="drop-oldest")
        q.push("a")
        q.push("b")
        assert q.lost == q.drops == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            BoundedQueue(2, policy="drop-random")
        with pytest.raises(ValueError):
            StreamGateway(shed_policy="drop-random")

    @pytest.mark.parametrize(
        "policy,field",
        [
            ("drop-oldest", "queue_drops"),
            ("drop-newest", "queue_rejects"),
            ("shed-patient", "shed_frames"),
        ],
    )
    def test_only_active_policy_counter_grows(
        self, stream_config, policy, field
    ):
        gateway = StreamGateway(
            queue_capacity=2, shed_policy=policy, clock=FakeClock()
        )
        gateway.open_session("100", stream_config)
        for frame in _frames_for("100", stream_config)[:5]:
            gateway.submit(frame)
        snap = gateway.snapshot()
        counters = {
            "queue_drops": snap.queue_drops,
            "queue_rejects": snap.queue_rejects,
            "shed_frames": snap.shed_frames,
        }
        assert counters.pop(field) > 0
        assert all(v == 0 for v in counters.values())
        assert snap.shed_policy == policy
        assert snap.frames_lost == snap.to_dict()[field]

    def test_drop_newest_preserves_oldest_windows(self, stream_config):
        gateway = StreamGateway(
            queue_capacity=2, shed_policy="drop-newest", clock=FakeClock()
        )
        gateway.open_session("100", stream_config)
        frames = _frames_for("100", stream_config)
        for frame in frames[:5]:
            gateway.submit(frame)
        gateway.finish()
        session = gateway.session("100")
        # The first two windows survive; the later arrivals were refused
        # and never become gaps *before* them.
        assert session.solved == 2
        assert session.concealed == 0

    def test_shed_patient_sacrifices_backlog_for_freshness(
        self, stream_config
    ):
        gateway = StreamGateway(
            queue_capacity=2, shed_policy="shed-patient", clock=FakeClock()
        )
        gateway.open_session("100", stream_config)
        frames = _frames_for("100", stream_config)[:5]
        for frame in frames:
            gateway.submit(frame)
        gateway.finish()
        session = gateway.session("100")
        snap = gateway.snapshot()
        assert snap.patient_sheds >= 1
        # The newest window always survives a shed.
        assert session.next_window == frames[-1].window_index + 1


class TestEmptySessionSnapshots:
    """Percentile/rate fields must be null — never 0.0, never a crash —
    for sessions and gateways that completed zero windows."""

    def test_idle_gateway_serializes_nulls(self, stream_config):
        gateway = StreamGateway(clock=FakeClock())
        gateway.open_session("100", stream_config)
        snap = gateway.snapshot()
        assert snap.reconstructed_per_sec is None
        assert snap.latency_p50_s is None
        assert snap.latency_p95_s is None
        assert snap.latency_p99_s is None
        data = json.loads(snap.to_json())
        assert data["reconstructed_per_sec"] is None
        assert data["latency_p99_s"] is None
        session = data["per_session"][0]
        assert session["rolling_prd_percent"] is None
        assert session["prd_p95_percent"] is None
        assert session["rolling_snr_db"] is None

    def test_zero_uptime_rate_is_null_not_division_error(self, stream_config):
        gateway = StreamGateway(clock=FakeClock())  # clock never advances
        gateway.open_session("100", stream_config)
        for frame in _frames_for("100", stream_config)[:2]:
            gateway.submit(frame)
        gateway.finish()
        snap = gateway.snapshot()
        assert snap.windows_completed == 2
        assert snap.uptime_s == 0.0
        assert snap.reconstructed_per_sec is None  # no rate without uptime

    def test_unscored_session_percentiles_are_null(self, stream_config):
        # Frames stripped of their telemetry reference: windows solve
        # but are never scored, so PRD stats must stay null.
        gateway = StreamGateway(clock=FakeClock())
        gateway.open_session("100", stream_config)
        for frame in _frames_for("100", stream_config)[:2]:
            gateway.submit(
                StreamFrame(frame.patient_id, frame.packet, frame.crc, None)
            )
        gateway.finish()
        snap = gateway.snapshot().per_session[0]
        assert snap.solved == 2
        assert snap.rolling_prd_percent is None
        assert snap.prd_p95_percent is None

    def test_scored_session_reports_prd_p95(self, stream_config):
        gateway = StreamGateway(clock=FakeClock())
        gateway.open_session("100", stream_config)
        for frame in _frames_for("100", stream_config)[:3]:
            gateway.submit(frame)
        gateway.finish()
        snap = gateway.snapshot().per_session[0]
        assert snap.prd_p95_percent is not None
        assert snap.prd_p95_percent >= snap.rolling_prd_percent * 0.99


class TestGatewayBasics:
    def test_unknown_patient_rejected(self, stream_config):
        gateway = StreamGateway()
        frame = _frames_for("100", stream_config)[0]
        with pytest.raises(KeyError):
            gateway.submit(frame)

    def test_duplicate_session_rejected(self, stream_config):
        gateway = StreamGateway()
        gateway.open_session("100", stream_config)
        with pytest.raises(ValueError):
            gateway.open_session("100", stream_config)

    def test_lossless_run_solves_everything(self, stream_config):
        clock = FakeClock()
        gateway = StreamGateway(clock=clock)
        gateway.open_session("100", stream_config)
        frames = _frames_for("100", stream_config)
        for frame in frames:
            assert gateway.submit(frame)
            clock.now += 0.01
        completed = gateway.finish()
        assert completed == len(frames)
        session = gateway.session("100")
        assert session.solved == len(frames)
        assert session.concealed == 0
        snap = gateway.snapshot()
        assert snap.windows_completed == len(frames)
        assert snap.windows_inflight == 0
        assert snap.queue_drops == 0

    def test_fake_clock_drives_latency_and_rate(self, stream_config):
        clock = FakeClock()
        gateway = StreamGateway(clock=clock)
        gateway.open_session("100", stream_config)
        frames = _frames_for("100", stream_config)[:4]
        for frame in frames:
            gateway.submit(frame)
        clock.now = 2.0  # all frames waited exactly 2 s before the poll
        gateway.poll()
        snap = gateway.snapshot()
        assert snap.latency_p50_s == pytest.approx(2.0)
        assert snap.latency_p95_s == pytest.approx(2.0)
        assert snap.uptime_s == pytest.approx(2.0)
        assert snap.reconstructed_per_sec == pytest.approx(4 / 2.0)

    def test_queue_overflow_counts_drops(self, stream_config):
        gateway = StreamGateway(queue_capacity=2, clock=FakeClock())
        gateway.open_session("100", stream_config)
        frames = _frames_for("100", stream_config)
        kept = [gateway.submit(f) for f in frames[:5]]
        assert kept == [True, True, False, False, False]
        snap = gateway.snapshot()
        assert snap.queue_drops == 3
        assert snap.queue_high_water == 2
        gateway.finish()
        # The three evicted windows become sequence gaps -> concealed.
        session = gateway.session("100")
        assert session.solved == 2
        assert session.concealed == 3


class TestMultiPatientLossyRun:
    """The acceptance scenario: sustained 10% erasure, bounded memory."""

    @pytest.fixture(scope="class")
    def outcome(self, stream_config):
        names = ("100", "101", "103")
        records = [load_record(n, duration_s=4.0) for n in names]
        encoders = {n: IngestSession(n, stream_config) for n in names}
        links = {
            n: LossyLink(packet_erasure_rate=0.1, seed=7 + i)
            for i, n in enumerate(names)
        }
        clock = FakeClock()
        gateway = StreamGateway(queue_capacity=16, clock=clock)
        for n in names:
            gateway.open_session(n, stream_config)
        sent = erased = 0
        for i, (name, chunk) in enumerate(
            interleave_playback(records, 181)
        ):
            clock.now += 0.01
            for frame in encoders[name].push(chunk):
                impaired = links[name].transmit(frame.packet)
                sent += 1
                if impaired is None:
                    erased += 1
                    continue
                gateway.submit(
                    StreamFrame(name, impaired, frame.crc, frame.reference)
                )
            if i % 4 == 0:
                gateway.poll()
        gateway.finish()
        return gateway, sent, erased

    def test_erasures_actually_happened(self, outcome):
        _, sent, erased = outcome
        assert sent >= 30
        assert 0 < erased < sent // 2

    def test_memory_stays_bounded(self, outcome, stream_config):
        gateway, _, _ = outcome
        snap = gateway.snapshot()
        assert 0 < snap.queue_high_water <= gateway.queue_capacity
        for session in gateway.sessions:
            assert len(session.ring) <= 8 * stream_config.window_len
            assert session.pending_reorder == 0

    def test_counters_are_consistent(self, outcome):
        gateway, sent, erased = outcome
        snap = gateway.snapshot()
        solved = sum(s.solved for s in gateway.sessions)
        assert solved + snap.concealed == snap.windows_completed
        assert solved == sent - erased  # every delivered frame was solved
        assert snap.windows_inflight == 0
        assert snap.late_drops == 0 and snap.duplicate_drops == 0

    def test_interior_erasures_concealed(self, outcome):
        # Trailing erasures are unknowable; every *interior* gap must be.
        gateway, _, _ = outcome
        for session in gateway.sessions:
            assert session.windows_completed == session.next_window
        snap = gateway.snapshot()
        assert snap.concealed > 0

    def test_snapshot_is_strict_json(self, outcome):
        gateway, _, _ = outcome
        text = gateway.snapshot().to_json()
        data = json.loads(text)
        assert data["schema"] == "repro-stream-snapshot/v1"
        assert data["sessions"] == 3
        assert len(data["per_session"]) == 3
        assert "NaN" not in text and "Infinity" not in text

    def test_summary_line_mentions_key_counters(self, outcome):
        gateway, _, _ = outcome
        line = gateway.snapshot().summary_line()
        assert "sessions=3" in line
        assert "concealed=" in line


class TestExecutorEquivalence:
    def test_parallel_gateway_matches_serial(self, stream_config):
        def run(executor):
            gateway = StreamGateway(executor=executor, clock=FakeClock())
            gateway.open_session("100", stream_config)
            for frame in _frames_for("100", stream_config, duration_s=3.0):
                gateway.submit(frame)
            gateway.finish()
            return gateway.session("100").ring.read()

        serial = run(None)
        parallel = run(ParallelExecutor(workers=2))
        assert np.array_equal(serial, parallel)


class TestScenarioDriver:
    def test_scenario_validation(self):
        with pytest.raises(ValueError):
            StreamScenario(patients=0)
        with pytest.raises(ValueError):
            StreamScenario(duration_s=0)
        with pytest.raises(ValueError):
            StreamScenario(chunk_size=0)

    def test_deterministic_end_to_end(self, stream_config):
        scenario = StreamScenario(
            patients=2,
            duration_s=2.0,
            config=stream_config,
            erasure_rate=0.15,
            seed=3,
        )
        clock = FakeClock()
        snapshots = []
        final = run_stream_scenario(
            scenario, clock=clock, on_snapshot=snapshots.append
        )
        again = run_stream_scenario(scenario, clock=FakeClock())
        assert final.windows_completed == again.windows_completed
        assert final.concealed == again.concealed
        assert final.to_dict()["per_session"] == (
            again.to_dict()["per_session"]
        )
        assert snapshots  # periodic polling surfaced progress
        assert final.sessions == 2
