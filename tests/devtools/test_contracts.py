"""Runtime array-contract assertions and the array_contract decorator."""

import numpy as np
import pytest

from repro.devtools.contracts import (
    ContractError,
    array_contract,
    check_dtype,
    check_finite,
    check_shape,
    contracts_enabled,
)


class TestCheckShape:
    def test_exact_match_passes_through(self):
        x = np.zeros((3, 4))
        assert check_shape(x, (3, 4)) is x

    def test_wildcard(self):
        check_shape(np.zeros(7), (None,))

    def test_wrong_ndim(self):
        with pytest.raises(ContractError, match="2-D"):
            check_shape(np.zeros(3), (3, 1), name="y")

    def test_wrong_size_names_argument(self):
        with pytest.raises(ContractError, match="codes"):
            check_shape(np.zeros(5), (4,), name="codes")

    def test_symbols_bind_consistently(self):
        dims = {}
        check_shape(np.zeros((2, 5)), ("m", "n"), dims=dims)
        check_shape(np.zeros(5), ("n",), dims=dims)
        with pytest.raises(ContractError, match="already bound"):
            check_shape(np.zeros(6), ("n",), dims=dims)

    def test_symbol_without_dims_is_wildcard(self):
        check_shape(np.zeros(9), ("n",))

    def test_coerces_lists(self):
        out = check_shape([1, 2, 3], (3,))
        assert isinstance(out, np.ndarray)

    def test_is_both_value_and_type_error(self):
        with pytest.raises(ValueError):
            check_shape(np.zeros(5), (4,))
        with pytest.raises(TypeError):
            check_shape(np.zeros(5), (4,))


class TestCheckDtype:
    def test_abstract_kinds(self):
        check_dtype(np.zeros(3, dtype=np.int32), "integer")
        check_dtype(np.zeros(3, dtype=np.float32), "floating")
        check_dtype(np.zeros(3), ("integer", "floating"))

    def test_concrete_dtype(self):
        check_dtype(np.zeros(3, dtype=np.int64), np.int64)

    def test_mismatch(self):
        with pytest.raises(ContractError, match="expected dtype integer"):
            check_dtype(np.zeros(3), "integer", name="codes")


class TestCheckFinite:
    def test_finite_passes(self):
        check_finite(np.arange(4.0))

    def test_integer_trivially_finite(self):
        check_finite(np.arange(4))

    def test_nan_rejected(self):
        with pytest.raises(ContractError, match="non-finite"):
            check_finite(np.array([1.0, np.nan, np.inf]), name="y")


class TestArrayContractDecorator:
    def test_valid_call_coerces_to_ndarray(self):
        @array_contract(x=dict(shape=("n",), dtype="floating", finite=True))
        def total(x):
            assert isinstance(x, np.ndarray)
            return float(np.sum(x))

        assert total([1.0, 2.0]) == 3.0

    def test_shape_symbols_shared_across_parameters(self):
        @array_contract(
            phi=dict(shape=("m", "n")), x=dict(shape=("n",))
        )
        def measure(phi, x):
            return phi @ x

        measure(np.zeros((2, 4)), np.zeros(4))
        with pytest.raises(ContractError, match="already bound"):
            measure(np.zeros((2, 4)), np.zeros(3))

    def test_ndim_spec(self):
        @array_contract(x=dict(ndim=1))
        def f(x):
            return x

        f(np.zeros(3))
        with pytest.raises(ContractError, match="1-D"):
            f(np.zeros((2, 2)))

    def test_none_argument_skipped(self):
        @array_contract(x=dict(shape=(3,)))
        def f(x=None):
            return x

        assert f() is None

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(TypeError, match="unknown"):
            @array_contract(nope=dict(ndim=1))
            def f(x):
                return x

    def test_finite_spec(self):
        @array_contract(x=dict(finite=True))
        def f(x):
            return x

        with pytest.raises(ContractError):
            f(np.array([np.nan]))


class TestKillSwitch:
    def test_disabled_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_CONTRACTS", "1")
        assert not contracts_enabled()
        check_shape(np.zeros(5), (4,))
        check_dtype(np.zeros(3), "integer")
        check_finite(np.array([np.nan]))

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_CONTRACTS", raising=False)
        assert contracts_enabled()


class TestEntryPointsUseContracts:
    """The paper pipeline's public APIs fail fast with named arguments."""

    def test_rmpi_measure_shape(self):
        from repro.sensing.rmpi import RmpiBank

        bank = RmpiBank(4, 16, seed=7)
        with pytest.raises(ValueError, match="x"):
            bank.measure(np.zeros(15))

    def test_rmpi_measure_rejects_nan(self):
        from repro.sensing.rmpi import RmpiBank

        bank = RmpiBank(4, 16, seed=7)
        bad = np.zeros(16)
        bad[3] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            bank.measure(bad)

    def test_problem_forward_adjoint_shapes(self):
        from repro.recovery.problem import CsProblem
        from repro.wavelets.operators import make_basis

        prob = CsProblem(np.ones((3, 8)), make_basis(8, "haar"))
        with pytest.raises(ValueError, match="alpha"):
            prob.forward(np.zeros(7))
        with pytest.raises(ValueError, match="z"):
            prob.adjoint(np.zeros(8))
        with pytest.raises(ValueError, match="non-finite"):
            CsProblem(np.array([[np.nan] * 8] * 3), make_basis(8, "haar"))

    def test_frontend_window_contract(self):
        from repro.core.config import FrontEndConfig
        from repro.core.frontend import NormalCsFrontEnd

        fe = NormalCsFrontEnd(FrontEndConfig())
        with pytest.raises(ValueError, match="codes"):
            fe.process_window(np.zeros(3, dtype=np.int64))
        with pytest.raises(TypeError, match="codes"):
            fe.process_window(np.zeros(fe.config.window_len))
