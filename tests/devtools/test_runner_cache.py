"""The two-pass runner: cache accounting, invalidation, --jobs, --changed.

Warm-run speedup is asserted through the cache hit/miss counters, never
wall-clock, so the tests stay deterministic on loaded CI machines.
"""

import subprocess
from pathlib import Path

import pytest

from repro.devtools.reprolint import run_lint
from repro.devtools.reprolint.cache import (
    CACHE_SCHEMA,
    LintCache,
    analyzer_signature,
    content_key,
)
from repro.devtools.reprolint.runner import changed_files

PROGRAM = Path(__file__).parent / "fixtures" / "program"

#: Source with one deterministic RL001 finding (line 2).
DIRTY = 'import numpy as np\nx = np.random.rand(3)\n__all__ = ["x"]\n'
CLEAN = 'VALUE = 7\n__all__ = ["VALUE"]\n'


def write_tree(root, files):
    for name, text in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return root


@pytest.fixture
def tree(tmp_path):
    return write_tree(
        tmp_path / "pkg",
        {"a.py": CLEAN, "b.py": DIRTY, "c.py": CLEAN},
    )


class TestCacheCounters:
    def test_cold_run_is_all_misses(self, tree, tmp_path):
        run = run_lint([tree], cache_dir=tmp_path / "cache")
        assert run.cache_misses == 3
        assert run.cache_hits == 0
        assert [f.rule_id for f in run.findings] == ["RL001"]

    def test_warm_run_is_all_hits_with_same_findings(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_lint([tree], cache_dir=cache_dir)
        warm = run_lint([tree], cache_dir=cache_dir)
        assert warm.cache_hits == 3
        assert warm.cache_misses == 0
        assert warm.findings == cold.findings

    def test_content_change_invalidates_one_file(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        run_lint([tree], cache_dir=cache_dir)
        (tree / "a.py").write_text(DIRTY)
        rerun = run_lint([tree], cache_dir=cache_dir)
        assert rerun.cache_hits == 2
        assert rerun.cache_misses == 1
        assert sorted(Path(f.path).name for f in rerun.findings) == [
            "a.py",
            "b.py",
        ]

    def test_no_cache_never_counts(self, tree, tmp_path):
        run = run_lint([tree], use_cache=False, cache_dir=tmp_path / "cache")
        assert run.cache_hits == run.cache_misses == 0

    def test_rule_selection_changes_signature(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        run_lint([tree], cache_dir=cache_dir)
        other = run_lint([tree], select=["RL003"], cache_dir=cache_dir)
        # A different file-rule set must not replay the old store.
        assert other.cache_hits == 0
        assert other.cache_misses == 3

    def test_program_findings_survive_warm_runs(self, tmp_path):
        """RL1xx findings come from cached summaries, not re-parses."""
        cache_dir = tmp_path / "cache"
        cold = run_lint(
            [PROGRAM], select=["RL103"], cache_dir=cache_dir
        )
        warm = run_lint(
            [PROGRAM], select=["RL103"], cache_dir=cache_dir
        )
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0
        assert warm.findings == cold.findings
        assert warm.findings  # the fixture really has RL103 findings


class TestCacheStore:
    def test_signature_covers_rule_ids(self):
        assert analyzer_signature(("RL001",)) != analyzer_signature(
            ("RL001", "RL002")
        )

    def test_content_key_covers_path_and_bytes(self, tmp_path):
        a = content_key(Path("a.py"), b"x = 1\n")
        assert a != content_key(Path("b.py"), b"x = 1\n")
        assert a != content_key(Path("a.py"), b"x = 2\n")
        assert a == content_key(Path("a.py"), b"x = 1\n")

    def test_corrupt_store_is_ignored(self, tree, tmp_path):
        cache_dir = tmp_path / "cache"
        run_lint([tree], cache_dir=cache_dir)
        for store in cache_dir.glob("reprolint-*.json"):
            store.write_text("{ not json")
        rerun = run_lint([tree], cache_dir=cache_dir)
        assert rerun.cache_misses == 3

    def test_schema_mismatch_is_ignored(self, tmp_path):
        sig = analyzer_signature(("RL001",))
        cache = LintCache(tmp_path, sig)
        cache.put("k", [], None)
        cache.save()
        store = cache.path
        text = store.read_text().replace(
            f'"schema": {CACHE_SCHEMA}', f'"schema": {CACHE_SCHEMA + 1}'
        )
        store.write_text(text)
        reopened = LintCache(tmp_path, sig)
        assert reopened.get("k") is None


class TestParallelRunner:
    def test_jobs_equivalent_to_serial(self, tmp_path):
        serial = run_lint([PROGRAM], use_cache=False, jobs=1)
        parallel = run_lint([PROGRAM], use_cache=False, jobs=2)
        assert parallel.jobs == 2
        assert parallel.findings == serial.findings
        assert parallel.files == serial.files

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            run_lint([PROGRAM], use_cache=False, jobs=-1)


class TestChangedScoping:
    @pytest.fixture
    def git_tree(self, tmp_path, monkeypatch):
        root = write_tree(
            tmp_path / "repo",
            {"a.py": DIRTY, "b.py": CLEAN},
        )
        monkeypatch.chdir(root)
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-q", "-m", "seed"],
            check=True,
        )
        return root

    def test_only_touched_files_reported(self, git_tree):
        (git_tree / "b.py").write_text(DIRTY)
        run = run_lint([git_tree], use_cache=False, changed_base="HEAD")
        # a.py has a finding too, but it is unchanged since HEAD.
        assert sorted(Path(f.path).name for f in run.findings) == ["b.py"]
        # Analysis still covered the whole tree.
        assert run.files == 2

    def test_untracked_files_count_as_changed(self, git_tree):
        write_tree(git_tree, {"new.py": DIRTY})
        run = run_lint([git_tree], use_cache=False, changed_base="HEAD")
        assert sorted(Path(f.path).name for f in run.findings) == ["new.py"]

    def test_clean_diff_reports_nothing(self, git_tree):
        run = run_lint([git_tree], use_cache=False, changed_base="HEAD")
        assert run.findings == []

    def test_outside_git_raises_value_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(ValueError, match="git checkout"):
            changed_files("HEAD")
