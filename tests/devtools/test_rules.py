"""Per-rule positive/negative fixture tests for the reprolint rule set."""

from pathlib import Path

import pytest

from repro.devtools.reprolint import (
    all_rule_ids,
    get_rules,
    lint_paths,
    lint_source,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (positive fixture, expected minimum findings, negative fixture)
CASES = {
    "RL001": ("rl001_bad.py", 5, "rl001_good.py"),
    "RL002": ("rl002_bad.py", 3, "rl002_good.py"),
    "RL003": ("rl003_bad.py", 3, "rl003_good.py"),
    "RL004": ("rl004_bad.py", 1, "rl004_good.py"),
    "RL005": ("sensing/rl005_bad.py", 1, "sensing/rl005_good.py"),
    "RL006": ("rl006_bad.py", 2, "rl006_good.py"),
    "RL007": ("rl007_bad.py", 2, "rl007_good.py"),
}


def rule_findings(path, rule_id):
    return [f for f in lint_paths([path]) if f.rule_id == rule_id]


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        expected = [f"RL00{i}" for i in range(1, 8)]
        expected += [f"RL10{i}" for i in range(6)]
        assert all_rule_ids() == expected

    def test_select_and_ignore(self):
        assert [r.rule_id for r in get_rules(select=["rl001"])] == ["RL001"]
        assert "RL002" not in [
            r.rule_id for r in get_rules(ignore=["RL002"])
        ]
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(select=["RL999"])

    def test_rules_carry_metadata(self):
        for rule in get_rules():
            assert rule.title
            assert rule.rationale


@pytest.mark.parametrize("rule_id", sorted(CASES))
class TestFixtures:
    def test_positive_fixture_fires(self, rule_id):
        bad, minimum, _ = CASES[rule_id]
        found = rule_findings(FIXTURES / bad, rule_id)
        assert len(found) >= minimum, [f.format() for f in found]
        for f in found:
            assert f.line > 0
            assert f.message

    def test_negative_fixture_clean(self, rule_id):
        _, _, good = CASES[rule_id]
        found = rule_findings(FIXTURES / good, rule_id)
        assert found == [], [f.format() for f in found]


class TestRuleDetails:
    def test_rl001_flags_legacy_import(self):
        found = rule_findings(FIXTURES / "rl001_bad.py", "RL001")
        assert any("import" in f.message for f in found)

    def test_rl004_inconsistent_all(self):
        found = rule_findings(FIXTURES / "rl004_inconsistent.py", "RL004")
        assert len(found) == 1
        assert "ghost_function" in found[0].message

    def test_rl005_only_in_hot_paths(self):
        assert rule_findings(FIXTURES / "rl005_cold_path.py", "RL005") == []

    def test_rl000_on_syntax_error(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        found = lint_paths([broken])
        assert [f.rule_id for f in found] == ["RL000"]

    def test_lint_source_direct(self):
        findings = lint_source(
            "import numpy as np\nx = np.random.rand(4)\n",
            Path("inline.py"),
            get_rules(select=["RL001"]),
        )
        assert [f.rule_id for f in findings] == ["RL001"]
        assert findings[0].line == 2

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths([Path("does/not/exist")])


class TestTolerantLoading:
    """Satellite: odd encodings load; undecodable files become RL000."""

    def test_utf8_bom_is_stripped(self, tmp_path):
        src = 'import numpy as np\nx = np.random.rand(3)\n__all__ = ["x"]\n'
        path = tmp_path / "bom.py"
        path.write_bytes(b"\xef\xbb\xbf" + src.encode("utf-8"))
        found = lint_paths([path])
        # The BOM neither crashes the parse nor shifts the findings.
        assert [f.rule_id for f in found] == ["RL001"]
        assert found[0].line == 2

    def test_coding_declaration_is_honoured(self, tmp_path):
        src = (
            '# -*- coding: latin-1 -*-\n'
            'LABEL = "caf\xe9"\n'
            '__all__ = ["LABEL"]\n'
        )
        path = tmp_path / "latin.py"
        path.write_bytes(src.encode("latin-1"))
        assert lint_paths([path]) == []

    def test_undecodable_bytes_become_rl000(self, tmp_path):
        path = tmp_path / "binary.py"
        path.write_bytes(b"x = '\xff\xfe\x00'\n")
        found = lint_paths([path])
        assert [f.rule_id for f in found] == ["RL000"]
        assert found[0].line == 1
        assert "cannot be decoded" in found[0].message

    def test_unknown_codec_becomes_rl000(self, tmp_path):
        path = tmp_path / "bogus.py"
        path.write_bytes(b"# -*- coding: not-a-codec -*-\nx = 1\n")
        found = lint_paths([path])
        assert [f.rule_id for f in found] == ["RL000"]
