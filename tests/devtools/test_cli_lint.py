"""The `repro lint` subcommand: exit codes, formats, and the self-lint gate."""

import json
from pathlib import Path

import repro
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC_TREE = Path(repro.__file__).resolve().parent


class TestExitCodes:
    def test_strict_nonzero_on_findings(self):
        assert main(["lint", str(FIXTURES / "rl001_bad.py"), "--strict"]) == 1

    def test_non_strict_reports_but_exits_zero(self):
        assert main(["lint", str(FIXTURES / "rl001_bad.py")]) == 0

    def test_clean_file_exits_zero_even_strict(self):
        assert main(["lint", str(FIXTURES / "rl001_good.py"), "--strict"]) == 0

    def test_every_positive_fixture_fails_strict(self):
        positives = [
            "rl001_bad.py",
            "rl002_bad.py",
            "rl003_bad.py",
            "rl004_bad.py",
            "sensing/rl005_bad.py",
            "rl006_bad.py",
            "rl007_bad.py",
        ]
        for name in positives:
            assert main(["lint", str(FIXTURES / name), "--strict"]) == 1, name


class TestOutput:
    def test_json_format(self, capsys):
        main(["lint", str(FIXTURES / "rl003_bad.py"), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["count"] >= 3
        assert set(doc["by_rule"]) == {"RL003"}

    def test_text_format_default(self, capsys):
        main(["lint", str(FIXTURES / "rl003_bad.py")])
        out = capsys.readouterr().out
        assert "RL003" in out
        assert "finding(s)" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("RL001", "RL007", "RL100", "RL104"):
            assert rid in out

    def test_select_restricts_rules(self, capsys):
        main(
            [
                "lint",
                str(FIXTURES / "rl001_bad.py"),
                "--format",
                "json",
                "--select",
                "RL003",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 0


class TestSarifAndOutput:
    def test_sarif_format(self, capsys):
        main(
            [
                "lint", str(FIXTURES / "rl003_bad.py"),
                "--format", "sarif", "--no-cache",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert results and all(r["ruleId"] == "RL003" for r in results)

    def test_output_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "reports" / "lint.sarif"
        code = main(
            [
                "lint", str(FIXTURES / "rl003_bad.py"),
                "--format", "sarif", "--output", str(out), "--no-cache",
            ]
        )
        assert code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"]


class TestRunnerFlags:
    def test_jobs_output_matches_serial(self, capsys):
        target = str(FIXTURES / "program")
        main(["lint", target, "--format", "json", "--no-cache"])
        serial = capsys.readouterr().out
        main(
            ["lint", target, "--format", "json", "--no-cache",
             "--jobs", "2"]
        )
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_cache_counters_on_summary_line(self, tmp_path, capsys):
        target = str(FIXTURES / "rl001_bad.py")
        cache = str(tmp_path / "cache")
        main(["lint", target, "--cache-dir", cache])
        capsys.readouterr()
        main(["lint", target, "--cache-dir", cache])
        err = capsys.readouterr().err
        assert "cache 1 hit(s) / 0 miss(es)" in err

    def test_changed_outside_git_exits_cleanly(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "x.py").write_text("VALUE = 1\n")
        code = main(
            ["lint", str(tmp_path / "x.py"), "--changed", "--no-cache"]
        )
        assert code == 2
        assert "git checkout" in capsys.readouterr().err


class TestSelfLint:
    def test_repo_source_tree_is_clean(self, capsys):
        """`repro lint src/ --strict` gates the repo itself (meta-test)."""
        code = main(["lint", str(SRC_TREE), "--strict"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "no findings" in out
