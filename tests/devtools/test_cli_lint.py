"""The `repro lint` subcommand: exit codes, formats, and the self-lint gate."""

import json
from pathlib import Path

import repro
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
SRC_TREE = Path(repro.__file__).resolve().parent


class TestExitCodes:
    def test_strict_nonzero_on_findings(self):
        assert main(["lint", str(FIXTURES / "rl001_bad.py"), "--strict"]) == 1

    def test_non_strict_reports_but_exits_zero(self):
        assert main(["lint", str(FIXTURES / "rl001_bad.py")]) == 0

    def test_clean_file_exits_zero_even_strict(self):
        assert main(["lint", str(FIXTURES / "rl001_good.py"), "--strict"]) == 0

    def test_every_positive_fixture_fails_strict(self):
        positives = [
            "rl001_bad.py",
            "rl002_bad.py",
            "rl003_bad.py",
            "rl004_bad.py",
            "sensing/rl005_bad.py",
            "rl006_bad.py",
            "rl007_bad.py",
        ]
        for name in positives:
            assert main(["lint", str(FIXTURES / name), "--strict"]) == 1, name


class TestOutput:
    def test_json_format(self, capsys):
        main(["lint", str(FIXTURES / "rl003_bad.py"), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["count"] >= 3
        assert set(doc["by_rule"]) == {"RL003"}

    def test_text_format_default(self, capsys):
        main(["lint", str(FIXTURES / "rl003_bad.py")])
        out = capsys.readouterr().out
        assert "RL003" in out
        assert "finding(s)" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in ("RL001", "RL007"):
            assert rid in out

    def test_select_restricts_rules(self, capsys):
        main(
            [
                "lint",
                str(FIXTURES / "rl001_bad.py"),
                "--format",
                "json",
                "--select",
                "RL003",
            ]
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 0


class TestSelfLint:
    def test_repo_source_tree_is_clean(self, capsys):
        """`repro lint src/ --strict` gates the repo itself (meta-test)."""
        code = main(["lint", str(SRC_TREE), "--strict"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "no findings" in out
