"""Suppression-comment syntax: per-line, per-file, lists, and `all`."""

from pathlib import Path

from repro.devtools.reprolint import get_rules, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"


def _lint(source, select=("RL001",)):
    return lint_source(source, Path("inline.py"), get_rules(select=select))


class TestLineSuppression:
    def test_fixture_suppresses_only_commented_line(self):
        findings = [
            f
            for f in lint_paths([FIXTURES / "suppress_line.py"])
            if f.rule_id == "RL001"
        ]
        # `still_flagged` keeps its finding; `legacy_draw` is suppressed.
        assert len(findings) == 1
        assert findings[0].line > 10

    def test_rule_list(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RL002,RL001\n"
        )
        assert _lint(src) == []

    def test_all_keyword(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=all\n"
        )
        assert _lint(src) == []

    def test_other_rule_not_suppressed(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RL005\n"
        )
        assert [f.rule_id for f in _lint(src)] == ["RL001"]

    def test_case_insensitive_ids(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=rl001\n"
        )
        assert _lint(src) == []


class TestFileSuppression:
    def test_fixture_file_wide(self):
        findings = lint_paths([FIXTURES / "suppress_file.py"])
        assert [f for f in findings if f.rule_id == "RL001"] == []

    def test_disable_file_from_any_line(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "# reprolint: disable-file=RL001 -- justification here\n"
            "y = np.random.rand(3)\n"
        )
        assert _lint(src, select=["RL001"]) == []

    def test_unrelated_comment_not_a_suppression(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # tolerate reprolint findings\n"
        )
        assert [f.rule_id for f in _lint(src, select=["RL001"])] == ["RL001"]
