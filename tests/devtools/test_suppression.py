"""Suppression-comment syntax: per-line, per-file, lists, and `all`."""

from pathlib import Path

from repro.devtools.reprolint import (
    get_rules,
    lint_paths,
    lint_source,
    run_lint,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _lint(source, select=("RL001",)):
    return lint_source(source, Path("inline.py"), get_rules(select=select))


class TestLineSuppression:
    def test_fixture_suppresses_only_commented_line(self):
        findings = [
            f
            for f in lint_paths([FIXTURES / "suppress_line.py"])
            if f.rule_id == "RL001"
        ]
        # `still_flagged` keeps its finding; `legacy_draw` is suppressed.
        assert len(findings) == 1
        assert findings[0].line > 10

    def test_rule_list(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RL002,RL001\n"
        )
        assert _lint(src) == []

    def test_all_keyword(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=all\n"
        )
        assert _lint(src) == []

    def test_other_rule_not_suppressed(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RL005\n"
        )
        assert [f.rule_id for f in _lint(src)] == ["RL001"]

    def test_case_insensitive_ids(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=rl001\n"
        )
        assert _lint(src) == []


class TestFileSuppression:
    def test_fixture_file_wide(self):
        findings = lint_paths([FIXTURES / "suppress_file.py"])
        assert [f for f in findings if f.rule_id == "RL001"] == []

    def test_disable_file_from_any_line(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "# reprolint: disable-file=RL001 -- justification here\n"
            "y = np.random.rand(3)\n"
        )
        assert _lint(src, select=["RL001"]) == []

    def test_unrelated_comment_not_a_suppression(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # tolerate reprolint findings\n"
        )
        assert [f.rule_id for f in _lint(src, select=["RL001"])] == ["RL001"]

    def test_spaced_mixed_case_rule_list(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable= rl003 , RL001,rl002\n"
        )
        assert _lint(src, select=["RL001", "RL002", "RL003"]) == []

    def test_list_suppresses_only_listed_rules(self):
        src = (
            "import numpy as np\n"
            "x = np.random.rand(3)  # reprolint: disable=RL002,RL003\n"
        )
        assert [f.rule_id for f in _lint(src)] == ["RL001"]


class TestSuppressionVsSelection:
    """Satellite: disable-file interacts sanely with --select/--ignore."""

    SRC = (
        "import numpy as np\n"
        "# reprolint: disable-file=RL001\n"
        "x = np.random.rand(3)\n"
    )

    def test_disable_file_beats_select(self):
        assert _lint(self.SRC, select=["RL001"]) == []

    def test_select_still_surfaces_other_rules(self):
        found = _lint(self.SRC, select=["RL001", "RL004"])
        assert [f.rule_id for f in found] == ["RL004"]

    def test_ignore_composes_with_disable_file(self):
        rules = get_rules(ignore=["RL004"])
        found = lint_source(self.SRC, Path("inline.py"), rules)
        assert found == []


class TestProgramRuleSuppression:
    """Satellite: RL1xx findings honour the same comment syntax."""

    def _tree(self, tmp_path, consumer):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text('"""pkg."""\n')
        (pkg / "owner.py").write_text(
            '"""Owns the cache."""\n\nCACHE = {}\n__all__ = ["CACHE"]\n'
        )
        (pkg / "consumer.py").write_text(consumer)
        return pkg

    def test_file_level_disable_covers_program_rule(self, tmp_path):
        pkg = self._tree(
            tmp_path,
            '"""Consumer."""\n'
            "# reprolint: disable-file=RL103 -- known migration debt\n"
            "from pkg import owner\n\n\n"
            "def touch():\n"
            '    """Mutate across the boundary (suppressed file-wide)."""\n'
            '    owner.CACHE["k"] = 1\n',
        )
        run = run_lint([pkg], select=["RL103"], use_cache=False)
        assert run.findings == []

    def test_unsuppressed_program_finding_still_fires(self, tmp_path):
        pkg = self._tree(
            tmp_path,
            '"""Consumer."""\n'
            "from pkg import owner\n\n\n"
            "def touch():\n"
            '    """Mutate across the boundary."""\n'
            '    owner.CACHE["k"] = 1\n',
        )
        run = run_lint([pkg], select=["RL103"], use_cache=False)
        assert [f.rule_id for f in run.findings] == ["RL103"]
