"""Text, JSON, and SARIF reporter output formats."""

import json
from pathlib import Path

from repro.devtools.reprolint import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    Finding,
    lint_paths,
    render_json,
    render_sarif,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures"

SAMPLE = [
    Finding(path="a.py", line=3, col=4, rule_id="RL001", message="legacy rng"),
    Finding(path="a.py", line=9, col=0, rule_id="RL003", message="mutable"),
    Finding(path="b.py", line=1, col=0, rule_id="RL001", message="legacy rng"),
]


class TestTextReporter:
    def test_empty(self):
        assert render_text([]) == "reprolint: no findings"

    def test_lines_and_summary(self):
        out = render_text(SAMPLE)
        lines = out.splitlines()
        assert lines[0] == "a.py:3:4: RL001 legacy rng"
        assert "3 finding(s) in 2 file(s)" in lines[-1]
        assert "RL001×2" in lines[-1] and "RL003×1" in lines[-1]


class TestJsonReporter:
    def test_schema(self):
        doc = json.loads(render_json(SAMPLE))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["count"] == 3
        assert doc["by_rule"] == {"RL001": 2, "RL003": 1}
        assert doc["findings"][0] == {
            "path": "a.py",
            "line": 3,
            "col": 4,
            "rule": "RL001",
            "message": "legacy rng",
        }

    def test_empty_document(self):
        doc = json.loads(render_json([]))
        assert doc["count"] == 0
        assert doc["findings"] == []
        assert doc["by_rule"] == {}

    def test_round_trip_on_fixture(self):
        findings = lint_paths([FIXTURES / "rl003_bad.py"])
        doc = json.loads(render_json(findings))
        assert doc["count"] == len(findings) >= 3
        assert all(f["rule"] == "RL003" for f in doc["findings"])


class TestDeterminism:
    """Satellite: reporters are byte-stable regardless of input order."""

    def test_json_invariant_under_input_order(self):
        assert render_json(list(reversed(SAMPLE))) == render_json(SAMPLE)

    def test_sarif_invariant_under_input_order(self):
        assert render_sarif(list(reversed(SAMPLE))) == render_sarif(SAMPLE)

    def test_text_invariant_under_input_order(self):
        assert render_text(list(reversed(SAMPLE))) == render_text(SAMPLE)

    def test_json_by_rule_keys_sorted(self):
        shuffled = [SAMPLE[1], SAMPLE[2], SAMPLE[0]]
        doc = json.loads(render_json(shuffled))
        assert list(doc["by_rule"]) == sorted(doc["by_rule"])

    def test_json_findings_sorted(self):
        doc = json.loads(render_json(list(reversed(SAMPLE))))
        order = [
            (f["path"], f["line"], f["col"], f["rule"])
            for f in doc["findings"]
        ]
        assert order == sorted(order)


class TestSarifReporter:
    def test_schema_and_tool(self):
        doc = json.loads(render_sarif(SAMPLE))
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "reprolint"

    def test_rules_and_results_align(self):
        doc = json.loads(render_sarif(SAMPLE))
        (run,) = doc["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["RL001", "RL003"]
        assert len(run["results"]) == 3
        for result in run["results"]:
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]
            assert result["level"] == "error"

    def test_locations_are_one_based(self):
        doc = json.loads(render_sarif(SAMPLE))
        first = doc["runs"][0]["results"][0]
        region = first["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 5  # col 4, SARIF is 1-based

    def test_rl000_gets_a_synthetic_descriptor(self):
        findings = [
            Finding(
                path="bad.py",
                line=1,
                col=0,
                rule_id="RL000",
                message="file cannot be decoded: boom",
            )
        ]
        doc = json.loads(render_sarif(findings))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["RL000"]
        assert doc["runs"][0]["results"][0]["ruleIndex"] == 0

    def test_empty_document(self):
        doc = json.loads(render_sarif([]))
        (run,) = doc["runs"]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"] == []
