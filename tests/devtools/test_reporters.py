"""Text and JSON reporter output formats."""

import json
from pathlib import Path

from repro.devtools.reprolint import (
    JSON_SCHEMA_VERSION,
    Finding,
    lint_paths,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures"

SAMPLE = [
    Finding(path="a.py", line=3, col=4, rule_id="RL001", message="legacy rng"),
    Finding(path="a.py", line=9, col=0, rule_id="RL003", message="mutable"),
    Finding(path="b.py", line=1, col=0, rule_id="RL001", message="legacy rng"),
]


class TestTextReporter:
    def test_empty(self):
        assert render_text([]) == "reprolint: no findings"

    def test_lines_and_summary(self):
        out = render_text(SAMPLE)
        lines = out.splitlines()
        assert lines[0] == "a.py:3:4: RL001 legacy rng"
        assert "3 finding(s) in 2 file(s)" in lines[-1]
        assert "RL001×2" in lines[-1] and "RL003×1" in lines[-1]


class TestJsonReporter:
    def test_schema(self):
        doc = json.loads(render_json(SAMPLE))
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert doc["count"] == 3
        assert doc["by_rule"] == {"RL001": 2, "RL003": 1}
        assert doc["findings"][0] == {
            "path": "a.py",
            "line": 3,
            "col": 4,
            "rule": "RL001",
            "message": "legacy rng",
        }

    def test_empty_document(self):
        doc = json.loads(render_json([]))
        assert doc["count"] == 0
        assert doc["findings"] == []
        assert doc["by_rule"] == {}

    def test_round_trip_on_fixture(self):
        findings = lint_paths([FIXTURES / "rl003_bad.py"])
        doc = json.loads(render_json(findings))
        assert doc["count"] == len(findings) >= 3
        assert all(f["rule"] == "RL003" for f in doc["findings"])
