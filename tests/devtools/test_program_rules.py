"""Fixture-backed positive/negative tests for the RL1xx program rules.

The fixture project under ``fixtures/program/proj`` is a two-layer
miniature of the real tree: ``proj.low`` owns state, ``proj.high``
consumes it, ``proj.contracts`` plays the role of
``repro.runtime.contracts``, ``proj.cyc_a``/``proj.cyc_b`` form the
one deliberate import cycle, and ``proj.backend`` plus the
``seam_good``/``seam_bad`` pair exercise the RL105 backend-seam
discipline.
"""

from pathlib import Path

import pytest

from repro.devtools.reprolint import LayerConfig, REPRO_LAYERS, run_lint

PROGRAM = Path(__file__).parent / "fixtures" / "program"
SRC_REPRO = Path(__file__).parents[2] / "src" / "repro"

#: The fixture project's declared layering: ``proj.low`` (plus the
#: contracts module and the package root) below ``proj.high`` (plus the
#: cycle pair, which sit in one layer so RL101 fires without RL100).
PROGRAM_LAYERS = LayerConfig(
    [
        ("low", ["proj.low", "proj.contracts", "proj"]),
        ("high", ["proj.high", "proj.cyc_a", "proj.cyc_b"]),
    ]
)


def program_findings(rule_id):
    run = run_lint(
        [PROGRAM],
        select=[rule_id],
        use_cache=False,
        layers=PROGRAM_LAYERS,
    )
    assert all(f.rule_id == rule_id for f in run.findings)
    return run.findings


def by_file(findings):
    out = {}
    for f in findings:
        out.setdefault(Path(f.path).name, []).append(f)
    return out


class TestImportLayering:
    def test_rl100_flags_upward_imports_only(self):
        files = by_file(program_findings("RL100"))
        assert set(files) == {"bad_layer.py"}
        lines = sorted(f.line for f in files["bad_layer.py"])
        assert len(lines) == 2  # the from-import and the aliased import
        for f in files["bad_layer.py"]:
            assert "proj.high.app" in f.message
            assert "'low'" in f.message and "'high'" in f.message

    def test_rl100_clean_when_module_unassigned(self):
        bare = LayerConfig([("only", ["proj.high"])])
        run = run_lint(
            [PROGRAM], select=["RL100"], use_cache=False, layers=bare
        )
        # bad_layer.py matches no layer, so its imports are exempt.
        assert run.findings == []


class TestImportCycles:
    def test_rl101_reports_the_cycle_once(self):
        findings = program_findings("RL101")
        assert len(findings) == 1
        f = findings[0]
        assert Path(f.path).name == "cyc_a.py"
        assert "proj.cyc_a -> proj.cyc_b -> proj.cyc_a" in f.message

    def test_rl101_ignores_lazy_and_self_imports(self):
        # Everything else in the fixture tree (including the package
        # __init__ re-export idiom) must stay clean.
        files = by_file(program_findings("RL101"))
        assert set(files) == {"cyc_a.py"}


class TestExecutorPayloads:
    def test_rl102_flags_every_unpicklable_payload(self):
        files = by_file(program_findings("RL102"))
        assert set(files) == {"bad_payload.py"}
        details = [f.message for f in files["bad_payload.py"]]
        assert len(details) == 4
        joined = "\n".join(details)
        assert "lambda" in joined
        assert "locally-defined function 'helper'" in joined
        assert "instance of a locally-defined class 'worker'" in joined
        assert all("pickled" in d for d in details)

    def test_rl102_negative_module_level_callables(self):
        assert "good_payload.py" not in by_file(program_findings("RL102"))


class TestSharedState:
    def test_rl103_flags_cross_module_mutations(self):
        files = by_file(program_findings("RL103"))
        assert set(files) == {"bad_state.py"}
        messages = [f.message for f in files["bad_state.py"]]
        assert len(messages) == 4  # subscript, append, clear, del
        assert all("proj.low.state" in m for m in messages)
        assert any("proj.low.state.CACHE" in m for m in messages)
        assert any("proj.low.state.HISTORY" in m for m in messages)

    def test_rl103_negative_accessors_and_owner(self):
        files = by_file(program_findings("RL103"))
        # The owner's accessors and the accessor-using consumer are clean.
        assert "state.py" not in files
        assert "good_state.py" not in files

    def test_rl103_line_suppression_applies(self):
        assert "suppressed_state.py" not in by_file(
            program_findings("RL103")
        )


class TestContractDocs:
    def test_rl104_flags_undocumented_shape_contracts(self):
        files = by_file(program_findings("RL104"))
        assert set(files) == {"bad_contract.py"}
        messages = sorted(f.message for f in files["bad_contract.py"])
        assert len(messages) == 2
        assert any(
            "window_mean" in m and "no docstring" in m for m in messages
        )
        assert any(
            "window_energy" in m and "documents no shape" in m
            for m in messages
        )

    def test_rl104_negative_documented_private_or_uncalled(self):
        assert "good_contract.py" not in by_file(program_findings("RL104"))


class TestBackendSeam:
    def test_rl105_flags_direct_array_imports(self):
        files = by_file(program_findings("RL105"))
        assert set(files) == {"seam_bad.py"}
        messages = [f.message for f in files["seam_bad.py"]]
        assert len(messages) == 2  # numpy and scipy.linalg
        joined = "\n".join(messages)
        assert "proj.seam_bad" in joined
        assert "numpy" in joined and "scipy.linalg" in joined
        assert all("repro.backend" in m for m in messages)

    def test_rl105_negative_seam_via_backend(self):
        # A seam module that routes through the backend package is clean.
        assert "seam_good.py" not in by_file(program_findings("RL105"))

    def test_rl105_backend_package_exempt(self):
        # The backend package itself may (must) import the libraries.
        files = by_file(program_findings("RL105"))
        assert "impl.py" not in files
        assert "__init__.py" not in files

    def test_rl105_unmarked_modules_exempt(self):
        # Modules without the marker may import numpy freely — the rule
        # audits the declared seam, not the whole tree.
        files = by_file(program_findings("RL105"))
        assert set(files) == {"seam_bad.py"}


class TestLayerConfig:
    def test_longest_prefix_wins(self):
        assert PROGRAM_LAYERS.layer_of("proj.low.util") == 0
        assert PROGRAM_LAYERS.layer_of("proj.high.app") == 1
        assert PROGRAM_LAYERS.layer_of("proj") == 0
        assert PROGRAM_LAYERS.layer_of("proj.cyc_a") == 1
        assert PROGRAM_LAYERS.layer_of("unrelated.module") is None

    def test_duplicate_prefix_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            LayerConfig([("a", ["p.x"]), ("b", ["p.x"])])

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            LayerConfig([])


class TestRealTreeCoverage:
    """Meta-test: REPRO_LAYERS must name the real tree, package by package.

    A new top-level package cannot dodge RL100 by omission: it must be
    added to :data:`REPRO_LAYERS` (and thereby to a layer) explicitly,
    not swept up by the ``repro`` catch-all prefix.
    """

    def _top_level_modules(self):
        mods = []
        for entry in sorted(SRC_REPRO.iterdir()):
            if entry.is_dir() and (entry / "__init__.py").exists():
                mods.append(f"repro.{entry.name}")
            elif entry.suffix == ".py" and entry.name != "__init__.py":
                mods.append(f"repro.{entry.stem}")
        return mods

    def test_every_package_named_explicitly(self):
        prefixes = set(REPRO_LAYERS.prefixes)
        missing = [
            m for m in self._top_level_modules() if m not in prefixes
        ]
        assert missing == [], (
            f"add {missing} to REPRO_LAYERS in reprolint/graph.py: every "
            "package under src/repro must be assigned a layer explicitly"
        )

    def test_no_module_unassigned(self):
        assert REPRO_LAYERS.unassigned(
            self._top_level_modules() + ["repro"]
        ) == []
