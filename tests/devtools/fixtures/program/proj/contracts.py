"""Runtime shape contracts for the fixture project."""


def check_shape(arr, shape, name="arr"):
    """Return ``arr`` unchanged after checking its shape matches."""
    return arr
