"""RL103 positive: mutates another module's state directly."""

from proj.low import state


def poison(key, value):
    """Write into the bottom layer's cache without its accessor."""
    state.CACHE[key] = value
    state.HISTORY.append(key)


def wipe():
    """Clear someone else's cache."""
    state.CACHE.clear()
    del state.CACHE["stale"]
