"""RL100 negative: the top layer may import downward freely."""

from proj.low import util


def serve():
    """Return a scalar derived from the bottom layer."""
    return util.double(21)
