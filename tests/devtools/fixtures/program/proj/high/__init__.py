"""Top layer of the fixture project."""
