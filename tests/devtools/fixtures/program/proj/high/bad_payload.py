"""RL102 positive: unpicklable payloads reach executor boundaries."""


def run_lambda(pool, tasks):
    """Submit a lambda (cannot pickle)."""
    square = lambda x: x * x  # noqa: E731
    return [pool.submit(square, t) for t in tasks]


def run_inline_lambda(executor, tasks):
    """Pass a lambda expression straight to run_tasks."""
    return executor.run_tasks(tasks, lambda t: t)


def run_local_def(executor, tasks):
    """Ship a function defined inside this function."""

    def helper(t):
        return t

    return executor.run_tasks(tasks, helper)


def run_local_instance(pool, items):
    """Ship an instance of a class defined inside this function."""

    class Worker:
        def __call__(self, x):
            return x

    worker = Worker()
    return list(pool.map(worker, items))
