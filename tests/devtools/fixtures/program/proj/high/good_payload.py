"""RL102 negative: module-level callables pickle fine."""


def task_fn(t):
    """A module-level task function (picklable by reference)."""
    return t


class TaskRunner:
    """A module-level callable class (picklable by reference)."""

    def __call__(self, t):
        return t


def run(executor, tasks):
    """Submit only module-level callables."""
    runner = TaskRunner()
    executor.run_tasks(tasks, task_fn)
    return list(map(task_fn, tasks)), runner
