"""RL104 negative: documented shapes, private helpers, unrelated names."""

from proj.contracts import check_shape


def window_energy(block):
    """Sum of squares over a 1-D window of shape ``(n,)``."""
    arr = check_shape(block, (None,), name="block")
    return sum(x * x for x in arr)


def _window_mean(block):
    arr = check_shape(block, (None,), name="block")
    return sum(arr) / len(arr)


def unrelated(block):
    """A public function that enforces nothing."""
    return list(block)
