"""RL103 negative by suppression: the mutation carries a justification."""

from proj.low import state


def migrate(old_key, new_key):
    """One-off migration helper, suppression justified inline."""
    value = state.CACHE.pop(old_key)  # reprolint: disable=RL103 -- migration shim
    state.CACHE[new_key] = value  # reprolint: disable=RL103 -- migration shim
