"""RL104 positive: shape enforced at runtime, never documented."""

from proj import contracts
from proj.contracts import check_shape


def window_energy(block):
    """Sum the squared samples of one window."""
    arr = check_shape(block, (None,), name="block")
    return sum(x * x for x in arr)


def window_mean(block):
    arr = contracts.check_shape(block, (None,), name="block")
    return sum(arr) / len(arr)
