"""RL103 negative: uses the owner's accessors."""

from proj.low.state import forget, remember


def record(key, value):
    """Route the write through the owning module's accessor."""
    remember(key, value)


def reset():
    """Route the clear through the owning module's accessor."""
    forget()
