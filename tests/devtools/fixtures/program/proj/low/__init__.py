"""Bottom layer of the fixture project."""
