"""A clean bottom-layer module with no upward dependencies."""


def double(x):
    """Return twice the input scalar."""
    return 2 * x
