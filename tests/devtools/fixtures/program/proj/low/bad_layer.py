"""RL100 positive: a bottom-layer module importing the top layer."""

from proj.high import app
import proj.high.app as app_again


def use():
    """Call up the stack (the import is the finding, not the call)."""
    return app.serve() + app_again.serve()
