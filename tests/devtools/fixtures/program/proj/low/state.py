"""Owns module-level mutable state behind an accessor (RL103 owner)."""

CACHE = {}
HISTORY = []


def remember(key, value):
    """Sanctioned accessor: record ``value`` under ``key``."""
    CACHE[key] = value
    HISTORY.append(key)


def forget():
    """Sanctioned accessor: drop everything."""
    CACHE.clear()
    HISTORY.clear()
