"""A seam-declared module that keeps array work behind the backend."""

from proj.backend.impl import host_namespace
from proj.low.util import double

__backend_seam__ = True


def seam_norm(values):
    """Euclidean norm computed through the backend namespace."""
    xp = host_namespace()
    return float(xp.linalg.norm(xp.asarray(values))) + double(0)
