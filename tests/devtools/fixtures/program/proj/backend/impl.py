"""Backend implementation: the one seam module allowed to import numpy."""

import numpy as np

__backend_seam__ = True


def host_namespace():
    """The host array namespace every other seam module goes through."""
    return np
