"""The fixture project's backend package (RL105's allowed home)."""

from proj.backend.impl import host_namespace

__all__ = ["host_namespace"]
