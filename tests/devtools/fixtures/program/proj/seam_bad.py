"""A seam-declared module that still imports array libraries directly."""

import numpy as np
from scipy.linalg import cho_factor

__backend_seam__ = True


def leaky_norm(values):
    """Euclidean norm computed outside the backend seam."""
    factor = cho_factor(np.eye(2))
    del factor
    return float(np.linalg.norm(np.asarray(values)))
