"""RL101 positive, half one: imports its own importer at module level."""

from proj import cyc_b


def ping():
    """Bounce through the cycle."""
    return cyc_b.pong()
