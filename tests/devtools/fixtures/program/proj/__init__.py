"""Fixture project for the RL1xx whole-program rules."""
