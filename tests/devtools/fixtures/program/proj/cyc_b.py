"""RL101 positive, half two: completes the import cycle."""

from proj import cyc_a


def pong():
    """Bounce back through the cycle."""
    return cyc_a.ping.__name__
