"""RL005 negative fixture: astype outside the hot packages is fine."""

import numpy as np

__all__ = ["to_float"]


def to_float(codes):
    """Not in sensing/, recovery/ or coding/, so not flagged."""
    return np.asarray(codes).astype(float)
