"""RL004 negative fixture: consistent literal __all__."""

__all__ = ["exported"]

_PRIVATE = 3


def exported():
    """The declared public surface."""
    return _PRIVATE
