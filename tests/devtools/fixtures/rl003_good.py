"""RL003 negative fixture: None sentinel and immutable defaults."""

__all__ = ["collect"]


def collect(item, bucket=None, limit=10, label=""):
    """The conventional None-sentinel idiom."""
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket[:limit], label
