"""RL006 negative fixture: typed handlers that act on the error."""

__all__ = ["handled"]


def handled(fn, log):
    """Handle, record, or re-raise."""
    try:
        return fn()
    except ValueError as exc:
        log.append(str(exc))
        raise
