"""RL006 positive fixture: bare except and a swallowed handler."""

__all__ = ["risky", "swallow"]


def risky(fn):
    """Bare except."""
    try:
        return fn()
    except:
        return None


def swallow(fn):
    """Handler that silently drops the error."""
    try:
        return fn()
    except ValueError:
        pass
    return None
