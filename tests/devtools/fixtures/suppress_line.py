"""Suppression fixture: per-line disables with justifications."""

import numpy as np

__all__ = ["legacy_draw", "still_flagged"]


def legacy_draw(n):
    """The draw below is part of a seeded-vs-legacy comparison test."""
    a = np.random.rand(n)  # reprolint: disable=RL001 -- exercising the legacy path on purpose
    return a


def still_flagged(n):
    """No suppression here, so RL001 must still fire."""
    return np.random.rand(n)
