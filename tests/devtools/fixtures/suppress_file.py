"""Suppression fixture: file-wide disable.

# reprolint: disable-file=RL001 -- this whole module exercises legacy RNG paths
"""

# reprolint: disable-file=RL001 -- module exists to exercise legacy RNG paths

import numpy as np

__all__ = ["one", "two"]


def one(n):
    """Suppressed by the file-wide disable."""
    return np.random.rand(n)


def two(n):
    """Also suppressed."""
    return np.random.normal(size=n)
