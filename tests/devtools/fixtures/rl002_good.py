"""RL002 negative fixture: zero-guards and integer equality are fine."""

__all__ = ["guards"]


def guards(x, n):
    """Literal-zero guards and int compares are conventional."""
    a = x == 0.0
    b = x != 0.0
    c = n == 3
    return a or b or c
