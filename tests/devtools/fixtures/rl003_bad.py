"""RL003 positive fixture: mutable default arguments."""

__all__ = ["collect", "index", "tag"]


def collect(item, bucket=[]):
    """List default."""
    bucket.append(item)
    return bucket


def index(key, table={}):
    """Dict default."""
    return table.setdefault(key, len(table))


def tag(name, seen=set()):
    """set() call default."""
    seen.add(name)
    return seen
