"""RL007 negative fixture: shapes documented, helpers exempt."""

import numpy as np

__all__ = ["documented", "same_shape", "not_an_array"]


def documented(n: int) -> np.ndarray:
    """Zeros of shape ``(n,)``."""
    return np.zeros(n)


def same_shape(x) -> np.ndarray:
    """Doubles ``x``; same shape as the input."""
    return 2 * np.asarray(x)


def not_an_array(n: int) -> int:
    """No ndarray annotation, so no shape demanded."""
    return n


def _private(n: int) -> np.ndarray:
    return np.zeros(n)


def outer(n: int) -> int:
    """Nested helpers are not public API."""

    def inner(k: int) -> np.ndarray:
        return np.zeros(k)

    return inner(n).size
