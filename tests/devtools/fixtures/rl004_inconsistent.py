"""RL004 positive fixture: __all__ names something undefined."""

__all__ = ["real_function", "ghost_function"]


def real_function():
    """Defined and exported."""
    return 1
