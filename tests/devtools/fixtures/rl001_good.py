"""RL001 negative fixture: all randomness through explicit generators."""

import numpy as np

__all__ = ["draw"]


def draw(n, seed=0):
    """Seeded, generator-routed draws."""
    rng = np.random.default_rng(seed)
    legacy_but_seeded = np.random.RandomState(seed)
    return rng.standard_normal(n) + legacy_but_seeded.rand(n)
