"""RL001 positive fixture: legacy global-RNG usage."""

import numpy as np
from numpy.random import randn

__all__ = ["draw", "shuffle_in_place"]


def draw(n):
    """Unseeded module-level draws (both forms must be flagged)."""
    a = np.random.rand(n)
    b = np.random.normal(size=n)
    return a + b + randn(n)


def shuffle_in_place(items):
    """Global-state shuffle."""
    np.random.shuffle(items)
    np.random.seed(0)
