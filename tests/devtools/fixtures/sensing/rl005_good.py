"""RL005 negative fixture: hot-path astype with explicit copy=."""

import numpy as np

__all__ = ["to_float"]


def to_float(codes):
    """Explicit about the conversion cost."""
    return np.asarray(codes).astype(float, copy=False)
