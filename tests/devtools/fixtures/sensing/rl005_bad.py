"""RL005 positive fixture: hot-path astype without copy=."""

import numpy as np

__all__ = ["to_float"]


def to_float(codes):
    """Silent potential copy in a hot path."""
    return np.asarray(codes).astype(float)
