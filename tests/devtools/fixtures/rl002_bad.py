"""RL002 positive fixture: exact equality on computed floats."""

__all__ = ["close_enough"]


def close_enough(x, y):
    """Both operand orders and arithmetic results must be flagged."""
    a = x == 0.1
    b = 2.5 != y
    c = (x * 0.5 + 1.0) == y
    return a or b or c
