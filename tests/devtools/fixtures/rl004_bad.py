"""RL004 positive fixture: public module without __all__."""


def public_helper():
    """A public name that is exported implicitly."""
    return 1
