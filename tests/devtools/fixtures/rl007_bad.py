"""RL007 positive fixture: array returns with undocumented shape."""

import numpy as np

__all__ = ["no_doc", "vague_doc"]


def no_doc(n: int) -> np.ndarray:
    return np.zeros(n)


def vague_doc(n: int) -> np.ndarray:
    """Some zeros."""
    return np.zeros(n)
