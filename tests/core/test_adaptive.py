"""Tests of adaptive measurement allocation."""

import numpy as np
import pytest

from repro.core.adaptive import ActivityEstimator, AdaptiveFrontEnd, AdaptiveReceiver
from repro.core.config import FrontEndConfig
from repro.metrics.quality import snr_db
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.matrices import bernoulli_matrix


@pytest.fixture
def config():
    return FrontEndConfig(
        window_len=128,
        n_measurements=64,  # the physical bank size m_max
        solver=PdhgSettings(max_iter=700, tol=3e-4),
    )


class TestActivityEstimator:
    def test_flat_window_zero(self):
        est = ActivityEstimator()
        assert est.score(np.full(100, 42, dtype=np.int64)) == 0.0

    def test_busy_window_high(self):
        est = ActivityEstimator()
        codes = np.arange(100, dtype=np.int64) % 2 + 10
        assert est.score(codes) == 1.0

    def test_partial_activity(self):
        est = ActivityEstimator()
        codes = np.array([5, 5, 6, 6, 6], dtype=np.int64)
        assert est.score(codes) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivityEstimator().score(np.array([1], dtype=np.int64))


class TestPrefixProperty:
    def test_smaller_bank_is_sign_prefix(self):
        """The physical story — powering down channels — requires the
        m-channel Φ's sign pattern to be the row prefix of the bank's."""
        big = bernoulli_matrix(64, 128, seed=2015) * np.sqrt(64)
        small = bernoulli_matrix(16, 128, seed=2015) * np.sqrt(16)
        assert np.array_equal(np.sign(big[:16]), np.sign(small))


class TestAdaptiveFrontEnd:
    def test_m_scales_with_activity(self, config, codebook_7bit):
        fe = AdaptiveFrontEnd(config, codebook_7bit, m_min=16)
        assert fe.measurements_for_activity(0.0) == 16
        assert fe.measurements_for_activity(1.0) == 64
        mid = fe.measurements_for_activity(0.3)
        assert 16 < mid < 64

    def test_quiet_windows_get_fewer_measurements(self, config, codebook_7bit):
        fe = AdaptiveFrontEnd(config, codebook_7bit, m_min=16)
        quiet = np.full(128, 1024, dtype=np.int64)
        busy = (1024 + 150 * np.sin(np.arange(128))).astype(np.int64)
        p_quiet = fe.process_window(quiet)
        p_busy = fe.process_window(busy)
        assert p_quiet.m < p_busy.m

    def test_real_record_mixes_rates(self, config, codebook_7bit, record_100):
        fe = AdaptiveFrontEnd(config, codebook_7bit, m_min=16)
        packets = fe.process_record(record_100, max_windows=8)
        ms = {p.m for p in packets}
        assert all(16 <= m <= 64 for m in ms)

    def test_saves_bits_vs_fixed(self, config, codebook_7bit, record_100):
        from repro.core.frontend import HybridFrontEnd

        adaptive = AdaptiveFrontEnd(config, codebook_7bit, m_min=16)
        fixed = HybridFrontEnd(config, codebook_7bit)
        a_bits = sum(
            p.total_bits for p in adaptive.process_record(record_100, 6)
        )
        f_bits = sum(p.total_bits for p in fixed.process_record(record_100, 6))
        assert a_bits <= f_bits

    def test_validation(self, config, codebook_7bit):
        with pytest.raises(ValueError):
            AdaptiveFrontEnd(config, codebook_7bit, m_min=0)
        with pytest.raises(ValueError):
            AdaptiveFrontEnd(config, codebook_7bit, m_min=100)
        with pytest.raises(ValueError):
            AdaptiveFrontEnd(config, codebook_7bit, activity_knee=0.0)
        fe = AdaptiveFrontEnd(config, codebook_7bit)
        with pytest.raises(ValueError):
            fe.measurements_for_activity(1.5)
        with pytest.raises(ValueError):
            fe.process_window(np.zeros(64, dtype=np.int64))


class TestAdaptiveLink:
    def test_end_to_end_quality(self, config, codebook_7bit, record_100):
        fe = AdaptiveFrontEnd(config, codebook_7bit, m_min=24)
        rx = AdaptiveReceiver(config, codebook_7bit)
        snrs = []
        for packet, window in zip(
            fe.process_record(record_100, 3),
            record_100.windows(config.window_len),
        ):
            recon = rx.reconstruct(packet)
            ref = window.astype(float) - 1024
            snrs.append(snr_db(ref, recon.x_centered(1024)))
        assert min(snrs) > 10.0

    def test_receiver_caches_per_m(self, config, codebook_7bit, record_100):
        fe = AdaptiveFrontEnd(config, codebook_7bit, m_min=16)
        rx = AdaptiveReceiver(config, codebook_7bit)
        packets = fe.process_record(record_100, 4)
        for p in packets:
            rx.reconstruct(p)
        assert set(rx._receivers) == {p.m for p in packets}

    def test_oversized_m_rejected(self, config, codebook_7bit, record_100):
        from repro.core.frontend import HybridFrontEnd

        big_config = config.with_measurements(128)
        big_fe = HybridFrontEnd(big_config, codebook_7bit)
        window = next(record_100.windows(config.window_len))
        packet = big_fe.process_window(window)
        rx = AdaptiveReceiver(config, codebook_7bit)  # bank of 64
        with pytest.raises(ValueError):
            rx.reconstruct(packet)

    def test_matches_fixed_link_at_same_m(self, config, codebook_7bit, record_100):
        """A packet produced at a given m must decode identically through
        the adaptive receiver and a fixed receiver of that m."""
        from repro.core.frontend import HybridFrontEnd
        from repro.core.receiver import HybridReceiver

        window = next(record_100.windows(config.window_len))
        cfg_m = config.with_measurements(32)
        packet = HybridFrontEnd(cfg_m, codebook_7bit).process_window(window)
        fixed = HybridReceiver(cfg_m, codebook_7bit).reconstruct(packet)
        adaptive = AdaptiveReceiver(config, codebook_7bit).reconstruct(packet)
        assert np.allclose(fixed.x_codes, adaptive.x_codes)
