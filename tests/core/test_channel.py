"""Tests of the lossy-link simulation and the robust receiver."""

import numpy as np
import pytest

from repro.core.channel import LossyLink, RobustReceiver, payload_crc
from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd
from repro.metrics.quality import snr_db
from repro.recovery.pdhg import PdhgSettings


@pytest.fixture
def config():
    return FrontEndConfig(
        window_len=128,
        n_measurements=48,
        solver=PdhgSettings(max_iter=700, tol=3e-4),
    )


@pytest.fixture
def link_setup(config, codebook_7bit, record_100):
    frontend = HybridFrontEnd(config, codebook_7bit)
    windows = list(record_100.windows(128))[:3]
    packets = [frontend.process_window(w, i) for i, w in enumerate(windows)]
    return frontend, windows, packets


class TestLossyLink:
    def test_clean_channel_is_identity(self, link_setup):
        _, _, packets = link_setup
        link = LossyLink()
        out = link.transmit(packets[0])
        assert np.array_equal(out.measurement_codes, packets[0].measurement_codes)
        assert out.lowres_payload == packets[0].lowres_payload

    def test_erasure(self, link_setup):
        _, _, packets = link_setup
        link = LossyLink(packet_erasure_rate=0.999999, seed=1)
        assert link.transmit(packets[0]) is None

    def test_bit_errors_corrupt(self, link_setup):
        _, _, packets = link_setup
        link = LossyLink(bit_error_rate=0.05, seed=2)
        out = link.transmit(packets[0])
        changed = not np.array_equal(
            out.measurement_codes, packets[0].measurement_codes
        ) or out.lowres_payload != packets[0].lowres_payload
        assert changed

    def test_deterministic(self, link_setup):
        _, _, packets = link_setup
        a = LossyLink(bit_error_rate=0.01, seed=3).transmit(packets[0])
        b = LossyLink(bit_error_rate=0.01, seed=3).transmit(packets[0])
        assert np.array_equal(a.measurement_codes, b.measurement_codes)
        assert a.lowres_payload == b.lowres_payload

    def test_validation(self):
        with pytest.raises(ValueError):
            LossyLink(bit_error_rate=1.0)
        with pytest.raises(ValueError):
            LossyLink(packet_erasure_rate=-0.1)


class TestPayloadCrc:
    def test_stable(self, link_setup):
        _, _, packets = link_setup
        assert payload_crc(packets[0]) == payload_crc(packets[0])

    def test_detects_corruption(self, link_setup):
        _, _, packets = link_setup
        link = LossyLink(bit_error_rate=0.05, seed=4)
        corrupted = link.transmit(packets[0])
        assert payload_crc(corrupted) != payload_crc(packets[0])


class TestRobustReceiver:
    def test_clean_path_uses_hybrid(self, config, codebook_7bit, link_setup):
        _, windows, packets = link_setup
        rx = RobustReceiver(config, codebook_7bit)
        recon, mode = rx.receive(packets[0], payload_crc(packets[0]))
        assert mode == "hybrid"
        ref = windows[0].astype(float) - 1024
        assert snr_db(ref, recon.x_codes - 1024) > 12.0

    def test_erasure_concealed(self, config, codebook_7bit, link_setup):
        _, windows, packets = link_setup
        rx = RobustReceiver(config, codebook_7bit)
        rx.receive(packets[0], payload_crc(packets[0]))
        recon, mode = rx.receive(None, window_index=1)
        assert mode == "concealed"
        # Zero-order hold: repeats the previous window's reconstruction.
        prev, _ = RobustReceiver(config, codebook_7bit).receive(
            packets[0], payload_crc(packets[0])
        )
        assert np.allclose(recon.x_codes, prev.x_codes)

    def test_first_window_erasure_uses_baseline(self, config, codebook_7bit):
        rx = RobustReceiver(config, codebook_7bit)
        recon, mode = rx.receive(None)
        assert mode == "concealed"
        assert np.allclose(recon.x_codes, 1024.0)

    def test_corrupted_payload_falls_back_to_cs(
        self, config, codebook_7bit, link_setup
    ):
        _, windows, packets = link_setup
        link = LossyLink(bit_error_rate=0.03, seed=5)
        corrupted = link.transmit(packets[0])
        rx = RobustReceiver(config, codebook_7bit)
        recon, mode = rx.receive(corrupted, payload_crc(packets[0]))
        assert mode == "cs-fallback"
        # Fallback still produces a finite, sane reconstruction.
        assert np.all(np.isfinite(recon.x_codes))

    def test_stream_modes(self, config, codebook_7bit, link_setup):
        _, windows, packets = link_setup
        crcs = [payload_crc(p) for p in packets]
        impaired = [packets[0], None, packets[2]]
        rx = RobustReceiver(config, codebook_7bit)
        results = rx.receive_stream(impaired, crcs)
        assert [mode for _, mode in results] == ["hybrid", "concealed", "hybrid"]

    def test_graceful_degradation_end_to_end(
        self, config, codebook_7bit, link_setup
    ):
        """Under moderate impairment the stream mean SNR stays usable."""
        _, windows, packets = link_setup
        crcs = [payload_crc(p) for p in packets]
        link = LossyLink(bit_error_rate=1e-4, seed=6)
        received = [link.transmit(p) for p in packets]
        rx = RobustReceiver(config, codebook_7bit)
        results = rx.receive_stream(received, crcs)
        snrs = []
        for (recon, _), window in zip(results, windows):
            ref = window.astype(float) - 1024
            snrs.append(snr_db(ref, recon.x_codes - 1024))
        assert np.mean(snrs) > 8.0
