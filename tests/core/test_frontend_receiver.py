"""Tests of the node front-ends and receiver, incl. lossless paths."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.receiver import HybridReceiver
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.quantizers import requantize_codes


@pytest.fixture
def config():
    return FrontEndConfig(
        window_len=128,
        n_measurements=48,
        solver=PdhgSettings(max_iter=800, tol=3e-4),
    )


@pytest.fixture
def window(record_100, config):
    return next(record_100.windows(config.window_len))


class TestHybridFrontEnd:
    def test_codebook_resolution_checked(self, config, codebook_7bit):
        bad = config.with_lowres_bits(5)
        with pytest.raises(ValueError):
            HybridFrontEnd(bad, codebook_7bit)

    def test_packet_shape(self, config, codebook_7bit, window):
        fe = HybridFrontEnd(config, codebook_7bit)
        packet = fe.process_window(window, window_index=9)
        assert packet.window_index == 9
        assert packet.m == 48
        assert packet.n == 128
        assert packet.lowres_bit_length > 0

    def test_lowres_codes_match_requantization(self, config, codebook_7bit, window):
        fe = HybridFrontEnd(config, codebook_7bit)
        expected = requantize_codes(window, 11, 7)
        assert np.array_equal(fe.lowres_codes(window), expected)

    def test_window_validation(self, config, codebook_7bit):
        fe = HybridFrontEnd(config, codebook_7bit)
        with pytest.raises(ValueError):
            fe.process_window(np.zeros(127, dtype=np.int64))
        with pytest.raises(TypeError):
            fe.process_window(np.zeros(128))
        with pytest.raises(ValueError):
            fe.process_window(np.full(128, 4096, dtype=np.int64))

    def test_process_record(self, config, codebook_7bit, record_100):
        fe = HybridFrontEnd(config, codebook_7bit)
        packets = fe.process_record(record_100, max_windows=3)
        assert len(packets) == 3
        assert [p.window_index for p in packets] == [0, 1, 2]

    def test_process_stream_matches_record(self, config, codebook_7bit, record_100):
        fe = HybridFrontEnd(config, codebook_7bit)
        direct = fe.process_record(record_100, max_windows=2)
        chunks = np.array_split(record_100.adu[: 2 * 128], 7)
        streamed = fe.process_stream(chunks)
        assert len(streamed) == 2
        for a, b in zip(direct, streamed):
            assert np.array_equal(a.measurement_codes, b.measurement_codes)
            assert a.lowres_payload == b.lowres_payload


class TestNormalFrontEnd:
    def test_packet_has_no_lowres(self, config, window):
        fe = NormalCsFrontEnd(config)
        packet = fe.process_window(window)
        assert packet.lowres_bit_length == 0
        assert packet.lowres_payload == b""

    def test_same_cs_path_as_hybrid(self, config, codebook_7bit, window):
        """Both front-ends share the CS path exactly (same Φ, same ADC)."""
        hybrid = HybridFrontEnd(config, codebook_7bit)
        normal = NormalCsFrontEnd(config)
        assert np.array_equal(
            hybrid.process_window(window).measurement_codes,
            normal.process_window(window).measurement_codes,
        )


class TestReceiver:
    def test_lowres_decode_is_lossless(self, config, codebook_7bit, window):
        """The parallel path is entirely lossless end to end."""
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        packet = fe.process_window(window)
        decoded = rx.decode_lowres(packet)
        assert np.array_equal(decoded, requantize_codes(window, 11, 7))

    def test_measurement_dequantization_close(self, config, codebook_7bit, window):
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        packet = fe.process_window(window)
        y = rx.decode_measurements(packet)
        ideal = fe.phi @ (window.astype(float) - 1024)
        assert np.linalg.norm(y - ideal) <= rx.sigma()

    def test_phi_agreement(self, config, codebook_7bit):
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        assert np.array_equal(fe.phi, rx.phi)

    def test_hybrid_reconstruction_inside_bounds(
        self, config, codebook_7bit, window
    ):
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        recon = rx.reconstruct(fe.process_window(window))
        lowres = requantize_codes(window, 11, 7)
        lower = (lowres.astype(float) * 16)
        upper = lower + 15
        slack = 1.0  # code units; PDHG enforces the box to tolerance
        assert np.all(recon.x_codes >= lower - slack)
        assert np.all(recon.x_codes <= upper + slack)

    def test_hybrid_beats_normal_on_same_window(
        self, config, codebook_7bit, window
    ):
        from repro.metrics.quality import snr_db

        hybrid_fe = HybridFrontEnd(config, codebook_7bit)
        normal_fe = NormalCsFrontEnd(config)
        rx = HybridReceiver(config, codebook_7bit)
        ref = window.astype(float) - 1024
        hy = rx.reconstruct(hybrid_fe.process_window(window))
        no = rx.reconstruct(normal_fe.process_window(window))
        assert snr_db(ref, hy.x_centered(1024)) > snr_db(ref, no.x_centered(1024))

    def test_normal_packet_without_codebook(self, config, window):
        fe = NormalCsFrontEnd(config)
        rx = HybridReceiver(config)  # no codebook
        recon = rx.reconstruct(fe.process_window(window))
        assert recon.lowres_codes is None

    def test_decode_lowres_requires_codebook(self, config, codebook_7bit, window):
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config)
        with pytest.raises(ValueError):
            rx.decode_lowres(fe.process_window(window))

    def test_config_mismatch_detected(self, config, codebook_7bit, window):
        fe = HybridFrontEnd(config, codebook_7bit)
        other = config.with_measurements(32)
        rx = HybridReceiver(other, codebook_7bit)
        with pytest.raises(ValueError):
            rx.reconstruct(fe.process_window(window))
