"""Tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compress"])
        assert args.method == "hybrid"
        assert args.measurements == 96
        assert args.window == 512

    def test_power_args(self):
        args = build_parser().parse_args(
            ["power", "--m-normal", "176", "--m-hybrid", "16"]
        )
        assert args.m_normal == 176
        assert args.m_hybrid == 16


class TestSynthesize:
    def test_writes_wfdb_pairs(self, tmp_path, capsys):
        rc = main(
            [
                "synthesize",
                "--output", str(tmp_path),
                "--records", "100", "101",
                "--duration", "2",
            ]
        )
        assert rc == 0
        assert (tmp_path / "100.hea").exists()
        assert (tmp_path / "100.dat").exists()
        assert (tmp_path / "101.hea").exists()

    def test_written_files_load_back(self, tmp_path):
        from repro.signals.database import load_record
        from repro.signals.wfdb_io import read_record

        main(["synthesize", "-o", str(tmp_path), "--records", "103",
              "--duration", "2"])
        loaded = read_record(tmp_path / "103.hea")
        reference = load_record("103", duration_s=2.0)
        assert np.array_equal(loaded.adu, reference.adu)


class TestCompress:
    def test_hybrid_run(self, capsys):
        rc = main(
            [
                "compress", "--record", "100", "--duration", "5",
                "--window", "128", "-m", "48",
                "--max-windows", "1", "--max-iter", "400",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "SNR" in out and "mean:" in out

    def test_normal_run(self, capsys):
        rc = main(
            [
                "compress", "--method", "normal", "--duration", "5",
                "--window", "128", "-m", "48",
                "--max-windows", "1", "--max-iter", "400",
            ]
        )
        assert rc == 0

    def test_wfdb_input(self, tmp_path, capsys):
        main(["synthesize", "-o", str(tmp_path), "--records", "100",
              "--duration", "5"])
        rc = main(
            [
                "compress", "--wfdb", str(tmp_path / "100.hea"),
                "--window", "128", "-m", "48",
                "--max-windows", "1", "--max-iter", "400",
            ]
        )
        assert rc == 0

    def test_bad_record_reports_error(self, capsys):
        rc = main(["compress", "--record", "999", "--duration", "5"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestTradeoffAndPower:
    def test_tradeoff_table(self, capsys):
        rc = main(
            [
                "tradeoff", "--min-bits", "6", "--max-bits", "7",
                "--duration", "5", "--records", "100",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_power_table(self, capsys):
        rc = main(["power"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2.50x" in out

    def test_power_custom_point(self, capsys):
        rc = main(["power", "--m-normal", "176", "--m-hybrid", "16"])
        assert rc == 0
        assert "11.0" in capsys.readouterr().out


class TestTwoLeadSynthesize:
    def test_writes_two_signal_record(self, tmp_path):
        import numpy as np

        from repro.cli import main
        from repro.signals.database import load_record_pair
        from repro.signals.wfdb_io import read_record

        rc = main(
            [
                "synthesize", "-o", str(tmp_path), "--records", "100",
                "--duration", "2", "--two-lead",
            ]
        )
        assert rc == 0
        mlii, v5 = load_record_pair("100", duration_s=2.0)
        assert np.array_equal(
            read_record(tmp_path / "100.hea", channel=0).adu, mlii.adu
        )
        assert np.array_equal(
            read_record(tmp_path / "100.hea", channel=1).adu, v5.adu
        )


class TestBench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.workers == 0  # 0 = all CPUs
        assert args.smoke is False
        assert args.output.endswith("BENCH_sweep.json")

    def test_compress_workers_flag(self):
        args = build_parser().parse_args(["compress", "--workers", "4"])
        assert args.workers == 4

    def test_cache_size_knob(self):
        args = build_parser().parse_args(["bench"])
        assert args.cache_size is None  # default: leave the LRU alone
        args = build_parser().parse_args(["bench", "--cache-size", "4"])
        assert args.cache_size == 4


class TestProfileParser:
    def test_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.record == "100"
        assert args.cr == 50.0
        assert args.window == 256
        assert args.windows is None  # resolved from --smoke at run time
        assert args.repeats is None
        assert args.smoke is False
        assert args.cache_size is None
        assert args.output.endswith("BENCH_profile.json")

    def test_smoke_flag(self):
        args = build_parser().parse_args(["profile", "--smoke"])
        assert args.smoke is True

    def test_bench_writes_machine_readable_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_sweep.json"
        rc = main(
            [
                "bench",
                "--records", "100",
                "--crs", "75",
                "--max-windows", "1",
                "--duration", "5",
                "--window", "128",
                "--max-iter", "400",
                "--workers", "1",
                "--output", str(out),
            ]
        )
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["schema"] == "repro-bench-sweep/v1"
        assert data["workers"] == 1
        assert data["windows_total"] == 2  # 1 record x 1 CR x 2 methods
        assert data["parallel"]["windows_per_sec"] > 0
        assert data["serial"] is None  # no --compare-serial
        assert {p["method"] for p in data["points"]} == {"hybrid", "normal"}

    def test_bench_compare_serial_records_speedup(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_sweep.json"
        rc = main(
            [
                "bench",
                "--records", "100",
                "--crs", "75",
                "--max-windows", "2",
                "--duration", "5",
                "--window", "128",
                "--max-iter", "400",
                "--workers", "2",
                "--compare-serial",
                "--output", str(out),
            ]
        )
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["serial"]["wall_clock_s"] > 0
        assert data["speedup_windows_per_sec"] > 0
        assert data["results_equal_serial"] is True
        assert "speedup" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "power"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "2.50x" in result.stdout
