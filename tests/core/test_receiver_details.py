"""Focused tests of receiver internals (σ sizing, unit handling)."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd
from repro.core.receiver import HybridReceiver, WindowReconstruction
from repro.recovery.pdhg import PdhgSettings
from repro.recovery.result import RecoveryResult


@pytest.fixture
def config():
    return FrontEndConfig(
        window_len=128,
        n_measurements=48,
        solver=PdhgSettings(max_iter=500, tol=5e-4),
    )


class TestSigmaSizing:
    def test_formula(self, config, codebook_7bit):
        rx = HybridReceiver(config, codebook_7bit)
        m = config.n_measurements
        expected = (
            config.sigma_safety * np.sqrt(m) * rx.quantizer.step / np.sqrt(12)
        )
        assert rx.sigma() == pytest.approx(expected)

    def test_sigma_bounds_actual_quantization_error(
        self, config, codebook_7bit, record_100
    ):
        """On real windows the dequantized measurements sit within σ of
        the exact ones — the property Eq. 1's feasibility needs."""
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        for idx, window in enumerate(record_100.windows(128)):
            if idx >= 5:
                break
            packet = fe.process_window(window, idx)
            y = rx.decode_measurements(packet)
            exact = fe.phi @ (window.astype(float) - 1024)
            assert np.linalg.norm(y - exact) <= rx.sigma()

    def test_sigma_scales_with_safety(self, codebook_7bit):
        base = FrontEndConfig(window_len=128, n_measurements=48)
        double = FrontEndConfig(
            window_len=128, n_measurements=48, sigma_safety=4.0
        )
        rx1 = HybridReceiver(base, codebook_7bit)
        rx2 = HybridReceiver(double, codebook_7bit)
        assert rx2.sigma() == pytest.approx(2.0 * rx1.sigma())


class TestWindowReconstruction:
    def test_x_centered(self):
        recon = WindowReconstruction(
            window_index=0,
            x_codes=np.array([1024.0, 1030.0]),
            recovery=RecoveryResult(
                alpha=np.zeros(2), x=np.zeros(2), iterations=1,
                converged=True, residual_norm=0.0, objective=0.0, solver="t",
            ),
            lowres_codes=None,
        )
        assert np.allclose(recon.x_centered(1024), [0.0, 6.0])


class TestPacketValidationAtReceiver:
    def test_wrong_n_rejected(self, config, codebook_7bit, record_100):
        other = FrontEndConfig(
            window_len=256, n_measurements=48,
            solver=PdhgSettings(max_iter=200),
        )
        fe = HybridFrontEnd(other, codebook_7bit)
        window = next(record_100.windows(256))
        packet = fe.process_window(window)
        rx = HybridReceiver(config, codebook_7bit)
        with pytest.raises(ValueError):
            rx.reconstruct(packet)
