"""Tests of the transmit frame format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packets import HEADER_BITS, WindowPacket, split_stream


def _packet(m=8, bits=12, payload=b"\xde\xad", payload_bits=15, index=3, n=128):
    rng = np.random.default_rng(0)
    codes = rng.integers(0, 1 << bits, size=m)
    return WindowPacket(
        window_index=index,
        n=n,
        measurement_codes=codes,
        measurement_bits=bits,
        lowres_payload=payload,
        lowres_bit_length=payload_bits,
    )


class TestPacketFields:
    def test_bit_accounting(self):
        p = _packet()
        assert p.cs_bits == 8 * 12
        assert p.total_bits == HEADER_BITS + 96 + 15

    def test_budget(self):
        p = _packet()
        budget = p.budget()
        assert budget.n_samples == 128
        assert budget.original_bits == 128 * 12
        assert budget.cs_bits == 96
        assert budget.header_bits == HEADER_BITS

    def test_code_range_validated(self):
        with pytest.raises(ValueError):
            WindowPacket(
                window_index=0, n=4,
                measurement_codes=np.array([4096]),
                measurement_bits=12,
                lowres_payload=b"", lowres_bit_length=0,
            )

    def test_float_codes_rejected(self):
        with pytest.raises(TypeError):
            WindowPacket(
                window_index=0, n=4,
                measurement_codes=np.array([1.5]),
                measurement_bits=12,
                lowres_payload=b"", lowres_bit_length=0,
            )

    def test_payload_length_validated(self):
        with pytest.raises(ValueError):
            WindowPacket(
                window_index=0, n=4,
                measurement_codes=np.array([1]),
                measurement_bits=12,
                lowres_payload=b"\x00", lowres_bit_length=9,
            )


class TestSerialization:
    def test_roundtrip(self):
        p = _packet()
        q = WindowPacket.from_bytes(p.to_bytes(), measurement_bits=12)
        assert q.window_index == p.window_index
        assert q.n == p.n
        assert np.array_equal(q.measurement_codes, p.measurement_codes)
        assert q.lowres_bit_length == p.lowres_bit_length
        # Payload bits identical (trailing pad bits may differ in length).
        assert q.to_bytes() == p.to_bytes()

    def test_empty_payload_roundtrip(self):
        p = _packet(payload=b"", payload_bits=0)
        q = WindowPacket.from_bytes(p.to_bytes(), measurement_bits=12)
        assert q.lowres_bit_length == 0

    def test_byte_length_matches_bit_length(self):
        p = _packet()
        assert len(p.to_bytes()) == (p.total_bits + 7) // 8

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(1, 40),
        bits=st.integers(4, 16),
        payload_bits=st.integers(0, 64),
        index=st.integers(0, 2**31),
    )
    def test_roundtrip_property(self, m, bits, payload_bits, index):
        rng = np.random.default_rng(1)
        codes = rng.integers(0, 1 << bits, size=m)
        payload = bytes(rng.integers(0, 256, size=(payload_bits + 7) // 8))
        p = WindowPacket(
            window_index=index, n=256,
            measurement_codes=codes, measurement_bits=bits,
            lowres_payload=payload, lowres_bit_length=payload_bits,
        )
        q = WindowPacket.from_bytes(p.to_bytes(), measurement_bits=bits)
        assert np.array_equal(q.measurement_codes, codes)
        assert q.window_index == index

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 4096),
        m=st.integers(1, 96),
        bits=st.integers(1, 16),
        payload_bits=st.integers(0, 512),
        index=st.integers(0, 2**32 - 1),
        seed=st.integers(0, 2**16),
    )
    def test_roundtrip_fuzz_full_frame(self, n, m, bits, payload_bits,
                                       index, seed):
        # Full-frame fuzz: every header field, the code vector and the
        # payload bits must survive to_bytes -> from_bytes byte-exactly.
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 1 << bits, size=m)
        payload = bytes(rng.integers(0, 256, size=(payload_bits + 7) // 8))
        p = WindowPacket(
            window_index=index, n=n,
            measurement_codes=codes, measurement_bits=bits,
            lowres_payload=payload, lowres_bit_length=payload_bits,
        )
        q = WindowPacket.from_bytes(p.to_bytes(), measurement_bits=bits)
        assert q.window_index == index
        assert q.n == n
        assert q.measurement_bits == bits
        assert q.lowres_bit_length == payload_bits
        assert np.array_equal(q.measurement_codes, codes)
        assert q.to_bytes() == p.to_bytes()
        assert len(p.to_bytes()) == (p.total_bits + 7) // 8


class TestSplitStream:
    def test_back_to_back_frames(self):
        packets = [_packet(index=i, payload_bits=7 + i) for i in range(4)]
        stream = b"".join(p.to_bytes() for p in packets)
        parsed = split_stream(stream, measurement_bits=12, n_packets=4)
        assert [p.window_index for p in parsed] == [0, 1, 2, 3]
        assert [p.lowres_bit_length for p in parsed] == [7, 8, 9, 10]
