"""Tests of the end-to-end pipeline helpers."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.pipeline import (
    RecordOutcome,
    WindowOutcome,
    default_codebook,
    run_database,
    run_record,
)
from repro.metrics.compression import CompressionBudget
from repro.recovery.pdhg import PdhgSettings
from repro.signals.database import load_record


@pytest.fixture(scope="module")
def quick_config():
    return FrontEndConfig(
        window_len=128,
        n_measurements=48,
        solver=PdhgSettings(max_iter=700, tol=3e-4),
    )


@pytest.fixture(scope="module")
def record():
    return load_record("100", duration_s=10.0)


class TestRunRecord:
    def test_hybrid_outcome(self, quick_config, record):
        out = run_record(record, quick_config, max_windows=2)
        assert out.method == "hybrid"
        assert len(out.windows) == 2
        assert out.mean_snr_db > 10.0
        assert 0 < out.lowres_overhead_percent < 30.0

    def test_normal_outcome(self, quick_config, record):
        out = run_record(record, quick_config, method="normal", max_windows=2)
        assert out.method == "normal"
        assert all(w.budget.lowres_bits == 0 for w in out.windows)

    def test_hybrid_beats_normal(self, quick_config, record):
        hy = run_record(record, quick_config, max_windows=2)
        no = run_record(record, quick_config, method="normal", max_windows=2)
        assert hy.mean_snr_db > no.mean_snr_db

    def test_cr_accounting(self, quick_config, record):
        out = run_record(record, quick_config, max_windows=1)
        assert out.cs_cr_percent == pytest.approx(
            quick_config.cs_cr_percent, abs=0.1
        )
        assert out.net_cr_percent < out.cs_cr_percent

    def test_bad_method_rejected(self, quick_config, record):
        with pytest.raises(ValueError):
            run_record(record, quick_config, method="magic")

    def test_record_too_short_rejected(self, quick_config):
        tiny = load_record("100", duration_s=0.1)
        with pytest.raises(ValueError):
            run_record(tiny, quick_config)

    def test_deterministic(self, quick_config, record):
        a = run_record(record, quick_config, max_windows=1)
        b = run_record(record, quick_config, max_windows=1)
        assert a.mean_snr_db == b.mean_snr_db


class TestRunDatabase:
    def test_multiple_records(self, quick_config):
        records = [load_record(n, duration_s=5.0) for n in ("100", "101")]
        outs = run_database(records, quick_config, max_windows=1)
        assert [o.record_name for o in outs] == ["100", "101"]


class TestAggregation:
    def _outcome(self, prds):
        windows = tuple(
            WindowOutcome(
                window_index=i,
                prd_percent=p,
                snr_db=-20 * np.log10(0.01 * p),
                budget=CompressionBudget(128, 1536, 576, 100, 96),
                solver_iterations=10,
                solver_converged=True,
            )
            for i, p in enumerate(prds)
        )
        return RecordOutcome(record_name="x", method="hybrid", windows=windows)

    def test_mean_prd(self):
        out = self._outcome([4.0, 8.0])
        assert out.mean_prd == pytest.approx(6.0)

    def test_mean_snr_in_db_domain(self):
        out = self._outcome([10.0, 1.0])
        assert out.mean_snr_db == pytest.approx(30.0)

    def test_quartiles(self):
        out = self._outcome([1.0, 2.0, 4.0, 8.0, 16.0])
        q25, med, q75 = out.snr_quartiles()
        assert q25 < med < q75

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RecordOutcome(record_name="x", method="hybrid", windows=())


class TestDefaultCodebook:
    def test_cached(self):
        a = default_codebook(7)
        b = default_codebook(7)
        assert a is b

    def test_per_resolution(self):
        assert default_codebook(5).resolution_bits == 5
