"""Tests of the shared front-end configuration."""

import pytest

from repro.core.config import DEFAULT_CONFIG, FrontEndConfig


class TestDefaults:
    def test_paper_operating_point(self):
        assert DEFAULT_CONFIG.window_len == 512
        assert DEFAULT_CONFIG.lowres_bits == 7
        assert DEFAULT_CONFIG.acquisition_bits == 11
        assert DEFAULT_CONFIG.measurement_bits == 12
        assert DEFAULT_CONFIG.basis_spec == "db4"

    def test_derived_quantities(self):
        cfg = FrontEndConfig(window_len=512, n_measurements=96)
        assert cfg.cs_cr_percent == pytest.approx(81.25)
        assert cfg.delta == pytest.approx(96 / 512)
        assert cfg.lowres_step_codes == 16  # 2^(11-7)


class TestValidation:
    def test_m_bounds(self):
        with pytest.raises(ValueError):
            FrontEndConfig(window_len=512, n_measurements=0)
        with pytest.raises(ValueError):
            FrontEndConfig(window_len=512, n_measurements=513)

    def test_lowres_bounds(self):
        with pytest.raises(ValueError):
            FrontEndConfig(lowres_bits=0)
        with pytest.raises(ValueError):
            FrontEndConfig(lowres_bits=12, acquisition_bits=11)

    def test_negative_safety_rejected(self):
        with pytest.raises(ValueError):
            FrontEndConfig(sigma_safety=-1.0)


class TestDerivedConfigs:
    def test_with_measurements(self):
        cfg = DEFAULT_CONFIG.with_measurements(64)
        assert cfg.n_measurements == 64
        assert cfg.window_len == DEFAULT_CONFIG.window_len

    def test_with_lowres_bits(self):
        cfg = DEFAULT_CONFIG.with_lowres_bits(5)
        assert cfg.lowres_bits == 5

    def test_for_cr_roundtrip(self):
        for cr in (50.0, 75.0, 94.0):
            cfg = DEFAULT_CONFIG.for_cr(cr)
            assert cfg.cs_cr_percent == pytest.approx(cr, abs=0.2)

    def test_for_cr_100_keeps_one_measurement(self):
        assert DEFAULT_CONFIG.for_cr(100.0).n_measurements == 1

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.window_len = 17  # type: ignore[misc]
