"""Tests of the streaming window framer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.windowing import WindowFramer


class TestFramer:
    def test_exact_multiple(self):
        framer = WindowFramer(4)
        out = list(framer.push(np.arange(8)))
        assert len(out) == 2
        assert out[0].tolist() == [0, 1, 2, 3]
        assert out[1].tolist() == [4, 5, 6, 7]

    def test_partial_buffered(self):
        framer = WindowFramer(4)
        assert list(framer.push(np.arange(3))) == []
        assert framer.pending == 3
        out = list(framer.push(np.arange(3, 6)))
        assert len(out) == 1
        assert out[0].tolist() == [0, 1, 2, 3]
        assert framer.pending == 2

    def test_many_small_pushes(self):
        framer = WindowFramer(10)
        collected = []
        for i in range(25):
            collected.extend(framer.push(np.array([i])))
        assert len(collected) == 2
        assert collected[0].tolist() == list(range(10))

    def test_one_big_push(self):
        framer = WindowFramer(3)
        out = list(framer.push(np.arange(10)))
        assert [w.tolist() for w in out] == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]
        assert framer.pending == 1

    def test_flush(self):
        framer = WindowFramer(4)
        list(framer.push(np.arange(6)))
        rest = framer.flush()
        assert rest.tolist() == [4, 5]
        assert framer.pending == 0
        assert framer.flush().size == 0

    def test_empty_push(self):
        framer = WindowFramer(4)
        assert list(framer.push(np.array([], dtype=int))) == []

    def test_counts(self):
        framer = WindowFramer(5)
        list(framer.push(np.arange(12)))
        assert framer.windows_emitted == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowFramer(0)
        framer = WindowFramer(4)
        with pytest.raises(ValueError):
            list(framer.push(np.zeros((2, 2))))

    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.lists(st.integers(0, 17), min_size=1, max_size=20),
        window=st.integers(1, 11),
    )
    def test_stream_equivalence_property(self, chunks, window):
        """Windows from arbitrary chunking equal windows from one big push."""
        total = int(np.sum(chunks))
        stream = np.arange(total)
        framer = WindowFramer(window)
        out = []
        pos = 0
        for c in chunks:
            out.extend(framer.push(stream[pos : pos + c]))
            pos += c
        expected = [
            stream[i * window : (i + 1) * window].tolist()
            for i in range(total // window)
        ]
        assert [w.tolist() for w in out] == expected
