"""Tests of the transmit-side batch engine and its exactness contract.

The batch path must be byte-identical to the scalar per-window path for
both front-end variants at every CR (docs/encoding.md).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.encode_batch import EncodeEngineSettings, measure_window_stack
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.pipeline import default_codebook

CR_GRID = (50.0, 75.0, 88.0)


def _frontend(config, method):
    if method == "hybrid":
        book = default_codebook(config.lowres_bits, config.acquisition_bits)
        return HybridFrontEnd(config, book)
    return NormalCsFrontEnd(config)


def _packet_bytes(packets):
    return b"".join(p.to_bytes() for p in packets)


class TestSettings:
    def test_defaults(self):
        settings = EncodeEngineSettings()
        assert settings.batched
        assert 0 < settings.boundary_guard < 0.5

    def test_hashable_for_config_caching(self):
        assert hash(EncodeEngineSettings()) == hash(EncodeEngineSettings())

    @pytest.mark.parametrize("guard", [0.0, -1e-9, 0.5, 1.0])
    def test_bad_guard_rejected(self, guard):
        with pytest.raises(ValueError):
            EncodeEngineSettings(boundary_guard=guard)

    def test_on_config_by_default(self):
        assert FrontEndConfig().encode == EncodeEngineSettings()


class TestMeasureWindowStack:
    def test_rows_equal_scalar_measurement(self, record_100):
        config = FrontEndConfig()
        frontend = NormalCsFrontEnd(config)
        loop = frontend.process_record_loop(record_100, max_windows=6)
        batch = frontend.process_record(record_100, max_windows=6)
        for a, b in zip(loop, batch):
            assert np.array_equal(a.measurement_codes, b.measurement_codes)

    def test_extreme_guard_still_identical(self, record_100):
        """guard→0.5 recomputes every row; codes must not change."""
        config = FrontEndConfig(
            encode=EncodeEngineSettings(boundary_guard=0.499)
        )
        frontend = NormalCsFrontEnd(config)
        loop = frontend.process_record_loop(record_100, max_windows=4)
        batch = frontend.process_record(record_100, max_windows=4)
        assert _packet_bytes(loop) == _packet_bytes(batch)

    def test_rejects_non_stack(self):
        config = FrontEndConfig()
        frontend = NormalCsFrontEnd(config)
        with pytest.raises(ValueError):
            measure_window_stack(
                frontend.phi,
                frontend._cs.quantizer,
                np.zeros(config.window_len),
            )


class TestBatchedFrontEnds:
    @pytest.mark.parametrize("method", ["hybrid", "normal"])
    @pytest.mark.parametrize("cr", CR_GRID)
    def test_record_bytes_identical(self, record_100, method, cr):
        config = FrontEndConfig().for_cr(cr)
        frontend = _frontend(config, method)
        loop = frontend.process_record_loop(record_100, max_windows=8)
        batch = frontend.process_record(record_100, max_windows=8)
        assert len(batch) == len(loop)
        assert [p.window_index for p in batch] == [
            p.window_index for p in loop
        ]
        assert _packet_bytes(batch) == _packet_bytes(loop)

    @pytest.mark.parametrize("method", ["hybrid", "normal"])
    def test_batched_off_dispatches_to_loop(self, record_100, method):
        config = dataclasses.replace(
            FrontEndConfig(), encode=EncodeEngineSettings(batched=False)
        )
        frontend = _frontend(config, method)
        assert _packet_bytes(
            frontend.process_record(record_100, max_windows=4)
        ) == _packet_bytes(
            frontend.process_record_loop(record_100, max_windows=4)
        )

    def test_stream_matches_record(self, record_100):
        config = FrontEndConfig()
        frontend = _frontend(config, "hybrid")
        n = 5 * config.window_len
        # Uneven chunking exercises the framer buffer across pushes.
        chunks = np.array_split(record_100.adu[:n], 7)
        stream = frontend.process_stream(chunks)
        record = frontend.process_record(record_100, max_windows=5)
        assert _packet_bytes(stream) == _packet_bytes(record)

    def test_empty_stream(self):
        frontend = _frontend(FrontEndConfig(), "hybrid")
        assert frontend.process_stream([]) == []

    def test_explicit_indices(self, record_100):
        config = FrontEndConfig()
        frontend = _frontend(config, "hybrid")
        windows = np.stack(
            [w for w in record_100.windows(config.window_len)][:3]
        )
        packets = frontend.encode_windows(windows, indices=[7, 9, 11])
        assert [p.window_index for p in packets] == [7, 9, 11]
        shifted = frontend.encode_windows(windows, start_index=4)
        assert [p.window_index for p in shifted] == [4, 5, 6]

    def test_index_count_mismatch_rejected(self, record_100):
        config = FrontEndConfig()
        frontend = _frontend(config, "normal")
        windows = np.stack(
            [w for w in record_100.windows(config.window_len)][:2]
        )
        with pytest.raises(ValueError):
            frontend.encode_windows(windows, indices=[0])

    def test_stack_validation(self):
        config = FrontEndConfig()
        frontend = _frontend(config, "normal")
        with pytest.raises(ValueError):
            frontend.encode_windows(np.zeros(config.window_len, dtype=np.int64))
        bad = np.full((2, config.window_len), 1 << 12, dtype=np.int64)
        with pytest.raises(ValueError):
            frontend.encode_windows(bad)
