"""Smoke tests of the encoder microbenchmark and its report section."""

import json

import pytest

from repro.core.config import FrontEndConfig
from repro.experiments.encode_bench import (
    encode_bench_payload,
    run_encode_bench,
    run_synth_bench,
)
from repro.experiments.report import bench_encode_section
from repro.recovery.pdhg import PdhgSettings

SMALL = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=100, tol=1e-3),
)


@pytest.fixture(scope="module")
def encode_cells():
    return run_encode_bench(
        SMALL, [50.0, 75.0], record_name="100", n_windows=6, duration_s=4.0
    )


@pytest.fixture(scope="module")
def synth_cells():
    return run_synth_bench(
        duration_s=1.0, database_records=("100",), database_duration_s=1.0
    )


class TestRunEncodeBench:
    def test_grid_shape(self, encode_cells):
        assert [(c.method, c.cr_percent) for c in encode_cells] == [
            (m, cr)
            for m in ("hybrid", "normal")
            for cr in (
                SMALL.for_cr(50.0).cs_cr_percent,
                SMALL.for_cr(75.0).cs_cr_percent,
            )
        ]

    def test_bytes_identical_everywhere(self, encode_cells):
        assert all(c.bytes_identical for c in encode_cells)

    def test_throughput_fields(self, encode_cells):
        for cell in encode_cells:
            assert cell.n_windows == 6
            assert cell.loop_windows_per_sec > 0
            assert cell.batched_windows_per_sec > 0
            assert cell.speedup == pytest.approx(
                cell.loop_s / cell.batched_s
            )


class TestRunSynthBench:
    def test_kinds_and_identity(self, synth_cells):
        assert [c.kind for c in synth_cells] == ["ecgsyn", "database"]
        assert all(c.identical for c in synth_cells)
        assert all(c.vectorized_samples_per_sec > 0 for c in synth_cells)


class TestPayload:
    def test_schema_and_gated_fields(self, encode_cells, synth_cells):
        payload = encode_bench_payload(encode_cells, synth_cells, smoke=True)
        assert payload["schema"] == "repro-bench-encode/v1"
        assert payload["smoke"] is True
        assert payload["all_bytes_identical"] is True
        hybrid = [c for c in payload["cells"] if c["method"] == "hybrid"]
        assert payload["min_encode_speedup"] == pytest.approx(
            min(c["speedup"] for c in hybrid)
        )
        synth = payload["synth"]
        assert synth["all_identical"] is True
        db = [c for c in synth["cells"] if c["kind"] == "database"]
        assert synth["database_speedup"] == pytest.approx(db[0]["speedup"])

    def test_round_trips_through_json(self, encode_cells, synth_cells):
        payload = encode_bench_payload(encode_cells, synth_cells, smoke=True)
        assert json.loads(json.dumps(payload)) == payload


class TestReportSection:
    def test_absent_artifact_renders_nothing(self, tmp_path):
        assert bench_encode_section(tmp_path) == ""

    def test_corrupt_artifact_renders_nothing(self, tmp_path):
        (tmp_path / "BENCH_encode.json").write_text("not json")
        assert bench_encode_section(tmp_path) == ""

    def test_renders_cells_and_synth(
        self, tmp_path, encode_cells, synth_cells
    ):
        payload = encode_bench_payload(encode_cells, synth_cells, smoke=True)
        (tmp_path / "BENCH_encode.json").write_text(json.dumps(payload))
        section = bench_encode_section(tmp_path)
        assert "## Encode engine" in section
        assert "| hybrid |" in section
        assert "| normal |" in section
        assert "### Synthesis kernels" in section
        assert "| ecgsyn |" in section
        assert "minimum hybrid-encoder speedup" in section
