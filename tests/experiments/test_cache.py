"""Tests of the disk-backed sweep cache."""

import json

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.pipeline import run_record
from repro.experiments.cache import SweepCache, cache_from_env, config_fingerprint
from repro.experiments.runner import ExperimentScale, sweep_compression_ratios
from repro.recovery.pdhg import PdhgSettings
from repro.signals.database import load_record

FAST = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=400, tol=5e-4),
)


class TestFingerprint:
    def test_stable(self):
        assert config_fingerprint(FAST) == config_fingerprint(FAST)

    def test_sensitive_to_every_knob(self):
        base = config_fingerprint(FAST)
        assert config_fingerprint(FAST.with_measurements(32)) != base
        assert config_fingerprint(FAST.with_lowres_bits(5)) != base
        slower = FrontEndConfig(
            window_len=128,
            n_measurements=48,
            solver=PdhgSettings(max_iter=500, tol=5e-4),
        )
        assert config_fingerprint(slower) != base


class TestSweepCache:
    def _outcome(self):
        rec = load_record("100", duration_s=5.0)
        return run_record(rec, FAST, max_windows=1)

    def test_miss_then_hit(self, tmp_path):
        cache = SweepCache(tmp_path)
        calls = []

        def runner():
            calls.append(1)
            return self._outcome()

        first = cache.get_or_run("100", 5.0, FAST, "hybrid", 1, runner)
        second = cache.get_or_run("100", 5.0, FAST, "hybrid", 1, runner)
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert second.mean_snr_db == pytest.approx(first.mean_snr_db)
        assert second.windows[0].budget.total_bits == first.windows[0].budget.total_bits

    def test_roundtrip_preserves_all_fields(self, tmp_path):
        cache = SweepCache(tmp_path)
        original = self._outcome()
        cached = cache.get_or_run("100", 5.0, FAST, "hybrid", 1, lambda: original)
        reloaded = cache.get_or_run("100", 5.0, FAST, "hybrid", 1, lambda: 1 / 0)
        for a, b in zip(original.windows, reloaded.windows):
            assert a.prd_percent == b.prd_percent
            assert a.snr_db == b.snr_db
            assert a.solver_iterations == b.solver_iterations
            assert a.budget == b.budget

    def test_different_configs_do_not_collide(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.get_or_run("100", 5.0, FAST, "hybrid", 1, self._outcome)
        calls = []

        def runner():
            calls.append(1)
            rec = load_record("100", duration_s=5.0)
            return run_record(rec, FAST.with_measurements(32), max_windows=1)

        cache.get_or_run("100", 5.0, FAST.with_measurements(32), "hybrid", 1, runner)
        assert calls  # second config was computed, not served from cache

    def test_corrupt_file_recomputed(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.get_or_run("100", 5.0, FAST, "hybrid", 1, self._outcome)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        recomputed = cache.get_or_run("100", 5.0, FAST, "hybrid", 1, self._outcome)
        assert recomputed.record_name == "100"

    def test_clear(self, tmp_path):
        cache = SweepCache(tmp_path)
        cache.get_or_run("100", 5.0, FAST, "hybrid", 1, self._outcome)
        assert cache.clear() == 1
        assert list(tmp_path.glob("*.json")) == []


class TestAtomicWrites:
    def _outcome(self):
        rec = load_record("100", duration_s=5.0)
        return run_record(rec, FAST, max_windows=1)

    def test_store_leaves_no_temp_files(self, tmp_path):
        cache = SweepCache(tmp_path)
        path = cache.store("100", 5.0, FAST, "hybrid", 1, self._outcome())
        assert path.exists()
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_store_replaces_corrupt_file_atomically(self, tmp_path):
        cache = SweepCache(tmp_path)
        outcome = self._outcome()
        path = cache.store("100", 5.0, FAST, "hybrid", 1, outcome)
        path.write_text("{truncated by a crashed worker")
        cache.store("100", 5.0, FAST, "hybrid", 1, outcome)
        reloaded = cache.load("100", 5.0, FAST, "hybrid", 1)
        assert reloaded is not None
        assert reloaded.windows == outcome.windows

    def test_failed_serialization_cleans_up(self, tmp_path, monkeypatch):
        cache = SweepCache(tmp_path)

        def boom(*args, **kwargs):
            raise RuntimeError("serializer died")

        monkeypatch.setattr(json, "dumps", boom)
        with pytest.raises(RuntimeError):
            cache.store("100", 5.0, FAST, "hybrid", 1, self._outcome())
        assert list(tmp_path.iterdir()) == []


class TestStageHook:
    """Cache behaviour under the engine's lookup/store stage hook."""

    SCALE = ExperimentScale(record_names=("100",), duration_s=5.0, max_windows=1)

    def _sweep(self, cache):
        return sweep_compression_ratios(
            FAST, cr_values=(75.0,), methods=("hybrid",), scale=self.SCALE,
            cache=cache,
        )

    def test_miss_then_hit_through_engine(self, tmp_path):
        cache = SweepCache(tmp_path)
        first = self._sweep(cache)
        assert cache.misses == 1 and cache.hits == 0
        second = self._sweep(cache)
        assert cache.hits == 1
        assert second[0].outcomes == first[0].outcomes

    def test_hit_skips_scheduling_entirely(self, tmp_path):
        from repro.runtime.engine import ExecutionEngine, RecordJob

        cache = SweepCache(tmp_path)
        rec = load_record("100", duration_s=5.0)
        job = RecordJob(record=rec, config=FAST, method="hybrid", max_windows=1)
        computed = ExecutionEngine(hooks=[cache.stage_hook()]).run_job(job)

        class _Exploding:
            name = "exploding"
            effective_workers = 1

            def run_tasks(self, tasks):
                raise AssertionError("hit must not reach the executor")

        again = ExecutionEngine(
            executor=_Exploding(), hooks=[cache.stage_hook()]
        ).run_job(job)
        assert again.windows == computed.windows

    def test_corrupted_file_recovers_through_hook(self, tmp_path):
        cache = SweepCache(tmp_path)
        first = self._sweep(cache)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        recomputed = self._sweep(cache)
        assert recomputed[0].outcomes == first[0].outcomes
        # The corrupt file was replaced by a fresh, loadable one.
        final = self._sweep(cache)
        assert final[0].outcomes == first[0].outcomes
        assert cache.hits == 1

    def test_explicit_false_disables_env_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        self._sweep(False)
        env_dir = tmp_path / "env-cache"
        assert not env_dir.exists() or list(env_dir.glob("*.json")) == []


class TestIntegration:
    def test_cached_sweep_matches_uncached(self, tmp_path):
        scale = ExperimentScale(record_names=("100",), duration_s=5.0, max_windows=1)
        plain = sweep_compression_ratios(
            FAST, cr_values=(75.0,), methods=("hybrid",), scale=scale
        )
        cache = SweepCache(tmp_path)
        cached = sweep_compression_ratios(
            FAST, cr_values=(75.0,), methods=("hybrid",), scale=scale, cache=cache
        )
        again = sweep_compression_ratios(
            FAST, cr_values=(75.0,), methods=("hybrid",), scale=scale, cache=cache
        )
        assert cached[0].mean_snr_db == pytest.approx(plain[0].mean_snr_db)
        assert again[0].mean_snr_db == pytest.approx(plain[0].mean_snr_db)
        assert cache.hits >= 1

    def test_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "c"))
        cache = cache_from_env()
        assert cache is not None
        assert cache.directory.exists()
