"""Smoke tests of the workspace/allocation profile bench and its outputs.

One tiny end-to-end run drives every profile kernel (three batched
solvers, the batch encoder, the synthesizer) through both arms —
fresh-allocation baseline and pooled workspaces — then checks the gated
invariants the CI acceptance step relies on: zero output deviation on
the exact path and a real allocation reduction on the solver kernels.
"""

import json

import pytest

from repro.core.config import FrontEndConfig
from repro.experiments.profile_bench import (
    PROFILE_KERNELS,
    SOLVER_KERNELS,
    profile_bench_payload,
    run_profile_bench,
)
from repro.experiments.report import bench_profile_section, build_report
from repro.recovery.pdhg import PdhgSettings

SMALL = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=100, tol=1e-3),
)


@pytest.fixture(scope="module")
def profile_run():
    return run_profile_bench(
        SMALL,
        cr_percent=50.0,
        record_name="100",
        n_windows=2,
        duration_s=4.0,
        repeats=1,
        solver_max_iter=8,
        bsbl_max_iter=2,
        synth_duration_s=1.0,
    )


class TestRunProfileBench:
    def test_covers_every_kernel(self, profile_run):
        cells, _ = profile_run
        assert tuple(c.kernel for c in cells) == PROFILE_KERNELS

    def test_reuse_never_changes_outputs(self, profile_run):
        cells, _ = profile_run
        for cell in cells:
            assert cell.max_abs_dev == 0.0

    def test_solver_kernels_reduce_allocation(self, profile_run):
        cells, _ = profile_run
        for cell in cells:
            if cell.kernel not in SOLVER_KERNELS:
                continue
            # Warm workspaces serve every per-iteration temporary from
            # the pool; the baseline arm allocates it fresh each call.
            assert cell.workspace_alloc_bytes < cell.baseline_alloc_bytes
            assert cell.alloc_reduction > 1.0
            assert cell.bytes_served > 0
            assert cell.buf_calls > 0

    def test_rates_are_positive(self, profile_run):
        cells, _ = profile_run
        for cell in cells:
            assert cell.baseline_units_per_sec > 0
            assert cell.workspace_units_per_sec > 0
            assert cell.speedup > 0

    def test_traced_rows_cover_profiled_names(self, profile_run):
        cells, rows = profile_run
        names = {row["name"] for row in rows}
        for cell in cells:
            assert cell.profiled_name in names


class TestProfileBenchPayload:
    def test_schema_and_gates(self, profile_run):
        cells, rows = profile_run
        payload = profile_bench_payload(cells, rows, smoke=True)
        assert payload["schema"] == "repro-bench-profile/v1"
        assert payload["smoke"] is True
        assert len(payload["kernels"]) == len(PROFILE_KERNELS)
        assert payload["max_abs_dev"] == 0.0
        assert payload["min_alloc_reduction"] > 1.0
        assert payload["aggregate"]["speedup"] > 0

    def test_json_serializable_without_nan(self, profile_run):
        cells, rows = profile_run
        payload = profile_bench_payload(
            cells,
            rows,
            smoke=True,
            cache_stats={"hits": 3, "misses": 1, "hit_rate": 0.75},
            workspace_stats={"leases": 10, "reuse_fraction": 0.9},
        )
        parsed = json.loads(json.dumps(payload, allow_nan=False))
        assert parsed["recovery_cache"]["hits"] == 3
        assert parsed["workspace_pool"]["leases"] == 10

    def test_empty_cells_degrade_to_none(self):
        payload = profile_bench_payload([], [], smoke=True)
        assert payload["min_alloc_reduction"] is None
        assert payload["min_speedup"] is None
        assert payload["max_abs_dev"] is None


class TestBenchProfileSection:
    def _payload(self):
        return {
            "schema": "repro-bench-profile/v1",
            "kernels": [
                {
                    "kernel": "fista",
                    "units": "windows",
                    "baseline": {
                        "units_per_sec": 120.0,
                        "alloc_bytes": 5_000_000,
                    },
                    "workspace": {"units_per_sec": 130.0, "alloc_bytes": 0},
                    "speedup": 1.08,
                    "alloc_reduction": 5_000_000.0,
                    "max_abs_dev": 0.0,
                }
            ],
            "min_alloc_reduction": 5_000_000.0,
            "max_abs_dev": 0.0,
            "workspace_pool": {
                "leases": 12,
                "null_leases": 6,
                "workspaces_created": 3,
                "reuse_fraction": 0.95,
            },
            "recovery_cache": {
                "hits": 9,
                "misses": 1,
                "hit_rate": 0.9,
                "operator_hit_rate": 0.8,
            },
            "profiler": [
                {
                    "name": "solver.fista_batch",
                    "calls": 1,
                    "wall_s": 0.25,
                    "alloc_bytes": 1024,
                    "peak_bytes": 4096,
                }
            ],
        }

    def test_absent_artifact_renders_nothing(self, tmp_path):
        assert bench_profile_section(tmp_path) == ""

    def test_present_artifact_renders_tables(self, tmp_path):
        (tmp_path / "BENCH_profile.json").write_text(
            json.dumps(self._payload())
        )
        markdown = bench_profile_section(tmp_path)
        assert "## Hot-path profile (`repro profile`)" in markdown
        assert "| fista (windows) | 120.0 | 130.0 | 1.08x" in markdown
        assert "minimum solver-kernel allocation reduction" in markdown
        assert "reuse fraction 0.950" in markdown
        assert "### Traced pass (tracemalloc cross-check)" in markdown
        assert "solver.fista_batch" in markdown

    def test_corrupt_artifact_ignored(self, tmp_path):
        (tmp_path / "BENCH_profile.json").write_text("{broken")
        assert bench_profile_section(tmp_path) == ""

    def test_wired_into_build_report(self, tmp_path):
        (tmp_path / "BENCH_profile.json").write_text(
            json.dumps(self._payload())
        )
        markdown, present, _ = build_report(tmp_path)
        assert present == 0  # informational, not a coverage artifact
        assert "## Hot-path profile (`repro profile`)" in markdown
