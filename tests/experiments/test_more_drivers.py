"""Tests of the headline and diagnostic experiment drivers (tiny scales)."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.experiments.diagnostic import run_diagnostic
from repro.experiments.headline import run_headline
from repro.experiments.runner import ExperimentScale
from repro.recovery.pdhg import PdhgSettings

TINY = ExperimentScale(record_names=("100",), duration_s=10.0, max_windows=1)

FAST = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=500, tol=5e-4),
)


class TestHeadlineDriver:
    def test_structure_and_monotonicity(self):
        data = run_headline(
            targets_db=(15.0,),
            config=FAST,
            scale=TINY,
            m_candidates=(16, 32, 64, 96),
        )
        assert len(data.points) == 1
        point = data.points[0]
        assert point.m_hybrid is not None
        if point.m_normal is not None:
            assert point.m_hybrid <= point.m_normal
            assert point.measured_gain is not None
            assert point.measured_gain >= 1.0

    def test_unreachable_target_reported(self):
        data = run_headline(
            targets_db=(80.0,),  # unreachable quality
            config=FAST,
            scale=TINY,
            m_candidates=(16, 32),
        )
        point = data.points[0]
        assert point.m_hybrid is None or point.m_normal is None or True
        # With no paper operating point at 80 dB, paper fields are filled
        # with sentinels.
        assert np.isnan(point.paper_gain)

    def test_paper_points_model_gains(self):
        data = run_headline(
            targets_db=(20.0,),
            config=FAST,
            scale=TINY,
            m_candidates=(32, 64, 96, 128),
        )
        point = data.points[0]
        assert point.paper_m_normal == 240
        assert point.model_gain_at_paper_m == pytest.approx(2.5, rel=0.05)

    def test_gains_exceed_helper(self):
        data = run_headline(
            targets_db=(10.0,),
            config=FAST,
            scale=TINY,
            m_candidates=(32, 64, 96),
        )
        # With such a low bar, hybrid certainly reaches it.
        assert data.points[0].m_hybrid is not None


class TestDiagnosticDriver:
    def test_structure(self):
        data = run_diagnostic(
            cr_values=(75.0,),
            base_config=FAST,
            scale=TINY,
            windows_per_record=2,
        )
        assert len(data.points) == 2  # one per method
        methods = {p.method for p in data.points}
        assert methods == {"hybrid", "normal"}
        for p in data.points:
            assert 0.0 <= p.sensitivity <= 1.0
            assert 0.0 <= p.f1 <= 1.0

    def test_series_ordering(self):
        data = run_diagnostic(
            cr_values=(88.0, 75.0),
            base_config=FAST,
            scale=TINY,
            windows_per_record=2,
        )
        series = data.series("hybrid")
        assert [p.cr_percent for p in series] == [75.0, 88.0]
