"""Golden regression fixtures for the Fig. 7 quality numbers.

A small fixed grid (2 records × 2 CRs × both methods) is solved
end-to-end and compared against per-point PRD/SNR values committed in
``tests/experiments/golden/``.  The point is drift detection: any change
to the encode → transport → recover → score path that moves the
reconstruction quality — a solver tweak, a quantizer change, an operator
cache bug — fails this suite, while pure refactors pass.

Tolerances are relative and deliberately small-but-nonzero: across BLAS
builds the PDHG iterates differ at rounding level, which the stopping
rule can amplify to ~1e-4 relative on final PRD.  The 2e-3 band covers
that; real regressions move PRD by percents.

Regenerate (after an *intentional* quality change) with::

    PYTHONPATH=src python tests/experiments/test_golden.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.core.config import FrontEndConfig
from repro.experiments.runner import ExperimentScale, sweep_compression_ratios
from repro.recovery.pdhg import PdhgSettings

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "fig7_smoke.json"
SCHEMA = "repro-golden-fig7/v1"

#: The Bayesian-family fixture: same records/scale, BSBL methods on the
#: CR points where measurements-only BSBL still operates (at 87.5% it
#: legitimately collapses, which is the comparison's point, not a
#: regression worth pinning).
BSBL_GOLDEN_PATH = GOLDEN_DIR / "bsbl_smoke.json"
BSBL_SCHEMA = "repro-golden-bsbl/v1"
BSBL_METHODS = ("bsbl", "bsbl-dequant")
BSBL_CR_VALUES = (50.0, 75.0)

#: Relative tolerance on PRD/SNR agreement (see module docstring).
RTOL = 2e-3

#: The fixed grid the fixtures pin.
RECORDS = ("100", "101")
CR_VALUES = (75.0, 87.5)
DURATION_S = 10.0
MAX_WINDOWS = 3
FIG7_METHODS = ("hybrid", "normal")


def golden_config() -> FrontEndConfig:
    """The fixture grid's base config — small enough to solve in seconds,
    big enough to exercise the real wavelet depth and both channels."""
    return FrontEndConfig(
        window_len=256,
        n_measurements=64,
        lowres_bits=7,
        solver=PdhgSettings(max_iter=1500, tol=2e-4),
    )


def expected_grid(methods, cr_values=CR_VALUES):
    """The grid metadata a fixture must match exactly."""
    return {
        "records": list(RECORDS),
        "cr_values": list(cr_values),
        "duration_s": DURATION_S,
        "max_windows": MAX_WINDOWS,
        "window_len": golden_config().window_len,
        "methods": list(methods),
    }


def compute_points(methods=FIG7_METHODS, cr_values=CR_VALUES):
    """Solve the golden grid; returns JSON-ready per-point dicts."""
    scale = ExperimentScale(
        record_names=RECORDS, duration_s=DURATION_S, max_windows=MAX_WINDOWS
    )
    points = sweep_compression_ratios(
        golden_config(),
        cr_values=cr_values,
        methods=methods,
        scale=scale,
        cache=False,
    )
    rows = []
    for point in points:
        for outcome in point.outcomes:
            rows.append(
                {
                    "record": outcome.record_name,
                    "cr_percent": round(point.cr_percent, 6),
                    "method": point.method,
                    "mean_prd_percent": outcome.mean_prd,
                    "mean_snr_db": outcome.mean_snr_db,
                }
            )
    return rows


def load_golden(
    path: Path = GOLDEN_PATH,
    schema: str = SCHEMA,
    methods=FIG7_METHODS,
    cr_values=CR_VALUES,
):
    """Load and validate a golden fixture file.

    Checks the schema tag, the grid parameters and per-point structure so
    a stale or hand-mangled fixture fails loudly here instead of as a
    confusing numeric mismatch later.
    """
    data = json.loads(path.read_text())
    if data.get("schema") != schema:
        raise ValueError(f"unexpected golden schema: {data.get('schema')!r}")
    grid = data.get("grid", {})
    expected = expected_grid(methods, cr_values)
    if grid != expected:
        raise ValueError(
            f"golden grid mismatch: fixture {grid} != expected {expected}"
        )
    points = data.get("points")
    required = {
        "record", "cr_percent", "method", "mean_prd_percent", "mean_snr_db",
    }
    if not points:
        raise ValueError("golden fixture has no points")
    for point in points:
        missing = required - point.keys()
        if missing:
            raise ValueError(f"golden point missing fields: {sorted(missing)}")
        if not (point["mean_prd_percent"] > 0 and point["mean_snr_db"] > 0):
            raise ValueError(f"golden point has non-positive quality: {point}")
    return points


def write_golden(
    path: Path = GOLDEN_PATH,
    schema: str = SCHEMA,
    methods=FIG7_METHODS,
    cr_values=CR_VALUES,
) -> None:
    """Regenerate a fixture file from the current pipeline."""
    payload = {
        "schema": schema,
        "grid": expected_grid(methods, cr_values),
        "points": compute_points(methods, cr_values),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


class TestGoldenLoader:
    def test_fixture_loads_and_validates(self):
        points = load_golden()
        # 2 records x 2 CRs x 2 methods
        assert len(points) == 8

    def test_loader_rejects_bad_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope", "points": []}))
        with pytest.raises(ValueError, match="schema"):
            load_golden(bad)

    def test_loader_rejects_grid_drift(self, tmp_path):
        data = json.loads(GOLDEN_PATH.read_text())
        data["grid"]["max_windows"] = 99
        bad = tmp_path / "drift.json"
        bad.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="grid mismatch"):
            load_golden(bad)


class TestGoldenRegression:
    @pytest.fixture(scope="class")
    def computed(self):
        return {
            (r["record"], r["cr_percent"], r["method"]): r
            for r in compute_points()
        }

    def test_quality_matches_fixture(self, computed):
        golden = load_golden()
        assert len(golden) == len(computed)
        for point in golden:
            key = (point["record"], point["cr_percent"], point["method"])
            assert key in computed, f"grid point {key} not computed"
            got = computed[key]
            assert got["mean_prd_percent"] == pytest.approx(
                point["mean_prd_percent"], rel=RTOL
            ), f"PRD drift at {key}"
            assert got["mean_snr_db"] == pytest.approx(
                point["mean_snr_db"], rel=RTOL
            ), f"SNR drift at {key}"

    def test_hybrid_beats_normal_on_fixture(self):
        """Sanity on the committed numbers themselves: the paper's core
        claim (bounds help) must hold at every golden grid point."""
        golden = {
            (p["record"], p["cr_percent"], p["method"]): p
            for p in load_golden()
        }
        for record in RECORDS:
            for cr in CR_VALUES:
                hybrid = golden[(record, cr, "hybrid")]
                normal = golden[(record, cr, "normal")]
                assert hybrid["mean_snr_db"] > normal["mean_snr_db"]


class TestBsblGolden:
    """The Bayesian-family fixture: same grid, BSBL methods.

    Pins the full dispatch path (engine → receiver → EM solver) for
    ``"bsbl"`` and ``"bsbl-dequant"`` so a prior tweak, a gamma-rule
    change or an information-form bug shows up as quality drift."""

    @pytest.fixture(scope="class")
    def computed(self):
        return {
            (r["record"], r["cr_percent"], r["method"]): r
            for r in compute_points(BSBL_METHODS, BSBL_CR_VALUES)
        }

    def test_fixture_loads_and_validates(self):
        points = load_golden(
            BSBL_GOLDEN_PATH, BSBL_SCHEMA, BSBL_METHODS, BSBL_CR_VALUES
        )
        # 2 records x 2 CRs x 2 methods
        assert len(points) == 8

    def test_quality_matches_fixture(self, computed):
        golden = load_golden(
            BSBL_GOLDEN_PATH, BSBL_SCHEMA, BSBL_METHODS, BSBL_CR_VALUES
        )
        assert len(golden) == len(computed)
        for point in golden:
            key = (point["record"], point["cr_percent"], point["method"])
            assert key in computed, f"grid point {key} not computed"
            got = computed[key]
            assert got["mean_prd_percent"] == pytest.approx(
                point["mean_prd_percent"], rel=RTOL
            ), f"PRD drift at {key}"
            assert got["mean_snr_db"] == pytest.approx(
                point["mean_snr_db"], rel=RTOL
            ), f"SNR drift at {key}"

    def test_dequant_beats_plain_bsbl_on_fixture(self):
        """Sanity on the committed numbers: the low-res channel is extra
        information, so de-quantization must beat measurements-only BSBL
        at every golden grid point."""
        golden = {
            (p["record"], p["cr_percent"], p["method"]): p
            for p in load_golden(
                BSBL_GOLDEN_PATH, BSBL_SCHEMA, BSBL_METHODS, BSBL_CR_VALUES
            )
        }
        for record in RECORDS:
            for cr in BSBL_CR_VALUES:
                dequant = golden[(record, cr, "bsbl-dequant")]
                plain = golden[(record, cr, "bsbl")]
                assert dequant["mean_snr_db"] > plain["mean_snr_db"]


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        write_golden()
        print(f"wrote {GOLDEN_PATH}")
        write_golden(
            BSBL_GOLDEN_PATH, BSBL_SCHEMA, BSBL_METHODS, BSBL_CR_VALUES
        )
        print(f"wrote {BSBL_GOLDEN_PATH}")
    else:
        print("pass --regen to rewrite the golden fixtures")
