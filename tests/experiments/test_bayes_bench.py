"""The Bayesian-family benchmark: cells, gates, and agreement."""

import pytest

from repro.core.config import FrontEndConfig
from repro.experiments.bayes_bench import (
    AGREEMENT_TOLERANCE,
    BayesBenchCell,
    BsblAgreementCell,
    bayes_bench_payload,
    run_bayes_bench,
    run_bsbl_agreement,
)
from repro.experiments.runner import ExperimentScale
from repro.recovery.pdhg import PdhgSettings


def _cell(method, cr, snr, prd=5.0):
    return BayesBenchCell(
        method=method,
        cr_percent=cr,
        n_measurements=32,
        n_records=2,
        n_windows=6,
        mean_snr_db=snr,
        mean_prd_percent=prd,
    )


class TestPayloadGates:
    def test_comparison_picks_best_bayes_method(self):
        cells = [
            _cell("hybrid", 50.0, 25.0),
            _cell("bsbl", 50.0, 24.0),
            _cell("bsbl-dequant", 50.0, 27.0),
        ]
        payload = bayes_bench_payload(cells, smoke=True)
        assert payload["schema"] == "repro-bench-bsbl/v1"
        (row,) = payload["comparison"]
        assert row["best_bayes_method"] == "bsbl-dequant"
        assert row["bayes_gain_db"] == pytest.approx(2.0)
        assert row["bayes_wins"]
        assert payload["bayes_beats_hybrid"]
        assert payload["bayes_wins_at"] == [50.0]

    def test_no_win_turns_gate_off(self):
        cells = [_cell("hybrid", 75.0, 25.0), _cell("bsbl", 75.0, 20.0)]
        payload = bayes_bench_payload(cells, smoke=True)
        assert not payload["bayes_beats_hybrid"]
        assert payload["bayes_wins_at"] == []
        assert payload["best_gain_db"] == pytest.approx(-5.0)

    def test_cr_without_hybrid_baseline_is_skipped(self):
        cells = [_cell("bsbl", 50.0, 24.0)]
        payload = bayes_bench_payload(cells, smoke=True)
        assert payload["comparison"] == []
        assert payload["best_gain_db"] is None

    def test_agreement_gate(self):
        agree = [
            BsblAgreementCell(
                solver="bsbl", cr_percent=50.0, n_windows=4,
                loop_s=1.0, batched_s=0.5, max_abs_alpha_dev=2e-9,
            ),
            BsblAgreementCell(
                solver="bsbl-dequant", cr_percent=50.0, n_windows=4,
                loop_s=1.0, batched_s=0.5, max_abs_alpha_dev=5e-11,
            ),
        ]
        payload = bayes_bench_payload([], agree, smoke=True)
        gate = payload["agreement"]
        assert gate["max_abs_alpha_dev"] == pytest.approx(2e-9)
        assert gate["tolerance"] == AGREEMENT_TOLERANCE
        assert gate["within_tolerance"]
        assert gate["cells"][0]["speedup"] == pytest.approx(2.0)

    def test_agreement_gate_trips_over_tolerance(self):
        agree = [
            BsblAgreementCell(
                solver="bsbl", cr_percent=50.0, n_windows=4,
                loop_s=1.0, batched_s=0.5, max_abs_alpha_dev=1e-6,
            ),
        ]
        payload = bayes_bench_payload([], agree, smoke=True)
        assert not payload["agreement"]["within_tolerance"]

    def test_empty_agreement_is_null(self):
        payload = bayes_bench_payload([], smoke=True)
        assert payload["agreement"]["max_abs_alpha_dev"] is None
        assert payload["agreement"]["within_tolerance"] is None


class TestRunners:
    """Small end-to-end runs: production dispatch, tiny instances."""

    def _config(self):
        return FrontEndConfig(
            window_len=64,
            n_measurements=32,
            solver=PdhgSettings(max_iter=400, tol=1e-3),
        )

    def test_run_bayes_bench_produces_grid_cells(self):
        cells = run_bayes_bench(
            self._config(),
            (50.0,),
            methods=("hybrid", "bsbl"),
            scale=ExperimentScale(
                record_names=("100",), duration_s=5.0, max_windows=2
            ),
        )
        assert [(c.method, c.cr_percent) for c in cells] == [
            ("hybrid", 50.0), ("bsbl", 50.0),
        ]
        for c in cells:
            assert c.n_records == 1
            assert c.n_windows == 2
            assert c.mean_prd_percent > 0

    def test_run_bayes_bench_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="registered methods"):
            run_bayes_bench(self._config(), (50.0,), methods=("bsbl-bo",))

    def test_run_bsbl_agreement_within_tolerance(self):
        cells = run_bsbl_agreement(
            self._config(), (50.0,), n_windows=2, duration_s=5.0
        )
        assert {c.solver for c in cells} == {"bsbl", "bsbl-dequant"}
        for c in cells:
            assert c.max_abs_alpha_dev <= AGREEMENT_TOLERANCE
