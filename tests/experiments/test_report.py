"""Tests of the benchmark-artifact report aggregator."""

from pathlib import Path

import pytest

from repro.experiments.report import (
    EXPECTED_ARTIFACTS,
    build_report,
    write_report,
)


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig7_snr_prd_vs_cr.txt").write_text(
        "== Fig. 7 ==\nCR hybrid normal\n50 24 19\n"
    )
    (tmp_path / "table1_overhead.txt").write_text("== Table I ==\n...\n")
    return tmp_path


class TestBuildReport:
    def test_counts_present_artifacts(self, results_dir):
        markdown, present, expected = build_report(results_dir)
        assert present == 2
        assert expected == len(EXPECTED_ARTIFACTS)

    def test_present_sections_embed_tables(self, results_dir):
        markdown, _, _ = build_report(results_dir)
        assert "CR hybrid normal" in markdown
        assert "- [x] Fig. 7 — SNR/PRD vs CR" in markdown

    def test_missing_sections_flagged(self, results_dir):
        markdown, _, _ = build_report(results_dir)
        assert "- [ ] Fig. 11 — power breakdown" in markdown
        assert "missing — run `pytest benchmarks/" in markdown

    def test_empty_directory(self, tmp_path):
        markdown, present, _ = build_report(tmp_path)
        assert present == 0
        assert "Artifacts present: 0/" in markdown


class TestBenchSweepSection:
    def test_absent_artifact_renders_nothing(self, results_dir):
        markdown, present, _ = build_report(results_dir)
        assert "Engine throughput" not in markdown
        assert present == 2

    def test_present_artifact_renders_without_counting(self, results_dir):
        import json

        (results_dir / "BENCH_sweep.json").write_text(json.dumps({
            "workers": 2, "cpu_count": 4, "windows_total": 24,
            "parallel": {"wall_clock_s": 1.5, "windows_per_sec": 16.0},
            "speedup_windows_per_sec": 1.8,
            "results_equal_serial": True,
        }))
        markdown, present, _ = build_report(results_dir)
        assert present == 2  # informational, not a coverage artifact
        assert "## Engine throughput (`repro bench`)" in markdown
        assert "speedup over serial: 1.80x" in markdown

    def test_corrupt_artifact_ignored(self, results_dir):
        (results_dir / "BENCH_sweep.json").write_text("{broken")
        markdown, _, _ = build_report(results_dir)
        assert "Engine throughput" not in markdown


class TestBenchBsblSection:
    def test_absent_artifact_renders_nothing(self, results_dir):
        markdown, _, _ = build_report(results_dir)
        assert "Bayesian recovery family" not in markdown

    def test_present_artifact_renders_comparison(self, results_dir):
        import json

        (results_dir / "BENCH_bsbl.json").write_text(json.dumps({
            "cells": [
                {"method": "hybrid", "cr_percent": 50.0,
                 "mean_snr_db": 25.7, "mean_prd_percent": 5.3},
                {"method": "bsbl-dequant", "cr_percent": 50.0,
                 "mean_snr_db": 27.3, "mean_prd_percent": 4.4},
            ],
            "comparison": [
                {"cr_percent": 50.0, "best_bayes_method": "bsbl-dequant",
                 "bayes_gain_db": 1.64, "bayes_wins": True},
            ],
            "agreement": {
                "max_abs_alpha_dev": 1.1e-9, "tolerance": 1e-8,
                "within_tolerance": True,
            },
        }))
        markdown, present, _ = build_report(results_dir)
        assert present == 2  # informational, not a coverage artifact
        assert "## Bayesian recovery family (`repro bench`)" in markdown
        assert "`bsbl-dequant` beats hybrid by +1.64 dB" in markdown
        assert "max |dalpha| 1.10e-09" in markdown

    def test_corrupt_artifact_ignored(self, results_dir):
        (results_dir / "BENCH_bsbl.json").write_text("{broken")
        markdown, _, _ = build_report(results_dir)
        assert "Bayesian recovery family" not in markdown


class TestWriteReport:
    def test_default_location(self, results_dir):
        out = write_report(results_dir)
        assert out == results_dir / "REPORT.md"
        assert out.read_text().startswith("# Reproduction report")

    def test_custom_location(self, results_dir, tmp_path):
        target = tmp_path / "custom.md"
        out = write_report(results_dir, target)
        assert out == target
        assert target.exists()


class TestCliIntegration:
    def test_report_subcommand(self, results_dir, capsys):
        from repro.cli import main

        rc = main(["report", "--results", str(results_dir)])
        assert rc == 0
        assert (results_dir / "REPORT.md").exists()
        assert "artifacts present" in capsys.readouterr().out

    def test_strict_mode_fails_on_missing(self, results_dir):
        from repro.cli import main

        rc = main(["report", "--results", str(results_dir), "--strict"])
        assert rc == 1

    def test_full_results_pass_strict(self, tmp_path):
        from repro.cli import main

        for stem, _ in EXPECTED_ARTIFACTS:
            (tmp_path / f"{stem}.txt").write_text("== t ==\nrow\n")
        rc = main(["report", "--results", str(tmp_path), "--strict"])
        assert rc == 0
