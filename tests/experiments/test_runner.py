"""Tests of the sweep runner's aggregation types."""

import numpy as np
import pytest

from repro.core.pipeline import RecordOutcome, WindowOutcome
from repro.experiments.runner import (
    CrSweepPoint,
    ExperimentScale,
    FULL_SCALE,
    PAPER_CR_VALUES,
    SMALL_SCALE,
)
from repro.metrics.compression import CompressionBudget


def _outcome(name: str, prds):
    windows = tuple(
        WindowOutcome(
            window_index=i,
            prd_percent=p,
            snr_db=-20 * np.log10(0.01 * p),
            budget=CompressionBudget(512, 6144, 1152, 400, 96),
            solver_iterations=100,
            solver_converged=True,
        )
        for i, p in enumerate(prds)
    )
    return RecordOutcome(record_name=name, method="hybrid", windows=windows)


class TestPaperCrAxis:
    def test_matches_fig7_axis(self):
        assert PAPER_CR_VALUES == (50.0, 56.0, 62.0, 69.0, 75.0, 81.0, 88.0, 94.0, 97.0)


class TestScales:
    def test_small_is_subset_of_full(self):
        assert set(SMALL_SCALE.record_names) <= set(FULL_SCALE.record_names)
        assert len(FULL_SCALE.record_names) == 48

    def test_records_loader(self):
        scale = ExperimentScale(record_names=("100",), duration_s=2.0, max_windows=1)
        records = scale.records()
        assert len(records) == 1
        assert records[0].duration_s == pytest.approx(2.0)


class TestCrSweepPoint:
    def _point(self):
        return CrSweepPoint(
            cr_percent=81.0,
            method="hybrid",
            n_measurements=96,
            outcomes=(
                _outcome("100", [5.0, 10.0]),
                _outcome("101", [20.0]),
            ),
        )

    def test_mean_snr_is_grand_mean_of_record_means(self):
        point = self._point()
        # record 100: mean of 26.02 and 20 dB = 23.01; record 101: 13.98.
        expected = np.mean([
            np.mean([-20 * np.log10(0.05), -20 * np.log10(0.10)]),
            -20 * np.log10(0.20),
        ])
        assert point.mean_snr_db == pytest.approx(expected, abs=0.01)

    def test_mean_prd(self):
        point = self._point()
        assert point.mean_prd_percent == pytest.approx(
            np.mean([7.5, 20.0])
        )

    def test_per_record_snrs(self):
        point = self._point()
        snrs = point.per_record_snrs
        assert set(snrs) == {"100", "101"}
        assert snrs["100"] > snrs["101"]

    def test_net_cr(self):
        point = self._point()
        budget = CompressionBudget(512, 6144, 1152, 400, 96)
        assert point.net_cr_percent == pytest.approx(budget.net_cr_percent)
