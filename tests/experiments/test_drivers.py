"""Tests of the experiment drivers (small instances, shape assertions)."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.experiments import (
    ExperimentScale,
    run_fig11,
    run_fig2,
    run_fig4,
    run_fig7,
    run_fig8,
    run_fig9,
    run_lowres_tradeoff,
)
from repro.experiments.fig8 import box_stats
from repro.experiments.runner import active_scale, sweep_compression_ratios
from repro.recovery.pdhg import PdhgSettings

TINY = ExperimentScale(record_names=("100", "101"), duration_s=8.0, max_windows=1)

FAST_CONFIG = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=500, tol=5e-4),
)


class TestFig2:
    def test_bounds_contain_original(self):
        data = run_fig2()
        assert data.bounds_contain_original()

    def test_band_width_is_step(self):
        data = run_fig2(lowres_bits=7)
        assert data.bound_width_adu == 16.0

    def test_lowres_is_coarse(self):
        data = run_fig2()
        assert len(np.unique(data.lowres_adu)) < len(np.unique(data.original_adu))

    def test_window_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            run_fig2(window_start_s=100.0, duration_s=10.0)


class TestFig4:
    def test_zero_mass_monotone(self):
        data = run_fig4(scale=TINY)
        assert data.is_monotone_in_resolution()

    def test_pdfs_normalized_within_support(self):
        data = run_fig4(scale=TINY)
        for bits, (support, probs) in data.pdfs.items():
            assert probs.sum() <= 1.0 + 1e-9
            assert probs.sum() > 0.5  # most mass inside ±15


class TestLowresTradeoff:
    def test_monotonicity_properties(self):
        data = run_lowres_tradeoff(resolutions=(4, 6, 8), scale=TINY)
        assert data.overhead_is_monotone()
        assert data.storage_is_monotone()

    def test_row_lookup(self):
        data = run_lowres_tradeoff(resolutions=(4, 6), scale=TINY)
        assert data.row(6).resolution_bits == 6
        with pytest.raises(KeyError):
            data.row(9)

    def test_bits_per_sample_below_raw(self):
        data = run_lowres_tradeoff(resolutions=(7,), scale=TINY)
        assert data.row(7).bits_per_sample < 7.0


class TestFig7AndFig8:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_compression_ratios(
            FAST_CONFIG, cr_values=(60.0, 90.0), scale=TINY
        )

    def test_fig7_shape(self, sweep):
        from repro.experiments.fig7 import Fig7Data, _series

        data = Fig7Data(
            hybrid=_series(sweep, "hybrid"),
            normal=_series(sweep, "normal"),
            points=tuple(sweep),
        )
        assert data.hybrid_dominates()
        assert len(data.hybrid.cr_percent) == 2

    def test_fig8_reuses_sweep(self, sweep):
        data = run_fig8(points=sweep)
        assert len(data.hybrid) == 2
        assert len(data.normal) == 2
        for stats in data.hybrid + data.normal:
            assert stats.whisker_low <= stats.q25 <= stats.median
            assert stats.median <= stats.q75 <= stats.whisker_high

    def test_box_stats_outliers(self):
        values = [10.0] * 10 + [100.0]
        stats = box_stats(values, 50.0, "hybrid")
        assert 100.0 in stats.outliers
        assert stats.whisker_high == 10.0


class TestFig9:
    def test_panels_and_monotonicity(self):
        data = run_fig9(
            config=FAST_CONFIG, deltas=(0.12, 0.25), duration_s=8.0
        )
        assert len(data.panels) == 2
        assert data.panels[0].delta < data.panels[1].delta
        assert data.snr_improves_with_delta()
        for p in data.panels:
            assert p.original_mv.shape == p.reconstructed_mv.shape

    def test_bad_window_index(self):
        with pytest.raises(ValueError):
            run_fig9(config=FAST_CONFIG, window_index=999, duration_s=8.0)


class TestFig11:
    def test_paper_claims(self):
        data = run_fig11()
        assert data.amplifier_dominates()
        assert data.power_scales_linearly()
        assert data.gain_at(360.0) == pytest.approx(2.5, rel=0.05)
        assert data.lowres_fraction_at_360hz < 1e-3


class TestScaleSelection:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
        assert len(active_scale().record_names) == 48
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert len(active_scale().record_names) == 8
        monkeypatch.setenv("REPRO_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            active_scale()
