"""Tests of the empirical phase-transition measurement."""

import pytest

from repro.recovery.pdhg import PdhgSettings
from repro.recovery.phase_transition import (
    empirical_transition,
    success_probability,
)

FAST = PdhgSettings(max_iter=2500, tol=1e-6)


class TestSuccessProbability:
    def test_easy_regime_succeeds(self):
        # s=2 of n=48 from m=32: deep inside the success region.
        rate = success_probability(
            48, 32, 2, n_trials=5, seed=0, settings=FAST
        )
        assert rate == 1.0

    def test_impossible_regime_fails(self):
        # s = m: no null-space face survives; recovery cannot be exact.
        rate = success_probability(
            48, 12, 12, n_trials=5, seed=1, settings=FAST
        )
        assert rate < 0.5

    def test_monotone_in_m(self):
        """More measurements cannot hurt (statistically)."""
        hard = success_probability(48, 12, 6, n_trials=8, seed=2, settings=FAST)
        easy = success_probability(48, 36, 6, n_trials=8, seed=2, settings=FAST)
        assert easy >= hard

    def test_validation(self):
        with pytest.raises(ValueError):
            success_probability(10, 12, 2)
        with pytest.raises(ValueError):
            success_probability(10, 8, 0)
        with pytest.raises(ValueError):
            success_probability(10, 8, 2, n_trials=0)


class TestEmpiricalTransition:
    def test_curve_shape(self):
        """The Donoho-Tanner curve rises with delta."""
        points = empirical_transition(
            n=48,
            deltas=(0.25, 0.75),
            rhos=(0.1, 0.3, 0.5, 0.7, 0.9),
            n_trials=6,
        )
        assert len(points) == 2
        lo, hi = points
        assert hi.rho_star >= lo.rho_star

    def test_rates_recorded(self):
        points = empirical_transition(
            n=32, deltas=(0.5,), rhos=(0.2, 0.8), n_trials=4
        )
        (pt,) = points
        assert len(pt.success_at) == 2
        # Low rho easier than high rho.
        assert pt.success_at[0][1] >= pt.success_at[1][1]

    def test_validation(self):
        with pytest.raises(ValueError):
            empirical_transition(n=4)
