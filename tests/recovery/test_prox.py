"""Tests of proximal operators and projections (variational properties)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.recovery.prox import project_box, project_l2_ball, soft_threshold

vec = st.lists(
    st.floats(-100, 100, allow_nan=False), min_size=1, max_size=40
).map(lambda xs: np.asarray(xs))


class TestSoftThreshold:
    def test_known_values(self):
        v = np.array([3.0, -2.0, 0.5, 0.0])
        assert np.allclose(soft_threshold(v, 1.0), [2.0, -1.0, 0.0, 0.0])

    def test_zero_threshold_is_identity(self, rng):
        v = rng.standard_normal(10)
        assert np.allclose(soft_threshold(v, 0.0), v)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            soft_threshold(np.ones(3), -0.1)

    @settings(max_examples=40, deadline=None)
    @given(v=vec, t=st.floats(0, 10, allow_nan=False))
    def test_prox_optimality(self, v, t):
        """p = prox_{t|.|_1}(v) minimizes 0.5||z-v||^2 + t||z||_1: check it
        beats random perturbations of itself."""
        p = soft_threshold(v, t)

        def objective(z):
            return 0.5 * np.sum((z - v) ** 2) + t * np.sum(np.abs(z))

        base = objective(p)
        rng = np.random.default_rng(0)
        for _ in range(5):
            assert base <= objective(p + 0.1 * rng.standard_normal(v.size)) + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(v=vec, w=vec, t=st.floats(0, 5, allow_nan=False))
    def test_nonexpansive(self, v, w, t):
        n = min(v.size, w.size)
        a = soft_threshold(v[:n], t)
        b = soft_threshold(w[:n], t)
        assert np.linalg.norm(a - b) <= np.linalg.norm(v[:n] - w[:n]) + 1e-9


class TestL2BallProjection:
    def test_inside_unchanged(self):
        v = np.array([0.1, 0.2])
        c = np.zeros(2)
        assert np.allclose(project_l2_ball(v, c, 1.0), v)

    def test_outside_lands_on_boundary(self, rng):
        c = rng.standard_normal(8)
        v = c + 5.0 * rng.standard_normal(8)
        p = project_l2_ball(v, c, 2.0)
        assert np.linalg.norm(p - c) == pytest.approx(2.0)

    def test_zero_radius_returns_center(self, rng):
        c = rng.standard_normal(5)
        v = c + rng.standard_normal(5)
        assert np.allclose(project_l2_ball(v, c, 0.0), c)

    def test_idempotent(self, rng):
        c = rng.standard_normal(6)
        v = c + 10 * rng.standard_normal(6)
        p1 = project_l2_ball(v, c, 1.5)
        p2 = project_l2_ball(p1, c, 1.5)
        assert np.allclose(p1, p2)

    def test_projection_is_closest_point(self, rng):
        c = np.zeros(4)
        v = rng.standard_normal(4) * 10
        p = project_l2_ball(v, c, 1.0)
        for _ in range(10):
            z = rng.standard_normal(4)
            z = z / max(np.linalg.norm(z), 1.0)  # a feasible point
            assert np.linalg.norm(v - p) <= np.linalg.norm(v - z) + 1e-9

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            project_l2_ball(np.ones(3), np.ones(4), 1.0)


class TestBoxProjection:
    def test_clips_elementwise(self):
        v = np.array([-2.0, 0.5, 3.0])
        p = project_box(v, np.zeros(3), np.ones(3))
        assert np.allclose(p, [0.0, 0.5, 1.0])

    def test_scalar_bounds_broadcast(self):
        v = np.array([-5.0, 5.0])
        assert np.allclose(project_box(v, -1.0, 1.0), [-1.0, 1.0])

    def test_idempotent(self, rng):
        v = rng.standard_normal(20) * 4
        lo, hi = -np.ones(20), np.ones(20)
        p = project_box(v, lo, hi)
        assert np.allclose(project_box(p, lo, hi), p)

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            project_box(np.zeros(2), np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_degenerate_box_pins_value(self):
        p = project_box(np.array([7.0]), np.array([2.0]), np.array([2.0]))
        assert p[0] == 2.0
