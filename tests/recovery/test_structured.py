"""Tests of structured/reweighted recovery (the paper's §I extension)."""

import numpy as np
import pytest

from repro.metrics.quality import snr_db
from repro.recovery.bpdn import solve_bpdn
from repro.recovery.pdhg import PdhgSettings
from repro.recovery.structured import (
    solve_model_iht,
    solve_reweighted_bpdn,
    solve_reweighted_hybrid,
    tree_project,
    wavelet_tree_parents,
)
from repro.sensing.matrices import bernoulli_matrix, gaussian_matrix
from repro.wavelets.dwt import coeff_slices
from repro.wavelets.operators import DctBasis, WaveletBasis

SETTINGS = PdhgSettings(max_iter=2500, tol=1e-5)


class TestTreeParents:
    def test_layout(self):
        parents = wavelet_tree_parents(16, 2)
        slices = coeff_slices(16, 2)  # [a2:4, d2:4, d1:8]
        # Approx and coarsest detail are roots.
        assert np.all(parents[slices[0]] == -1)
        assert np.all(parents[slices[1]] == -1)
        # d1[i] -> d2[i//2].
        d1 = slices[2]
        d2 = slices[1]
        for i in range(8):
            assert parents[d1.start + i] == d2.start + i // 2

    def test_every_non_root_has_coarser_parent(self):
        parents = wavelet_tree_parents(64, 4)
        for idx, p in enumerate(parents):
            if p >= 0:
                assert p < idx


class TestTreeProject:
    def test_respects_rooted_structure(self):
        parents = wavelet_tree_parents(16, 2)
        alpha = np.zeros(16)
        alpha[12] = 5.0  # a fine coefficient with a (zero) parent
        alpha[0] = 1.0  # a root
        out = tree_project(alpha, 1, parents)
        # The fine coefficient is inadmissible (parent unselected);
        # the root must win despite its smaller magnitude.
        assert out[12] == 0.0
        assert out[0] == 1.0

    def test_selects_chain(self):
        parents = wavelet_tree_parents(16, 2)
        alpha = np.zeros(16)
        # Parent (in d2) and child (in d1): both selectable as a chain.
        slices = coeff_slices(16, 2)
        parent_idx = slices[1].start
        child_idx = slices[2].start  # child of parent (i//2 == 0)
        alpha[parent_idx] = 1.0
        alpha[child_idx] = 3.0
        out = tree_project(alpha, 2, parents)
        assert out[parent_idx] == 1.0
        assert out[child_idx] == 3.0

    def test_k_bound(self):
        parents = wavelet_tree_parents(16, 2)
        alpha = np.arange(16, dtype=float) + 1
        out = tree_project(alpha, 5, parents)
        assert np.count_nonzero(out) == 5

    def test_validation(self):
        parents = wavelet_tree_parents(16, 2)
        with pytest.raises(ValueError):
            tree_project(np.zeros(16), 0, parents)
        with pytest.raises(ValueError):
            tree_project(np.zeros(8), 4, parents)


class TestModelIht:
    def test_recovers_tree_sparse_signal(self):
        """A signal whose support IS a rooted tree must be recovered."""
        rng = np.random.default_rng(0)
        n, m = 128, 64
        basis = WaveletBasis(n, "haar", levels=3)
        parents = wavelet_tree_parents(n, 3)
        alpha = np.zeros(n)
        # Build a rooted support: roots plus children of selected nodes.
        alpha[0] = 2.0
        slices = coeff_slices(n, 3)
        d3 = slices[1].start
        alpha[d3] = 1.5  # coarsest detail root
        alpha[slices[2].start] = 1.0  # its child
        alpha[slices[3].start] = 0.8  # grandchild
        phi = gaussian_matrix(m, n, seed=1)
        y = phi @ basis.synthesize(alpha)
        r = solve_model_iht(phi, basis, y, k=4)
        assert np.linalg.norm(r.alpha - alpha) < 1e-3

    def test_beats_plain_iht_on_ecg(self, record_clean):
        """On real (tree-structured) ECG, the model prior should not lose
        to unstructured IHT at matched k."""
        from repro.recovery.greedy import solve_iht

        n, m, k = 128, 48, 12
        basis = WaveletBasis(n, "db4")
        x = record_clean.signal_mv()[:n]
        x = x - x.mean()
        phi = bernoulli_matrix(m, n, seed=2)
        y = phi @ x
        model = solve_model_iht(phi, basis, y, k=k)
        plain = solve_iht(phi, basis, y, k=k)
        assert snr_db(x, model.x) > snr_db(x, plain.x) - 1.0

    def test_requires_wavelet_basis(self):
        phi = bernoulli_matrix(16, 64, seed=3)
        with pytest.raises(TypeError):
            solve_model_iht(phi, DctBasis(64), np.zeros(16), k=4)


class TestReweighted:
    def _instance(self, seed=0, m=40, n=128, k=10):
        rng = np.random.default_rng(seed)
        basis = WaveletBasis(n, "db4")
        alpha = np.zeros(n)
        alpha[rng.choice(n, k, replace=False)] = rng.standard_normal(k) * 2
        phi = bernoulli_matrix(m, n, seed=seed)
        x = basis.synthesize(alpha)
        return phi, basis, alpha, x, phi @ x

    def test_single_round_equals_bpdn(self):
        phi, basis, alpha, x, y = self._instance()
        rw = solve_reweighted_bpdn(
            phi, basis, y, 1e-5, n_reweights=1, settings=SETTINGS
        )
        plain = solve_bpdn(phi, basis, y, 1e-5, settings=SETTINGS)
        assert np.allclose(rw.alpha, plain.alpha, atol=1e-6)

    def test_reweighting_improves_hard_instance(self):
        """At m barely above k, reweighting recovers what plain L1 misses
        (averaged over instances — the CWB paper's headline effect)."""
        gains = []
        for seed in range(3):
            phi, basis, alpha, x, y = self._instance(seed=seed, m=36, k=12)
            plain = solve_bpdn(
                phi, basis, y, 1e-6, settings=PdhgSettings(max_iter=4000, tol=1e-6)
            )
            rw = solve_reweighted_bpdn(
                phi, basis, y, 1e-6, n_reweights=4,
                settings=PdhgSettings(max_iter=4000, tol=1e-6),
            )
            err_plain = np.linalg.norm(plain.alpha - alpha)
            err_rw = np.linalg.norm(rw.alpha - alpha)
            gains.append(err_plain - err_rw)
        assert np.mean(gains) > 0.0

    def test_reweighted_hybrid_respects_box(self, record_clean):
        basis = WaveletBasis(128, "db4")
        x = record_clean.signal_mv()[:128]
        x = x - x.mean()
        phi = bernoulli_matrix(24, 128, seed=5)
        step = 0.08
        lower = np.floor(x / step) * step
        upper = lower + step
        r = solve_reweighted_hybrid(
            phi, basis, phi @ x, 1e-3, lower, upper,
            n_reweights=2, settings=SETTINGS,
        )
        slack = 0.25 * step  # first-order solver: box met to tolerance
        assert np.all(r.x >= lower - slack)
        assert np.all(r.x <= upper + slack)
        # Quality floor set by the 0.08 mV box on this short quiet window.
        assert snr_db(x, r.x) > 8.0

    def test_validation(self):
        phi, basis, _, _, y = self._instance()
        with pytest.raises(ValueError):
            solve_reweighted_bpdn(phi, basis, y, 0.1, n_reweights=0)
        with pytest.raises(ValueError):
            solve_reweighted_bpdn(phi, basis, y, 0.1, epsilon=0.0)


class TestWeightedEngine:
    def test_weights_validated(self, basis_128):
        from repro.recovery.bpdn import ball_block
        from repro.recovery.pdhg import solve_l1_constrained
        from repro.recovery.problem import CsProblem

        phi = bernoulli_matrix(16, 128, seed=6)
        prob = CsProblem(phi, basis_128)
        block = ball_block(prob, np.zeros(16), 0.1)
        with pytest.raises(ValueError):
            solve_l1_constrained(128, [block], weights=np.ones(5))
        with pytest.raises(ValueError):
            solve_l1_constrained(128, [block], weights=-np.ones(128))

    def test_infinite_weight_forces_zero(self, basis_128):
        """A huge weight on one coefficient should zero it out."""
        from repro.recovery.bpdn import ball_block
        from repro.recovery.pdhg import solve_l1_constrained
        from repro.recovery.problem import CsProblem

        rng = np.random.default_rng(7)
        phi = bernoulli_matrix(64, 128, seed=7)
        prob = CsProblem(phi, basis_128)
        alpha_true = np.zeros(128)
        alpha_true[[3, 40]] = [2.0, -1.5]
        y = prob.forward(alpha_true)
        weights = np.ones(128)
        weights[3] = 1e6
        r = solve_l1_constrained(
            128,
            [ball_block(prob, y, 2.5)],  # wide ball: can drop coeff 3
            weights=weights,
            settings=PdhgSettings(max_iter=3000, tol=1e-6),
            synthesize=prob.basis.synthesize,
        )
        assert abs(r.alpha[3]) < 1e-3
