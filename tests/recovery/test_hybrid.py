"""Tests of the hybrid (box-constrained) recovery — the paper's Eq. 1."""

import numpy as np
import pytest

from repro.metrics.quality import snr_db
from repro.recovery.bpdn import solve_bpdn
from repro.recovery.hybrid import solve_hybrid
from repro.recovery.pdhg import PdhgSettings
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix

SETTINGS = PdhgSettings(max_iter=2500, tol=1e-5)


def _window(record, basis, start=0):
    n = basis.n
    x = record.signal_mv()[start : start + n]
    return x - float(np.mean(x))


def _bounds_for(x, step):
    lower = np.floor(x / step) * step
    return lower, lower + step


class TestEq1Solution:
    def test_solution_respects_box(self, record_clean, basis_128):
        x = _window(record_clean, basis_128)
        phi = bernoulli_matrix(32, 128, seed=0)
        lower, upper = _bounds_for(x, 0.08)
        result = solve_hybrid(
            phi, basis_128, phi @ x, 1e-3, lower, upper, settings=SETTINGS
        )
        tol = 1e-2
        assert np.all(result.x >= lower - tol)
        assert np.all(result.x <= upper + tol)

    def test_solution_respects_ball(self, record_clean, basis_128):
        x = _window(record_clean, basis_128)
        phi = bernoulli_matrix(32, 128, seed=1)
        y = phi @ x
        sigma = 0.05
        lower, upper = _bounds_for(x, 0.08)
        result = solve_hybrid(
            phi, basis_128, y, sigma, lower, upper, settings=SETTINGS
        )
        assert result.residual_norm <= sigma * 1.10

    def test_beats_normal_cs_at_high_compression(self, record_clean, basis_128):
        """The paper's central claim at window scale."""
        x = _window(record_clean, basis_128)
        phi = bernoulli_matrix(16, 128, seed=2)  # 87.5% CR
        y = phi @ x
        lower, upper = _bounds_for(x, 0.08)
        hybrid = solve_hybrid(
            phi, basis_128, y, 1e-3, lower, upper, settings=SETTINGS
        )
        normal = solve_bpdn(phi, basis_128, y, 1e-3, settings=SETTINGS)
        assert snr_db(x, hybrid.x) > snr_db(x, normal.x) + 5.0

    def test_tight_box_pins_solution(self, record_clean, basis_128):
        """As d -> 0 the box alone determines x regardless of y."""
        x = _window(record_clean, basis_128)
        phi = bernoulli_matrix(8, 128, seed=3)
        lower, upper = _bounds_for(x, 1e-4)
        result = solve_hybrid(
            phi, basis_128, phi @ x, 1.0, lower, upper, settings=SETTINGS
        )
        assert np.max(np.abs(result.x - x)) < 5e-3

    def test_wide_box_reduces_to_bpdn(self, record_clean, basis_128):
        """A vacuous box must reproduce the unconstrained BPDN solution."""
        x = _window(record_clean, basis_128)
        phi = bernoulli_matrix(64, 128, seed=4)
        y = phi @ x
        huge = 1e6 * np.ones(128)
        strict = PdhgSettings(max_iter=8000, tol=1e-7)
        hybrid = solve_hybrid(phi, basis_128, y, 1e-3, -huge, huge, settings=strict)
        normal = solve_bpdn(phi, basis_128, y, 1e-3, settings=strict)
        assert snr_db(x, hybrid.x) == pytest.approx(snr_db(x, normal.x), abs=1.5)


class TestValidation:
    def test_empty_box_rejected(self, basis_128):
        phi = bernoulli_matrix(16, 128, seed=5)
        lo = np.ones(128)
        hi = np.zeros(128)
        with pytest.raises(ValueError):
            solve_hybrid(phi, basis_128, np.zeros(16), 0.1, lo, hi)

    def test_wrong_bound_shape_rejected(self, basis_128):
        phi = bernoulli_matrix(16, 128, seed=6)
        with pytest.raises(ValueError):
            solve_hybrid(
                phi, basis_128, np.zeros(16), 0.1, np.zeros(5), np.ones(5)
            )

    def test_problem_reuse_consistent(self, record_clean, basis_128):
        x = _window(record_clean, basis_128)
        phi = bernoulli_matrix(32, 128, seed=7)
        prob = CsProblem(phi, basis_128)
        lower, upper = _bounds_for(x, 0.08)
        a = solve_hybrid(
            phi, basis_128, phi @ x, 1e-3, lower, upper,
            settings=SETTINGS, problem=prob,
        )
        b = solve_hybrid(
            phi, basis_128, phi @ x, 1e-3, lower, upper, settings=SETTINGS
        )
        assert np.allclose(a.x, b.x, atol=1e-9)

    def test_solver_label(self, record_clean, basis_128):
        x = _window(record_clean, basis_128)
        phi = bernoulli_matrix(32, 128, seed=8)
        lower, upper = _bounds_for(x, 0.1)
        result = solve_hybrid(
            phi, basis_128, phi @ x, 1e-2, lower, upper, settings=SETTINGS
        )
        assert result.solver == "pdhg-hybrid"
        assert "violation_1" in result.info
