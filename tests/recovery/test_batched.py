"""Differential tests: the batched engine against the per-window loop.

The batched solvers are the scalar solvers' arithmetic reordered into
GEMMs, so their solutions must track the per-window loop to BLAS
rounding.  These tests pin the agreement at 1e-8 (absolute, coefficient
level) over the solver × CR × warm-start grid — far looser than the
observed ~1e-12, far tighter than anything a logic bug would pass.
"""

import numpy as np
import pytest

from repro.recovery.batched import (
    recover_windows,
    recover_windows_loop,
    solve_batch,
    solve_bpdn_admm_batch,
    solve_fista_batch,
    stack_measurements,
)
from repro.recovery.fista import lambda_max, solve_fista
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix
from repro.wavelets.operators import WaveletBasis

#: Max per-coefficient disagreement allowed between batched and loop
#: solutions (see module docstring).
AGREEMENT_ATOL = 1e-8

#: Measurement counts at n=128 — a 3-point CR grid (75%, ~69%, 50%).
CR_MEASUREMENTS = (32, 40, 64)

N = 128
N_WINDOWS = 5


@pytest.fixture(scope="module")
def windows():
    """A shared (problem, ys) set per m — deterministic synthetic windows."""
    rng = np.random.default_rng(42)
    basis = WaveletBasis(N, "db4")
    out = {}
    for m in CR_MEASUREMENTS:
        problem = CsProblem(bernoulli_matrix(m, N, seed=7), basis)
        ys = []
        for _ in range(N_WINDOWS):
            alpha = np.zeros(N)
            alpha[rng.choice(N, 8, replace=False)] = rng.standard_normal(8) * 2.0
            x = basis.synthesize(alpha)
            ys.append(problem.phi @ x + 0.01 * rng.standard_normal(m))
        out[m] = (problem, ys)
    return out


def _params(problem, ys, method):
    if method == "admm":
        return {"sigma": 0.05 * float(np.linalg.norm(ys[0])), "lam": None}
    return {"sigma": None, "lam": 0.05 * lambda_max(problem, ys[0])}


class TestBatchedMatchesLoop:
    @pytest.mark.parametrize("method", ["fista", "admm"])
    @pytest.mark.parametrize("m", CR_MEASUREMENTS)
    @pytest.mark.parametrize("warm_start", [False, True])
    def test_agreement(self, windows, method, m, warm_start):
        problem, ys = windows[m]
        kwargs = dict(
            method=method,
            batch_size=2,  # multiple chunks → warm-start carries exercised
            warm_start=warm_start,
            max_iter=400,
            tol=1e-9,
            **_params(problem, ys, method),
        )
        batched = recover_windows(problem, ys, **kwargs)
        loop = recover_windows_loop(problem, ys, **kwargs)
        assert len(batched) == len(loop) == len(ys)
        for b, s in zip(batched, loop):
            assert np.max(np.abs(b.alpha - s.alpha)) < AGREEMENT_ATOL
            assert np.max(np.abs(b.x - s.x)) < AGREEMENT_ATOL

    @pytest.mark.parametrize("method", ["fista", "admm"])
    def test_fresh_problem_loop_agrees_too(self, windows, method):
        """The bench baseline (fresh operator per window) is the same
        arithmetic again — deterministic construction means the comparison
        chain batched ↔ cached-loop ↔ fresh-loop is consistent."""
        problem, ys = windows[40]
        kwargs = dict(
            method=method, batch_size=32, warm_start=True,
            max_iter=300, tol=1e-9, **_params(problem, ys, method),
        )
        cached = recover_windows_loop(problem, ys, **kwargs)
        fresh = recover_windows_loop(problem, ys, fresh_problem=True, **kwargs)
        for c, f in zip(cached, fresh):
            assert np.max(np.abs(c.alpha - f.alpha)) < AGREEMENT_ATOL


class TestBatchSolvers:
    def test_fista_single_column_matches_scalar(self, windows):
        problem, ys = windows[40]
        lam = 0.05 * lambda_max(problem, ys[0])
        batch = solve_fista_batch(problem, ys[:1], lam, max_iter=300, tol=1e-9)
        scalar = solve_fista(
            problem.phi, problem.basis, ys[0], lam,
            max_iter=300, tol=1e-9, problem=problem,
        )
        assert np.max(np.abs(batch[0].alpha - scalar.alpha)) < AGREEMENT_ATOL
        assert batch[0].iterations == scalar.iterations
        assert batch[0].converged == scalar.converged

    def test_convergence_masking_freezes_columns(self, windows):
        """A converged column's final iterate must not drift while
        stragglers keep iterating: solving it alone gives the same answer
        as solving it inside a mixed stack."""
        problem, ys = windows[40]
        lam = 0.05 * lambda_max(problem, ys[0])
        together = solve_fista_batch(problem, ys, lam, max_iter=400, tol=1e-6)
        alone = [
            solve_fista_batch(problem, [y], lam, max_iter=400, tol=1e-6)[0]
            for y in ys
        ]
        for t, a in zip(together, alone):
            assert t.iterations == a.iterations
            assert np.max(np.abs(t.alpha - a.alpha)) < AGREEMENT_ATOL

    def test_admm_results_respect_ball(self, windows):
        problem, ys = windows[64]
        sigma = 0.05 * float(np.linalg.norm(ys[0]))
        results = solve_bpdn_admm_batch(problem, ys, sigma, max_iter=2000)
        for r in results:
            assert r.residual_norm <= sigma * 1.10

    def test_warm_start_shapes(self, windows):
        problem, ys = windows[40]
        lam = 0.05 * lambda_max(problem, ys[0])
        seed = np.ones(N) * 0.1
        broadcast = solve_fista_batch(
            problem, ys[:2], lam, alpha0=seed, max_iter=50
        )
        stacked = solve_fista_batch(
            problem, ys[:2], lam,
            alpha0=np.stack([seed, seed], axis=1), max_iter=50,
        )
        for b, s in zip(broadcast, stacked):
            assert np.array_equal(b.alpha, s.alpha)

    def test_dispatch_and_validation(self, windows):
        problem, ys = windows[40]
        with pytest.raises(ValueError):
            solve_batch(problem, ys, method="admm")  # needs sigma
        with pytest.raises(ValueError):
            solve_batch(problem, ys, method="fista")  # needs lam
        with pytest.raises(ValueError):
            solve_batch(problem, ys, method="pdhg", sigma=1.0)
        with pytest.raises(ValueError):
            solve_fista_batch(problem, ys, lam=0.0)
        with pytest.raises(ValueError):
            solve_bpdn_admm_batch(problem, ys, sigma=-1.0)

    def test_stack_measurements_validation(self, windows):
        problem, ys = windows[40]
        stacked = stack_measurements(problem, ys)
        assert stacked.shape == (problem.m, len(ys))
        assert np.array_equal(stacked[:, 2], ys[2])
        with pytest.raises(ValueError):
            stack_measurements(problem, [])
        with pytest.raises(ValueError):
            stack_measurements(problem, [np.zeros(problem.m - 1)])


class TestRecoverWindows:
    def test_chunk_warm_start_schedule(self, windows):
        """Chunk c+1's seed is the last window of chunk c — verified by
        reproducing the schedule by hand with single solves."""
        problem, ys = windows[40]
        lam = 0.05 * lambda_max(problem, ys[0])
        engine = recover_windows(
            problem, ys[:4], method="fista", lam=lam,
            batch_size=2, warm_start=True, max_iter=200, tol=1e-9,
        )
        first = solve_fista_batch(
            problem, ys[:2], lam, max_iter=200, tol=1e-9
        )
        second = solve_fista_batch(
            problem, ys[2:4], lam,
            alpha0=first[-1].alpha, max_iter=200, tol=1e-9,
        )
        manual = first + second
        for e, m_ in zip(engine, manual):
            assert np.array_equal(e.alpha, m_.alpha)

    def test_validation(self, windows):
        problem, ys = windows[40]
        with pytest.raises(ValueError):
            recover_windows(problem, ys, method="fista", lam=1.0, batch_size=0)
        with pytest.raises(ValueError):
            recover_windows_loop(
                problem, ys, method="fista", lam=1.0, batch_size=0
            )
