"""Tests of BPDN recovery (normal CS) on the PDHG engine."""

import numpy as np
import pytest

from repro.recovery.bpdn import solve_bpdn
from repro.recovery.pdhg import PdhgSettings
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix, gaussian_matrix
from repro.wavelets.operators import IdentityBasis, WaveletBasis


def _sparse_vector(n, k, rng):
    x = np.zeros(n)
    support = rng.choice(n, size=k, replace=False)
    x[support] = rng.standard_normal(k) * 3.0
    return x


class TestExactRecovery:
    def test_recovers_sparse_signal_identity_basis(self, rng):
        """Classic CS sanity: k-sparse vector, m ~ 4k measurements."""
        n, k, m = 128, 6, 64
        basis = IdentityBasis(n)
        phi = gaussian_matrix(m, n, seed=0)
        alpha_true = _sparse_vector(n, k, rng)
        y = phi @ alpha_true
        result = solve_bpdn(
            phi, basis, y, sigma=1e-6,
            settings=PdhgSettings(max_iter=6000, tol=1e-7),
        )
        assert np.linalg.norm(result.alpha - alpha_true) < 1e-2 * np.linalg.norm(
            alpha_true
        )

    def test_recovers_wavelet_sparse_signal(self, rng, basis_128):
        n, k, m = 128, 5, 64
        phi = bernoulli_matrix(m, n, seed=1)
        alpha_true = _sparse_vector(n, k, rng)
        x_true = basis_128.synthesize(alpha_true)
        y = phi @ x_true
        result = solve_bpdn(
            phi, basis_128, y, sigma=1e-6,
            settings=PdhgSettings(max_iter=6000, tol=1e-7),
        )
        assert np.linalg.norm(result.x - x_true) < 0.05 * np.linalg.norm(x_true)

    def test_fails_gracefully_with_too_few_measurements(self, rng, basis_128):
        """With m << k log(n/k) the solver still returns a feasible point,
        it just reconstructs poorly — the paper's normal-CS collapse."""
        phi = bernoulli_matrix(8, 128, seed=2)
        alpha_true = _sparse_vector(128, 20, rng)
        x_true = basis_128.synthesize(alpha_true)
        result = solve_bpdn(phi, basis_128, phi @ x_true, sigma=1e-4)
        assert result.residual_norm < 1.0  # feasible
        # and the reconstruction is (expectedly) bad:
        assert np.linalg.norm(result.x - x_true) > 0.2 * np.linalg.norm(x_true)


class TestConstraintHandling:
    def test_residual_within_sigma(self, rng, basis_128):
        phi = bernoulli_matrix(48, 128, seed=3)
        x = basis_128.synthesize(_sparse_vector(128, 8, rng))
        y = phi @ x + 0.01 * rng.standard_normal(48)
        sigma = 0.02 * np.sqrt(48)
        result = solve_bpdn(
            phi, basis_128, y, sigma, settings=PdhgSettings(max_iter=4000)
        )
        assert result.residual_norm <= sigma * 1.05

    def test_zero_measurement_gives_zero_solution(self, basis_128):
        phi = bernoulli_matrix(32, 128, seed=4)
        result = solve_bpdn(phi, basis_128, np.zeros(32), sigma=0.0)
        assert np.linalg.norm(result.alpha) < 1e-6

    def test_large_sigma_gives_zero_solution(self, rng, basis_128):
        """If the ball contains the origin's image, min-l1 picks alpha=0."""
        phi = bernoulli_matrix(32, 128, seed=5)
        y = 0.1 * rng.standard_normal(32)
        result = solve_bpdn(phi, basis_128, y, sigma=10.0)
        assert np.linalg.norm(result.alpha) < 1e-4

    def test_negative_sigma_rejected(self, basis_128):
        phi = bernoulli_matrix(32, 128, seed=6)
        with pytest.raises(ValueError):
            solve_bpdn(phi, basis_128, np.zeros(32), sigma=-1.0)

    def test_wrong_measurement_length_rejected(self, basis_128):
        phi = bernoulli_matrix(32, 128, seed=7)
        with pytest.raises(ValueError):
            solve_bpdn(phi, basis_128, np.zeros(31), sigma=0.1)


class TestProblemReuse:
    def test_shared_problem_matches_fresh(self, rng, basis_128):
        phi = bernoulli_matrix(48, 128, seed=8)
        prob = CsProblem(phi, basis_128)
        x = basis_128.synthesize(_sparse_vector(128, 6, rng))
        y = phi @ x
        a = solve_bpdn(phi, basis_128, y, sigma=1e-5, problem=prob)
        b = solve_bpdn(phi, basis_128, y, sigma=1e-5)
        assert np.allclose(a.alpha, b.alpha, atol=1e-10)

    def test_result_metadata(self, rng, basis_128):
        phi = bernoulli_matrix(48, 128, seed=9)
        y = phi @ basis_128.synthesize(_sparse_vector(128, 6, rng))
        result = solve_bpdn(phi, basis_128, y, sigma=1e-4)
        assert result.solver == "pdhg-bpdn"
        assert result.iterations >= 1
        assert result.objective >= 0
        assert "tau" in result.info
