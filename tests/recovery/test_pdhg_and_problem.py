"""Tests of the PDHG engine internals and the CsProblem cache."""

import numpy as np
import pytest

from repro.recovery.bpdn import ball_block
from repro.recovery.pdhg import ConstraintBlock, PdhgSettings, solve_l1_constrained
from repro.recovery.problem import CsProblem
from repro.recovery.prox import project_box
from repro.sensing.matrices import bernoulli_matrix
from repro.wavelets.operators import IdentityBasis, WaveletBasis


class TestPdhgSettings:
    def test_defaults_valid(self):
        s = PdhgSettings()
        assert s.max_iter > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iter": 0},
            {"tol": 0.0},
            {"check_every": 0},
            {"step_ratio": -1.0},
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PdhgSettings(**kwargs)


class TestEngine:
    def test_requires_blocks(self):
        with pytest.raises(ValueError):
            solve_l1_constrained(8, [])

    def test_box_only_problem(self):
        """min ||a||_1 s.t. 1 <= a_0 <= 2 (identity map): optimum a=(1,0...)."""
        n = 5
        lo = np.array([1.0, -10, -10, -10, -10])
        hi = np.array([2.0, 10, 10, 10, 10])
        block = ConstraintBlock(
            forward=lambda a: a,
            adjoint=lambda z: z,
            project=lambda z: project_box(z, lo, hi),
            opnorm_sq=1.0,
            violation=lambda z: float(np.linalg.norm(z - np.clip(z, lo, hi))),
            out_dim=n,
        )
        r = solve_l1_constrained(
            n, [block], settings=PdhgSettings(max_iter=4000, tol=1e-8)
        )
        assert np.allclose(r.alpha, [1.0, 0, 0, 0, 0], atol=1e-3)

    def test_warm_start_used(self, rng):
        n = 16
        lo = -np.ones(n)
        hi = np.ones(n)
        block = ConstraintBlock(
            forward=lambda a: a,
            adjoint=lambda z: z,
            project=lambda z: project_box(z, lo, hi),
            opnorm_sq=1.0,
            violation=lambda z: 0.0,
            out_dim=n,
        )
        r = solve_l1_constrained(
            n, [block], alpha0=np.zeros(n),
            settings=PdhgSettings(max_iter=50, tol=1e-3),
        )
        # Zero is optimal and feasible: should converge immediately.
        assert r.converged
        assert np.allclose(r.alpha, 0.0)

    def test_step_sizes_satisfy_pdhg_condition(self, basis_128, rng):
        phi = bernoulli_matrix(32, 128, seed=0)
        prob = CsProblem(phi, basis_128)
        y = phi @ rng.standard_normal(128)
        r = solve_l1_constrained(
            128, [ball_block(prob, y, 0.1)],
            settings=PdhgSettings(max_iter=10),
        )
        tau, sigma = r.info["tau"], r.info["sigma"]
        assert tau * sigma * r.info["lipschitz_sq"] <= 1.0 + 1e-9


class TestCsProblem:
    def test_composed_operator(self, rng):
        basis = WaveletBasis(64, "db2")
        phi = bernoulli_matrix(16, 64, seed=1)
        prob = CsProblem(phi, basis)
        alpha = rng.standard_normal(64)
        assert np.allclose(prob.forward(alpha), phi @ basis.synthesize(alpha))

    def test_adjoint_consistency(self, rng):
        basis = WaveletBasis(64, "db2")
        phi = bernoulli_matrix(16, 64, seed=2)
        prob = CsProblem(phi, basis)
        a = rng.standard_normal(64)
        z = rng.standard_normal(16)
        assert float(np.dot(prob.forward(a), z)) == pytest.approx(
            float(np.dot(a, prob.adjoint(z))), abs=1e-9
        )

    def test_opnorm_bounds_matrix_norm(self):
        basis = IdentityBasis(64)
        phi = bernoulli_matrix(16, 64, seed=3)
        prob = CsProblem(phi, basis)
        exact = float(np.linalg.svd(phi, compute_uv=False)[0])
        assert prob.opnorm_sq() >= exact**2 * 0.999

    def test_matrix_cached(self):
        basis = WaveletBasis(64, "db2")
        phi = bernoulli_matrix(16, 64, seed=4)
        prob = CsProblem(phi, basis)
        assert prob.a is prob.a
        assert prob.psi is prob.psi

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CsProblem(bernoulli_matrix(16, 32, seed=5), WaveletBasis(64, "db2"))

    def test_measure_signal(self, rng):
        basis = IdentityBasis(32)
        phi = bernoulli_matrix(8, 32, seed=6)
        prob = CsProblem(phi, basis)
        x = rng.standard_normal(32)
        assert np.allclose(prob.measure_signal(x), phi @ x)


class TestProblemFactorizations:
    def _problem(self):
        return CsProblem(bernoulli_matrix(24, 64, seed=11), WaveletBasis(64, "db2"))

    def test_least_squares_init_matches_lstsq(self, rng):
        """The cached-factor path must return the canonical minimum-norm
        least-squares solution (what np.linalg.lstsq computes)."""
        prob = self._problem()
        y = rng.standard_normal(prob.m)
        alpha = prob.least_squares_init(y)
        expected, *_ = np.linalg.lstsq(prob.a, y, rcond=None)
        assert alpha.shape == (prob.n,)
        assert np.allclose(alpha, expected, atol=1e-10)
        # It actually interpolates the data (A has full row rank here).
        assert np.allclose(prob.a @ alpha, y, atol=1e-8)

    def test_least_squares_factor_computed_once(self, rng):
        prob = self._problem()
        prob.least_squares_init(rng.standard_normal(prob.m))
        factor = prob._lstsq_factor
        assert factor is not None
        prob.least_squares_init(rng.standard_normal(prob.m))
        assert prob._lstsq_factor is factor  # reused, not recomputed

    def test_least_squares_init_validation(self):
        prob = self._problem()
        with pytest.raises(ValueError):
            prob.least_squares_init(np.zeros(prob.m - 1))
        with pytest.raises(ValueError):
            prob.least_squares_init(np.full(prob.m, np.nan))

    def test_admm_factor_cached_and_correct(self):
        from scipy.linalg import cho_solve

        prob = self._problem()
        factor = prob.admm_factor()
        assert prob.admm_factor() is factor
        rhs = np.arange(prob.n, dtype=float)
        solved = cho_solve(factor, rhs)
        assert np.allclose(
            (np.eye(prob.n) + prob.gram()) @ solved, rhs, atol=1e-8
        )

    def test_matched_filter(self, rng):
        prob = self._problem()
        y = rng.standard_normal(prob.m)
        assert np.allclose(prob.matched_filter(y), prob.a.T @ y)


class TestRecoveryResult:
    def test_sparsity_counter(self, rng, basis_128):
        from repro.recovery.result import RecoveryResult

        alpha = np.zeros(10)
        alpha[[1, 5]] = [1.0, -2.0]
        r = RecoveryResult(
            alpha=alpha, x=alpha, iterations=1, converged=True,
            residual_norm=0.0, objective=3.0, solver="test",
        )
        assert r.sparsity() == 2
        assert "test" in r.summary()

    def test_zero_alpha_sparsity(self):
        from repro.recovery.result import RecoveryResult

        r = RecoveryResult(
            alpha=np.zeros(4), x=np.zeros(4), iterations=1, converged=False,
            residual_norm=1.0, objective=0.0, solver="t",
        )
        assert r.sparsity() == 0
        assert "max-iter" in r.summary()
