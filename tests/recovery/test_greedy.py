"""Tests of the greedy baselines (OMP, CoSaMP, IHT)."""

import numpy as np
import pytest

from repro.recovery.greedy import solve_cosamp, solve_iht, solve_omp
from repro.sensing.matrices import gaussian_matrix
from repro.wavelets.operators import IdentityBasis

N, M, K = 128, 64, 6


def _instance(seed):
    rng = np.random.default_rng(seed)
    basis = IdentityBasis(N)
    phi = gaussian_matrix(M, N, seed=seed)
    alpha = np.zeros(N)
    support = rng.choice(N, K, replace=False)
    alpha[support] = rng.standard_normal(K) + np.sign(rng.standard_normal(K)) * 1.0
    return phi, basis, alpha, phi @ alpha


@pytest.mark.parametrize(
    "solver", [solve_omp, solve_cosamp, solve_iht], ids=["omp", "cosamp", "iht"]
)
class TestExactRecovery:
    def test_recovers_sparse_vector(self, solver):
        phi, basis, alpha, y = _instance(seed=0)
        r = solver(phi, basis, y, k=K)
        assert np.linalg.norm(r.alpha - alpha) < 1e-3 * np.linalg.norm(alpha)

    def test_support_identified(self, solver):
        phi, basis, alpha, y = _instance(seed=1)
        r = solver(phi, basis, y, k=K)
        true_support = set(np.nonzero(alpha)[0])
        found = set(np.argsort(np.abs(r.alpha))[::-1][:K])
        assert found == true_support

    def test_sparsity_bounded_by_k(self, solver):
        phi, basis, alpha, y = _instance(seed=2)
        r = solver(phi, basis, y, k=K)
        assert np.count_nonzero(r.alpha) <= 2 * K  # OMP stops at K; others prune to K

    def test_invalid_k_rejected(self, solver):
        phi, basis, _, y = _instance(seed=3)
        with pytest.raises(ValueError):
            solver(phi, basis, y, k=0)
        with pytest.raises(ValueError):
            solver(phi, basis, y, k=M + 1)

    def test_wrong_y_length_rejected(self, solver):
        phi, basis, _, _ = _instance(seed=4)
        with pytest.raises(ValueError):
            solver(phi, basis, np.zeros(M - 1), k=K)


class TestOmpSpecifics:
    def test_residual_decreases_monotonically_with_k(self):
        phi, basis, alpha, y = _instance(seed=5)
        res = [solve_omp(phi, basis, y, k=k).residual_norm for k in (1, 3, 6)]
        assert res[0] >= res[1] >= res[2]

    def test_early_stop_on_exact_fit(self):
        phi, basis, alpha, y = _instance(seed=6)
        r = solve_omp(phi, basis, y, k=M // 2, tol=1e-10)
        # Stops once the K-sparse signal is matched, well before k=M/2.
        assert r.iterations <= K + 2


class TestIhtSpecifics:
    def test_custom_step(self):
        phi, basis, alpha, y = _instance(seed=7)
        r = solve_iht(phi, basis, y, k=K, step=0.5)
        assert r.info["step"] == 0.5

    def test_bad_step_rejected(self):
        phi, basis, _, y = _instance(seed=8)
        with pytest.raises(ValueError):
            solve_iht(phi, basis, y, k=K, step=-1.0)


class TestCompressibleDegradation:
    def test_greedy_worse_than_expected_on_compressible(self, record_clean):
        """Greedy with small fixed k discards the compressible tail — the
        motivation for convex recovery on ECG."""
        from repro.wavelets.operators import WaveletBasis

        basis = WaveletBasis(128, "db4")
        x = record_clean.signal_mv()[:128]
        x = x - x.mean()
        phi = gaussian_matrix(64, 128, seed=9)
        y = phi @ x
        r = solve_omp(phi, basis, y, k=4)
        rel_err = np.linalg.norm(r.x - x) / np.linalg.norm(x)
        assert rel_err > 0.05  # visibly lossy at k=4
