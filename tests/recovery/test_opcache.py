"""The operator cache: keying, LRU behavior, and bit-identical reuse."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.recovery.opcache import (
    PROBLEM_CACHE,
    ProblemCache,
    ProblemKey,
    RecoveryEngineSettings,
    problem_for_config,
)
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import SensingSpec
from repro.wavelets.operators import make_basis


def _key(m=48, n=128, seed=0, basis="db4"):
    return ProblemKey(
        sensing=SensingSpec(seed=seed), m=m, n=n, basis_spec=basis
    )


class TestProblemKey:
    def test_from_config(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        key = ProblemKey.from_config(config)
        assert key.m == 48
        assert key.n == 128
        assert key.basis_spec == config.basis_spec
        assert key.sensing == config.sensing

    def test_distinct_per_cr(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        assert ProblemKey.from_config(config) != ProblemKey.from_config(
            config.with_measurements(64)
        )

    def test_hashable(self):
        assert len({_key(), _key(), _key(m=32)}) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            _key(m=0)
        with pytest.raises(ValueError):
            _key(m=200, n=128)


class TestProblemCache:
    def test_hit_returns_same_object(self):
        cache = ProblemCache()
        a = cache.get(_key())
        b = cache.get(_key())
        assert a is b
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_cached_equals_fresh_bitwise(self):
        """A cached problem is *bit-identical* to independent construction:
        the build path is deterministic, so sharing changes nothing."""
        cache = ProblemCache()
        key = _key()
        cached = cache.get(key)
        fresh = CsProblem(
            key.sensing.build(key.m, key.n), make_basis(key.n, key.basis_spec)
        )
        assert np.array_equal(cached.phi, fresh.phi)
        assert np.array_equal(cached.a, fresh.a)
        assert np.array_equal(cached.gram(), fresh.gram())
        assert np.array_equal(cached.admm_factor()[0], fresh.admm_factor()[0])
        assert cached.opnorm_sq() == fresh.opnorm_sq()

    def test_lru_eviction(self):
        cache = ProblemCache(maxsize=2)
        a = cache.get(_key(m=32))
        cache.get(_key(m=40))
        cache.get(_key(m=48))  # evicts m=32
        assert cache.stats()["size"] == 2
        again = cache.get(_key(m=32))  # rebuilt, not the evicted object
        assert again is not a

    def test_lru_recency_ordering(self):
        cache = ProblemCache(maxsize=2)
        a = cache.get(_key(m=32))
        cache.get(_key(m=40))
        assert cache.get(_key(m=32)) is a  # refreshes m=32
        cache.get(_key(m=48))  # evicts m=40, not m=32
        assert cache.get(_key(m=32)) is a

    def test_basis_shared_across_crs(self):
        """Grid cells differing only in m share one dense Ψ — the
        second-level memo that keeps a CR sweep's footprint linear in the
        number of *window lengths*, not grid cells."""
        cache = ProblemCache()
        p48 = cache.get(_key(m=48))
        p64 = cache.get(_key(m=64))
        assert p48.basis is p64.basis

    def test_clear(self):
        cache = ProblemCache()
        cache.get(_key())
        cache.clear()
        assert cache.stats()["size"] == 0
        assert cache.stats()["hits"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProblemCache(maxsize=0)


class TestResize:
    """The ``--cache-size`` knob: live rebound of the LRU limit."""

    def test_shrink_evicts_oldest_first(self):
        cache = ProblemCache(maxsize=4)
        kept = cache.get(_key(m=48))
        cache.get(_key(m=40))  # oldest after the m=48 refresh below
        cache.get(_key(m=48))  # refresh recency of m=48
        cache.resize(1)
        assert cache.stats()["size"] == 1
        assert cache.get(_key(m=48)) is kept  # survivor is the MRU entry

    def test_shrink_evicts_operator_sets_too(self):
        from repro.backend import BackendSettings

        cache = ProblemCache(maxsize=4)
        basis = make_basis(128, "db4")
        problems = [
            CsProblem(SensingSpec(seed=0).build(m, 128), basis)
            for m in (32, 40, 48)
        ]
        for problem in problems:
            cache.operators(problem, BackendSettings())
        cache.resize(1)
        assert cache.stats()["operator_sets"] == 1

    def test_grow_keeps_entries(self):
        cache = ProblemCache(maxsize=2)
        a = cache.get(_key(m=32))
        b = cache.get(_key(m=40))
        cache.resize(8)
        assert cache.get(_key(m=32)) is a
        assert cache.get(_key(m=40)) is b

    def test_counters_survive_resize(self):
        cache = ProblemCache(maxsize=2)
        cache.get(_key())
        cache.get(_key())  # one hit
        cache.resize(1)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_validation(self):
        cache = ProblemCache()
        with pytest.raises(ValueError):
            cache.resize(0)


class TestProblemForConfig:
    def test_uses_process_cache(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        a = problem_for_config(config)
        b = problem_for_config(config)
        assert a is b
        assert PROBLEM_CACHE.get(ProblemKey.from_config(config)) is a

    def test_flag_off_builds_fresh(self):
        config = FrontEndConfig(
            window_len=128,
            n_measurements=48,
            recovery=RecoveryEngineSettings(cache_problems=False),
        )
        a = problem_for_config(config)
        b = problem_for_config(config)
        assert a is not b
        # Same operating point, so the *values* still agree exactly.
        assert np.array_equal(a.a, b.a)

    def test_explicit_cache_overrides_singleton(self):
        cache = ProblemCache()
        config = FrontEndConfig(window_len=128, n_measurements=48)
        a = problem_for_config(config, cache=cache)
        assert cache.stats()["misses"] >= 1
        assert problem_for_config(config, cache=cache) is a


class TestMixedMethodSweepCounters:
    """A mixed convex+Bayesian sweep shares one operator set per
    (problem, backend, precision): the Gram/factorization memos built for
    ADMM are the same objects BSBL's information matrix reads, so adding
    a method to a sweep costs operator *hits*, never rebuilds."""

    def test_operator_counters_across_mixed_sweep(self):
        from repro.backend import BackendSettings
        from repro.recovery.batched import recover_windows

        PROBLEM_CACHE.clear()
        rng = np.random.default_rng(0)
        base = FrontEndConfig(window_len=64, n_measurements=32)
        problems = []
        for m in (32, 16):
            config = base.with_measurements(m)
            problem = problem_for_config(config)
            problems.append(problem)
            ys = [
                problem.measure_signal(rng.standard_normal(64))
                for _ in range(3)
            ]
            recover_windows(problem, ys, method="admm", sigma=1.0, max_iter=5)
            recover_windows(
                problem, ys, method="bsbl", noise_var=1.0 / 12, max_iter=5
            )
            recover_windows(problem, ys, method="fista", lam=1.0, max_iter=5)

        stats = PROBLEM_CACHE.stats()
        # One problem build per CR; every method run reuses it.
        assert stats["misses"] == 2
        assert stats["size"] == 2
        # One operator set per (problem, backend): first method misses,
        # the other two hit — per CR.
        assert stats["operator_sets"] == 2
        assert stats["operator_misses"] == 2
        assert stats["operator_hits"] == 4

        # The exact-path set exposes the problem's own Gram memo, so the
        # matrix BSBL normalized was the one ADMM factorized.
        for problem in problems:
            ops = PROBLEM_CACHE.operators(problem, BackendSettings())
            assert ops.gram() is problem.gram()
        assert PROBLEM_CACHE.stats()["operator_hits"] == 6


class TestRecoveryEngineSettings:
    def test_defaults_on(self):
        settings = RecoveryEngineSettings()
        assert settings.cache_problems
        assert settings.warm_start_streams
        assert settings.batch_size == 32

    def test_default_config_carries_settings(self):
        assert FrontEndConfig().recovery == RecoveryEngineSettings()

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryEngineSettings(batch_size=0)

    def test_hashable_with_config(self):
        """Configs stay hashable (the link memo keys on them)."""
        assert hash(FrontEndConfig()) == hash(FrontEndConfig())


class TestOperatorSets:
    """Operator-set caching: backend AND precision participate in the key."""

    def _problem(self):
        key = _key(m=32, n=64)
        return CsProblem(key.sensing.build(32, 64), make_basis(64, "db4"))

    def test_same_settings_reuse_one_set(self):
        from repro.backend import BackendSettings

        cache = ProblemCache()
        problem = self._problem()
        a = cache.operators(problem, BackendSettings())
        b = cache.operators(problem, BackendSettings())
        assert a is b
        stats = cache.stats()
        assert stats["operator_hits"] == 1
        assert stats["operator_misses"] == 1
        assert stats["operator_sets"] == 1

    def test_precision_participates_in_key(self):
        from repro.backend import BackendSettings

        cache = ProblemCache()
        problem = self._problem()
        exact = cache.operators(problem, BackendSettings())
        fast = cache.operators(
            problem, BackendSettings(precision="float32")
        )
        assert exact is not fast
        assert cache.stats()["operator_misses"] == 2
        assert fast.a.dtype == np.float32
        assert exact.a.dtype == np.float64

    def test_problem_identity_participates_in_key(self):
        from repro.backend import BackendSettings

        cache = ProblemCache()
        a = cache.operators(self._problem(), BackendSettings())
        b = cache.operators(self._problem(), BackendSettings())
        assert a is not b
        assert cache.stats()["operator_misses"] == 2

    def test_exact_set_delegates_to_problem(self):
        """The bit-identity contract: on NumPy/float64 the set exposes
        the problem's own operator and factorization objects."""
        from repro.backend import BackendSettings

        problem = self._problem()
        ops = ProblemCache().operators(problem, BackendSettings())
        assert ops.a is problem.a
        assert ops.admm_factor() is problem.admm_factor()

    def test_fast_factor_is_native_precision(self):
        from repro.backend import BackendSettings

        problem = self._problem()
        ops = ProblemCache().operators(
            problem, BackendSettings(precision="float32")
        )
        factor = ops.admm_factor()
        assert factor[0].dtype == np.float32
        rhs = np.ones((64, 2), dtype=np.float32)
        solved = ops.cho_solve(rhs)
        assert solved.dtype == np.float32
        gram = np.eye(64) + problem.a.T @ problem.a
        assert np.allclose(gram @ solved.astype(np.float64), rhs, atol=1e-3)

    def test_operators_for_defaults_and_clear(self):
        from repro.backend import BackendSettings
        from repro.recovery.opcache import operators_for

        cache = ProblemCache()
        problem = self._problem()
        default = operators_for(problem, cache=cache)
        assert default.settings == BackendSettings()
        assert operators_for(problem, cache=cache) is default
        cache.clear()
        stats = cache.stats()
        assert stats["operator_sets"] == 0
        assert stats["operator_hits"] == 0
        assert stats["operator_misses"] == 0
        assert operators_for(problem, cache=cache) is not default
