"""The operator cache: keying, LRU behavior, and bit-identical reuse."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.recovery.opcache import (
    PROBLEM_CACHE,
    ProblemCache,
    ProblemKey,
    RecoveryEngineSettings,
    problem_for_config,
)
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import SensingSpec
from repro.wavelets.operators import make_basis


def _key(m=48, n=128, seed=0, basis="db4"):
    return ProblemKey(
        sensing=SensingSpec(seed=seed), m=m, n=n, basis_spec=basis
    )


class TestProblemKey:
    def test_from_config(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        key = ProblemKey.from_config(config)
        assert key.m == 48
        assert key.n == 128
        assert key.basis_spec == config.basis_spec
        assert key.sensing == config.sensing

    def test_distinct_per_cr(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        assert ProblemKey.from_config(config) != ProblemKey.from_config(
            config.with_measurements(64)
        )

    def test_hashable(self):
        assert len({_key(), _key(), _key(m=32)}) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            _key(m=0)
        with pytest.raises(ValueError):
            _key(m=200, n=128)


class TestProblemCache:
    def test_hit_returns_same_object(self):
        cache = ProblemCache()
        a = cache.get(_key())
        b = cache.get(_key())
        assert a is b
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_cached_equals_fresh_bitwise(self):
        """A cached problem is *bit-identical* to independent construction:
        the build path is deterministic, so sharing changes nothing."""
        cache = ProblemCache()
        key = _key()
        cached = cache.get(key)
        fresh = CsProblem(
            key.sensing.build(key.m, key.n), make_basis(key.n, key.basis_spec)
        )
        assert np.array_equal(cached.phi, fresh.phi)
        assert np.array_equal(cached.a, fresh.a)
        assert np.array_equal(cached.gram(), fresh.gram())
        assert np.array_equal(cached.admm_factor()[0], fresh.admm_factor()[0])
        assert cached.opnorm_sq() == fresh.opnorm_sq()

    def test_lru_eviction(self):
        cache = ProblemCache(maxsize=2)
        a = cache.get(_key(m=32))
        cache.get(_key(m=40))
        cache.get(_key(m=48))  # evicts m=32
        assert cache.stats()["size"] == 2
        again = cache.get(_key(m=32))  # rebuilt, not the evicted object
        assert again is not a

    def test_lru_recency_ordering(self):
        cache = ProblemCache(maxsize=2)
        a = cache.get(_key(m=32))
        cache.get(_key(m=40))
        assert cache.get(_key(m=32)) is a  # refreshes m=32
        cache.get(_key(m=48))  # evicts m=40, not m=32
        assert cache.get(_key(m=32)) is a

    def test_basis_shared_across_crs(self):
        """Grid cells differing only in m share one dense Ψ — the
        second-level memo that keeps a CR sweep's footprint linear in the
        number of *window lengths*, not grid cells."""
        cache = ProblemCache()
        p48 = cache.get(_key(m=48))
        p64 = cache.get(_key(m=64))
        assert p48.basis is p64.basis

    def test_clear(self):
        cache = ProblemCache()
        cache.get(_key())
        cache.clear()
        assert cache.stats()["size"] == 0
        assert cache.stats()["hits"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProblemCache(maxsize=0)


class TestProblemForConfig:
    def test_uses_process_cache(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        a = problem_for_config(config)
        b = problem_for_config(config)
        assert a is b
        assert PROBLEM_CACHE.get(ProblemKey.from_config(config)) is a

    def test_flag_off_builds_fresh(self):
        config = FrontEndConfig(
            window_len=128,
            n_measurements=48,
            recovery=RecoveryEngineSettings(cache_problems=False),
        )
        a = problem_for_config(config)
        b = problem_for_config(config)
        assert a is not b
        # Same operating point, so the *values* still agree exactly.
        assert np.array_equal(a.a, b.a)

    def test_explicit_cache_overrides_singleton(self):
        cache = ProblemCache()
        config = FrontEndConfig(window_len=128, n_measurements=48)
        a = problem_for_config(config, cache=cache)
        assert cache.stats()["misses"] >= 1
        assert problem_for_config(config, cache=cache) is a


class TestRecoveryEngineSettings:
    def test_defaults_on(self):
        settings = RecoveryEngineSettings()
        assert settings.cache_problems
        assert settings.warm_start_streams
        assert settings.batch_size == 32

    def test_default_config_carries_settings(self):
        assert FrontEndConfig().recovery == RecoveryEngineSettings()

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryEngineSettings(batch_size=0)

    def test_hashable_with_config(self):
        """Configs stay hashable (the link memo keys on them)."""
        assert hash(FrontEndConfig()) == hash(FrontEndConfig())
