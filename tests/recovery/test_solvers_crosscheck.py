"""Cross-solver agreement and KKT checks.

The strongest correctness evidence for the convex solvers: structurally
different algorithms (PDHG, ADMM, FISTA) must agree on the same convex
program, and small instances must satisfy the optimality conditions.
"""

import numpy as np
import pytest

from repro.recovery.admm import solve_bpdn_admm
from repro.recovery.bpdn import solve_bpdn
from repro.recovery.fista import lambda_max, solve_fista
from repro.recovery.pdhg import PdhgSettings
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix, gaussian_matrix
from repro.wavelets.operators import IdentityBasis, WaveletBasis


def _instance(m=48, n=128, k=6, seed=0):
    rng = np.random.default_rng(seed)
    basis = WaveletBasis(n, "db4")
    phi = bernoulli_matrix(m, n, seed=seed)
    alpha = np.zeros(n)
    alpha[rng.choice(n, k, replace=False)] = rng.standard_normal(k) * 2.0
    x = basis.synthesize(alpha)
    y = phi @ x + 0.005 * rng.standard_normal(m)
    return phi, basis, x, y


class TestPdhgVsAdmm:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_solution(self, seed):
        phi, basis, x, y = _instance(seed=seed)
        sigma = 0.01 * np.sqrt(48)
        a = solve_bpdn(
            phi, basis, y, sigma, settings=PdhgSettings(max_iter=12000, tol=1e-7)
        )
        b = solve_bpdn_admm(phi, basis, y, sigma, max_iter=8000, tol=1e-8)
        # Same objective value (the solution may be non-unique; the optimum
        # value is unique).
        assert a.objective == pytest.approx(b.objective, rel=2e-2)
        # And the reconstructions agree closely.
        scale = max(np.linalg.norm(a.x), 1e-9)
        assert np.linalg.norm(a.x - b.x) / scale < 0.05

    def test_admm_respects_ball(self):
        phi, basis, x, y = _instance(seed=3)
        sigma = 0.05
        r = solve_bpdn_admm(phi, basis, y, sigma, max_iter=5000)
        assert r.residual_norm <= sigma * 1.05

    def test_admm_validation(self):
        phi, basis, _, y = _instance()
        with pytest.raises(ValueError):
            solve_bpdn_admm(phi, basis, y, sigma=-1.0)
        with pytest.raises(ValueError):
            solve_bpdn_admm(phi, basis, y, sigma=0.1, rho=0.0)


class TestFista:
    def test_lambda_max_zeroes_solution(self):
        phi, basis, _, y = _instance(seed=4)
        prob = CsProblem(phi, basis)
        lam = lambda_max(prob, y) * 1.01
        r = solve_fista(phi, basis, y, lam, problem=prob)
        assert np.linalg.norm(r.alpha) < 1e-8

    def test_small_lambda_fits_data(self):
        phi, basis, x, y = _instance(seed=5)
        r = solve_fista(phi, basis, y, lam=1e-4, max_iter=4000)
        assert r.residual_norm < 0.1 * np.linalg.norm(y)

    def test_kkt_conditions(self):
        """At the LASSO optimum: |A^T(y - A a)|_inf <= lam, with equality
        on the support (subgradient optimality)."""
        phi, basis, x, y = _instance(seed=6)
        prob = CsProblem(phi, basis)
        lam = 0.05 * lambda_max(prob, y)
        r = solve_fista(phi, basis, y, lam, max_iter=8000, tol=1e-10, problem=prob)
        grad = prob.adjoint(y - prob.forward(r.alpha))
        assert np.max(np.abs(grad)) <= lam * 1.02
        on_support = np.abs(r.alpha) > 1e-6
        if np.any(on_support):
            assert np.allclose(
                np.abs(grad[on_support]), lam, rtol=0.05
            )

    def test_matches_bpdn_through_pareto_point(self):
        """LASSO(lam) and BPDN(sigma) trace the same Pareto curve: solving
        BPDN with the sigma achieved by a LASSO solve returns (nearly) the
        same objective."""
        phi, basis, x, y = _instance(seed=7)
        prob = CsProblem(phi, basis)
        lam = 0.1 * lambda_max(prob, y)
        lasso = solve_fista(phi, basis, y, lam, max_iter=9000, tol=1e-11, problem=prob)
        sigma = lasso.residual_norm
        bpdn = solve_bpdn(
            phi, basis, y, sigma,
            settings=PdhgSettings(max_iter=15000, tol=1e-8), problem=prob,
        )
        assert bpdn.objective == pytest.approx(lasso.objective, rel=2e-2)

    def test_validation(self):
        phi, basis, _, y = _instance()
        with pytest.raises(ValueError):
            solve_fista(phi, basis, y, lam=0.0)


class TestBasisPursuitExactness:
    def test_equality_bp_on_gaussian(self):
        """sigma=0 basis pursuit recovers an exactly sparse vector from
        Gaussian measurements — the textbook CS guarantee."""
        rng = np.random.default_rng(8)
        n, m, k = 100, 50, 5
        basis = IdentityBasis(n)
        phi = gaussian_matrix(m, n, seed=8)
        alpha = np.zeros(n)
        alpha[rng.choice(n, k, replace=False)] = rng.standard_normal(k)
        y = phi @ alpha
        r = solve_bpdn(
            phi, basis, y, sigma=0.0,
            settings=PdhgSettings(max_iter=20000, tol=1e-9),
        )
        assert np.linalg.norm(r.alpha - alpha) < 1e-3 * max(np.linalg.norm(alpha), 1.0)
