"""Property-based solver verification (hypothesis).

Randomized instances of the paper's convex programs, checking the
*defining* properties of each solver's output rather than point values:

* BPDN solutions are feasible: ``||A alpha - y|| <= sigma (1 + tol)``;
* hybrid (Eq. 1) solutions satisfy the box elementwise to solver
  tolerance;
* monotone-restart FISTA's composite objective never increases across
  accepted iterates — including the iterates right after a restart;
* BSBL-BO posterior means fit the data to within the noise ball, its
  fixed-``B`` EM evidence is monotone non-increasing, the Bayesian
  de-quantization solution stays within one quantizer cell of the
  Eq. 1 box solution, and the batched EM engine matches its scalar
  oracle to 1e-8 across CRs and warm-start states.

Marked ``property`` so `make test-fast` can skip them locally; CI always
runs them.  Instances are kept small (n = 64) so the whole suite stays
in seconds despite solving to tight tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery.batched import solve_bsbl_batch
from repro.recovery.bpdn import solve_bpdn
from repro.recovery.bsbl import BsblSettings, solve_bsbl, solve_bsbl_dequant
from repro.recovery.fista import lambda_max, solve_fista
from repro.recovery.hybrid import solve_hybrid
from repro.recovery.pdhg import PdhgSettings
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix
from repro.wavelets.operators import WaveletBasis

pytestmark = pytest.mark.property

N = 64
_BASIS = WaveletBasis(N, "db4")

#: Relative slack on constraint satisfaction: the PDHG iterates approach
#: feasibility asymptotically, so a finite solve sits within solver
#: tolerance of the set, not exactly on it.
FEAS_RTOL = 0.05


def _instance(seed: int, m: int, k: int, noise: float):
    """Deterministic sparse instance from a drawn seed."""
    rng = np.random.default_rng(seed)
    phi = bernoulli_matrix(m, N, seed=seed)
    problem = CsProblem(phi, _BASIS)
    alpha = np.zeros(N)
    alpha[rng.choice(N, k, replace=False)] = rng.standard_normal(k) * 2.0
    x = _BASIS.synthesize(alpha)
    y = phi @ x + noise * rng.standard_normal(m)
    return problem, x, y


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=20, max_value=48),
    k=st.integers(min_value=2, max_value=10),
)
def test_bpdn_solution_is_feasible(seed, m, k):
    """Any BPDN solve must land (solver-tolerance close to) inside the
    fidelity ball that defines the program."""
    problem, _, y = _instance(seed, m, k, noise=0.01)
    sigma = 0.1 * float(np.linalg.norm(y))
    result = solve_bpdn(
        problem.phi, _BASIS, y, sigma,
        settings=PdhgSettings(max_iter=3000, tol=1e-6),
        problem=problem,
    )
    residual = float(np.linalg.norm(problem.forward(result.alpha) - y))
    assert residual <= sigma * (1.0 + FEAS_RTOL)
    # The reported residual must be the true one (the solver recomputes
    # it from alpha, not from its internal split variable).
    assert result.residual_norm == pytest.approx(residual, rel=1e-12)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=20, max_value=48),
    box_width=st.floats(min_value=0.5, max_value=4.0),
)
def test_hybrid_solution_respects_box(seed, m, box_width):
    """Eq. 1 solutions must satisfy the low-resolution bounds elementwise
    (to solver tolerance) — the constraint that *is* the hybrid method."""
    problem, x, y = _instance(seed, m, k=6, noise=0.01)
    lower = np.floor(x / box_width) * box_width
    upper = lower + box_width
    sigma = 0.1 * float(np.linalg.norm(y))
    result = solve_hybrid(
        problem.phi, _BASIS, y, sigma, lower, upper,
        settings=PdhgSettings(max_iter=3000, tol=1e-6),
        problem=problem,
    )
    x_hat = _BASIS.synthesize(result.alpha)
    slack = FEAS_RTOL * box_width
    assert np.all(x_hat >= lower - slack)
    assert np.all(x_hat <= upper + slack)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=20, max_value=48),
    lam_frac=st.floats(min_value=0.01, max_value=0.5),
    warm=st.booleans(),
)
def test_fista_monotone_after_restarts(seed, m, lam_frac, warm):
    """With adaptive restart on, the composite objective is non-increasing
    at every accepted iterate — the restart *rejects* any accelerated step
    that would break monotonicity, so the property holds across restart
    points too (the O'Donoghue–Candès scheme with step rejection)."""
    problem, _, y = _instance(seed, m, k=6, noise=0.02)
    lam = lam_frac * lambda_max(problem, y)
    alpha0 = problem.matched_filter(y) * 0.1 if warm else None
    history = []
    result = solve_fista(
        problem.phi, _BASIS, y, lam,
        max_iter=600, tol=1e-10, problem=problem,
        alpha0=alpha0, adaptive_restart=True, objective_history=history,
    )
    assert len(history) == result.iterations + 1
    diffs = np.diff(np.asarray(history))
    # Non-increasing up to float accumulation noise on the objective.
    tol = 1e-10 * max(abs(history[0]), 1.0)
    assert np.all(diffs <= tol)
    assert result.info["restarts"] >= 0


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    lam_frac=st.floats(min_value=0.01, max_value=0.3),
)
def test_fista_restart_never_hurts_final_objective(seed, lam_frac):
    """The monotone variant must end at an objective no worse than its
    own starting point and within noise of the plain run's optimum."""
    problem, _, y = _instance(seed, m=32, k=6, noise=0.02)
    lam = lam_frac * lambda_max(problem, y)
    history = []
    solve_fista(
        problem.phi, _BASIS, y, lam,
        max_iter=800, tol=1e-10, problem=problem,
        adaptive_restart=True, objective_history=history,
    )
    assert history[-1] <= history[0] + 1e-12


# ---------------------------------------------------------------------------
# Bayesian family (BSBL-BO and de-quantization)

#: Shared EM settings for the property instances: a block length that
#: divides n = 64 and a tolerance tight enough that the asserted bounds
#: reflect the fixed point, not early stopping.
_BSBL = BsblSettings(block_len=8, max_iter=200, tol=1e-6)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=24, max_value=48),
    k=st.integers(min_value=2, max_value=8),
)
def test_bsbl_residual_bounded_by_noise(seed, m, k):
    """The BSBL posterior mean must fit the data to within the noise
    ball: an MAP trade-off that underfits by more than a small multiple
    of ``E||v|| = noise * sqrt(m)`` means the evidence maximization
    collapsed a live block (calibration sits near 0.9x)."""
    noise = 0.02
    problem, _, y = _instance(seed, m, k, noise=noise)
    result = solve_bsbl(
        problem.phi, _BASIS, y, noise**2, settings=_BSBL, problem=problem
    )
    assert result.residual_norm <= 3.0 * noise * np.sqrt(m)
    assert result.converged or result.iterations == _BSBL.max_iter


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=20, max_value=48),
    box_width=st.floats(min_value=0.5, max_value=4.0),
)
def test_bsbl_dequant_within_one_cell_of_box_solution(seed, m, box_width):
    """The soft de-quantization likelihood must agree with the hard
    Eq. 1 box to quantizer resolution: the reconstruction stays within
    one cell of the box *solution* elementwise, and violates the box
    itself by less than one cell (the Gaussian relaxation's slack)."""
    problem, x, y = _instance(seed, m, k=6, noise=0.01)
    lower = np.floor(x / box_width) * box_width
    upper = lower + box_width
    x_mid = (lower + upper) / 2.0
    quant_var = box_width**2 / 12.0
    result = solve_bsbl_dequant(
        problem.phi, _BASIS, y, 0.01**2, x_mid, quant_var,
        settings=_BSBL, problem=problem,
    )
    x_dq = _BASIS.synthesize(result.alpha)
    assert np.all(x_dq >= lower - box_width)
    assert np.all(x_dq <= upper + box_width)

    sigma = 0.1 * float(np.linalg.norm(y))
    box = solve_hybrid(
        problem.phi, _BASIS, y, sigma, lower, upper,
        settings=PdhgSettings(max_iter=3000, tol=1e-6), problem=problem,
    )
    x_box = _BASIS.synthesize(box.alpha)
    assert np.max(np.abs(x_dq - x_box)) <= box_width


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=24, max_value=48),
    k=st.integers(min_value=2, max_value=8),
)
def test_bsbl_em_objective_monotone(seed, m, k):
    """With the intra-block correlation fixed, every BO/EM step provably
    decreases the negative log evidence — the recorded history must be
    non-increasing to accumulation noise (the objective is evaluated
    *before* each gamma update, so entry ``t`` is the true cost at the
    iterate it labels)."""
    problem, _, y = _instance(seed, m, k, noise=0.02)
    fixed_b = BsblSettings(
        block_len=8, max_iter=200, tol=1e-8, learn_correlation=False
    )
    result = solve_bsbl(
        problem.phi, _BASIS, y, 0.02**2, settings=fixed_b, problem=problem
    )
    history = np.asarray(result.info["objective_history"])
    assert history.size == result.iterations
    tol = 1e-9 * max(abs(history[0]), 1.0)
    assert np.all(np.diff(history) <= tol)


@pytest.mark.parametrize("warm", (False, True), ids=("cold", "warm"))
@pytest.mark.parametrize("cr", (25.0, 50.0, 75.0))
def test_bsbl_batched_matches_scalar(cr, warm):
    """The batched EM engine is the scalar solver's arithmetic reordered:
    across the CR grid and both warm-start states, every coefficient
    agrees to 1e-8 (measured: BLAS-rounding level)."""
    m = int(round(N * (1.0 - cr / 100.0)))
    rng = np.random.default_rng(int(cr) * 10 + warm)
    phi = bernoulli_matrix(m, N, seed=5)
    problem = CsProblem(phi, _BASIS)
    ys, alpha0s = [], []
    for _ in range(5):
        alpha = np.zeros(N)
        alpha[rng.choice(N, 6, replace=False)] = rng.standard_normal(6) * 2.0
        y = phi @ _BASIS.synthesize(alpha) + 0.02 * rng.standard_normal(m)
        ys.append(y)
        alpha0s.append(problem.matched_filter(y) * 0.1)
    alpha0 = np.stack(alpha0s, axis=1) if warm else None

    batched = solve_bsbl_batch(
        problem, ys, 0.02**2, bsbl=_BSBL, alpha0=alpha0
    )
    for j, (y, result) in enumerate(zip(ys, batched)):
        scalar = solve_bsbl(
            problem.phi, _BASIS, y, 0.02**2,
            settings=_BSBL, problem=problem,
            alpha0=alpha0[:, j] if warm else None,
        )
        assert np.max(np.abs(result.alpha - scalar.alpha)) <= 1e-8
        assert result.iterations == scalar.iterations
