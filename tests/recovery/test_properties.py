"""Property-based solver verification (hypothesis).

Randomized instances of the paper's convex programs, checking the
*defining* properties of each solver's output rather than point values:

* BPDN solutions are feasible: ``||A alpha - y|| <= sigma (1 + tol)``;
* hybrid (Eq. 1) solutions satisfy the box elementwise to solver
  tolerance;
* monotone-restart FISTA's composite objective never increases across
  accepted iterates — including the iterates right after a restart.

Marked ``property`` so `make test-fast` can skip them locally; CI always
runs them.  Instances are kept small (n = 64) so the whole suite stays
in seconds despite solving to tight tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery.bpdn import solve_bpdn
from repro.recovery.fista import lambda_max, solve_fista
from repro.recovery.hybrid import solve_hybrid
from repro.recovery.pdhg import PdhgSettings
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix
from repro.wavelets.operators import WaveletBasis

pytestmark = pytest.mark.property

N = 64
_BASIS = WaveletBasis(N, "db4")

#: Relative slack on constraint satisfaction: the PDHG iterates approach
#: feasibility asymptotically, so a finite solve sits within solver
#: tolerance of the set, not exactly on it.
FEAS_RTOL = 0.05


def _instance(seed: int, m: int, k: int, noise: float):
    """Deterministic sparse instance from a drawn seed."""
    rng = np.random.default_rng(seed)
    phi = bernoulli_matrix(m, N, seed=seed)
    problem = CsProblem(phi, _BASIS)
    alpha = np.zeros(N)
    alpha[rng.choice(N, k, replace=False)] = rng.standard_normal(k) * 2.0
    x = _BASIS.synthesize(alpha)
    y = phi @ x + noise * rng.standard_normal(m)
    return problem, x, y


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=20, max_value=48),
    k=st.integers(min_value=2, max_value=10),
)
def test_bpdn_solution_is_feasible(seed, m, k):
    """Any BPDN solve must land (solver-tolerance close to) inside the
    fidelity ball that defines the program."""
    problem, _, y = _instance(seed, m, k, noise=0.01)
    sigma = 0.1 * float(np.linalg.norm(y))
    result = solve_bpdn(
        problem.phi, _BASIS, y, sigma,
        settings=PdhgSettings(max_iter=3000, tol=1e-6),
        problem=problem,
    )
    residual = float(np.linalg.norm(problem.forward(result.alpha) - y))
    assert residual <= sigma * (1.0 + FEAS_RTOL)
    # The reported residual must be the true one (the solver recomputes
    # it from alpha, not from its internal split variable).
    assert result.residual_norm == pytest.approx(residual, rel=1e-12)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=20, max_value=48),
    box_width=st.floats(min_value=0.5, max_value=4.0),
)
def test_hybrid_solution_respects_box(seed, m, box_width):
    """Eq. 1 solutions must satisfy the low-resolution bounds elementwise
    (to solver tolerance) — the constraint that *is* the hybrid method."""
    problem, x, y = _instance(seed, m, k=6, noise=0.01)
    lower = np.floor(x / box_width) * box_width
    upper = lower + box_width
    sigma = 0.1 * float(np.linalg.norm(y))
    result = solve_hybrid(
        problem.phi, _BASIS, y, sigma, lower, upper,
        settings=PdhgSettings(max_iter=3000, tol=1e-6),
        problem=problem,
    )
    x_hat = _BASIS.synthesize(result.alpha)
    slack = FEAS_RTOL * box_width
    assert np.all(x_hat >= lower - slack)
    assert np.all(x_hat <= upper + slack)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    m=st.integers(min_value=20, max_value=48),
    lam_frac=st.floats(min_value=0.01, max_value=0.5),
    warm=st.booleans(),
)
def test_fista_monotone_after_restarts(seed, m, lam_frac, warm):
    """With adaptive restart on, the composite objective is non-increasing
    at every accepted iterate — the restart *rejects* any accelerated step
    that would break monotonicity, so the property holds across restart
    points too (the O'Donoghue–Candès scheme with step rejection)."""
    problem, _, y = _instance(seed, m, k=6, noise=0.02)
    lam = lam_frac * lambda_max(problem, y)
    alpha0 = problem.matched_filter(y) * 0.1 if warm else None
    history = []
    result = solve_fista(
        problem.phi, _BASIS, y, lam,
        max_iter=600, tol=1e-10, problem=problem,
        alpha0=alpha0, adaptive_restart=True, objective_history=history,
    )
    assert len(history) == result.iterations + 1
    diffs = np.diff(np.asarray(history))
    # Non-increasing up to float accumulation noise on the objective.
    tol = 1e-10 * max(abs(history[0]), 1.0)
    assert np.all(diffs <= tol)
    assert result.info["restarts"] >= 0


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    lam_frac=st.floats(min_value=0.01, max_value=0.3),
)
def test_fista_restart_never_hurts_final_objective(seed, lam_frac):
    """The monotone variant must end at an objective no worse than its
    own starting point and within noise of the plain run's optimum."""
    problem, _, y = _instance(seed, m=32, k=6, noise=0.02)
    lam = lam_frac * lambda_max(problem, y)
    history = []
    solve_fista(
        problem.phi, _BASIS, y, lam,
        max_iter=800, tol=1e-10, problem=problem,
        adaptive_restart=True, objective_history=history,
    )
    assert history[-1] <= history[0] + 1e-12
