"""The recovery-method registry: specs, dispatch, and error reporting."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.receiver import HybridReceiver
from repro.recovery.methods import (
    METHODS,
    MethodSpec,
    method_names,
    resolve_method,
)
from repro.runtime.task import CodebookSpec, WindowTask


class TestRegistry:
    def test_method_names_sorted_and_complete(self):
        assert method_names() == ("bsbl", "bsbl-dequant", "hybrid", "normal")

    def test_specs_are_self_consistent(self):
        for name, spec in METHODS.items():
            assert isinstance(spec, MethodSpec)
            assert spec.name == name
            assert spec.family in ("convex", "bayesian")
            assert spec.description

    def test_lowres_flags(self):
        """Which methods consume the low-resolution channel decides both
        the transmitter (hybrid vs CS-only front-end) and the decoder."""
        assert resolve_method("hybrid").uses_lowres
        assert resolve_method("bsbl-dequant").uses_lowres
        assert not resolve_method("normal").uses_lowres
        assert not resolve_method("bsbl").uses_lowres

    def test_families(self):
        assert resolve_method("hybrid").family == "convex"
        assert resolve_method("bsbl").family == "bayesian"
        assert resolve_method("bsbl-dequant").family == "bayesian"


class TestDispatchErrors:
    def test_unknown_method_lists_registered_names(self):
        """The error a typo produces must name every registered method —
        the difference between a dead end and a one-glance fix."""
        with pytest.raises(ValueError) as excinfo:
            resolve_method("bsbl-dequantize")
        message = str(excinfo.value)
        assert "bsbl-dequantize" in message
        for name in method_names():
            assert name in message

    def test_window_task_propagates_registry_error(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        with pytest.raises(ValueError, match="registered methods"):
            WindowTask(
                record_name="100",
                method="bbsl",
                window_index=0,
                codes=np.zeros(128, dtype=np.int64),
                config=config,
                codebook=CodebookSpec.none(),
                seed=0,
            )

    def test_recovery_task_propagates_registry_error(self):
        from repro.core.packets import WindowPacket
        from repro.stream.session import RecoveryTask

        config = FrontEndConfig(window_len=128, n_measurements=48)
        packet = WindowPacket(
            window_index=0,
            n=128,
            measurement_codes=np.zeros(48, dtype=np.int64),
            measurement_bits=config.acquisition_bits,
            lowres_payload=b"",
            lowres_bit_length=0,
        )
        with pytest.raises(ValueError, match="registered methods"):
            RecoveryTask(
                patient_id="p0",
                window_index=0,
                packet=packet,
                crc=None,
                config=config,
                method="eq1",  # a solver key, not a method name
                codebook=CodebookSpec.none(),
            )

    def test_receiver_rejects_unknown_method(self):
        config = FrontEndConfig(window_len=128, n_measurements=48)
        with pytest.raises(ValueError, match="registered methods"):
            HybridReceiver(config, method="bayes")
