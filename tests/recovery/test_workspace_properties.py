"""Property suite: workspace reuse is bit-identical to fresh allocation.

The zero-allocation engines route every per-iteration temporary through
a leased :class:`~repro.perf.Workspace`.  The defining property of that
refactor is that it is a *memory* optimization only: with workspaces on
(cold pool or warm pool) every batched solver must produce byte-for-byte
the coefficients of the same solve against the fresh-allocation
:class:`~repro.perf.NullWorkspace` baseline — across solvers
{FISTA, ADMM, BSBL}, CRs {25, 50, 75}% and pool states {cold, warm}.
The aliasing property (two in-flight leases never share memory) is what
makes that equivalence safe under concurrency, so it is pinned here too.

Marked ``property`` so `make test-fast` can skip them locally; CI always
runs them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf import lease_workspace, reset_pool, use_workspaces
from repro.recovery.batched import (
    solve_bpdn_admm_batch,
    solve_bsbl_batch,
    solve_fista_batch,
)
from repro.recovery.bsbl import measurement_noise_var
from repro.recovery.fista import lambda_max
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix
from repro.wavelets.operators import WaveletBasis

pytestmark = pytest.mark.property

N = 64
_BASIS = WaveletBasis(N, "db4")

#: The satellite grid: CR percent -> measurement count at N = 64.
_CR_TO_M = {25.0: 48, 50.0: 32, 75.0: 16}

SOLVERS = ("fista", "admm", "bsbl")


def _instance(seed: int, cr: float, k_windows: int):
    """A deterministic problem plus ``k_windows`` measurement vectors."""
    m = _CR_TO_M[cr]
    rng = np.random.default_rng(seed)
    phi = bernoulli_matrix(m, N, seed=seed)
    problem = CsProblem(phi, _BASIS)
    ys = []
    for _ in range(k_windows):
        alpha = np.zeros(N)
        alpha[rng.choice(N, 6, replace=False)] = rng.standard_normal(6) * 2.0
        x = _BASIS.synthesize(alpha)
        ys.append(phi @ x + 0.01 * rng.standard_normal(m))
    return problem, ys


def _solve(solver: str, problem: CsProblem, ys) -> np.ndarray:
    """One batched solve; returns the (n, k) coefficient stack."""
    if solver == "fista":
        lam = 0.05 * max(lambda_max(problem, y) for y in ys)
        results = solve_fista_batch(problem, ys, lam, max_iter=60, tol=1e-7)
    elif solver == "admm":
        sigma = 0.1 * float(np.median([np.linalg.norm(y) for y in ys]))
        results = solve_bpdn_admm_batch(
            problem, ys, sigma, max_iter=60, tol=1e-6
        )
    else:
        results = solve_bsbl_batch(
            problem, ys, measurement_noise_var(1.0), max_iter=6, tol=1e-10
        )
    return np.stack([r.alpha for r in results], axis=1)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    solver=st.sampled_from(SOLVERS),
    cr=st.sampled_from(sorted(_CR_TO_M)),
    warm=st.booleans(),
)
def test_workspace_reuse_is_bit_identical(seed, solver, cr, warm):
    """Cold or warm pool, every solver's output must equal the
    fresh-allocation baseline bit for bit — reuse may never leak one
    stale byte into the arithmetic."""
    problem, ys = _instance(seed, cr, k_windows=3)
    with use_workspaces(False):
        baseline = _solve(solver, problem, ys)
    reset_pool()
    try:
        if warm:
            # A prior solve leaves the pool's buffers warm (and dirty
            # with that solve's values — the harder case).
            with use_workspaces(True):
                _solve(solver, problem, ys)
        with use_workspaces(True):
            reused = _solve(solver, problem, ys)
    finally:
        reset_pool()
    assert np.array_equal(baseline, reused)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    shape=st.tuples(
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=1, max_value=32),
    ),
)
def test_concurrent_pool_leases_never_alias(seed, shape):
    """Two in-flight leases of one shape class hand out disjoint memory
    for every buffer name — the guarantee that lets parallel engines
    share one pool."""
    reset_pool()
    try:
        with lease_workspace(None, "prop:alias") as first:
            with lease_workspace(None, "prop:alias") as second:
                a = first.buf("x", shape)
                b = second.buf("x", shape)
                a[:] = 1.0
                b[:] = 2.0
                assert not np.shares_memory(a, b)
                assert float(a[0, 0]) == 1.0
                assert float(b[0, 0]) == 2.0
    finally:
        reset_pool()
