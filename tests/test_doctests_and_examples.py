"""Executable-documentation checks: doctests and example smoke runs."""

import doctest
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core.windowing",
            "repro.coding.bitstream",
        ],
    )
    def test_module_doctests(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0  # the docs really contain examples

    def test_package_quickstart_doctest(self):
        """The quickstart in the package docstring must stay runnable."""
        import repro

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0


class TestExamplesRun:
    """Smoke-run the fast examples end to end (the slow solver-heavy ones
    are exercised by the benchmark suite instead)."""

    def _run(self, name: str, timeout: int = 240) -> str:
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / name)],
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        return result.stdout

    def test_power_budget_explorer(self):
        out = self._run("power_budget_explorer.py")
        assert "2.50x" in out
        assert "11.00x" in out
        assert "amplifier" in out

    def test_quickstart(self):
        out = self._run("quickstart.py")
        assert "SNR" in out
        assert "codebook" in out

    def test_codebook_designer(self):
        out = self._run("codebook_designer.py")
        assert "lossless" in out
        assert "True" in out
