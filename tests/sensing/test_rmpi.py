"""Tests of the behavioural RMPI simulator, incl. the discrete equivalence
the paper's Section III-A asserts."""

import numpy as np
import pytest

from repro.sensing.matrices import bernoulli_matrix
from repro.sensing.rmpi import RmpiBank, RmpiNonidealities


class TestIdealEquivalence:
    def test_ideal_bank_equals_bernoulli_matrix(self, rng):
        """The core claim: an ideal RMPI with ±1 chipping at the Nyquist
        rate is exactly the Bernoulli measurement matrix."""
        bank = RmpiBank(m=32, n=128, seed=77)
        phi = bernoulli_matrix(32, 128, seed=77)
        assert np.allclose(bank.equivalent_matrix(), phi)
        x = rng.standard_normal(128)
        assert np.allclose(bank.measure(x), phi @ x, atol=1e-12)

    def test_chips_are_pm_one(self):
        bank = RmpiBank(m=8, n=32)
        assert set(np.unique(bank.chips)) == {-1.0, 1.0}

    def test_chips_read_only(self):
        bank = RmpiBank(m=4, n=16)
        with pytest.raises(ValueError):
            bank.chips[0, 0] = 0.0

    def test_measurement_is_deterministic(self, rng):
        bank = RmpiBank(m=8, n=64, seed=5)
        x = rng.standard_normal(64)
        assert np.array_equal(bank.measure(x), bank.measure(x))

    def test_window_length_enforced(self):
        bank = RmpiBank(m=4, n=16)
        with pytest.raises(ValueError):
            bank.measure(np.zeros(15))

    def test_m_le_n_enforced(self):
        with pytest.raises(ValueError):
            RmpiBank(m=20, n=10)


class TestNonidealities:
    def test_leak_biases_measurements(self, rng):
        x = rng.standard_normal(256)
        ideal = RmpiBank(m=16, n=256, seed=1)
        leaky = RmpiBank(
            m=16,
            n=256,
            seed=1,
            nonidealities=RmpiNonidealities(integrator_leak_per_chip=1e-3),
        )
        err = np.linalg.norm(leaky.measure(x) - ideal.measure(x))
        assert err > 0
        # Small leak -> small deviation.
        assert err < 0.2 * np.linalg.norm(ideal.measure(x))

    def test_noise_perturbs_measurements(self, rng):
        x = rng.standard_normal(128)
        clean = RmpiBank(m=8, n=128, seed=2)
        noisy = RmpiBank(
            m=8,
            n=128,
            seed=2,
            nonidealities=RmpiNonidealities(input_noise_rms=0.01),
        )
        assert not np.allclose(noisy.measure(x), clean.measure(x))

    def test_gain_mismatch_scales_channels(self, rng):
        x = rng.standard_normal(128)
        ref = RmpiBank(m=8, n=128, seed=3)
        mis = RmpiBank(
            m=8,
            n=128,
            seed=3,
            nonidealities=RmpiNonidealities(gain_mismatch_sigma=0.05),
        )
        ratio = mis.measure(x) / ref.measure(x)
        assert np.std(ratio) > 0.0
        assert np.allclose(ratio, 1.0, atol=0.3)

    def test_is_ideal_flag(self):
        assert RmpiNonidealities().is_ideal
        assert not RmpiNonidealities(input_noise_rms=0.1).is_ideal

    def test_validation(self):
        with pytest.raises(ValueError):
            RmpiNonidealities(integrator_leak_per_chip=1.0)
        with pytest.raises(ValueError):
            RmpiNonidealities(input_noise_rms=-1.0)


class TestAdcAndNoiseBound:
    def test_adc_quantizes_measurements(self, rng):
        bank = RmpiBank(m=8, n=64, seed=4, adc_bits=8, signal_peak=1.0)
        x = rng.uniform(-1, 1, 64)
        y = bank.measure(x)
        ideal = bank.equivalent_matrix() @ x
        assert not np.allclose(y, ideal)
        assert np.linalg.norm(y - ideal) < 0.1 * np.linalg.norm(ideal) + 1.0

    def test_noise_bound_holds(self, rng):
        """measurement_noise_bound must upper-bound the actual deviation
        from the ideal discrete model (validated on random inputs)."""
        nid = RmpiNonidealities(
            integrator_leak_per_chip=1e-4,
            input_noise_rms=0.005,
            gain_mismatch_sigma=0.005,
        )
        bank = RmpiBank(
            m=16, n=256, seed=5, nonidealities=nid, adc_bits=12, signal_peak=1.0
        )
        phi = bank.equivalent_matrix()
        bound = bank.measurement_noise_bound(x_peak=1.0)
        for trial in range(5):
            x = np.random.default_rng(trial).uniform(-1, 1, 256)
            err = np.linalg.norm(bank.measure(x) - phi @ x)
            assert err <= bound

    def test_bound_zero_for_ideal_unquantized(self):
        bank = RmpiBank(m=8, n=64, seed=6)
        assert bank.measurement_noise_bound(1.0) == 0.0
