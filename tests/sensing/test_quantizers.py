"""Tests of ADC quantizer models, incl. the Eq. 1 bound guarantee."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sensing.quantizers import (
    UniformQuantizer,
    dequantize_codes,
    lowres_bounds,
    measurement_quantizer,
    requantize_codes,
)
from repro.sensing.matrices import bernoulli_matrix


class TestRequantize:
    def test_keeps_msbs(self):
        codes = np.array([0, 15, 16, 255, 2047], dtype=np.int64)
        low = requantize_codes(codes, 11, 7)
        assert list(low) == [0, 0, 1, 15, 127]

    def test_identity_when_same_bits(self):
        codes = np.arange(0, 2048, 97, dtype=np.int64)
        assert np.array_equal(requantize_codes(codes, 11, 11), codes)

    def test_upsampling_rejected(self):
        with pytest.raises(ValueError):
            requantize_codes(np.array([0]), 7, 11)

    def test_float_codes_rejected(self):
        with pytest.raises(TypeError):
            requantize_codes(np.array([0.5]), 11, 7)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            requantize_codes(np.array([2048], dtype=np.int64), 11, 7)

    @settings(max_examples=50, deadline=None)
    @given(
        value=st.integers(0, 2047),
        to_bits=st.integers(1, 11),
    )
    def test_bound_guarantee_property(self, value, to_bits):
        """The defining Eq. 1 property: the original code always lies in
        [lower, lower + d - 1] of its own low-res cell."""
        codes = np.array([value], dtype=np.int64)
        low = requantize_codes(codes, 11, to_bits)
        lower, upper = lowres_bounds(low, 11, to_bits)
        assert lower[0] <= value <= upper[0]
        assert upper[0] - lower[0] + 1 == 2 ** (11 - to_bits)


class TestDequantize:
    def test_lower_cell_edge(self):
        low = np.array([0, 1, 127], dtype=np.int64)
        back = dequantize_codes(low, 11, 7)
        assert list(back) == [0, 16, 2032]

    def test_roundtrip_is_floor(self):
        codes = np.arange(0, 2048, 13, dtype=np.int64)
        low = requantize_codes(codes, 11, 7)
        back = dequantize_codes(low, 11, 7)
        assert np.all(back <= codes)
        assert np.all(codes - back < 16)


class TestUniformQuantizer:
    def test_levels_and_step(self):
        q = UniformQuantizer(bits=8, full_scale=1.0)
        assert q.levels == 256
        assert q.step == pytest.approx(2.0 / 256)

    def test_roundtrip_error_bounded_by_half_lsb(self, rng):
        q = UniformQuantizer(bits=10, full_scale=2.0)
        x = rng.uniform(-2.0, 2.0 - 1e-9, size=1000)
        err = np.abs(q.quantize_reconstruct(x) - x)
        assert np.all(err <= q.step / 2 + 1e-12)

    def test_clipping(self):
        q = UniformQuantizer(bits=4, full_scale=1.0)
        codes = q.quantize(np.array([-5.0, 5.0]))
        assert codes[0] == 0
        assert codes[1] == 15

    def test_monotone(self, rng):
        q = UniformQuantizer(bits=6, full_scale=1.0)
        x = np.sort(rng.uniform(-1, 1, 100))
        codes = q.quantize(x)
        assert np.all(np.diff(codes) >= 0)

    def test_reconstruct_range_check(self):
        q = UniformQuantizer(bits=4, full_scale=1.0)
        with pytest.raises(ValueError):
            q.reconstruct(np.array([16]))

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformQuantizer(bits=0, full_scale=1.0)
        with pytest.raises(ValueError):
            UniformQuantizer(bits=4, full_scale=0.0)


class TestMeasurementQuantizer:
    def test_no_clipping_on_ecg_like_signals(self, rng):
        phi = bernoulli_matrix(64, 512, seed=0)
        q = measurement_quantizer(phi, signal_peak=1024.0, bits=12)
        # Realistic ECG windows: excursions far below the ADC rails
        # (synthetic record 100 spans roughly ±350 centered codes).
        x = rng.uniform(-350, 350, size=512)
        y = phi @ x
        codes = q.quantize(y)
        # No saturation at either rail.
        assert codes.min() > 0
        assert codes.max() < q.levels - 1

    def test_quantization_noise_small_vs_signal(self, rng):
        phi = bernoulli_matrix(64, 512, seed=0)
        q = measurement_quantizer(phi, signal_peak=1024.0, bits=12)
        x = rng.uniform(-500, 500, size=512)
        y = phi @ x
        err = np.linalg.norm(q.quantize_reconstruct(y) - y)
        assert err < 0.01 * np.linalg.norm(y)

    def test_validation(self):
        phi = bernoulli_matrix(4, 8, seed=0)
        with pytest.raises(ValueError):
            measurement_quantizer(phi, signal_peak=0.0, bits=12)
        with pytest.raises(ValueError):
            measurement_quantizer(phi, signal_peak=1.0, bits=0)
