"""Tests of the measurement-matrix ensembles."""

import numpy as np
import pytest

from repro.sensing.matrices import (
    SensingSpec,
    bernoulli_matrix,
    gaussian_matrix,
    make_matrix,
    mutual_coherence,
    operator_norm,
    sparse_binary_matrix,
)


class TestBernoulli:
    def test_entries_are_scaled_signs(self):
        phi = bernoulli_matrix(16, 64, seed=0)
        assert np.allclose(np.unique(np.abs(phi)), [1 / 4.0])

    def test_shape_and_determinism(self):
        a = bernoulli_matrix(8, 32, seed=7)
        b = bernoulli_matrix(8, 32, seed=7)
        assert a.shape == (8, 32)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, bernoulli_matrix(8, 32, seed=8))

    def test_rows_near_unit_norm(self):
        phi = bernoulli_matrix(32, 128, seed=1)
        # Each row has 128 entries of magnitude 1/sqrt(32): norm = 2.
        assert np.allclose(np.linalg.norm(phi, axis=1), np.sqrt(128 / 32))

    def test_restricted_isometry_statistics(self, rng):
        """Random sparse vectors keep their norm approximately."""
        phi = bernoulli_matrix(128, 256, seed=3)
        for _ in range(10):
            x = np.zeros(256)
            support = rng.choice(256, size=10, replace=False)
            x[support] = rng.standard_normal(10)
            ratio = np.linalg.norm(phi @ x) / np.linalg.norm(x)
            assert 0.6 < ratio < 1.4

    def test_m_greater_than_n_rejected(self):
        with pytest.raises(ValueError):
            bernoulli_matrix(65, 64)


class TestGaussian:
    def test_variance(self):
        phi = gaussian_matrix(64, 512, seed=0)
        assert float(np.var(phi)) == pytest.approx(1 / 64.0, rel=0.05)

    def test_zero_mean(self):
        phi = gaussian_matrix(64, 512, seed=0)
        assert abs(float(np.mean(phi))) < 0.01


class TestSparseBinary:
    def test_column_weight(self):
        phi = sparse_binary_matrix(64, 128, nonzeros_per_column=12, seed=0)
        nnz = np.count_nonzero(phi, axis=0)
        assert np.all(nnz == 12)

    def test_values_normalized(self):
        phi = sparse_binary_matrix(64, 128, nonzeros_per_column=16, seed=0)
        vals = np.unique(phi[phi != 0])
        assert np.allclose(vals, 1 / 4.0)

    def test_column_weight_validation(self):
        with pytest.raises(ValueError):
            sparse_binary_matrix(8, 16, nonzeros_per_column=9)


class TestMakeMatrix:
    @pytest.mark.parametrize("kind", ["bernoulli", "gaussian", "sparse_binary"])
    def test_kinds(self, kind):
        phi = make_matrix(kind, 16, 64, seed=1)
        assert phi.shape == (16, 64)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_matrix("fourier", 16, 64)


class TestDiagnostics:
    def test_coherence_of_identity_like(self):
        assert mutual_coherence(np.eye(8)) == pytest.approx(0.0)

    def test_coherence_of_repeated_column(self):
        mat = np.ones((4, 2))
        assert mutual_coherence(mat) == pytest.approx(1.0)

    def test_coherence_random_below_one(self):
        phi = bernoulli_matrix(64, 128, seed=2)
        assert 0.0 < mutual_coherence(phi) < 1.0

    def test_operator_norm_matches_svd(self, rng):
        mat = rng.standard_normal((20, 30))
        exact = float(np.linalg.svd(mat, compute_uv=False)[0])
        assert operator_norm(mat, n_iter=200) == pytest.approx(exact, rel=1e-4)

    def test_operator_norm_zero_matrix(self):
        assert operator_norm(np.zeros((4, 4))) == 0.0


class TestSensingSpec:
    def test_build_matches_direct_call(self):
        spec = SensingSpec(kind="bernoulli", seed=2015)
        assert np.array_equal(
            spec.build(16, 64), bernoulli_matrix(16, 64, seed=2015)
        )

    def test_node_receiver_agreement(self):
        """The property the whole link relies on: same spec → same Φ."""
        spec = SensingSpec()
        assert np.array_equal(spec.build(96, 512), spec.build(96, 512))


class TestSubsampledHadamard:
    def test_rows_orthogonal(self):
        from repro.sensing.matrices import subsampled_hadamard_matrix

        phi = subsampled_hadamard_matrix(16, 64, seed=0)
        gram = phi @ phi.T
        # Distinct Hadamard rows are orthogonal; scaling gives n/m on the
        # diagonal.
        assert np.allclose(np.diag(gram), 64 / 16)
        off = gram - np.diag(np.diag(gram))
        assert np.allclose(off, 0.0, atol=1e-10)

    def test_entries_pm_scaled(self):
        from repro.sensing.matrices import subsampled_hadamard_matrix

        phi = subsampled_hadamard_matrix(8, 32, seed=1)
        assert np.allclose(np.unique(np.abs(phi)), [1 / np.sqrt(8)])

    def test_power_of_two_required(self):
        from repro.sensing.matrices import subsampled_hadamard_matrix

        with pytest.raises(ValueError):
            subsampled_hadamard_matrix(8, 48)

    def test_make_matrix_kind(self):
        phi = make_matrix("hadamard", 16, 64, seed=3)
        assert phi.shape == (16, 64)

    def test_recovery_works(self, rng):
        """The ensemble actually senses: sparse recovery succeeds."""
        from repro.recovery.bpdn import solve_bpdn
        from repro.recovery.pdhg import PdhgSettings
        from repro.sensing.matrices import subsampled_hadamard_matrix
        from repro.wavelets.operators import IdentityBasis

        n, m, k = 64, 32, 4
        phi = subsampled_hadamard_matrix(m, n, seed=4)
        alpha = np.zeros(n)
        alpha[rng.choice(n, k, replace=False)] = rng.standard_normal(k) * 2
        result = solve_bpdn(
            phi, IdentityBasis(n), phi @ alpha, 1e-8,
            settings=PdhgSettings(max_iter=6000, tol=1e-7),
        )
        assert np.linalg.norm(result.alpha - alpha) < 0.05 * np.linalg.norm(alpha)
