"""Tests of the Record/RecordHeader containers."""

import numpy as np
import pytest

from repro.signals.records import (
    BeatAnnotation,
    MITBIH_HEADER,
    Record,
    RecordHeader,
    concatenate_records,
)


class TestRecordHeader:
    def test_mitbih_defaults(self):
        assert MITBIH_HEADER.fs_hz == 360.0
        assert MITBIH_HEADER.resolution_bits == 11
        assert MITBIH_HEADER.adc_levels == 2048
        assert MITBIH_HEADER.adc_zero == 1024

    def test_full_scale_is_10mv(self):
        # 11 bits over 10 mV, per the paper's Section IV description.
        assert MITBIH_HEADER.full_scale_mv == pytest.approx(10.24)

    def test_mv_adu_roundtrip(self):
        mv = np.array([-1.0, 0.0, 0.5, 2.5])
        adu = MITBIH_HEADER.mv_to_adu(mv)
        assert np.allclose(MITBIH_HEADER.adu_to_mv(adu), mv, atol=1.0 / 200)

    def test_mv_to_adu_clips(self):
        adu = MITBIH_HEADER.mv_to_adu(np.array([-100.0, 100.0]))
        assert adu[0] == 0
        assert adu[1] == 2047

    def test_zero_mv_maps_to_adc_zero(self):
        assert MITBIH_HEADER.mv_to_adu(np.array([0.0]))[0] == 1024


def _record(n=720, name="x"):
    adu = (1024 + 100 * np.sin(np.arange(n) / 10)).astype(np.int64)
    return Record(name=name, adu=adu)


class TestRecord:
    def test_basic_properties(self):
        rec = _record(720)
        assert len(rec) == 720
        assert rec.duration_s == pytest.approx(2.0)
        assert rec.time_axis()[1] == pytest.approx(1 / 360)

    def test_signal_mv_centered(self):
        rec = _record()
        mv = rec.signal_mv()
        assert abs(float(np.mean(mv))) < 0.1

    def test_rejects_float_signal(self):
        with pytest.raises(TypeError):
            Record(name="bad", adu=np.ones(10))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Record(name="bad", adu=np.array([4096], dtype=np.int64))
        with pytest.raises(ValueError):
            Record(name="bad", adu=np.array([-1], dtype=np.int64))

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            Record(name="bad", adu=np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            Record(name="bad", adu=np.zeros((2, 2), dtype=np.int64))

    def test_windows_partition(self):
        rec = _record(700)
        windows = list(rec.windows(128))
        assert len(windows) == 5
        assert all(w.size == 128 for w in windows)
        rebuilt = np.concatenate(windows)
        assert np.array_equal(rebuilt, rec.adu[: 5 * 128])

    def test_windows_keep_last_partial(self):
        rec = _record(300)
        windows = list(rec.windows(128, drop_last=False))
        assert [w.size for w in windows] == [128, 128, 44]

    def test_window_count(self):
        assert _record(700).window_count(128) == 5
        with pytest.raises(ValueError):
            _record().window_count(0)

    def test_heart_rate_from_annotations(self):
        ann = tuple(BeatAnnotation(sample=i * 360) for i in range(5))
        rec = Record(name="hr", adu=_record(1800).adu, annotations=ann)
        assert rec.mean_heart_rate_bpm() == pytest.approx(60.0)

    def test_beat_samples_filter(self):
        ann = (BeatAnnotation(10, "N"), BeatAnnotation(20, "V"))
        rec = Record(name="f", adu=_record().adu, annotations=ann)
        assert rec.beat_samples() == [10, 20]
        assert rec.beat_samples("V") == [20]


class TestConcatenate:
    def test_lengths_and_annotations_shift(self):
        a = Record(name="a", adu=_record(360).adu, annotations=(BeatAnnotation(5),))
        b = Record(name="b", adu=_record(360).adu, annotations=(BeatAnnotation(7),))
        merged = concatenate_records("ab", [a, b])
        assert len(merged) == 720
        assert [x.sample for x in merged.annotations] == [5, 367]

    def test_header_mismatch_rejected(self):
        a = _record(360)
        b = Record(
            name="b",
            adu=np.full(360, 100, dtype=np.int64),
            header=RecordHeader(fs_hz=250.0),
        )
        with pytest.raises(ValueError):
            concatenate_records("ab", [a, b])
