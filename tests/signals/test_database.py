"""Tests of the synthetic MIT-BIH-like database."""

import numpy as np
import pytest

from repro.signals.database import (
    MITBIH_RECORD_NAMES,
    SyntheticDatabase,
    interleave_playback,
    iter_record_chunks,
    load_database,
    load_record,
    record_profile,
)


class TestRecordNames:
    def test_48_records_like_mitbih(self):
        assert len(MITBIH_RECORD_NAMES) == 48
        assert len(set(MITBIH_RECORD_NAMES)) == 48

    def test_known_names_present(self):
        for name in ("100", "117", "208", "234"):
            assert name in MITBIH_RECORD_NAMES


class TestRecordProfile:
    def test_deterministic(self):
        assert record_profile("100") == record_profile("100")

    def test_profiles_differ_across_records(self):
        hrs = {record_profile(n).mean_hr_bpm for n in MITBIH_RECORD_NAMES}
        assert len(hrs) == 48

    def test_parameter_ranges(self):
        for name in MITBIH_RECORD_NAMES:
            p = record_profile(name)
            assert 55.0 <= p.mean_hr_bpm <= 95.0
            assert 0.6 <= p.amplitude_mv <= 1.5
            assert 0.0 <= p.pvc_probability <= 0.15

    def test_some_records_have_pvcs(self):
        with_pvc = [
            n for n in MITBIH_RECORD_NAMES if record_profile(n).pvc_probability > 0
        ]
        assert 5 <= len(with_pvc) <= 30

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            record_profile("999")


class TestLoadRecord:
    def test_header_matches_mitbih(self):
        rec = load_record("100", duration_s=5.0)
        assert rec.header.fs_hz == 360.0
        assert rec.header.resolution_bits == 11
        assert rec.header.adc_zero == 1024

    def test_duration(self):
        rec = load_record("101", duration_s=7.5)
        assert rec.duration_s == pytest.approx(7.5)

    def test_deterministic(self):
        a = load_record("103", duration_s=5.0)
        b = load_record("103", duration_s=5.0)
        assert np.array_equal(a.adu, b.adu)
        assert a.annotations == b.annotations

    def test_records_differ(self):
        a = load_record("100", duration_s=5.0)
        b = load_record("101", duration_s=5.0)
        assert not np.array_equal(a.adu, b.adu)

    def test_signal_in_plausible_adu_range(self):
        """Paper Fig. 2 plots raw samples around ~900-1250 ADU."""
        rec = load_record("100", duration_s=10.0)
        assert 600 < rec.adu.min() < 1100
        assert 1024 < rec.adu.max() < 1600

    def test_clean_flag_removes_noise(self):
        noisy = load_record("105", duration_s=5.0)
        clean = load_record("105", duration_s=5.0, clean=True)
        assert not np.array_equal(noisy.adu, clean.adu)
        # Clean record has visibly lower high-frequency energy.
        def hf(x):
            d = np.diff(x.astype(float))
            return float(np.mean(d**2))

        assert hf(clean.adu) < hf(noisy.adu)

    def test_annotations_mark_r_peaks(self):
        rec = load_record("100", duration_s=20.0, clean=True)
        assert len(rec.annotations) >= 10
        mv = rec.signal_mv()
        peak = float(np.max(np.abs(mv)))
        for ann in rec.annotations[2:-2]:
            window = mv[max(0, ann.sample - 15) : ann.sample + 15]
            assert float(np.max(np.abs(window))) > 0.4 * peak

    def test_pvc_records_annotate_v_beats(self):
        pvc_names = [
            n for n in MITBIH_RECORD_NAMES
            if record_profile(n).pvc_probability > 0.08
        ]
        rec = load_record(pvc_names[0], duration_s=60.0)
        symbols = {a.symbol for a in rec.annotations}
        assert "V" in symbols and "N" in symbols

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            load_record("100", duration_s=0.0)


class TestDatabase:
    def test_full_load(self):
        db = load_database(duration_s=2.0)
        assert len(db) == 48
        assert db.names == MITBIH_RECORD_NAMES

    def test_subset_and_lookup(self):
        db = load_database(["100", "200"], duration_s=2.0)
        assert len(db) == 2
        assert db["200"].name == "200"
        with pytest.raises(KeyError):
            db["101"]

    def test_total_duration(self):
        db = load_database(["100", "101"], duration_s=3.0)
        assert db.total_duration_s() == pytest.approx(6.0)

    def test_subset_method(self):
        db = load_database(["100", "101", "103"], duration_s=2.0)
        sub = db.subset(["103", "100"])
        assert sub.names == ("103", "100")

    def test_duplicate_names_rejected(self):
        rec = load_record("100", duration_s=2.0)
        with pytest.raises(ValueError):
            SyntheticDatabase((rec, rec))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatabase(())


class TestChunkedPlayback:
    def test_chunks_reassemble_record(self):
        rec = load_record("100", duration_s=3.0)
        chunks = list(iter_record_chunks(rec, 181))
        assert all(c.ndim == 1 for c in chunks)
        assert all(len(c) == 181 for c in chunks[:-1])
        assert np.array_equal(np.concatenate(chunks), rec.adu)

    def test_exact_multiple_has_no_short_tail(self):
        rec = load_record("100", duration_s=3.0)
        size = len(rec) // 4
        rec4 = load_record("100", duration_s=3.0)
        chunks = list(iter_record_chunks(rec4, size))
        # 4 full chunks plus (possibly) one short remainder.
        assert all(len(c) == size for c in chunks[:4])
        assert np.array_equal(np.concatenate(chunks), rec.adu)

    def test_bad_chunk_size_rejected(self):
        rec = load_record("100", duration_s=2.0)
        with pytest.raises(ValueError):
            next(iter_record_chunks(rec, 0))

    def test_deterministic(self):
        rec = load_record("100", duration_s=2.0)
        a = [c.copy() for c in iter_record_chunks(rec, 97)]
        b = list(iter_record_chunks(rec, 97))
        assert all(np.array_equal(x, y) for x, y in zip(a, b))
        assert len(a) == len(b)


class TestInterleavePlayback:
    def test_round_robin_order(self):
        recs = [load_record(n, duration_s=2.0) for n in ("100", "101")]
        names = [name for name, _ in interleave_playback(recs, 500)]
        # Equal-length records alternate strictly.
        assert names[:4] == ["100", "101", "100", "101"]

    def test_streams_reassemble_per_record(self):
        recs = [load_record(n, duration_s=2.0) for n in ("100", "101", "103")]
        per_name = {rec.name: [] for rec in recs}
        for name, chunk in interleave_playback(recs, 113):
            per_name[name].append(chunk)
        for rec in recs:
            assert np.array_equal(np.concatenate(per_name[rec.name]), rec.adu)

    def test_shorter_record_drops_out(self):
        long = load_record("100", duration_s=4.0)
        short = load_record("101", duration_s=2.0)
        names = [name for name, _ in interleave_playback([long, short], 360)]
        assert names.count("101") < names.count("100")
        # Once the short record is exhausted only the long one remains.
        last_101 = max(i for i, n in enumerate(names) if n == "101")
        assert set(names[last_101 + 1:]) == {"100"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            next(interleave_playback([], 100))


class TestBeatsLoopOracle:
    """Per-sample database synthesis must equal the vectorized path."""

    @pytest.mark.parametrize("name", ["100", "119"])
    @pytest.mark.parametrize("lead", ["MLII", "V5"])
    def test_bit_identical(self, name, lead):
        from repro.signals.database import (
            _synthesize_with_beats,
            synthesize_with_beats_loop,
        )

        profile = record_profile(name)
        fast_z, fast_ann = _synthesize_with_beats(profile, 2.0, 360.0, lead)
        slow_z, slow_ann = synthesize_with_beats_loop(profile, 2.0, 360.0, lead)
        assert np.array_equal(fast_z, slow_z)
        assert fast_ann == slow_ann


class TestRecordCacheLru:
    """Pins the _load_record_cached LRU semantics its docstring promises."""

    def test_cache_hit_returns_same_object(self):
        a = load_record("100", duration_s=1.27)
        b = load_record("100", duration_s=1.27)
        assert a is b

    def test_distinct_parameters_distinct_entries(self):
        a = load_record("100", duration_s=1.27)
        b = load_record("100", duration_s=1.27, clean=True)
        assert a is not b

    def test_eviction_preserves_record_bytes(self):
        # More than 64 distinct parameter tuples forces eviction of the
        # first entry; re-synthesis must be byte-identical (the record is
        # a pure function of its parameters).
        first = load_record("100", duration_s=1.31)
        adu = first.adu.copy()
        annotations = list(first.annotations)
        for i in range(70):
            load_record("101", duration_s=1.0 + 0.01 * i)
        again = load_record("100", duration_s=1.31)
        assert again is not first  # evicted, so freshly synthesized
        assert np.array_equal(again.adu, adu)
        assert list(again.annotations) == annotations
        assert again.header == first.header
