"""Tests of the synthetic MIT-BIH-like database."""

import numpy as np
import pytest

from repro.signals.database import (
    MITBIH_RECORD_NAMES,
    SyntheticDatabase,
    load_database,
    load_record,
    record_profile,
)


class TestRecordNames:
    def test_48_records_like_mitbih(self):
        assert len(MITBIH_RECORD_NAMES) == 48
        assert len(set(MITBIH_RECORD_NAMES)) == 48

    def test_known_names_present(self):
        for name in ("100", "117", "208", "234"):
            assert name in MITBIH_RECORD_NAMES


class TestRecordProfile:
    def test_deterministic(self):
        assert record_profile("100") == record_profile("100")

    def test_profiles_differ_across_records(self):
        hrs = {record_profile(n).mean_hr_bpm for n in MITBIH_RECORD_NAMES}
        assert len(hrs) == 48

    def test_parameter_ranges(self):
        for name in MITBIH_RECORD_NAMES:
            p = record_profile(name)
            assert 55.0 <= p.mean_hr_bpm <= 95.0
            assert 0.6 <= p.amplitude_mv <= 1.5
            assert 0.0 <= p.pvc_probability <= 0.15

    def test_some_records_have_pvcs(self):
        with_pvc = [
            n for n in MITBIH_RECORD_NAMES if record_profile(n).pvc_probability > 0
        ]
        assert 5 <= len(with_pvc) <= 30

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            record_profile("999")


class TestLoadRecord:
    def test_header_matches_mitbih(self):
        rec = load_record("100", duration_s=5.0)
        assert rec.header.fs_hz == 360.0
        assert rec.header.resolution_bits == 11
        assert rec.header.adc_zero == 1024

    def test_duration(self):
        rec = load_record("101", duration_s=7.5)
        assert rec.duration_s == pytest.approx(7.5)

    def test_deterministic(self):
        a = load_record("103", duration_s=5.0)
        b = load_record("103", duration_s=5.0)
        assert np.array_equal(a.adu, b.adu)
        assert a.annotations == b.annotations

    def test_records_differ(self):
        a = load_record("100", duration_s=5.0)
        b = load_record("101", duration_s=5.0)
        assert not np.array_equal(a.adu, b.adu)

    def test_signal_in_plausible_adu_range(self):
        """Paper Fig. 2 plots raw samples around ~900-1250 ADU."""
        rec = load_record("100", duration_s=10.0)
        assert 600 < rec.adu.min() < 1100
        assert 1024 < rec.adu.max() < 1600

    def test_clean_flag_removes_noise(self):
        noisy = load_record("105", duration_s=5.0)
        clean = load_record("105", duration_s=5.0, clean=True)
        assert not np.array_equal(noisy.adu, clean.adu)
        # Clean record has visibly lower high-frequency energy.
        def hf(x):
            d = np.diff(x.astype(float))
            return float(np.mean(d**2))

        assert hf(clean.adu) < hf(noisy.adu)

    def test_annotations_mark_r_peaks(self):
        rec = load_record("100", duration_s=20.0, clean=True)
        assert len(rec.annotations) >= 10
        mv = rec.signal_mv()
        peak = float(np.max(np.abs(mv)))
        for ann in rec.annotations[2:-2]:
            window = mv[max(0, ann.sample - 15) : ann.sample + 15]
            assert float(np.max(np.abs(window))) > 0.4 * peak

    def test_pvc_records_annotate_v_beats(self):
        pvc_names = [
            n for n in MITBIH_RECORD_NAMES
            if record_profile(n).pvc_probability > 0.08
        ]
        rec = load_record(pvc_names[0], duration_s=60.0)
        symbols = {a.symbol for a in rec.annotations}
        assert "V" in symbols and "N" in symbols

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            load_record("100", duration_s=0.0)


class TestDatabase:
    def test_full_load(self):
        db = load_database(duration_s=2.0)
        assert len(db) == 48
        assert db.names == MITBIH_RECORD_NAMES

    def test_subset_and_lookup(self):
        db = load_database(["100", "200"], duration_s=2.0)
        assert len(db) == 2
        assert db["200"].name == "200"
        with pytest.raises(KeyError):
            db["101"]

    def test_total_duration(self):
        db = load_database(["100", "101"], duration_s=3.0)
        assert db.total_duration_s() == pytest.approx(6.0)

    def test_subset_method(self):
        db = load_database(["100", "101", "103"], duration_s=2.0)
        sub = db.subset(["103", "100"])
        assert sub.names == ("103", "100")

    def test_duplicate_names_rejected(self):
        rec = load_record("100", duration_s=2.0)
        with pytest.raises(ValueError):
            SyntheticDatabase((rec, rec))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDatabase(())
