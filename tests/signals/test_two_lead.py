"""Tests of two-lead synthesis and two-signal WFDB round trips."""

import numpy as np
import pytest

from repro.signals.database import load_record, load_record_pair
from repro.signals.detectors import detect_r_peaks
from repro.signals.wfdb_io import read_record, write_record_pair


class TestLeadSynthesis:
    def test_leads_differ_in_morphology(self):
        mlii = load_record("100", duration_s=10.0, lead="MLII")
        v5 = load_record("100", duration_s=10.0, lead="V5")
        assert not np.array_equal(mlii.adu, v5.adu)
        assert mlii.header.lead == "MLII"
        assert v5.header.lead == "V5"

    def test_leads_share_beat_schedule(self):
        mlii, v5 = load_record_pair("103", duration_s=20.0, clean=True)
        assert mlii.annotations == v5.annotations
        assert len(mlii) == len(v5)

    def test_default_lead_is_mlii(self):
        default = load_record("101", duration_s=5.0)
        explicit = load_record("101", duration_s=5.0, lead="MLII")
        assert np.array_equal(default.adu, explicit.adu)

    def test_unknown_lead_rejected(self):
        with pytest.raises(KeyError):
            load_record("100", duration_s=5.0, lead="aVR")

    def test_leads_are_correlated_not_identical(self):
        """Two projections of the same dipole: strongly correlated at the
        beats but with distinct wave amplitudes."""
        mlii, v5 = load_record_pair("100", duration_s=20.0, clean=True)
        a = mlii.signal_mv() - mlii.signal_mv().mean()
        b = v5.signal_mv() - v5.signal_mv().mean()
        corr = float(np.dot(a, b) / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert 0.5 < corr < 0.999

    def test_detector_agrees_across_leads(self):
        mlii, v5 = load_record_pair("100", duration_s=20.0, clean=True)
        p1 = detect_r_peaks(mlii.signal_mv(), 360.0)
        p2 = detect_r_peaks(v5.signal_mv(), 360.0)
        assert abs(len(p1) - len(p2)) <= 1

    def test_per_lead_noise_independent(self):
        mlii, v5 = load_record_pair("105", duration_s=5.0)
        mlii_c, v5_c = load_record_pair("105", duration_s=5.0, clean=True)
        noise_1 = mlii.adu - mlii_c.adu
        noise_2 = v5.adu - v5_c.adu
        # Realizations differ (different electrodes).
        assert not np.array_equal(noise_1, noise_2)


class TestTwoSignalWfdb:
    def test_pair_roundtrip(self, tmp_path):
        mlii, v5 = load_record_pair("100", duration_s=5.0)
        hea, dat = write_record_pair(mlii, v5, tmp_path)
        back_0 = read_record(hea, channel=0)
        back_1 = read_record(hea, channel=1)
        assert np.array_equal(back_0.adu, mlii.adu)
        assert np.array_equal(back_1.adu, v5.adu)
        assert back_0.header.lead == "MLII"
        assert back_1.header.lead == "V5"

    def test_mismatched_records_rejected(self, tmp_path):
        a = load_record("100", duration_s=5.0)
        b = load_record("101", duration_s=5.0)
        with pytest.raises(ValueError):
            write_record_pair(a, b, tmp_path)

    def test_length_mismatch_rejected(self, tmp_path):
        a = load_record("100", duration_s=5.0)
        b = load_record("100", duration_s=6.0, lead="V5")
        with pytest.raises(ValueError):
            write_record_pair(a, b, tmp_path)
