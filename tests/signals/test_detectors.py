"""Tests of the Pan-Tompkins-style QRS detector."""

import numpy as np
import pytest

from repro.signals.database import MITBIH_RECORD_NAMES, load_record, record_profile
from repro.signals.detectors import QrsDetector, detect_r_peaks


class TestOnSyntheticRecords:
    def test_clean_record_perfect_detection(self):
        rec = load_record("100", duration_s=30.0, clean=True)
        peaks = detect_r_peaks(rec.signal_mv(), rec.header.fs_hz)
        truth = rec.beat_samples()
        assert len(peaks) == len(truth)
        tol = int(0.1 * rec.header.fs_hz)
        for p, t in zip(sorted(peaks), sorted(truth)):
            assert abs(p - t) <= tol

    def test_noisy_record_high_sensitivity(self):
        rec = load_record("100", duration_s=30.0)
        peaks = detect_r_peaks(rec.signal_mv(), rec.header.fs_hz)
        truth = rec.beat_samples()
        assert abs(len(peaks) - len(truth)) <= max(2, 0.1 * len(truth))

    def test_detects_on_adu_scale_too(self):
        """Amplitude/baseline invariance: raw ADU works like mV."""
        rec = load_record("103", duration_s=20.0)
        mv_peaks = detect_r_peaks(rec.signal_mv(), 360.0)
        adu_peaks = detect_r_peaks(rec.adu.astype(float), 360.0)
        assert len(mv_peaks) == len(adu_peaks)

    def test_inverted_polarity(self):
        rec = load_record("103", duration_s=20.0, clean=True)
        normal = detect_r_peaks(rec.signal_mv(), 360.0)
        flipped = detect_r_peaks(-rec.signal_mv(), 360.0)
        assert abs(len(normal) - len(flipped)) <= 1

    def test_pvc_record_detects_most_beats(self):
        pvc = [n for n in MITBIH_RECORD_NAMES
               if record_profile(n).pvc_probability > 0.08][0]
        rec = load_record(pvc, duration_s=30.0)
        peaks = detect_r_peaks(rec.signal_mv(), 360.0)
        truth = rec.beat_samples()
        assert len(peaks) >= 0.85 * len(truth)


class TestEdgeCases:
    def test_flat_signal_no_peaks(self):
        assert detect_r_peaks(np.zeros(2000), 360.0) == []

    def test_too_short_signal(self):
        assert detect_r_peaks(np.ones(100), 360.0) == []

    def test_refractory_enforced(self):
        rec = load_record("100", duration_s=30.0)
        peaks = detect_r_peaks(rec.signal_mv(), 360.0)
        spacing = np.diff(sorted(peaks))
        assert np.all(spacing >= 0.2 * 360.0 / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_r_peaks(np.zeros((10, 10)), 360.0)
        with pytest.raises(ValueError):
            detect_r_peaks(np.zeros(1000), 0.0)
        with pytest.raises(ValueError):
            QrsDetector(band_hz=(15.0, 5.0))
        with pytest.raises(ValueError):
            QrsDetector(threshold_fraction=1.5)
