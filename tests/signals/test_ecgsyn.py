"""Tests of the ECGSYN-style synthesizer and the RR tachogram model."""

import numpy as np
import pytest

from repro.signals.ecgsyn import (
    NORMAL_MORPHOLOGY,
    PVC_MORPHOLOGY,
    EcgMorphology,
    RRParameters,
    integrate_reference,
    rr_tachogram,
    synthesize_ecg,
    synthesize_loop,
)


class TestMorphology:
    def test_normal_has_five_waves(self):
        assert len(NORMAL_MORPHOLOGY.theta_rad) == 5

    def test_r_wave_dominates(self):
        a = np.asarray(NORMAL_MORPHOLOGY.a)
        assert np.argmax(np.abs(a)) == 2  # the R wave

    def test_scaled(self):
        doubled = NORMAL_MORPHOLOGY.scaled(2.0)
        assert doubled.a == tuple(2 * x for x in NORMAL_MORPHOLOGY.a)

    def test_validation(self):
        with pytest.raises(ValueError):
            EcgMorphology(theta_rad=(0.0,), a=(1.0, 2.0), b=(0.1,))
        with pytest.raises(ValueError):
            EcgMorphology(theta_rad=(0.0,), a=(1.0,), b=(0.0,))


class TestRrTachogram:
    def test_mean_and_positivity(self, rng):
        params = RRParameters(mean_hr_bpm=72.0, std_hr_bpm=2.0)
        rr = rr_tachogram(20000, 360.0, params, rng)
        assert np.all(rr > 0)
        assert float(np.mean(rr)) == pytest.approx(60.0 / 72.0, rel=0.02)

    def test_variability_scales(self, rng):
        quiet = rr_tachogram(
            8192, 360.0, RRParameters(std_hr_bpm=0.5), np.random.default_rng(1)
        )
        wild = rr_tachogram(
            8192, 360.0, RRParameters(std_hr_bpm=4.0), np.random.default_rng(1)
        )
        assert np.std(wild) > np.std(quiet) * 2

    def test_zero_std_is_constant(self, rng):
        rr = rr_tachogram(1024, 360.0, RRParameters(std_hr_bpm=0.0), rng)
        assert np.allclose(rr, rr[0])

    def test_spectrum_is_bimodal(self):
        """Power concentrates near the LF and HF poles."""
        params = RRParameters(std_hr_bpm=2.0)
        rr = rr_tachogram(2**15, 8.0, params, np.random.default_rng(7))
        centered = rr - np.mean(rr)
        spec = np.abs(np.fft.rfft(centered)) ** 2
        freqs = np.fft.rfftfreq(centered.size, d=1 / 8.0)
        in_band = spec[(freqs > 0.05) & (freqs < 0.35)].sum()
        assert in_band / spec.sum() > 0.9

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            rr_tachogram(0, 360.0, RRParameters(), rng)
        with pytest.raises(ValueError):
            RRParameters(mean_hr_bpm=0.0)


class TestSynthesizeEcg:
    def test_length_and_amplitude(self):
        sig = synthesize_ecg(10.0, 360.0, amplitude_mv=1.2, seed=0)
        assert sig.size == 3600
        assert float(np.max(np.abs(sig))) == pytest.approx(1.2, rel=1e-6)

    def test_deterministic_given_seed(self):
        a = synthesize_ecg(5.0, 360.0, seed=42)
        b = synthesize_ecg(5.0, 360.0, seed=42)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = synthesize_ecg(5.0, 360.0, seed=1)
        b = synthesize_ecg(5.0, 360.0, seed=2)
        assert not np.allclose(a, b)

    def test_beat_rate_matches_heart_rate(self):
        hr = 75.0
        sig = synthesize_ecg(
            30.0, 360.0, rr_params=RRParameters(mean_hr_bpm=hr, std_hr_bpm=0.5),
            seed=3,
        )
        # Count R peaks: samples above 60% of max, grouped.
        above = sig > 0.6 * sig.max()
        edges = np.diff(above.astype(int))
        n_peaks = int(np.sum(edges == 1))
        expected = 30.0 * hr / 60.0
        assert abs(n_peaks - expected) <= 4

    def test_pvc_morphology_differs(self):
        normal = synthesize_ecg(10.0, 360.0, seed=5)
        pvc = synthesize_ecg(10.0, 360.0, morphology=PVC_MORPHOLOGY, seed=5)
        assert not np.allclose(normal, pvc)

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_ecg(0.0)
        with pytest.raises(ValueError):
            synthesize_ecg(1.0, fs_hz=0.0)


class TestReferenceIntegrator:
    def test_agrees_with_phase_domain(self):
        """The fast path and the full 3-state RK4 integration produce the
        same waveform morphology (compared via best-aligned correlation
        over one beat at fixed heart rate)."""
        fs = 360.0
        ref = integrate_reference(4.0, fs, mean_hr_bpm=60.0)
        fast = synthesize_ecg(
            4.0,
            fs,
            rr_params=RRParameters(mean_hr_bpm=60.0, std_hr_bpm=0.0),
            resp_amplitude_mv=0.0,
            seed=11,
        )
        # Normalize and align by circular cross-correlation.
        a = (ref - ref.mean()) / np.linalg.norm(ref - ref.mean())
        b = (fast - fast.mean()) / np.linalg.norm(fast - fast.mean())
        corr = np.fft.irfft(np.fft.rfft(a) * np.conj(np.fft.rfft(b)))
        assert float(np.max(corr)) > 0.95

    def test_limit_cycle_reached(self):
        sig = integrate_reference(3.0, 250.0)
        # Periodicity: beats 2 and 3 nearly identical at fixed HR.
        beat = 250  # samples per beat at 60 bpm
        b2 = sig[beat : 2 * beat]
        b3 = sig[2 * beat : 3 * beat]
        assert np.linalg.norm(b2 - b3) / np.linalg.norm(b2) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            integrate_reference(-1.0)
        with pytest.raises(ValueError):
            integrate_reference(1.0, oversample=0)


class TestScalarOracle:
    """The per-sample loop must match the vectorized integrator bit for bit."""

    def test_bit_identical_default_params(self):
        fast = synthesize_ecg(2.0, 360.0, seed=3)
        slow = synthesize_loop(2.0, 360.0, seed=3)
        assert np.array_equal(fast, slow)

    def test_bit_identical_across_seeds(self):
        for seed in (0, 7, 123):
            assert np.array_equal(
                synthesize_ecg(1.0, 250.0, seed=seed),
                synthesize_loop(1.0, 250.0, seed=seed),
            )

    def test_bit_identical_custom_morphology_and_rr(self):
        kwargs = dict(
            morphology=PVC_MORPHOLOGY,
            rr_params=RRParameters(mean_hr_bpm=75.0, std_hr_bpm=2.0),
            amplitude_mv=1.4,
            z_baseline_mv=0.1,
            resp_rate_hz=0.3,
            resp_amplitude_mv=0.01,
            seed=5,
        )
        assert np.array_equal(
            synthesize_ecg(1.5, 360.0, **kwargs),
            synthesize_loop(1.5, 360.0, **kwargs),
        )

    def test_oracle_validates_like_fast_path(self):
        with pytest.raises(ValueError):
            synthesize_loop(-1.0, 360.0)
