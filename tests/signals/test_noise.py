"""Tests of the noise generators and profiles."""

import numpy as np
import pytest

from repro.signals.noise import (
    NoiseProfile,
    baseline_wander,
    electrode_motion,
    muscle_artifact,
    powerline_interference,
    white_noise,
)

FS = 360.0
DUR = 10.0


def _band_power_fraction(x, fs, lo, hi):
    # Hann window: without it, rectangle-window leakage from narrowband
    # components dominates the out-of-band tail and masks the filter shape.
    windowed = x * np.hanning(x.size)
    spec = np.abs(np.fft.rfft(windowed)) ** 2
    freqs = np.fft.rfftfreq(x.size, d=1 / fs)
    band = spec[(freqs >= lo) & (freqs <= hi)].sum()
    return band / spec.sum()


class TestBaselineWander:
    def test_is_lowpass(self, rng):
        drift = baseline_wander(DUR, FS, cutoff_hz=0.5, rng=rng)
        assert _band_power_fraction(drift, FS, 0.0, 1.0) > 0.95

    def test_rms_amplitude(self, rng):
        drift = baseline_wander(DUR, FS, amplitude_mv=0.08, rng=rng)
        assert float(np.sqrt(np.mean(drift**2))) == pytest.approx(0.08, rel=1e-6)

    def test_length(self, rng):
        assert baseline_wander(2.0, FS, rng=rng).size == 720


class TestPowerline:
    def test_peak_at_mains(self):
        hum = powerline_interference(DUR, FS, mains_hz=60.0, amplitude_mv=0.01)
        spec = np.abs(np.fft.rfft(hum))
        freqs = np.fft.rfftfreq(hum.size, d=1 / FS)
        assert abs(freqs[np.argmax(spec)] - 60.0) < 0.2

    def test_harmonic_present(self):
        hum = powerline_interference(
            DUR, FS * 4, mains_hz=50.0, harmonic_fraction=0.3
        )
        assert _band_power_fraction(hum, FS * 4, 148.0, 152.0) > 0.05

    def test_deterministic(self):
        a = powerline_interference(1.0, FS)
        b = powerline_interference(1.0, FS)
        assert np.array_equal(a, b)


class TestMuscleArtifact:
    def test_is_bandpass(self, rng):
        emg = muscle_artifact(DUR, FS, band_hz=(20.0, 120.0), rng=rng)
        assert _band_power_fraction(emg, FS, 15.0, 130.0) > 0.9

    def test_rms(self, rng):
        emg = muscle_artifact(DUR, FS, amplitude_mv=0.05, rng=rng)
        assert float(np.sqrt(np.mean(emg**2))) == pytest.approx(0.05, rel=1e-6)

    def test_band_clipped_at_low_fs(self, rng):
        """Upper edge above Nyquist must not crash."""
        emg = muscle_artifact(DUR, 100.0, band_hz=(20.0, 120.0), rng=rng)
        assert emg.size == 1000


class TestElectrodeMotion:
    def test_sparse_events(self):
        rng = np.random.default_rng(0)
        bumps = electrode_motion(
            60.0, FS, events_per_minute=2.0, amplitude_mv=0.5, rng=rng
        )
        active = np.mean(np.abs(bumps) > 0.01)
        assert active < 0.5  # transients, not continuous noise

    def test_no_events_is_zero(self, rng):
        bumps = electrode_motion(10.0, FS, events_per_minute=0.0, rng=rng)
        assert np.allclose(bumps, 0.0)


class TestWhiteNoise:
    def test_flat_spectrum(self, rng):
        wn = white_noise(DUR, FS, amplitude_mv=1.0, rng=rng)
        low = _band_power_fraction(wn, FS, 1.0, 60.0)
        high = _band_power_fraction(wn, FS, 60.0, 119.0)
        assert low == pytest.approx(high, rel=0.3)


class TestNoiseProfile:
    def test_render_sums_components(self):
        profile = NoiseProfile(
            baseline_mv=0.05, powerline_mv=0.01, muscle_mv=0.01, white_mv=0.005
        )
        noise = profile.render(DUR, FS, np.random.default_rng(1))
        assert noise.size == int(DUR * FS)
        assert float(np.std(noise)) > 0.03

    def test_all_zero_profile(self):
        profile = NoiseProfile(0.0, 0.0, 0.0, 0.0)
        noise = profile.render(1.0, FS, np.random.default_rng(1))
        assert np.allclose(noise, 0.0)

    def test_scaled(self):
        base = NoiseProfile()
        double = base.scaled(2.0)
        assert double.baseline_mv == pytest.approx(2 * base.baseline_mv)
        assert double.mains_hz == base.mains_hz
        with pytest.raises(ValueError):
            base.scaled(-1.0)

    def test_deterministic_given_rng(self):
        p = NoiseProfile()
        a = p.render(2.0, FS, np.random.default_rng(9))
        b = p.render(2.0, FS, np.random.default_rng(9))
        assert np.array_equal(a, b)
