"""Tests of the HRV metrics, incl. closing the loop on the synthesizer."""

import numpy as np
import pytest

from repro.signals.database import load_record, record_profile
from repro.signals.hrv import hrv_summary, lf_hf_ratio, rr_intervals


class TestRrIntervals:
    def test_regular_beats(self):
        rr = rr_intervals([0, 360, 720, 1080], fs_hz=360.0)
        assert np.allclose(rr, 1.0)

    def test_sorting_applied(self):
        rr = rr_intervals([720, 0, 360], fs_hz=360.0)
        assert np.allclose(rr, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            rr_intervals([100], fs_hz=360.0)
        with pytest.raises(ValueError):
            rr_intervals([0, 0, 360], fs_hz=360.0)
        with pytest.raises(ValueError):
            rr_intervals([0, 360], fs_hz=0.0)


class TestHrvSummary:
    def test_metronome_has_zero_variability(self):
        s = hrv_summary(list(range(0, 3600, 360)), fs_hz=360.0)
        assert s.mean_hr_bpm == pytest.approx(60.0)
        assert s.sdnn_s == pytest.approx(0.0)
        assert s.rmssd_s == pytest.approx(0.0)
        assert s.pnn50 == 0.0

    def test_alternans_rmssd(self):
        # Alternating 0.9 s / 1.1 s intervals: |diff| = 0.2 s always.
        beats = np.cumsum([0] + [324, 396] * 5)
        s = hrv_summary(beats, fs_hz=360.0)
        assert s.rmssd_s == pytest.approx(0.2, rel=1e-6)
        assert s.pnn50 == 1.0

    def test_synthesizer_hr_recovered(self):
        """Measured mean HR matches the record profile's parameter."""
        for name in ("100", "112", "231"):
            profile = record_profile(name)
            record = load_record(name, duration_s=60.0, clean=True)
            s = hrv_summary(record.beat_samples(), record.header.fs_hz)
            assert s.mean_hr_bpm == pytest.approx(
                profile.mean_hr_bpm, rel=0.05
            )

    def test_synthesizer_variability_scales(self):
        """Records with larger std_hr_bpm show larger SDNN."""
        from repro.signals.database import MITBIH_RECORD_NAMES

        profiles = sorted(
            (record_profile(n) for n in MITBIH_RECORD_NAMES),
            key=lambda p: p.std_hr_bpm,
        )
        quiet, wild = profiles[0], profiles[-1]
        s_quiet = hrv_summary(
            load_record(quiet.name, duration_s=60.0, clean=True).beat_samples(),
            360.0,
        )
        s_wild = hrv_summary(
            load_record(wild.name, duration_s=60.0, clean=True).beat_samples(),
            360.0,
        )
        assert s_wild.sdnn_s > s_quiet.sdnn_s


class TestLfHf:
    def test_requires_enough_beats(self):
        with pytest.raises(ValueError):
            lf_hf_ratio([0, 360, 720], fs_hz=360.0)

    def test_positive_on_synthetic_record(self):
        record = load_record("100", duration_s=60.0, clean=True)
        ratio = lf_hf_ratio(record.beat_samples(), record.header.fs_hz)
        assert ratio > 0.0

    def test_survives_compression(self, codebook_7bit):
        """RR statistics on the reconstruction match the original — the
        HRV-level counterpart of the diagnostic-fidelity claim."""
        from repro.core.config import FrontEndConfig
        from repro.core.frontend import HybridFrontEnd
        from repro.core.receiver import HybridReceiver
        from repro.recovery.pdhg import PdhgSettings
        from repro.signals.detectors import detect_r_peaks

        config = FrontEndConfig(
            window_len=256,
            n_measurements=64,
            solver=PdhgSettings(max_iter=900, tol=3e-4),
        )
        record = load_record("100", duration_s=30.0)
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        recons = []
        for idx, window in enumerate(record.windows(256)):
            if idx >= 12:
                break
            recons.append(
                rx.reconstruct(fe.process_window(window, idx)).x_centered(1024)
            )
        reconstructed = np.concatenate(recons)
        original = record.adu[: reconstructed.size].astype(float) - 1024

        s_orig = hrv_summary(detect_r_peaks(original, 360.0), 360.0)
        s_recon = hrv_summary(detect_r_peaks(reconstructed, 360.0), 360.0)
        assert s_recon.mean_hr_bpm == pytest.approx(s_orig.mean_hr_bpm, rel=0.03)
        assert abs(s_recon.sdnn_s - s_orig.sdnn_s) < 0.03
