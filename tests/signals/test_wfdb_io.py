"""Tests of the WFDB format-212 reader/writer."""

import numpy as np
import pytest

from repro.signals.database import load_record
from repro.signals.wfdb_io import (
    pack_212,
    read_header,
    read_record,
    unpack_212,
    write_record,
)


class TestPack212:
    def test_known_pair(self):
        # a = 0x123, b = 0x456 -> bytes 0x23, 0x41, 0x56.
        data = pack_212(np.array([0x123, 0x456], dtype=np.int64))
        assert data == bytes([0x23, 0x41, 0x56])

    def test_roundtrip_even(self, rng):
        samples = rng.integers(-2048, 2048, size=100)
        assert np.array_equal(unpack_212(pack_212(samples), 100), samples)

    def test_roundtrip_odd(self, rng):
        samples = rng.integers(-2048, 2048, size=101)
        assert np.array_equal(unpack_212(pack_212(samples), 101), samples)

    def test_negative_samples(self):
        samples = np.array([-1, -2048, 2047, 0], dtype=np.int64)
        assert np.array_equal(unpack_212(pack_212(samples), 4), samples)

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            pack_212(np.array([2048], dtype=np.int64))
        with pytest.raises(TypeError):
            pack_212(np.array([0.5]))

    def test_unpack_validation(self):
        with pytest.raises(ValueError):
            unpack_212(b"\x00\x00", 1)  # not a multiple of 3
        with pytest.raises(ValueError):
            unpack_212(b"\x00\x00\x00", 3)  # too many requested

    @pytest.mark.parametrize("n", [0, 1, 2, 7, 64])
    def test_roundtrip_sizes(self, n, rng):
        samples = rng.integers(-2048, 2048, size=n)
        assert np.array_equal(unpack_212(pack_212(samples), n), samples)


class TestWriteRead:
    def test_record_roundtrip(self, tmp_path):
        record = load_record("100", duration_s=5.0)
        hea, dat = write_record(record, tmp_path)
        assert hea.exists() and dat.exists()
        loaded = read_record(hea)
        assert loaded.name == record.name
        assert loaded.header.fs_hz == record.header.fs_hz
        assert loaded.header.adc_gain == record.header.adc_gain
        assert loaded.header.adc_zero == record.header.adc_zero
        assert np.array_equal(loaded.adu, record.adu)

    def test_header_parse(self, tmp_path):
        record = load_record("103", duration_s=2.0)
        hea, _ = write_record(record, tmp_path)
        name, n_samples, fs, signals = read_header(hea)
        assert name == "103"
        assert n_samples == len(record)
        assert fs == 360.0
        assert len(signals) == 1
        assert signals[0].fmt == 212
        assert signals[0].adc_zero == 1024

    def test_mitbih_style_header_accepted(self, tmp_path):
        """Parse a header in the exact style PhysioNet ships for MIT-BIH."""
        record = load_record("100", duration_s=1.0)
        samples = record.adu.astype(np.int64)
        # Interleave two copies as a 2-signal record.
        inter = np.empty(2 * samples.size, dtype=np.int64)
        inter[0::2] = samples
        inter[1::2] = samples
        (tmp_path / "100.dat").write_bytes(pack_212(inter))
        (tmp_path / "100.hea").write_text(
            f"100 2 360 {samples.size}\n"
            f"100.dat 212 200 11 1024 995 -22131 0 MLII\n"
            f"100.dat 212 200 11 1024 1011 20052 0 V5\n"
        )
        loaded = read_record(tmp_path / "100.hea", channel=1)
        assert np.array_equal(loaded.adu, samples)
        assert loaded.header.resolution_bits == 11

    def test_channel_out_of_range(self, tmp_path):
        record = load_record("100", duration_s=1.0)
        hea, _ = write_record(record, tmp_path)
        with pytest.raises(ValueError):
            read_record(hea, channel=3)

    def test_unsupported_format_rejected(self, tmp_path):
        (tmp_path / "x.hea").write_text("x 1 360 10\nx.dat 16 200 11 1024\n")
        (tmp_path / "x.dat").write_bytes(b"\x00" * 30)
        with pytest.raises(ValueError, match="212"):
            read_record(tmp_path / "x.hea")

    def test_empty_header_rejected(self, tmp_path):
        (tmp_path / "e.hea").write_text("\n# only comments\n")
        with pytest.raises(ValueError):
            read_header(tmp_path / "e.hea")
