"""Tests of receiver-side preprocessing filters."""

import numpy as np
import pytest

from repro.signals.noise import baseline_wander, powerline_interference
from repro.signals.preprocessing import clean, notch_mains, remove_baseline

FS = 360.0


def _band_power(x, fs, lo, hi):
    w = x * np.hanning(x.size)
    spec = np.abs(np.fft.rfft(w)) ** 2
    freqs = np.fft.rfftfreq(x.size, d=1 / fs)
    return float(spec[(freqs >= lo) & (freqs <= hi)].sum())


class TestRemoveBaseline:
    def test_kills_drift_keeps_qrs_band(self, rng):
        drift = baseline_wander(20.0, FS, amplitude_mv=0.3, rng=rng)
        qrs_like = 0.5 * np.sin(2 * np.pi * 10.0 * np.arange(drift.size) / FS)
        x = drift + qrs_like
        out = remove_baseline(x, FS)
        assert _band_power(out, FS, 0.0, 0.4) < 0.05 * _band_power(x, FS, 0.0, 0.4)
        kept = _band_power(out, FS, 9.0, 11.0) / _band_power(x, FS, 9.0, 11.0)
        assert kept > 0.9

    def test_zero_phase(self):
        """An impulse's energy centroid must not shift."""
        x = np.zeros(2000)
        x[1000] = 1.0
        out = remove_baseline(x, FS)
        centroid = float(np.sum(np.arange(2000) * out**2) / np.sum(out**2))
        assert abs(centroid - 1000) < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            remove_baseline(np.ones(1000), FS, cutoff_hz=0.0)
        with pytest.raises(ValueError):
            remove_baseline(np.ones(1000), FS, cutoff_hz=200.0)
        with pytest.raises(ValueError):
            remove_baseline(np.ones(5), FS)
        with pytest.raises(ValueError):
            remove_baseline(np.ones((10, 2)), FS)


class TestNotch:
    def test_removes_mains_keeps_neighbours(self):
        n = int(20 * FS)
        t = np.arange(n) / FS
        hum = powerline_interference(20.0, FS, mains_hz=60.0, amplitude_mv=0.2)
        signal = 0.3 * np.sin(2 * np.pi * 12.0 * t)
        x = signal + hum
        out = notch_mains(x, FS, mains_hz=60.0)
        assert _band_power(out, FS, 59.0, 61.0) < 0.05 * _band_power(x, FS, 59.0, 61.0)
        kept = _band_power(out, FS, 11.0, 13.0) / _band_power(x, FS, 11.0, 13.0)
        assert kept > 0.95

    def test_50hz_variant(self):
        n = int(10 * FS)
        t = np.arange(n) / FS
        x = np.sin(2 * np.pi * 50.0 * t)
        out = notch_mains(x, FS, mains_hz=50.0)
        assert float(np.std(out)) < 0.1 * float(np.std(x))

    def test_validation(self):
        with pytest.raises(ValueError):
            notch_mains(np.ones(100), FS, mains_hz=500.0)
        with pytest.raises(ValueError):
            notch_mains(np.ones(100), FS, q_factor=0.0)


class TestClean:
    def test_improves_detector_conditions(self, record_100):
        """Cleaning a noisy reconstruction-like signal should not break
        (and typically helps) beat detection."""
        from repro.signals.detectors import detect_r_peaks

        x = record_100.signal_mv()
        cleaned = clean(x, record_100.header.fs_hz)
        raw_peaks = detect_r_peaks(x, record_100.header.fs_hz)
        clean_peaks = detect_r_peaks(cleaned, record_100.header.fs_hz)
        assert abs(len(clean_peaks) - len(raw_peaks)) <= 2

    def test_composition_order(self, rng):
        x = rng.standard_normal(4000)
        manual = notch_mains(remove_baseline(x, FS), FS)
        assert np.allclose(clean(x, FS), manual)
