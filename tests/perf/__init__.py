"""Tests for the repro.perf workspace/profiler engine."""
