"""Workspace/pool semantics: reuse, growth, accounting, aliasing."""

import numpy as np
import pytest

from repro.backend import BackendSettings
from repro.perf import (
    POOL,
    NullWorkspace,
    Workspace,
    WorkspacePool,
    lease_workspace,
    pool_stats,
    reset_pool,
    use_workspaces,
    workspaces_enabled,
)


class TestWorkspace:
    def test_same_name_reuses_backing_memory(self):
        ws = Workspace()
        a = ws.buf("x", (4, 3))
        a[:] = 7.0
        b = ws.buf("x", (4, 3))
        assert np.shares_memory(a, b)
        # One allocation, two serves.
        assert ws.bytes_allocated == 4 * 3 * 8
        assert ws.bytes_served == 2 * 4 * 3 * 8
        assert ws.buf_calls == 2

    def test_views_are_c_contiguous_and_shaped(self):
        ws = Workspace()
        a = ws.buf("x", (5, 2))
        assert a.shape == (5, 2)
        assert a.flags["C_CONTIGUOUS"]
        assert a.dtype == np.float64

    def test_shrinking_request_does_not_reallocate(self):
        ws = Workspace()
        ws.buf("x", (10,))
        allocated = ws.bytes_allocated
        small = ws.buf("x", (4,))
        assert small.shape == (4,)
        assert ws.bytes_allocated == allocated

    def test_growing_request_reallocates(self):
        ws = Workspace()
        ws.buf("x", (4,))
        before = ws.bytes_allocated
        ws.buf("x", (10,))
        assert ws.bytes_allocated == before + 10 * 8

    def test_distinct_names_are_distinct_memory(self):
        ws = Workspace()
        a = ws.buf("a", (8,))
        b = ws.buf("b", (8,))
        assert not np.shares_memory(a, b)

    def test_dtype_participates_in_key(self):
        ws = Workspace()
        a = ws.buf("x", (8,), np.float64)
        b = ws.buf("x", (8,), np.float32)
        assert not np.shares_memory(a, b)
        assert b.dtype == np.float32

    def test_zero_size_shape_served(self):
        ws = Workspace()
        a = ws.buf("x", (0, 3))
        assert a.shape == (0, 3)

    def test_negative_dimension_rejected(self):
        ws = Workspace()
        with pytest.raises(ValueError, match="negative dimension"):
            ws.buf("x", (-1, 3))

    def test_reset_counters_keeps_capacity(self):
        ws = Workspace()
        ws.buf("x", (16,))
        ws.reset_counters()
        assert ws.bytes_allocated == 0
        assert ws.bytes_served == 0
        assert ws.capacity_bytes == 16 * 8
        # The warm buffer serves without allocating.
        ws.buf("x", (16,))
        assert ws.bytes_allocated == 0
        assert ws.bytes_served == 16 * 8


class TestNullWorkspace:
    def test_every_call_allocates_fresh(self):
        ws = NullWorkspace()
        a = ws.buf("x", (4,))
        b = ws.buf("x", (4,))
        assert not np.shares_memory(a, b)
        assert ws.bytes_allocated == ws.bytes_served == 2 * 4 * 8
        assert ws.buf_calls == 2

    def test_default_dtype_is_float64(self):
        assert NullWorkspace().buf("x", (2,)).dtype == np.float64


class TestWorkspacePool:
    def test_release_then_acquire_reuses_workspace(self):
        pool = WorkspacePool()
        settings = BackendSettings()
        ws = pool.acquire(settings, "t:1")
        ws.buf("x", (8,))
        pool.release(settings, "t:1", ws)
        again = pool.acquire(settings, "t:1")
        assert again is ws
        # Counters were reset but capacity retained: warm serve.
        again.buf("x", (8,))
        assert again.bytes_allocated == 0

    def test_concurrent_leases_never_alias(self):
        pool = WorkspacePool()
        settings = BackendSettings()
        first = pool.acquire(settings, "t:1")
        second = pool.acquire(settings, "t:1")
        assert first is not second
        a = first.buf("x", (8,))
        b = second.buf("x", (8,))
        assert not np.shares_memory(a, b)

    def test_shape_class_partitions_the_pool(self):
        pool = WorkspacePool()
        settings = BackendSettings()
        ws = pool.acquire(settings, "a")
        pool.release(settings, "a", ws)
        other = pool.acquire(settings, "b")
        assert other is not ws

    def test_stats_fold_in_at_release(self):
        pool = WorkspacePool()
        settings = BackendSettings()
        ws = pool.acquire(settings, "t:1")
        ws.buf("x", (8,))
        assert pool.stats()["bytes_allocated"] == 0  # not yet released
        pool.release(settings, "t:1", ws)
        stats = pool.stats()
        assert stats["bytes_allocated"] == 8 * 8
        assert stats["bytes_served"] == 8 * 8
        assert stats["leases"] == 1
        assert stats["workspaces_created"] == 1
        assert stats["workspaces_free"] == 1

    def test_null_releases_are_counted_not_pooled(self):
        pool = WorkspacePool()
        settings = BackendSettings()
        ws = NullWorkspace()
        ws.buf("x", (4,))
        pool.release(settings, "t:1", ws)
        stats = pool.stats()
        assert stats["null_leases"] == 1
        assert stats["workspaces_free"] == 0

    def test_reuse_fraction(self):
        pool = WorkspacePool()
        settings = BackendSettings()
        ws = pool.acquire(settings, "t:1")
        ws.buf("x", (8,))
        ws.buf("x", (8,))
        pool.release(settings, "t:1", ws)
        assert pool.stats()["reuse_fraction"] == pytest.approx(0.5)

    def test_clear_resets_everything(self):
        pool = WorkspacePool()
        settings = BackendSettings()
        pool.release(settings, "t:1", pool.acquire(settings, "t:1"))
        pool.clear()
        stats = pool.stats()
        assert stats["leases"] == 0
        assert stats["workspaces_free"] == 0
        assert stats["capacity_bytes"] == 0


class TestLeaseSeam:
    def setup_method(self):
        reset_pool()

    def teardown_method(self):
        reset_pool()

    def test_enabled_leases_come_from_the_global_pool(self):
        assert workspaces_enabled()
        with lease_workspace(None, "seam:1") as ws:
            assert isinstance(ws, Workspace)
            assert not isinstance(ws, NullWorkspace)
            ws.buf("x", (4,))
        assert pool_stats()["leases"] == 1
        # Second lease of the class is warm.
        with lease_workspace(None, "seam:1") as ws:
            ws.buf("x", (4,))
        stats = pool_stats()
        assert stats["workspaces_created"] == 1
        assert stats["bytes_allocated"] == 4 * 8  # first lease only

    def test_disabled_leases_are_null(self):
        with use_workspaces(False):
            assert not workspaces_enabled()
            with lease_workspace(None, "seam:2") as ws:
                assert isinstance(ws, NullWorkspace)
                ws.buf("x", (4,))
        assert workspaces_enabled()
        stats = pool_stats()
        assert stats["null_leases"] == 1
        assert stats["bytes_allocated"] == stats["bytes_served"]

    def test_use_workspaces_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_workspaces(False):
                raise RuntimeError("boom")
        assert workspaces_enabled()

    def test_global_pool_is_the_module_singleton(self):
        with lease_workspace(BackendSettings(), "seam:3"):
            pass
        assert POOL.stats()["leases"] == pool_stats()["leases"]
