"""Profiler seam: zero-cost when off, correct accounting when on."""

import pytest

from repro.perf import (
    KernelStat,
    Profiler,
    active_profiler,
    profiled,
    profiling,
)


@profiled("test.sample")
def _sample_kernel(n):
    return list(range(n))


class TestProfiledSeam:
    def test_no_profiler_means_direct_call(self):
        assert active_profiler() is None
        assert _sample_kernel(3) == [0, 1, 2]

    def test_wrapper_advertises_its_name(self):
        assert _sample_kernel.__profiled_name__ == "test.sample"

    def test_sections_recorded_inside_context(self):
        with profiling() as prof:
            _sample_kernel(5)
            _sample_kernel(5)
        stat = prof.get("test.sample")
        assert stat.calls == 2
        assert stat.wall_s > 0.0
        assert prof.get("test.missing") is None

    def test_context_installs_and_removes(self):
        with profiling() as prof:
            assert active_profiler() is prof
        assert active_profiler() is None

    def test_nested_profiling_raises(self):
        with profiling():
            with pytest.raises(RuntimeError, match="already active"):
                with profiling():
                    pass  # pragma: no cover - never reached

    def test_profiler_removed_after_error(self):
        with pytest.raises(ValueError):
            with profiling():
                raise ValueError("boom")
        assert active_profiler() is None


class TestAllocationTracing:
    def test_trace_alloc_observes_allocations(self):
        with profiling(trace_alloc=True) as prof:
            with prof.section("alloc"):
                keep = bytearray(512 * 1024)
        stat = prof.get("alloc")
        assert stat.peak_bytes >= 512 * 1024
        assert stat.alloc_bytes >= 512 * 1024
        del keep

    def test_without_tracing_alloc_is_zero(self):
        with profiling(trace_alloc=False) as prof:
            with prof.section("alloc"):
                bytearray(64 * 1024)
        stat = prof.get("alloc")
        assert stat.alloc_bytes == 0
        assert stat.peak_bytes == 0

    def test_tracemalloc_stopped_after_context(self):
        import tracemalloc

        with profiling(trace_alloc=True):
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()


class TestKernelStat:
    def test_record_accumulates(self):
        stat = KernelStat("k")
        stat.record(0.5, 100, 200)
        stat.record(0.25, 50, 120)
        assert stat.calls == 2
        assert stat.wall_s == pytest.approx(0.75)
        assert stat.alloc_bytes == 150
        assert stat.peak_bytes == 200  # max, not sum

    def test_to_dict_round_trip(self):
        stat = KernelStat("k", calls=1, wall_s=0.1, alloc_bytes=8, peak_bytes=9)
        assert stat.to_dict() == {
            "name": "k",
            "calls": 1,
            "wall_s": 0.1,
            "alloc_bytes": 8,
            "peak_bytes": 9,
        }

    def test_report_sorted_by_wall_time(self):
        prof = Profiler()
        with prof.section("fast"):
            pass
        with prof.section("slow"):
            sum(range(200_000))
        names = [row["name"] for row in prof.report()]
        assert names[0] == "slow"

    def test_clear(self):
        prof = Profiler()
        with prof.section("x"):
            pass
        prof.clear()
        assert prof.stats() == []
