"""Tests of the synthesis-basis operators (the Ψ of Eq. 1)."""

import numpy as np
import pytest

from repro.wavelets.operators import (
    DctBasis,
    IdentityBasis,
    WaveletBasis,
    make_basis,
)

ALL_BASES = [
    WaveletBasis(64, "haar"),
    WaveletBasis(64, "db4"),
    WaveletBasis(64, "sym5", levels=2),
    DctBasis(64),
    IdentityBasis(64),
]


@pytest.mark.parametrize("basis", ALL_BASES, ids=lambda b: b.name)
class TestOrthonormalContract:
    """Every concrete basis must be an orthonormal transform."""

    def test_analyze_inverts_synthesize(self, basis, rng):
        alpha = rng.standard_normal(64)
        assert np.allclose(basis.analyze(basis.synthesize(alpha)), alpha, atol=1e-9)

    def test_synthesize_inverts_analyze(self, basis, rng):
        x = rng.standard_normal(64)
        assert np.allclose(basis.synthesize(basis.analyze(x)), x, atol=1e-9)

    def test_isometry(self, basis, rng):
        x = rng.standard_normal(64)
        assert np.linalg.norm(basis.analyze(x)) == pytest.approx(
            np.linalg.norm(x)
        )

    def test_matrix_is_orthogonal(self, basis):
        mat = basis.as_matrix()
        assert np.allclose(mat.T @ mat, np.eye(64), atol=1e-8)

    def test_adjoint_identity(self, basis, rng):
        """<Ψa, x> == <a, Ψ^T x> — the property PDHG relies on."""
        a = rng.standard_normal(64)
        x = rng.standard_normal(64)
        lhs = float(np.dot(basis.synthesize(a), x))
        rhs = float(np.dot(a, basis.analyze(x)))
        assert lhs == pytest.approx(rhs, abs=1e-9)

    def test_rejects_wrong_length(self, basis):
        with pytest.raises(ValueError):
            basis.analyze(np.ones(63))


class TestWaveletBasisSpecifics:
    def test_default_levels_are_max(self):
        basis = WaveletBasis(512, "db4")
        assert basis.levels == 6

    def test_explicit_levels(self):
        assert WaveletBasis(512, "db4", levels=3).levels == 3

    def test_subband_slices_partition(self):
        basis = WaveletBasis(128, "haar", levels=3)
        slices = basis.subband_slices()
        total = sum(s.stop - s.start for s in slices)
        assert total == 128

    def test_incompatible_window_rejected(self):
        with pytest.raises(ValueError):
            WaveletBasis(100, "db4", levels=3)

    def test_ecg_is_compressible(self, record_clean):
        """The substrate sanity the whole paper rests on: ECG windows need
        few wavelet coefficients (sparsity drives CS recovery)."""
        basis = WaveletBasis(512, "db4")
        x = record_clean.signal_mv()[:512]
        k99 = basis.sparsity_profile(x, energy=0.99)
        assert k99 < 512 * 0.2

    def test_white_noise_is_not_compressible(self, rng):
        basis = WaveletBasis(512, "db4")
        k99 = basis.sparsity_profile(rng.standard_normal(512), energy=0.99)
        assert k99 > 512 * 0.5


class TestDctBasis:
    def test_constant_signal_hits_dc_bin(self):
        basis = DctBasis(32)
        alpha = basis.analyze(np.ones(32))
        assert abs(alpha[0]) == pytest.approx(np.sqrt(32))
        assert np.allclose(alpha[1:], 0.0, atol=1e-10)

    def test_cosine_is_sparse(self):
        basis = DctBasis(64)
        k = np.arange(64)
        x = np.cos(np.pi * (k + 0.5) * 5 / 64)
        alpha = basis.analyze(x)
        assert np.argmax(np.abs(alpha)) == 5


class TestMakeBasis:
    def test_spec_strings(self):
        assert make_basis(64, "dct").name == "dct"
        assert make_basis(64, "identity").name == "identity"
        assert make_basis(64, "db4").name.startswith("db4")
        assert make_basis(64, "haar").name.startswith("haar")

    def test_bad_spec_raises(self):
        with pytest.raises(ValueError):
            make_basis(64, "nonsense")

    def test_sparsity_profile_validation(self):
        basis = IdentityBasis(8)
        with pytest.raises(ValueError):
            basis.sparsity_profile(np.ones(8), energy=0.0)
        assert basis.sparsity_profile(np.zeros(8)) == 0
