"""Tests of the periodized orthogonal DWT: perfect reconstruction,
isometry, layout bookkeeping — plus hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.wavelets.dwt import (
    WaveletCoeffs,
    coeff_slices,
    dwt_step,
    idwt_step,
    max_level,
    wavedec,
    waverec,
)


class TestSingleLevel:
    @pytest.mark.parametrize("name", ["haar", "db2", "db4", "db8", "sym5"])
    def test_perfect_reconstruction(self, name, rng):
        x = rng.standard_normal(64)
        a, d = dwt_step(x, name)
        assert np.allclose(idwt_step(a, d, name), x, atol=1e-10)

    @pytest.mark.parametrize("name", ["haar", "db4", "sym6"])
    def test_energy_preserved(self, name, rng):
        x = rng.standard_normal(128)
        a, d = dwt_step(x, name)
        assert np.dot(a, a) + np.dot(d, d) == pytest.approx(np.dot(x, x))

    def test_output_lengths_halve(self, rng):
        a, d = dwt_step(rng.standard_normal(40), "db3")
        assert a.size == d.size == 20

    def test_haar_closed_form(self):
        x = np.array([1.0, 3.0, 2.0, 6.0])
        a, d = dwt_step(x, "haar")
        assert np.allclose(a, [4.0, 8.0] / np.sqrt(2))
        assert np.allclose(d, [-2.0, -4.0] / np.sqrt(2))

    def test_constant_signal_has_zero_detail(self):
        a, d = dwt_step(np.full(32, 5.0), "db4")
        assert np.allclose(d, 0.0, atol=1e-10)
        assert np.allclose(a, 5.0 * np.sqrt(2), atol=1e-10)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            dwt_step(np.ones(7), "haar")

    def test_wrap_around_shorter_than_filter(self, rng):
        """Periodization must stay PR even when n < filter length."""
        x = rng.standard_normal(4)
        a, d = dwt_step(x, "db4")  # filter length 8 > 4
        assert np.allclose(idwt_step(a, d, "db4"), x, atol=1e-10)


class TestMultilevel:
    @pytest.mark.parametrize("levels", [1, 2, 3, 5])
    def test_perfect_reconstruction(self, levels, rng):
        x = rng.standard_normal(256)
        coeffs = wavedec(x, "db4", levels)
        assert np.allclose(waverec(coeffs), x, atol=1e-9)

    def test_energy_preserved(self, rng):
        x = rng.standard_normal(512)
        coeffs = wavedec(x, "sym4", 4)
        flat = coeffs.flatten()
        assert np.dot(flat, flat) == pytest.approx(np.dot(x, x))

    def test_coefficient_counts(self, rng):
        coeffs = wavedec(rng.standard_normal(64), "haar", 3)
        assert coeffs.approx.size == 8
        assert [d.size for d in coeffs.details] == [8, 16, 32]
        assert coeffs.n == 64

    def test_flatten_roundtrip(self, rng):
        x = rng.standard_normal(128)
        coeffs = wavedec(x, "db2", 3)
        rebuilt = WaveletCoeffs.from_flat(coeffs.flatten(), 128, 3, "db2")
        assert np.allclose(waverec(rebuilt), x, atol=1e-10)

    def test_indivisible_length_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            wavedec(np.ones(100), "haar", 3)

    def test_zero_levels_rejected(self):
        with pytest.raises(ValueError):
            wavedec(np.ones(64), "haar", 0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        levels=st.integers(1, 4),
        name=st.sampled_from(["haar", "db2", "db4", "sym4"]),
    )
    def test_pr_property(self, seed, levels, name):
        x = np.random.default_rng(seed).standard_normal(64)
        assert np.allclose(waverec(wavedec(x, name, levels)), x, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_linearity(self, seed):
        r = np.random.default_rng(seed)
        x, y = r.standard_normal((2, 64))
        cx = wavedec(x, "db4", 2).flatten()
        cy = wavedec(y, "db4", 2).flatten()
        cxy = wavedec(2.0 * x - 3.0 * y, "db4", 2).flatten()
        assert np.allclose(cxy, 2.0 * cx - 3.0 * cy, atol=1e-9)


class TestLayoutHelpers:
    def test_coeff_slices_partition(self):
        slices = coeff_slices(64, 3)
        covered = []
        for s in slices:
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(64))

    def test_coeff_slices_sizes(self):
        slices = coeff_slices(64, 3)
        assert [s.stop - s.start for s in slices] == [8, 8, 16, 32]

    def test_max_level_values(self):
        # haar (length 2): halve while the approximation stays >= 2.
        assert max_level(512, "haar") == 8
        # db4 (length 8): stop when approx would drop below 8.
        assert max_level(512, "db4") == 6

    def test_max_level_odd_signal(self):
        assert max_level(7, "haar") == 0

    def test_from_flat_validates_length(self):
        with pytest.raises(ValueError):
            WaveletCoeffs.from_flat(np.ones(10), 64, 2, "haar")
