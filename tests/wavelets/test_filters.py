"""Tests of the from-scratch wavelet filter construction.

Rather than comparing against hard-coded decimal tables, these verify the
defining mathematical properties: normalization, double-shift
orthonormality (the condition that makes the DWT an isometry), vanishing
moments, and the QMF relation.
"""

import numpy as np
import pytest

from repro.wavelets.filters import (
    MAX_VANISHING_MOMENTS,
    available_wavelets,
    daubechies_lowpass,
    quadrature_mirror,
    symlet_lowpass,
    wavelet,
)

ALL_P = list(range(1, MAX_VANISHING_MOMENTS + 1))


class TestDaubechiesConstruction:
    def test_haar_is_exact(self):
        h = np.asarray(daubechies_lowpass(1))
        assert np.allclose(h, [1 / np.sqrt(2)] * 2)

    @pytest.mark.parametrize("p", ALL_P)
    def test_length(self, p):
        assert len(daubechies_lowpass(p)) == 2 * p

    @pytest.mark.parametrize("p", ALL_P)
    def test_sum_is_sqrt2(self, p):
        assert np.sum(daubechies_lowpass(p)) == pytest.approx(np.sqrt(2), abs=1e-8)

    @pytest.mark.parametrize("p", ALL_P)
    def test_unit_norm(self, p):
        h = np.asarray(daubechies_lowpass(p))
        assert np.dot(h, h) == pytest.approx(1.0, abs=1e-7)

    @pytest.mark.parametrize("p", ALL_P)
    def test_double_shift_orthogonality(self, p):
        h = np.asarray(daubechies_lowpass(p))
        for k in range(1, p):
            assert abs(np.dot(h[: -2 * k], h[2 * k :])) < 1e-7

    @pytest.mark.parametrize("p", [2, 4, 6, 8, 10])
    def test_vanishing_moments(self, p):
        """The wavelet filter annihilates polynomials of degree < p."""
        g = quadrature_mirror(np.asarray(daubechies_lowpass(p)))
        idx = np.arange(g.size, dtype=float)
        for moment in range(p):
            # Tolerance scales with the moment magnitude.
            scale = max(1.0, float(np.sum(idx**moment)))
            assert abs(np.dot(g, idx**moment)) / scale < 1e-6

    def test_minimum_phase_roots_inside(self):
        """Extremal-phase Daubechies have all non-trivial zeros inside the
        unit circle."""
        h = np.asarray(daubechies_lowpass(4))
        roots = np.roots(h)
        nontrivial = roots[np.abs(roots + 1.0) > 1e-3]  # drop z=-1 zeros
        assert np.all(np.abs(nontrivial) < 1.0 + 1e-8)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            daubechies_lowpass(0)
        with pytest.raises(ValueError):
            daubechies_lowpass(MAX_VANISHING_MOMENTS + 1)


class TestSymlets:
    @pytest.mark.parametrize("p", range(2, MAX_VANISHING_MOMENTS + 1))
    def test_orthonormality(self, p):
        h = np.asarray(symlet_lowpass(p))
        assert np.sum(h) == pytest.approx(np.sqrt(2), abs=1e-8)
        assert np.dot(h, h) == pytest.approx(1.0, abs=1e-7)
        for k in range(1, p):
            assert abs(np.dot(h[: -2 * k], h[2 * k :])) < 1e-7

    @pytest.mark.parametrize("p", [4, 6, 8])
    def test_more_symmetric_than_daubechies(self, p):
        """The selection criterion: symlets have lower phase nonlinearity."""
        from repro.wavelets.filters import _phase_nonlinearity

        db = _phase_nonlinearity(np.asarray(daubechies_lowpass(p)))
        sym = _phase_nonlinearity(np.asarray(symlet_lowpass(p)))
        assert sym <= db + 1e-12

    def test_small_orders_match_daubechies(self):
        """sym2/sym3 coincide with db2/db3 (the factorization is unique up
        to reflection there)."""
        for p in (2, 3):
            sym = np.asarray(symlet_lowpass(p))
            db = np.asarray(daubechies_lowpass(p))
            assert np.allclose(sym, db, atol=1e-8) or np.allclose(
                sym, db[::-1], atol=1e-8
            )


class TestQuadratureMirror:
    def test_alternating_flip(self):
        h = np.array([0.1, 0.2, 0.3, 0.4])
        g = quadrature_mirror(h)
        assert np.allclose(g, [0.4, -0.3, 0.2, -0.1])

    def test_orthogonal_to_lowpass(self):
        h = np.asarray(daubechies_lowpass(4))
        g = quadrature_mirror(h)
        assert abs(np.dot(h, g)) < 1e-10

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            quadrature_mirror(np.ones(3))


class TestLookup:
    def test_names_resolve(self):
        for name in available_wavelets():
            filt = wavelet(name)
            assert filt.length >= 2

    def test_haar_aliases_db1(self):
        assert wavelet("haar").rec_lo == wavelet("db1").rec_lo

    def test_case_insensitive(self):
        assert wavelet("DB4").name == "db4"

    def test_filter_bank_views(self):
        filt = wavelet("db3")
        dec_lo, dec_hi, rec_lo, rec_hi = filt.arrays()
        assert np.allclose(dec_lo, rec_lo[::-1])
        assert np.allclose(dec_hi, rec_hi[::-1])

    def test_unknown_names_rejected(self):
        for bad in ("db0", "dbx", "sym1", "coif3", "wavelet9"):
            with pytest.raises(ValueError):
                wavelet(bad)
