"""Integration tests: the full transmit-to-reconstruct chain, including
serialization over the 'air' and the paper's qualitative claims."""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.packets import WindowPacket
from repro.core.receiver import HybridReceiver
from repro.metrics.quality import prd, snr_db
from repro.recovery.pdhg import PdhgSettings
from repro.signals.database import load_record


@pytest.fixture(scope="module")
def config():
    return FrontEndConfig(
        window_len=256,
        n_measurements=64,  # 75% CS CR
        solver=PdhgSettings(max_iter=1200, tol=2e-4),
    )


@pytest.fixture(scope="module")
def link(config, codebook_7bit):
    fe = HybridFrontEnd(config, codebook_7bit)
    rx = HybridReceiver(config, codebook_7bit)
    return fe, rx


class TestOverTheAir:
    def test_bytes_roundtrip_through_radio(self, link, record_100, config):
        """Serialize to bytes, parse on the far side, reconstruct: the
        result must equal reconstructing the in-memory packet."""
        fe, rx = link
        window = next(record_100.windows(config.window_len))
        packet = fe.process_window(window)
        wire = packet.to_bytes()
        parsed = WindowPacket.from_bytes(wire, config.measurement_bits)
        a = rx.reconstruct(packet)
        b = rx.reconstruct(parsed)
        assert np.allclose(a.x_codes, b.x_codes)

    def test_reconstruction_quality(self, link, record_100, config):
        fe, rx = link
        window = next(record_100.windows(config.window_len))
        recon = rx.reconstruct(fe.process_window(window))
        ref = window.astype(float) - 1024
        assert snr_db(ref, recon.x_centered(1024)) > 15.0

    def test_every_window_of_a_record(self, link, record_100, config):
        """Whole-record robustness: every window reconstructs to a sane
        quality with finite bit budgets."""
        fe, rx = link
        snrs = []
        for idx, window in enumerate(record_100.windows(config.window_len)):
            if idx >= 4:
                break
            packet = fe.process_window(window, idx)
            assert packet.total_bits < config.window_len * 12  # compressing
            recon = rx.reconstruct(packet)
            ref = window.astype(float) - 1024
            snrs.append(snr_db(ref, recon.x_centered(1024)))
        assert min(snrs) > 10.0


class TestPaperClaims:
    def test_hybrid_survives_97_percent_cr(self, codebook_7bit, record_100):
        """Section V: even at 97% CS CR the hybrid stays useful while
        normal CS collapses entirely."""
        config = FrontEndConfig(
            window_len=256,
            n_measurements=8,  # ~97% CR
            solver=PdhgSettings(max_iter=1500, tol=2e-4),
        )
        window = next(record_100.windows(256))
        ref = window.astype(float) - 1024
        rx = HybridReceiver(config, codebook_7bit)
        hybrid = rx.reconstruct(
            HybridFrontEnd(config, codebook_7bit).process_window(window)
        )
        normal = rx.reconstruct(NormalCsFrontEnd(config).process_window(window))
        hybrid_snr = snr_db(ref, hybrid.x_centered(1024))
        normal_snr = snr_db(ref, normal.x_centered(1024))
        assert hybrid_snr > 14.0
        assert normal_snr < 8.0

    def test_bound_constraint_limits_worst_case_error(
        self, codebook_7bit, record_100
    ):
        """The box guarantees per-sample error <= d even with almost no
        measurements — the 'strong bound' of Section II."""
        config = FrontEndConfig(
            window_len=256,
            n_measurements=4,
            solver=PdhgSettings(max_iter=1500, tol=2e-4),
        )
        window = next(record_100.windows(256))
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        recon = rx.reconstruct(fe.process_window(window))
        err = np.abs(recon.x_codes - window.astype(float))
        step = config.lowres_step_codes
        assert np.max(err) <= step + 1.0  # box width + solver tolerance

    def test_net_cr_accounting_matches_section_v(self, link, record_100, config):
        """Net CR = CS CR - overhead: with 75% CS CR and single-digit
        overhead the net lands in the 60s, mirroring the paper's
        81% -> 73.14% arithmetic."""
        fe, rx = link
        window = next(record_100.windows(config.window_len))
        budget = fe.process_window(window).budget()
        assert budget.cs_cr_percent == pytest.approx(75.0)
        overhead = budget.lowres_overhead_percent
        assert 2.0 < overhead < 15.0
        assert budget.net_cr_percent == pytest.approx(
            budget.cs_cr_percent - overhead
            - budget.header_bits / budget.original_bits * 100,
            abs=1e-9,
        )


class TestRmpiPath:
    def test_rmpi_bank_measurements_recoverable(self, codebook_7bit, record_100):
        """Acquire through the behavioural RMPI (with mild non-idealities)
        instead of the matrix path, then recover with the ideal model —
        quality must survive the model mismatch."""
        from repro.sensing.rmpi import RmpiBank, RmpiNonidealities
        from repro.recovery.hybrid import solve_hybrid
        from repro.sensing.quantizers import lowres_bounds, requantize_codes
        from repro.wavelets.operators import WaveletBasis

        n, m = 256, 64
        window = next(record_100.windows(n))
        x = window.astype(float) - 1024
        bank = RmpiBank(
            m=m, n=n, seed=2015,
            nonidealities=RmpiNonidealities(
                integrator_leak_per_chip=1e-5, input_noise_rms=0.05,
            ),
        )
        y = bank.measure(x)
        sigma = bank.measurement_noise_bound(x_peak=float(np.max(np.abs(x))))
        lowres = requantize_codes(window, 11, 7)
        lower, upper = lowres_bounds(lowres, 11, 7)
        basis = WaveletBasis(n, "db4")
        result = solve_hybrid(
            bank.equivalent_matrix(), basis, y, sigma,
            lower - 1024, upper - 1024,
            settings=PdhgSettings(max_iter=1500, tol=2e-4),
        )
        assert snr_db(x, result.x) > 15.0
