"""Hypothesis property suite over the full coding/sensing stack.

These complement the per-module property tests with cross-module
roundtrips on generated data: arbitrary code streams through the complete
codebook+packet path, arbitrary windows through the quantizer bound
guarantee, and arbitrary signals through basis/measurement adjointness.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.codebook import train_codebook
from repro.core.packets import WindowPacket
from repro.sensing.matrices import bernoulli_matrix
from repro.sensing.quantizers import lowres_bounds, requantize_codes
from repro.wavelets.operators import WaveletBasis


@st.composite
def code_streams(draw, max_bits=9):
    bits = draw(st.integers(3, max_bits))
    n = draw(st.integers(2, 300))
    # Mix of flat stretches and jumps, like real quantized ECG.
    base = draw(st.integers(0, (1 << bits) - 1))
    values = [base]
    for _ in range(n - 1):
        step = draw(
            st.one_of(
                st.just(0), st.just(0), st.just(0),  # bias to runs
                st.integers(-3, 3),
                st.integers(-(1 << (bits - 1)), (1 << (bits - 1))),
            )
        )
        values.append(int(np.clip(values[-1] + step, 0, (1 << bits) - 1)))
    return bits, np.asarray(values, dtype=np.int64)


class TestCodebookPacketRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(stream=code_streams())
    def test_full_path_lossless(self, stream):
        """codes -> codebook -> packet bytes -> parse -> decode == codes,
        for arbitrary streams on codebooks trained on *different* data."""
        bits, codes = stream
        trainer = np.asarray(
            [5, 5, 6, 6, 7, 7, 6, 5] * 4, dtype=np.int64
        ) % (1 << bits)
        book = train_codebook([trainer], bits)
        payload, bit_len = book.encode_window(codes)
        packet = WindowPacket(
            window_index=0,
            n=codes.size,
            measurement_codes=np.zeros(1, dtype=np.int64),
            measurement_bits=12,
            lowres_payload=payload,
            lowres_bit_length=bit_len,
        )
        parsed = WindowPacket.from_bytes(packet.to_bytes(), 12)
        decoded = book.decode_window(
            parsed.lowres_payload, codes.size, parsed.lowres_bit_length
        )
        assert np.array_equal(decoded, codes)


class TestBoundGuarantee:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        acq_bits=st.integers(4, 12),
        data=st.data(),
    )
    def test_requantize_bounds_any_depth(self, seed, acq_bits, data):
        low_bits = data.draw(st.integers(1, acq_bits))
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 1 << acq_bits, size=64)
        low = requantize_codes(codes, acq_bits, low_bits)
        lower, upper = lowres_bounds(low, acq_bits, low_bits)
        assert np.all(lower <= codes)
        assert np.all(codes <= upper)
        assert np.all(upper - lower + 1 == 1 << (acq_bits - low_bits))


class TestLinearAlgebraContracts:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_measurement_adjoint(self, seed):
        """<Φx, y> == <x, Φᵀy> — what PDHG's convergence proof needs."""
        rng = np.random.default_rng(seed)
        phi = bernoulli_matrix(24, 64, seed=seed)
        x = rng.standard_normal(64)
        y = rng.standard_normal(24)
        assert float(np.dot(phi @ x, y)) == pytest.approx(
            float(np.dot(x, phi.T @ y)), abs=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        name=st.sampled_from(["haar", "db3", "db6", "sym4"]),
    )
    def test_basis_parseval(self, seed, name):
        basis = WaveletBasis(64, name)
        x = np.random.default_rng(seed).standard_normal(64)
        alpha = basis.analyze(x)
        assert float(np.dot(alpha, alpha)) == pytest.approx(
            float(np.dot(x, x)), rel=1e-9
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_composed_operator_consistency(self, seed):
        """CsProblem's cached dense A equals Φ ∘ synthesize pointwise."""
        from repro.recovery.problem import CsProblem

        basis = WaveletBasis(64, "db4")
        phi = bernoulli_matrix(16, 64, seed=seed)
        prob = CsProblem(phi, basis)
        alpha = np.random.default_rng(seed).standard_normal(64)
        assert np.allclose(
            prob.forward(alpha), phi @ basis.synthesize(alpha), atol=1e-9
        )
