"""Cross-module invariants the paper's argument rests on.

Each test here ties at least two subsystems together and asserts a
property the DATE-2015 narrative depends on — the kind of invariant that
a local unit test cannot see break.
"""

import numpy as np
import pytest

from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.pipeline import default_codebook, run_record
from repro.core.receiver import HybridReceiver
from repro.metrics.compression import lowres_overhead
from repro.metrics.quality import snr_db
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.quantizers import requantize_codes
from repro.signals.database import load_record

FAST = PdhgSettings(max_iter=900, tol=3e-4)


class TestMeasurementQualityMonotonicity:
    def test_more_measurements_never_hurt_much(self, codebook_7bit, record_100):
        """SNR(m) is (noisily) increasing for the hybrid design — the
        premise behind trading m for power."""
        window = next(record_100.windows(256))
        ref = window.astype(float) - 1024
        snrs = []
        for m in (16, 32, 64, 128):
            config = FrontEndConfig(
                window_len=256, n_measurements=m, solver=FAST
            )
            fe = HybridFrontEnd(config, codebook_7bit)
            rx = HybridReceiver(config, codebook_7bit)
            recon = rx.reconstruct(fe.process_window(window))
            snrs.append(snr_db(ref, recon.x_centered(1024)))
        for a, b in zip(snrs[:-1], snrs[1:]):
            assert b >= a - 1.5  # allow solver noise, forbid collapses


class TestOverheadConsistency:
    def test_measured_overhead_matches_eq2(self, record_100):
        """The packet-level bit accounting and Eq. 2 must agree: overhead
        computed from transmitted payloads equals CR_i * i / 12."""
        config = FrontEndConfig(window_len=256, n_measurements=64, solver=FAST)
        codebook = default_codebook(config.lowres_bits)
        fe = HybridFrontEnd(config, codebook)
        packets = fe.process_record(record_100, max_windows=4)

        payload_bits = sum(p.lowres_bit_length for p in packets)
        n_samples = sum(p.n for p in packets)
        fraction = payload_bits / (n_samples * config.lowres_bits)
        eq2 = lowres_overhead(fraction, config.lowres_bits)
        measured = payload_bits / (n_samples * 12) * 100
        assert measured == pytest.approx(eq2, rel=1e-9)


class TestLosslessSidechannel:
    def test_lowres_path_exactly_recoverable_full_record(
        self, codebook_7bit, record_100
    ):
        """Whatever recovery does, the transmitted low-res stream itself
        is lossless — the 'rough bound of the signal' arrives intact."""
        config = FrontEndConfig(window_len=256, n_measurements=32, solver=FAST)
        fe = HybridFrontEnd(config, codebook_7bit)
        rx = HybridReceiver(config, codebook_7bit)
        for idx, window in enumerate(record_100.windows(256)):
            if idx >= 5:
                break
            packet = fe.process_window(window, idx)
            decoded = rx.decode_lowres(packet)
            assert np.array_equal(decoded, requantize_codes(window, 11, 7))


class TestSharedCsPath:
    def test_frontends_identical_given_config(self, codebook_7bit, record_100):
        """Hybrid vs normal differ *only* in the parallel channel: their
        CS measurements are bit-identical (this is what makes the Fig. 7
        comparison a controlled experiment)."""
        config = FrontEndConfig(window_len=256, n_measurements=48, solver=FAST)
        hybrid = HybridFrontEnd(config, codebook_7bit)
        normal = NormalCsFrontEnd(config)
        for idx, window in enumerate(record_100.windows(256)):
            if idx >= 3:
                break
            ph = hybrid.process_window(window, idx)
            pn = normal.process_window(window, idx)
            assert np.array_equal(ph.measurement_codes, pn.measurement_codes)


class TestRunRecordReproducibility:
    def test_same_inputs_same_outputs_across_processes_worth(self):
        """run_record is a pure function of (record name, config): the
        property every cached sweep result relies on."""
        config = FrontEndConfig(window_len=128, n_measurements=48, solver=FAST)
        rec = load_record("117", duration_s=6.0)
        a = run_record(rec, config, max_windows=2)
        b = run_record(rec, config, max_windows=2)
        assert [w.prd_percent for w in a.windows] == [
            w.prd_percent for w in b.windows
        ]
        assert [w.budget.total_bits for w in a.windows] == [
            w.budget.total_bits for w in b.windows
        ]


class TestQuantizerBoundTightness:
    def test_box_width_halves_per_bit(self, codebook_7bit, record_100):
        """Each extra low-res bit halves the Eq. 1 box — the geometric
        engine of the depth/overhead trade-off."""
        window = next(record_100.windows(256))
        widths = {}
        for bits in (5, 6, 7, 8):
            from repro.sensing.quantizers import lowres_bounds

            low = requantize_codes(window, 11, bits)
            lower, upper = lowres_bounds(low, 11, bits)
            widths[bits] = float(np.mean(upper - lower + 1))
        assert widths[5] == pytest.approx(2 * widths[6])
        assert widths[6] == pytest.approx(2 * widths[7])
        assert widths[7] == pytest.approx(2 * widths[8])
