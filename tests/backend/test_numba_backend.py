"""The gated numba CPU JIT backend.

The availability gate runs everywhere; the differential tests (JIT
kernels vs the NumPy/SciPy references) run only where numba is actually
installed and skip cleanly otherwise — same policy as the CuPy/torch
suites.
"""

import numpy as np
import pytest

from repro.backend import BackendUnavailableError, NumbaBackend
from repro.backend.registry import backend_names, get_backend

HAS_NUMBA = NumbaBackend.available()

requires_numba = pytest.mark.skipif(
    not HAS_NUMBA, reason="numba not installed"
)


class TestAvailabilityGate:
    def test_available_never_raises(self):
        assert NumbaBackend.available() in (True, False)

    def test_registered_under_its_name(self):
        assert "numba" in backend_names()

    def test_unavailable_construction_raises(self):
        if HAS_NUMBA:
            pytest.skip("numba installed: the gate is open")
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("numba")

    def test_import_is_lazy(self):
        # Importing the backend module must not import numba itself.
        import sys

        import repro.backend.numba_backend  # noqa: F401

        if not HAS_NUMBA:
            assert "numba" not in sys.modules


@requires_numba
class TestJitKernels:
    def setup_method(self):
        self.backend = get_backend("numba")
        self.rng = np.random.default_rng(11)

    def test_first_order_iir_matches_scipy(self):
        from repro.backend import HOST

        u = self.rng.standard_normal(512)
        jit = self.backend.first_order_iir(0.1, 0.9, u)
        ref = HOST.first_order_iir(0.1, 0.9, u)
        assert jit.shape == ref.shape
        np.testing.assert_allclose(jit, ref, rtol=1e-12, atol=1e-12)

    def test_soft_threshold_matches_reference(self):
        from repro.backend import HOST

        v = self.rng.standard_normal(256) * 2.0
        jit = self.backend.soft_threshold(v, 0.3)
        ref = HOST.soft_threshold(v, 0.3)
        np.testing.assert_allclose(jit, ref, rtol=1e-15, atol=0.0)

    def test_soft_threshold_signed_zeros(self):
        v = np.array([0.1, -0.1, 0.0, -0.0])
        out = self.backend.soft_threshold(v, 0.5)
        assert np.array_equal(np.signbit(out), np.signbit(v))

    def test_non_hot_shapes_defer_to_numpy(self):
        from repro.backend import HOST

        v = self.rng.standard_normal((8, 3))  # 2-D: reference path
        assert np.array_equal(
            self.backend.soft_threshold(v, 0.2),
            HOST.soft_threshold(v, 0.2),
        )
