"""The ``out=``-capable hot-loop operations of the backend protocol.

The workspace engines route every per-iteration temporary into leased
buffers through ``matmul``/``solve``/``soft_threshold`` — these tests
pin the contract that makes that safe: the ``out=`` form of each op is
bit-identical to its expression form (signed zeros included), writes
into exactly the passed buffer, and leaves its inputs untouched.
"""

import numpy as np
import pytest

from repro.backend import HOST
from repro.backend.base import ArrayBackend


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestMatmul:
    def test_out_form_matches_operator_form(self, rng):
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((8, 5))
        out = np.empty((12, 5))
        result = HOST.matmul(a, b, out=out)
        assert result is out
        assert np.array_equal(out, a @ b)

    def test_none_form_matches_operator_form(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 3))
        assert np.array_equal(HOST.matmul(a, b), a @ b)

    def test_inputs_untouched(self, rng):
        a = rng.standard_normal((5, 5))
        b = rng.standard_normal((5, 5))
        a0, b0 = a.copy(), b.copy()
        HOST.matmul(a, b, out=np.empty((5, 5)))
        assert np.array_equal(a, a0)
        assert np.array_equal(b, b0)


class TestSolve:
    def _spd_system(self, rng, batch=None):
        n = 6
        shape = (n, n) if batch is None else (batch, n, n)
        g = rng.standard_normal(shape)
        a = g @ np.swapaxes(g, -1, -2) + n * np.eye(n)
        b = rng.standard_normal((n, 4) if batch is None else (batch, n, 4))
        return a, b

    def test_out_form_bit_identical_to_reference(self, rng):
        a, b = self._spd_system(rng)
        out = np.empty_like(b)
        result = HOST.solve(a, b, out=out)
        assert result is out
        assert np.array_equal(out, np.linalg.solve(a, b))

    def test_batched_out_form(self, rng):
        a, b = self._spd_system(rng, batch=3)
        out = np.empty_like(b)
        HOST.solve(a, b, out=out)
        assert np.array_equal(out, np.linalg.solve(a, b))

    def test_inputs_untouched(self, rng):
        a, b = self._spd_system(rng)
        a0, b0 = a.copy(), b.copy()
        HOST.solve(a, b, out=np.empty_like(b))
        assert np.array_equal(a, a0)
        assert np.array_equal(b, b0)

    def test_base_class_fallback_matches(self, rng):
        # Force the protocol default (solve + copy) on the numpy
        # namespace: the path any minimal backend inherits.
        a, b = self._spd_system(rng)
        out = np.empty_like(b)
        result = ArrayBackend.solve(HOST, a, b, out=out)
        assert result is out
        assert np.array_equal(out, np.linalg.solve(a, b))
        assert np.array_equal(
            ArrayBackend.solve(HOST, a, b), np.linalg.solve(a, b)
        )


class TestSoftThreshold:
    def _reference(self, v, threshold):
        return np.sign(v) * np.maximum(np.abs(v) - threshold, 0.0)

    def test_out_form_bit_identical(self, rng):
        v = rng.standard_normal((64, 5)) * 2.0
        out = np.empty_like(v)
        result = HOST.soft_threshold(v, 0.3, out=out)
        assert result is out
        assert np.array_equal(out, self._reference(v, 0.3))

    def test_none_form_matches_reference(self, rng):
        v = rng.standard_normal(32)
        assert np.array_equal(
            HOST.soft_threshold(v, 0.1), self._reference(v, 0.1)
        )

    def test_signed_zeros_match_expression_form(self):
        # Shrunk-to-zero entries keep the sign of the input — the
        # expression form's sign(v) * 0.0 convention.
        v = np.array([0.2, -0.2, 0.0, -0.0, 1.0, -1.0])
        out = np.empty_like(v)
        HOST.soft_threshold(v, 0.5, out=out)
        expected = self._reference(v, 0.5)
        assert np.array_equal(out, expected)
        assert np.array_equal(np.signbit(out), np.signbit(expected))

    def test_input_untouched(self, rng):
        v = rng.standard_normal(16)
        v0 = v.copy()
        HOST.soft_threshold(v, 0.2, out=np.empty_like(v))
        assert np.array_equal(v, v0)


class TestCholeskyOverwrite:
    def test_overwrite_b_values_identical(self, rng):
        n = 8
        g = rng.standard_normal((n, n))
        spd = g @ g.T + n * np.eye(n)
        factor = HOST.cho_factor(spd)
        b = rng.standard_normal((n, 3))
        reference = HOST.cho_solve(factor, b.copy())
        clobbered = HOST.cho_solve(factor, b, overwrite_b=True)
        assert np.array_equal(clobbered, reference)
