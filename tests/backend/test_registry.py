"""The backend registry: lookup, memoization, gating, resolution."""

import numpy as np
import pytest

from repro.backend import (
    HOST,
    ArrayBackend,
    BackendSettings,
    BackendUnavailableError,
    CupyBackend,
    NumpyBackend,
    TorchBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve,
)
from repro.backend.registry import _INSTANCES, _REGISTRY


class TestLookup:
    def test_builtins_registered(self):
        assert set(backend_names()) >= {"numpy", "cupy", "torch"}
        assert backend_names() == tuple(sorted(backend_names()))

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_instance_memoized(self):
        assert get_backend("numpy") is get_backend("numpy")
        assert get_backend("numpy") is HOST

    def test_unknown_name_is_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("mlx")
        # The message lists what IS registered, to tell typo from gap.
        with pytest.raises(ValueError, match="numpy"):
            get_backend("mlx")

    def test_unavailable_backend_is_distinct_error(self):
        """Optional accelerators raise the dedicated error, not ValueError,
        so callers can tell a typo from a missing library/device."""
        for name, cls in (("cupy", CupyBackend), ("torch", TorchBackend)):
            assert cls.available() in (True, False)  # must never raise
            if not cls.available():
                with pytest.raises(BackendUnavailableError):
                    get_backend(name)


class TestRegisterBackend:
    def test_reregister_replaces_and_drops_memo(self):
        original = _REGISTRY["numpy"]
        get_backend("numpy")
        assert "numpy" in _INSTANCES
        try:

            @register_backend
            class Stub(NumpyBackend):
                name = "numpy"

            assert _REGISTRY["numpy"] is Stub
            assert isinstance(get_backend("numpy"), Stub)
        finally:
            register_backend(original)
            _INSTANCES["numpy"] = HOST  # restore the shared memoized host

    def test_nameless_class_rejected(self):
        with pytest.raises(ValueError, match="name"):

            @register_backend
            class Nameless(ArrayBackend):
                name = ""


class TestResolve:
    def test_none_is_exact_default(self):
        backend, xp, dtype, settings = resolve(None)
        assert settings == BackendSettings()
        assert settings.is_exact
        assert xp is np
        assert dtype is np.float64
        assert backend is HOST

    def test_float32_resolution(self):
        resolved = resolve(BackendSettings(precision="float32"))
        assert resolved.dtype is np.float32
        assert resolved.settings.precision == "float32"

    def test_exact_namespace_is_numpy_module(self):
        """The bit-identity argument rests on this: the exact path calls
        the very same functions the pre-seam code called."""
        assert resolve(None).xp is np
