"""The NumPy backend's shims against their scipy/numpy references."""

import numpy as np
import pytest
import scipy.linalg as sla
import scipy.signal as sps

from repro.backend import HOST, Generator, default_rng, ndarray


class TestDtypePolicy:
    def test_dtype_lookup(self):
        assert HOST.dtype("float64") is np.float64
        assert HOST.dtype("float32") is np.float32

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            HOST.dtype("float16")

    def test_host_reexports(self):
        assert ndarray is np.ndarray
        assert Generator is np.random.Generator
        assert isinstance(default_rng(0), Generator)


class TestArrays:
    def test_asarray_and_to_numpy_are_host_noops(self):
        arr = np.arange(4.0)
        assert HOST.asarray(arr) is arr
        assert HOST.to_numpy(arr) is arr

    def test_asarray_casts(self):
        assert HOST.asarray([1, 2], dtype=np.float32).dtype == np.float32


class TestCholesky:
    def test_matches_scipy_bitwise(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 6))
        spd = np.eye(6) + a @ a.T
        b = rng.standard_normal((6, 3))
        factor = HOST.cho_factor(spd)
        ref = sla.cho_factor(spd)
        assert np.array_equal(factor[0], ref[0])
        assert np.array_equal(
            HOST.cho_solve(factor, b), sla.cho_solve(ref, b)
        )

    def test_solves_the_system(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((5, 5))
        spd = np.eye(5) + a @ a.T
        rhs = rng.standard_normal(5)
        x = HOST.cho_solve(HOST.cho_factor(spd), rhs)
        assert x.shape == (5,)
        assert np.allclose(spd @ x, rhs)


class TestFirstOrderIir:
    def test_matches_lfilter_bitwise(self):
        """The exact path must equal the pre-seam lfilter call bit for
        bit — this equality is what keeps ECGSYN outputs unchanged."""
        rng = np.random.default_rng(2)
        u = rng.standard_normal(256)
        gain, decay = 0.3, 0.92
        out = HOST.first_order_iir(gain, decay, u)
        ref = sps.lfilter([gain], [1.0, -decay], u)
        assert np.array_equal(out, ref)

    def test_float32_stays_float32(self):
        u = np.linspace(0, 1, 64, dtype=np.float32)
        out = HOST.first_order_iir(0.5, 0.9, u)
        assert out.dtype == np.float32


class TestIntegerShims:
    def test_packbits(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint8)
        assert np.array_equal(HOST.packbits(bits), np.packbits(bits))

    def test_bincount(self):
        values = np.array([0, 1, 1, 3])
        assert np.array_equal(
            HOST.bincount(values, minlength=6),
            np.bincount(values, minlength=6),
        )
