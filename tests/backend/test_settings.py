"""BackendSettings: validation, exactness flag, hashing."""

import dataclasses

import pytest

from repro.backend import PRECISIONS, BackendSettings


class TestDefaults:
    def test_default_is_exact(self):
        settings = BackendSettings()
        assert settings.name == "numpy"
        assert settings.precision == "float64"
        assert settings.is_exact

    def test_label(self):
        assert BackendSettings().label == "numpy/float64"
        assert (
            BackendSettings(name="numpy", precision="float32").label
            == "numpy/float32"
        )

    def test_fast_paths_are_not_exact(self):
        assert not BackendSettings(precision="float32").is_exact
        assert not BackendSettings(name="cupy").is_exact

    def test_precisions_constant(self):
        assert PRECISIONS == ("float64", "float32")


class TestValidation:
    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            BackendSettings(precision="float16")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            BackendSettings(name="")
        with pytest.raises(ValueError):
            BackendSettings(name="numpy/float64")


class TestHashing:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BackendSettings().name = "torch"

    def test_hashable_and_equal(self):
        assert BackendSettings() == BackendSettings()
        assert len({BackendSettings(), BackendSettings()}) == 1
        assert BackendSettings() != BackendSettings(precision="float32")
