"""Differential verification of the float32 fast path (hypothesis).

The backend seam's contract (``docs/backends.md``) has two halves:

* the **exact** path (NumPy/float64) is bit-identical to running with no
  ``settings`` at all — asserted as equality here, not a tolerance;
* a **fast** path (float32) may deviate, but only within bounds set by
  single-precision GEMM rounding: measurement codes move by at most one
  quantizer cell (and only when a value sits near a cell edge — the
  boundary guard recomputes those rows in float64), and batched solver
  reconstructions stay within a small PRD of their float64 twins.

Marked ``property`` so `make test-fast` can skip them locally; CI always
runs them (the backend smoke job runs them explicitly).
"""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.backend import BackendSettings
from repro.core.encode_batch import measure_window_stack
from repro.recovery.batched import solve_batch, stack_measurements
from repro.recovery.fista import lambda_max
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import bernoulli_matrix
from repro.sensing.quantizers import measurement_quantizer
from repro.wavelets.operators import WaveletBasis

pytestmark = pytest.mark.property

N = 64
_BASIS = WaveletBasis(N, "db4")
FAST32 = BackendSettings(name="numpy", precision="float32")

#: PRD bound (percent) on float32 batched solves vs their float64 twins.
#: Measured deviations sit near 5e-3 (FISTA — deferred active-set
#: compaction keeps frozen columns in the GEMM until a threshold, so the
#: float32 run's freeze schedule can drift a few iterations from the
#: float64 twin's) and 1e-3 (ADMM, whose float32 Cholesky solve
#: accumulates more); the bounds leave about two orders of magnitude of
#: margin without ever excusing a genuinely broken path.
PRD_BOUND_PERCENT = {"fista": 0.5, "admm": 0.5}


def _instance(seed: int, m: int, k: int):
    rng = np.random.default_rng(seed)
    phi = bernoulli_matrix(m, N, seed=seed)
    problem = CsProblem(phi, _BASIS)
    alpha = np.zeros(N)
    alpha[rng.choice(N, k, replace=False)] = rng.standard_normal(k) * 2.0
    x = _BASIS.synthesize(alpha)
    ys = [
        phi @ x + 0.01 * rng.standard_normal(m),
        phi @ (0.5 * x) + 0.01 * rng.standard_normal(m),
    ]
    return problem, ys


def _prd(ref: np.ndarray, test: np.ndarray) -> float:
    scale = float(np.linalg.norm(ref))
    if scale == 0.0:
        return 0.0
    return 100.0 * float(np.linalg.norm(test - ref)) / scale


class TestBatchedSolvers:
    @hyp_settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        m=st.integers(min_value=24, max_value=48),
        solver=st.sampled_from(["fista", "admm"]),
    )
    def test_float32_within_prd_bound_of_exact(self, seed, m, solver):
        problem, ys = _instance(seed, m, k=6)
        sigma = 0.05 * float(np.linalg.norm(ys[0]))
        lam = 0.1 * lambda_max(problem, ys[0])
        kwargs = dict(
            method=solver, sigma=sigma, lam=lam, max_iter=200, tol=1e-6
        )
        exact = solve_batch(problem, ys, **kwargs)
        fast = solve_batch(problem, ys, settings=FAST32, **kwargs)
        for e, f in zip(exact, fast):
            assert f.alpha.dtype == np.float64  # host-float64 at the boundary
            assert _prd(e.x, f.x) <= PRD_BOUND_PERCENT[solver]
            assert f.info["backend"] == "numpy/float32"

    @hyp_settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        solver=st.sampled_from(["fista", "admm"]),
    )
    def test_explicit_exact_settings_bit_identical(self, seed, solver):
        """``settings=BackendSettings()`` IS the default path — equality,
        not closeness."""
        problem, ys = _instance(seed, m=32, k=6)
        sigma = 0.05 * float(np.linalg.norm(ys[0]))
        lam = 0.1 * lambda_max(problem, ys[0])
        kwargs = dict(
            method=solver, sigma=sigma, lam=lam, max_iter=120, tol=1e-6
        )
        default = solve_batch(problem, ys, **kwargs)
        explicit = solve_batch(
            problem, ys, settings=BackendSettings(), **kwargs
        )
        for d, e in zip(default, explicit):
            assert np.array_equal(d.alpha, e.alpha)
            assert d.iterations == e.iterations
            assert d.converged == e.converged

    def test_stack_measurements_fast_dtype(self):
        problem, ys = _instance(0, m=32, k=6)
        exact = stack_measurements(problem, ys)
        fast = stack_measurements(problem, ys, settings=FAST32)
        assert exact.dtype == np.float64
        assert fast.dtype == np.float32
        assert np.allclose(exact, fast, rtol=1e-5, atol=1e-4)


class TestMeasureWindowStack:
    @hyp_settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        w=st.integers(min_value=2, max_value=8),
    )
    def test_float32_codes_within_one_cell(self, seed, w):
        """Float32 GEMM rounding can move a code by at most one quantizer
        cell, and only for values the float64 guard would have sat near a
        cell edge for; everything else must match exactly."""
        rng = np.random.default_rng(seed)
        m, n = 24, 128
        phi = bernoulli_matrix(m, n, seed=seed)
        center = 1024.0
        quantizer = measurement_quantizer(phi, center, 12)
        centered = rng.integers(0, 2048, size=(w, n)).astype(float) - center
        exact = measure_window_stack(phi, quantizer, centered)
        fast = measure_window_stack(
            phi, quantizer, centered, settings=FAST32
        )
        assert exact.shape == fast.shape == (w, m)
        delta = np.abs(fast.astype(np.int64) - exact.astype(np.int64))
        assert int(delta.max(initial=0)) <= 1

    def test_exact_settings_bit_identical(self):
        rng = np.random.default_rng(3)
        phi = bernoulli_matrix(24, 128, seed=3)
        quantizer = measurement_quantizer(phi, 1024.0, 12)
        centered = rng.integers(0, 2048, size=(4, 128)).astype(float) - 1024.0
        assert np.array_equal(
            measure_window_stack(phi, quantizer, centered),
            measure_window_stack(
                phi, quantizer, centered, settings=BackendSettings()
            ),
        )
