"""Engine tests: planning, hooks, codebook specs, per-task seeding."""

import numpy as np
import pytest

from repro.core.codebooks import CodebookKey, build_codebook, default_codebook
from repro.core.config import FrontEndConfig
from repro.core.outcomes import RecordOutcome
from repro.recovery.pdhg import PdhgSettings
from repro.runtime import (
    STAGE_NAMES,
    CodebookSpec,
    ExecutionEngine,
    RecordJob,
    StageHook,
    WindowTask,
    execute_window_task,
    task_seed,
)
from repro.signals.database import load_record

FAST = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=400, tol=5e-4),
)


@pytest.fixture(scope="module")
def record():
    return load_record("100", duration_s=5.0)


class TestStageGraph:
    def test_stage_names(self):
        assert STAGE_NAMES == ("encode", "transport", "recover", "score")


class TestRecordJob:
    def test_rejects_unknown_method(self, record):
        with pytest.raises(ValueError, match="registered methods"):
            RecordJob(record=record, config=FAST, method="magic")

    def test_rejects_bad_max_windows(self, record):
        with pytest.raises(ValueError):
            RecordJob(record=record, config=FAST, max_windows=0)

    def test_normal_jobs_get_no_codebook(self, record):
        job = RecordJob(record=record, config=FAST, method="normal")
        assert job.resolved_codebook_spec().kind == "none"

    def test_hybrid_jobs_default_to_config_key(self, record):
        job = RecordJob(record=record, config=FAST, method="hybrid")
        spec = job.resolved_codebook_spec()
        assert spec.kind == "default"
        assert spec.key.lowres_bits == FAST.lowres_bits
        assert spec.key.acquisition_bits == FAST.acquisition_bits

    def test_explicit_codebook_spec_wins(self, record):
        book = default_codebook(FAST.lowres_bits, FAST.acquisition_bits)
        job = RecordJob(
            record=record,
            config=FAST,
            codebook=CodebookSpec.from_object(book),
        )
        spec = job.resolved_codebook_spec()
        assert spec.kind == "inline" and spec.inline is book


class TestCodebookSpec:
    def test_default_requires_key(self):
        with pytest.raises(ValueError):
            CodebookSpec(kind="default")

    def test_inline_requires_object(self):
        with pytest.raises(ValueError):
            CodebookSpec(kind="inline")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CodebookSpec(kind="telepathy")

    def test_none_resolves_to_none(self):
        assert CodebookSpec.none().resolve() is None

    def test_default_resolves_via_builder_cache(self):
        key = CodebookKey(lowres_bits=FAST.lowres_bits)
        assert CodebookSpec.default(key).resolve() is build_codebook(key)

    def test_key_validation(self):
        with pytest.raises(ValueError):
            CodebookKey(lowres_bits=0)
        with pytest.raises(ValueError):
            CodebookKey(lowres_bits=7, train_records=())


class TestTaskSeed:
    def test_deterministic_and_distinct(self):
        assert task_seed("100", "hybrid", 0) == task_seed("100", "hybrid", 0)
        seeds = {
            task_seed(name, method, idx)
            for name in ("100", "101")
            for method in ("hybrid", "normal")
            for idx in range(3)
        }
        assert len(seeds) == 12

    def test_task_validation(self):
        codes = np.zeros(FAST.window_len, dtype=np.int64)
        with pytest.raises(ValueError):
            WindowTask(
                record_name="100",
                method="magic",
                window_index=0,
                codes=codes,
                config=FAST,
                codebook=CodebookSpec.none(),
                seed=0,
            )
        with pytest.raises(ValueError):
            WindowTask(
                record_name="100",
                method="normal",
                window_index=-1,
                codes=codes,
                config=FAST,
                codebook=CodebookSpec.none(),
                seed=0,
            )


class TestPlanning:
    def test_plan_expands_windows_in_order(self, record):
        engine = ExecutionEngine()
        job = RecordJob(record=record, config=FAST, max_windows=3)
        tasks = engine.plan(job)
        assert [t.window_index for t in tasks] == [0, 1, 2]
        assert all(t.record_name == "100" for t in tasks)
        assert all(t.codes.shape == (FAST.window_len,) for t in tasks)

    def test_plan_without_cap_uses_all_full_windows(self, record):
        tasks = ExecutionEngine().plan(RecordJob(record=record, config=FAST))
        assert len(tasks) == record.window_count(FAST.window_len)

    def test_short_record_raises(self):
        short = load_record("100", duration_s=5.0)
        big = FrontEndConfig(window_len=4096, n_measurements=96)
        with pytest.raises(ValueError, match="shorter than one"):
            ExecutionEngine().run_job(RecordJob(record=short, config=big))


class _CountingHook(StageHook):
    def __init__(self, canned=None):
        self.canned = canned
        self.lookups = 0
        self.stored = []

    def lookup(self, job):
        self.lookups += 1
        return self.canned

    def store(self, job, outcome):
        self.stored.append((job.record.name, outcome))


class TestStageHooks:
    def test_hit_skips_scheduling(self, record):
        outcome = ExecutionEngine().run_job(
            RecordJob(record=record, config=FAST, method="normal", max_windows=1)
        )
        hook = _CountingHook(canned=outcome)

        class _Exploding:
            name = "exploding"
            effective_workers = 1

            def run_tasks(self, tasks):
                raise AssertionError("cache hit must not schedule tasks")

        engine = ExecutionEngine(executor=_Exploding(), hooks=[hook])
        got = engine.run_job(
            RecordJob(record=record, config=FAST, method="normal", max_windows=1)
        )
        assert got is outcome
        assert hook.lookups == 1
        assert hook.stored == []  # hits are not re-stored

    def test_miss_computes_and_stores(self, record):
        hook = _CountingHook(canned=None)
        engine = ExecutionEngine(hooks=[hook])
        got = engine.run_job(
            RecordJob(record=record, config=FAST, method="normal", max_windows=1)
        )
        assert isinstance(got, RecordOutcome)
        assert hook.lookups == 1
        assert [name for name, _ in hook.stored] == ["100"]
        assert hook.stored[0][1] is got

    def test_mixed_hits_preserve_job_order(self, record):
        jobs = [
            RecordJob(record=record, config=FAST, method="normal", max_windows=1),
            RecordJob(record=record, config=FAST, method="normal", max_windows=2),
        ]
        plain = ExecutionEngine().run_jobs(jobs)

        class _FirstOnly(StageHook):
            def lookup(self, job):
                return plain[0] if job.max_windows == 1 else None

        mixed = ExecutionEngine(hooks=[_FirstOnly()]).run_jobs(jobs)
        assert mixed[0] is plain[0]
        assert mixed[1] == plain[1]


class TestExecuteWindowTask:
    def test_matches_engine_window(self, record):
        engine = ExecutionEngine()
        job = RecordJob(record=record, config=FAST, method="normal", max_windows=1)
        task = engine.plan(job)[0]
        assert execute_window_task(task) == engine.run_job(job).windows[0]
