"""Tests of the batched encode stage over same-link window tasks."""

import dataclasses

import numpy as np
import pytest

from repro.core.codebooks import CodebookKey
from repro.core.config import FrontEndConfig
from repro.core.encode_batch import EncodeEngineSettings
from repro.recovery.pdhg import PdhgSettings
from repro.runtime import CodebookSpec, WindowTask, task_seed
from repro.runtime.stages import encode, encode_batch
from repro.signals.database import load_record

FAST = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=200, tol=1e-3),
)


@pytest.fixture(scope="module")
def tasks():
    record = load_record("100", duration_s=3.0)
    windows = list(record.windows(FAST.window_len))[:4]
    spec = CodebookSpec.default(
        CodebookKey(
            lowres_bits=FAST.lowres_bits,
            acquisition_bits=FAST.acquisition_bits,
        )
    )
    return [
        WindowTask(
            record_name="100",
            method="hybrid",
            window_index=i,
            codes=w,
            config=FAST,
            codebook=spec,
            seed=task_seed("100", "hybrid", i),
        )
        for i, w in enumerate(windows)
    ]


class TestEncodeBatch:
    def test_matches_scalar_stage(self, tasks):
        batched = encode_batch(tasks)
        scalar = [encode(task) for task in tasks]
        assert [p.to_bytes() for p in batched] == [
            p.to_bytes() for p in scalar
        ]
        assert [p.window_index for p in batched] == [t.window_index for t in tasks]

    def test_empty_batch(self):
        assert encode_batch([]) == []

    def test_single_task_uses_scalar_path(self, tasks):
        [packet] = encode_batch(tasks[:1])
        assert packet.to_bytes() == encode(tasks[0]).to_bytes()

    def test_batched_off_uses_scalar_path(self, tasks):
        config = dataclasses.replace(
            FAST, encode=EncodeEngineSettings(batched=False)
        )
        off_tasks = [
            dataclasses.replace(task, config=config) for task in tasks
        ]
        batched = encode_batch(off_tasks)
        assert [p.to_bytes() for p in batched] == [
            p.to_bytes() for p in encode_batch(tasks)
        ]

    def test_mixed_links_rejected(self, tasks):
        other = dataclasses.replace(
            tasks[1], config=FAST.with_measurements(32)
        )
        with pytest.raises(ValueError, match="share one link"):
            encode_batch([tasks[0], other])

    def test_mixed_methods_rejected(self, tasks):
        normal = dataclasses.replace(
            tasks[1], method="normal", codebook=CodebookSpec.none()
        )
        with pytest.raises(ValueError, match="share one link"):
            encode_batch([tasks[0], normal])
