"""Executor contract tests: ordering, bounding, serial/parallel equivalence."""

import os

import pytest

from repro.core.config import FrontEndConfig
from repro.core.pipeline import run_database, run_record
from repro.experiments.runner import ExperimentScale, sweep_compression_ratios
from repro.recovery.pdhg import PdhgSettings
from repro.runtime import (
    ParallelExecutor,
    SerialExecutor,
    executor_from_workers,
    resolve_worker_count,
)
from repro.signals.database import load_record

FAST = FrontEndConfig(
    window_len=128,
    n_measurements=48,
    solver=PdhgSettings(max_iter=400, tol=5e-4),
)

SCALE = ExperimentScale(record_names=("100", "101"), duration_s=5.0, max_windows=2)


class TestExecutorFromWorkers:
    @pytest.mark.parametrize("workers", [None, 1])
    def test_serial_choices(self, workers):
        assert isinstance(executor_from_workers(workers), SerialExecutor)

    def test_zero_means_all_cpus(self):
        # The shared --workers convention: 0 = one worker per CPU.
        cpus = os.cpu_count() or 1
        ex = executor_from_workers(0)
        if cpus <= 1:
            assert isinstance(ex, SerialExecutor)
        else:
            assert isinstance(ex, ParallelExecutor)
            assert ex.workers == cpus

    def test_parallel_choice(self):
        ex = executor_from_workers(3)
        assert isinstance(ex, ParallelExecutor)
        assert ex.workers == 3
        assert ex.effective_workers == 3

    def test_serial_effective_workers(self):
        assert SerialExecutor().effective_workers == 1


class TestResolveWorkerCount:
    def test_explicit_count_passes_through(self):
        assert resolve_worker_count(3) == 3
        assert resolve_worker_count(1) == 1

    @pytest.mark.parametrize("workers", [None, 0])
    def test_all_cpus_choices(self, workers):
        assert resolve_worker_count(workers) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_worker_count(-1)


class TestParallelExecutorValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_rejects_bad_inflight(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, max_inflight=0)

    def test_default_inflight_scales_with_workers(self):
        assert ParallelExecutor(workers=3).max_inflight == 12

    def test_empty_task_list(self):
        assert ParallelExecutor(workers=2).run_tasks([]) == []


class TestExecutorLifecycle:
    def test_shutdown_is_idempotent_noop_without_pool(self):
        ex = ParallelExecutor(workers=2)
        ex.shutdown()
        ex.shutdown()
        assert ex._pool is None

    def test_serial_context_manager(self):
        with SerialExecutor() as ex:
            assert ex.run_tasks([1, 2], fn=_double) == [2, 4]

    def test_persistent_pool_survives_across_calls(self):
        with ParallelExecutor(workers=2, persistent=True) as ex:
            assert ex.run_tasks([1, 2, 3], fn=_double) == [2, 4, 6]
            pool = ex._pool
            assert pool is not None
            assert ex.run_tasks([4, 5], fn=_double) == [8, 10]
            assert ex._pool is pool  # reused, not respawned
        assert ex._pool is None  # released on exit

    def test_transient_pool_leaves_no_state(self):
        ex = ParallelExecutor(workers=2)
        assert ex.run_tasks([1, 2, 3], fn=_double) == [2, 4, 6]
        assert ex._pool is None

    def test_single_worker_never_pools(self):
        with ParallelExecutor(workers=1, persistent=True) as ex:
            assert ex.run_tasks([1, 2], fn=_double) == [2, 4]
            assert ex._pool is None


def _double(x):
    return 2 * x


class TestSerialParallelEquivalence:
    """The acceptance criterion: parallel results are bit-identical."""

    @pytest.fixture(scope="class")
    def serial_points(self):
        return sweep_compression_ratios(
            FAST,
            cr_values=(75.0, 88.0),
            methods=("hybrid", "normal"),
            scale=SCALE,
            cache=False,
            executor=SerialExecutor(),
        )

    @pytest.mark.parametrize("max_inflight", [None, 1])
    def test_sweep_bit_identical(self, serial_points, max_inflight):
        parallel_points = sweep_compression_ratios(
            FAST,
            cr_values=(75.0, 88.0),
            methods=("hybrid", "normal"),
            scale=SCALE,
            cache=False,
            executor=ParallelExecutor(workers=2, max_inflight=max_inflight),
        )
        assert len(parallel_points) == len(serial_points)
        for serial, parallel in zip(serial_points, parallel_points):
            assert parallel.cr_percent == serial.cr_percent
            assert parallel.method == serial.method
            assert parallel.n_measurements == serial.n_measurements
            # Frozen dataclass equality covers PRD, SNR, budgets and
            # solver diagnostics field by field, exactly.
            assert parallel.outcomes == serial.outcomes

    def test_run_record_parallel_matches_serial(self):
        record = load_record("100", duration_s=5.0)
        serial = run_record(record, FAST, max_windows=3)
        parallel = run_record(
            record,
            FAST,
            max_windows=3,
            executor=ParallelExecutor(workers=2),
        )
        assert parallel == serial

    def test_run_database_parallel_matches_serial(self):
        records = [load_record(n, duration_s=5.0) for n in ("100", "101")]
        serial = run_database(records, FAST, method="normal", max_windows=2)
        parallel = run_database(
            records,
            FAST,
            method="normal",
            max_windows=2,
            executor=ParallelExecutor(workers=2),
        )
        assert parallel == serial

    def test_single_task_uses_inprocess_fallback(self):
        # One window -> the pool is skipped entirely but results agree.
        record = load_record("100", duration_s=5.0)
        serial = run_record(record, FAST, max_windows=1)
        parallel = run_record(
            record, FAST, max_windows=1, executor=ParallelExecutor(workers=2)
        )
        assert parallel == serial
