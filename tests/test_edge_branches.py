"""Edge-case and rarely-hit-branch tests across modules."""

import numpy as np
import pytest

from repro.coding.arithmetic import ArithmeticCodec, ArithmeticModel
from repro.coding.huffman import HuffmanCodec
from repro.experiments.fig5_fig6_table1 import run_lowres_tradeoff
from repro.experiments.runner import ExperimentScale
from repro.power.comparison import OperatingPoint, power_gain
from repro.power.rmpi_power import RmpiArchitecture
from repro.sensing.quantizers import requantize_codes
from repro.signals.database import load_record


class TestPowerComparisonBranches:
    def test_power_gain_with_custom_base(self):
        base = RmpiArchitecture(m=240, n=512, nef=3.0, gain_db=46.0)
        gain = power_gain(240, 96, base=base)
        # Gain is a channel-count ratio regardless of analog constants.
        assert gain == pytest.approx(2.5, rel=0.01)

    def test_operating_point_gain_method(self):
        point = OperatingPoint(
            target_snr_db=20.0, m_normal=240, m_hybrid=96, paper_gain=2.5
        )
        assert point.gain() == pytest.approx(2.5, rel=0.02)


class TestTradeoffCustomCodebooks:
    def test_explicit_codebooks_used(self):
        from repro.coding.codebook import train_codebook

        record = load_record("100", duration_s=10.0)
        streams = [requantize_codes(record.adu, 11, 6)]
        book = train_codebook(streams, 6)
        scale = ExperimentScale(
            record_names=("100",), duration_s=10.0, max_windows=None
        )
        data = run_lowres_tradeoff(
            resolutions=(6,), scale=scale, codebooks={6: book}
        )
        assert data.row(6).codebook_entries == book.n_entries


class TestDecoderErrorPaths:
    def test_huffman_garbage_raises(self):
        codec = HuffmanCodec.from_frequencies({"a": 3, "b": 2, "c": 1})
        # A bit pattern longer than the deepest codeword that matches no
        # prefix cannot exist for a complete Huffman code, but a truncated
        # stream must raise EOFError rather than loop.
        from repro.coding.bitstream import BitReader

        reader = BitReader(b"", bit_length=0)
        with pytest.raises(EOFError):
            codec.decode_symbol(reader)

    def test_huffman_decode_wrong_count(self):
        codec = HuffmanCodec.from_frequencies({"a": 1, "b": 1})
        payload, bits = codec.encode(["a", "b"])
        with pytest.raises(EOFError):
            codec.decode(payload, 20, bits)

    def test_arithmetic_model_precision_guard(self):
        # A model whose total exceeds the coder precision is rejected.
        model = ArithmeticModel(
            symbols=("a",), cumulative=(0, 1 << 30)
        )
        with pytest.raises(ValueError):
            ArithmeticCodec(model)


class TestRecordEdges:
    def test_concatenate_empty_rejected(self):
        from repro.signals.records import concatenate_records

        with pytest.raises(ValueError):
            concatenate_records("x", [])

    def test_windows_zero_len_rejected(self):
        record = load_record("100", duration_s=2.0)
        with pytest.raises(ValueError):
            list(record.windows(0))

    def test_mean_hr_needs_two_beats(self):
        from repro.signals.records import Record

        rec = Record(
            name="x",
            adu=np.full(720, 1024, dtype=np.int64),
        )
        with pytest.raises(ValueError):
            rec.mean_heart_rate_bpm()


class TestCliErrorPaths:
    def test_missing_wfdb_file(self, capsys):
        from repro.cli import main

        rc = main(["compress", "--wfdb", "/nonexistent/path.hea"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_tradeoff_bad_record(self, capsys):
        from repro.cli import main

        rc = main(["tradeoff", "--records", "nope", "--duration", "2"])
        assert rc == 2


class TestFig7Helpers:
    def test_snr_at_unknown_cr_raises(self):
        from repro.experiments.fig7 import Fig7Series

        series = Fig7Series(
            method="hybrid",
            cr_percent=(50.0,),
            snr_db=(20.0,),
            prd_percent=(10.0,),
            net_cr_percent=(40.0,),
        )
        assert series.snr_at(50.0) == 20.0
        with pytest.raises(ValueError):
            series.snr_at(60.0)

    def test_highest_good_cr_none(self):
        from repro.experiments.fig7 import Fig7Series

        series = Fig7Series(
            method="normal",
            cr_percent=(50.0, 97.0),
            snr_db=(5.0, 0.0),
            prd_percent=(60.0, 100.0),
            net_cr_percent=(50.0, 97.0),
        )
        assert series.highest_good_cr() is None
