"""Unit tests for the PRD/SNR quality metrics (paper Section IV)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics.quality import (
    GOOD_PRD_THRESHOLD,
    mean_snr_over_windows,
    nmse,
    prd,
    prd_to_snr,
    quality_grade,
    rmse,
    snr_db,
    snr_to_prd,
)


class TestPrd:
    def test_perfect_reconstruction_is_zero(self):
        x = np.array([1.0, -2.0, 3.0])
        assert prd(x, x) == 0.0

    def test_matches_paper_formula(self, rng):
        x = rng.standard_normal(100)
        xr = x + 0.1 * rng.standard_normal(100)
        expected = np.linalg.norm(x - xr) / np.linalg.norm(x) * 100.0
        assert prd(x, xr) == pytest.approx(expected)

    def test_zero_reconstruction_gives_100(self, rng):
        x = rng.standard_normal(50)
        assert prd(x, np.zeros(50)) == pytest.approx(100.0)

    def test_scale_invariant(self, rng):
        x = rng.standard_normal(64)
        xr = x + rng.standard_normal(64)
        assert prd(3.7 * x, 3.7 * xr) == pytest.approx(prd(x, xr))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="length mismatch"):
            prd([1.0, 2.0], [1.0])

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError, match="all-zero"):
            prd(np.zeros(4), np.ones(4))

    def test_accepts_lists(self):
        assert prd([1.0, 0.0], [1.0, 0.0]) == 0.0


class TestSnrConversions:
    def test_paper_example_values(self):
        # PRD = 1% -> 40 dB; PRD = 100% -> 0 dB (by the definition).
        assert prd_to_snr(1.0) == pytest.approx(40.0)
        assert prd_to_snr(100.0) == pytest.approx(0.0)

    def test_roundtrip(self):
        for p in (0.5, 2.0, 9.0, 50.0, 130.0):
            assert snr_to_prd(prd_to_snr(p)) == pytest.approx(p)

    @given(st.floats(min_value=1e-3, max_value=1e3))
    def test_roundtrip_property(self, p):
        assert snr_to_prd(prd_to_snr(p)) == pytest.approx(p, rel=1e-9)

    def test_nonpositive_prd_rejected(self):
        with pytest.raises(ValueError):
            prd_to_snr(0.0)

    def test_snr_db_consistency(self, rng):
        x = rng.standard_normal(80)
        xr = x + 0.05 * rng.standard_normal(80)
        assert snr_db(x, xr) == pytest.approx(prd_to_snr(prd(x, xr)))

    def test_snr_db_perfect_is_inf(self):
        x = np.ones(8)
        assert snr_db(x, x) == float("inf")


class TestAuxMetrics:
    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_nmse_is_squared_prd_fraction(self, rng):
        x = rng.standard_normal(32)
        xr = x + 0.3 * rng.standard_normal(32)
        assert nmse(x, xr) == pytest.approx((prd(x, xr) / 100.0) ** 2)

    def test_quality_grades(self):
        assert quality_grade(1.0) == "very good"
        assert quality_grade(5.0) == "good"
        assert quality_grade(GOOD_PRD_THRESHOLD) == "not good"
        with pytest.raises(ValueError):
            quality_grade(-1.0)


class TestMeanSnr:
    def test_single_value(self):
        assert mean_snr_over_windows([10.0]) == pytest.approx(20.0)

    def test_average_in_db_domain(self):
        # PRDs of 10% and 1% -> 20 dB and 40 dB -> mean 30 dB.
        assert mean_snr_over_windows([10.0, 1.0]) == pytest.approx(30.0)

    def test_perfect_window_clipped(self):
        assert mean_snr_over_windows([0.0]) == pytest.approx(120.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_snr_over_windows([])
