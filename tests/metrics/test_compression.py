"""Unit tests for compression-ratio accounting (paper Eqs. 2-3)."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics.compression import (
    CompressionBudget,
    compressed_fraction,
    compression_ratio_from_counts,
    cr_from_delta,
    cs_channel_cr,
    delta_from_cr,
    lowres_overhead,
    measurements_for_cr,
    net_compression_ratio,
)


class TestEq3:
    def test_half_size_is_50_percent(self):
        assert compression_ratio_from_counts(1000, 500) == pytest.approx(50.0)

    def test_no_compression_is_zero(self):
        assert compression_ratio_from_counts(100, 100) == pytest.approx(0.0)

    def test_expansion_is_negative(self):
        assert compression_ratio_from_counts(100, 150) < 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compression_ratio_from_counts(0, 10)
        with pytest.raises(ValueError):
            compression_ratio_from_counts(10, -1)


class TestCsChannelCr:
    def test_paper_axis_points(self):
        # m/n pairs behind the Fig. 7 axis: 50% CR = half the measurements.
        assert cs_channel_cr(512, 256) == pytest.approx(50.0)
        assert cs_channel_cr(512, 96) == pytest.approx(81.25)

    def test_roundtrip_with_measurements_for_cr(self):
        for cr in (50.0, 62.0, 81.0, 94.0, 97.0):
            m = measurements_for_cr(512, cr)
            assert cs_channel_cr(512, m) == pytest.approx(cr, abs=0.1)

    @given(st.integers(min_value=1, max_value=2048))
    def test_zero_measurements_is_full_compression(self, n):
        assert cs_channel_cr(n, 0) == pytest.approx(100.0)

    def test_out_of_range_m_rejected(self):
        with pytest.raises(ValueError):
            cs_channel_cr(100, 101)

    def test_delta_conversions(self):
        assert delta_from_cr(75.0) == pytest.approx(0.25)
        assert cr_from_delta(0.06) == pytest.approx(94.0)
        with pytest.raises(ValueError):
            cr_from_delta(1.5)


class TestEq2Overhead:
    def test_paper_7bit_operating_point(self):
        # Paper: CR_7 such that D_7 = 7.8%; inverting Eq. 2 gives the
        # compressed fraction the paper's coder achieved.
        implied_fraction = 7.8 / 100.0 * 12 / 7
        assert lowres_overhead(implied_fraction, 7) == pytest.approx(7.8)

    def test_scales_linearly_with_resolution(self):
        assert lowres_overhead(0.5, 6) == pytest.approx(
            lowres_overhead(0.5, 3) * 2.0
        )

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            lowres_overhead(1.5, 7)
        with pytest.raises(ValueError):
            lowres_overhead(0.5, 0)

    def test_compressed_fraction_basic(self):
        assert compressed_fraction(100, 25) == pytest.approx(0.25)

    def test_net_cr_paper_value(self):
        # Section V: 81% CS CR minus 7.86% overhead = 73.14% net.
        assert net_compression_ratio(81.0, 7.86) == pytest.approx(73.14)


class TestCompressionBudget:
    def _budget(self):
        return CompressionBudget(
            n_samples=512,
            original_bits=512 * 12,
            cs_bits=96 * 12,
            lowres_bits=480,
            header_bits=96,
        )

    def test_total_bits(self):
        b = self._budget()
        assert b.total_bits == 96 * 12 + 480 + 96

    def test_cs_cr_matches_eq3(self):
        b = self._budget()
        assert b.cs_cr_percent == pytest.approx(
            compression_ratio_from_counts(512 * 12, 96 * 12)
        )

    def test_net_cr_below_cs_cr(self):
        b = self._budget()
        assert b.net_cr_percent < b.cs_cr_percent

    def test_lowres_overhead_percent(self):
        b = self._budget()
        assert b.lowres_overhead_percent == pytest.approx(480 / (512 * 12) * 100)
