"""Tests of the diagnostic-quality (beat-matching) metrics."""

import numpy as np
import pytest

from repro.metrics.diagnostic import (
    BeatMatchResult,
    beat_detection_score,
    match_beats,
    reconstruction_fidelity,
)
from repro.signals.database import load_record


class TestMatchBeats:
    def test_perfect_match(self):
        r = match_beats([100, 500, 900], [102, 498, 905], fs_hz=360.0)
        assert r.true_positives == 3
        assert r.sensitivity == 1.0
        assert r.positive_predictivity == 1.0
        assert r.f1 == 1.0

    def test_missed_beat(self):
        r = match_beats([100, 500, 900], [102, 905], fs_hz=360.0)
        assert r.false_negatives == 1
        assert r.sensitivity == pytest.approx(2 / 3)

    def test_false_alarm(self):
        r = match_beats([100, 500], [102, 498, 300], fs_hz=360.0)
        assert r.false_positives == 1
        assert r.positive_predictivity == pytest.approx(2 / 3)

    def test_tolerance_respected(self):
        # 150 ms at 360 Hz = 54 samples; 60 samples away is a miss.
        r = match_beats([100], [160], fs_hz=360.0)
        assert r.true_positives == 0
        r2 = match_beats([100], [150], fs_hz=360.0)
        assert r2.true_positives == 1

    def test_one_to_one_matching(self):
        """Two detections near one reference: only one may match."""
        r = match_beats([100], [95, 105], fs_hz=360.0)
        assert r.true_positives == 1
        assert r.false_positives == 1

    def test_empty_sets(self):
        r = match_beats([], [], fs_hz=360.0)
        assert r.sensitivity == 1.0
        assert r.positive_predictivity == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            match_beats([1], [1], fs_hz=0.0)


class TestF1:
    def test_zero_case(self):
        r = BeatMatchResult(0, 5, 5)
        assert r.f1 == 0.0

    def test_balanced(self):
        r = BeatMatchResult(8, 2, 2)
        assert r.f1 == pytest.approx(0.8)


class TestOnWaveforms:
    def test_score_on_clean_record(self):
        rec = load_record("100", duration_s=20.0, clean=True)
        score = beat_detection_score(
            rec.signal_mv(), rec.beat_samples(), rec.header.fs_hz
        )
        assert score.f1 > 0.95

    def test_identity_reconstruction_perfect(self):
        rec = load_record("103", duration_s=20.0)
        x = rec.signal_mv()
        r = reconstruction_fidelity(x, x.copy(), rec.header.fs_hz)
        assert r.f1 == 1.0

    def test_flatline_reconstruction_scores_zero(self):
        rec = load_record("103", duration_s=20.0)
        x = rec.signal_mv()
        r = reconstruction_fidelity(x, np.zeros_like(x), rec.header.fs_hz)
        assert r.sensitivity == 0.0

    def test_noise_reconstruction_degrades_f1(self):
        """Pure noise gets at best chance-level agreement."""
        rec = load_record("103", duration_s=20.0)
        x = rec.signal_mv()
        rng = np.random.default_rng(0)
        garbage = 0.02 * rng.standard_normal(x.size)
        r = reconstruction_fidelity(x, garbage, rec.header.fs_hz)
        assert r.f1 < 0.9

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            reconstruction_fidelity(np.ones(10), np.ones(9), 360.0)
