"""Tests of the block-level power models (paper Eqs. 4-9)."""

import numpy as np
import pytest

from repro.power.models import (
    PowerBreakdown,
    adc_power,
    amplifier_power,
    integrator_power,
    noise_efficiency_factor,
    thermal_voltage,
)


class TestThermalVoltage:
    def test_room_temperature(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            thermal_voltage(0.0)


class TestAdcPower:
    def test_eq4_literal(self):
        # P = (m/n) * FOM * 2^B * fs
        p = adc_power(96, 512, 360.0, 12, fom_j_per_conv=100e-15)
        expected = (96 / 512) * 100e-15 * 4096 * 360.0
        assert p == pytest.approx(expected)

    def test_linear_in_m_and_fs(self):
        base = adc_power(10, 512, 360.0, 12)
        assert adc_power(20, 512, 360.0, 12) == pytest.approx(2 * base)
        assert adc_power(10, 512, 720.0, 12) == pytest.approx(2 * base)

    def test_exponential_in_bits(self):
        assert adc_power(1, 1, 360.0, 13) == pytest.approx(
            2 * adc_power(1, 1, 360.0, 12)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            adc_power(0, 512, 360.0, 12)
        with pytest.raises(ValueError):
            adc_power(1, 1, 360.0, 0)


class TestIntegratorPower:
    def test_eq5_literal(self):
        p = integrator_power(240, 512, 180.0, vdd_v=1.0, pole_capacitance_f=1e-12)
        expected = 2 * 180.0 * 240 * 1.0 * 10 * np.pi * 512 * 1e-12 / 16
        assert p == pytest.approx(expected)

    def test_linear_in_bandwidth(self):
        assert integrator_power(10, 512, 400.0) == pytest.approx(
            2 * integrator_power(10, 512, 200.0)
        )

    def test_quadratic_in_vdd(self):
        assert integrator_power(10, 512, 180.0, vdd_v=2.0) == pytest.approx(
            4 * integrator_power(10, 512, 180.0, vdd_v=1.0)
        )


class TestAmplifierPower:
    def test_linear_in_m(self):
        base = amplifier_power(96, 512, 180.0, 12)
        assert amplifier_power(192, 512, 180.0, 12) == pytest.approx(2 * base)

    def test_gain_dependence(self):
        # +6 dB of gain -> 4x power (G_A^2 term).
        low = amplifier_power(96, 512, 180.0, 12, gain_db=40.0)
        high = amplifier_power(96, 512, 180.0, 12, gain_db=46.0)
        assert high / low == pytest.approx((10 ** (6 / 20)) ** 2, rel=0.01)

    def test_resolution_dependence(self):
        # One more measurement bit -> 4x noise requirement -> 4x power.
        b12 = amplifier_power(96, 512, 180.0, 12)
        b13 = amplifier_power(96, 512, 180.0, 13)
        assert b13 == pytest.approx(4 * b12)

    def test_nef_range_enforced(self):
        with pytest.raises(ValueError):
            amplifier_power(96, 512, 180.0, 12, nef=0.5)

    def test_dominates_other_blocks_at_paper_settings(self):
        """The Section VI observation: the amplifier dwarfs ADC+integrator."""
        m, n, fs = 240, 512, 360.0
        amp = amplifier_power(m, n, fs / 2, 12)
        adc = adc_power(m, n, fs, 12)
        integ = integrator_power(m, n, fs / 2)
        assert amp > 10 * (adc + integ)


class TestNef:
    def test_eq6_roundtrip(self):
        """Invert Eq. 6: given a NEF, the implied current reproduces it."""
        vni, bw = 2e-6, 180.0
        nef_target = 2.5
        vt = thermal_voltage()
        kt = 1.380649e-23 * 300.0
        current = nef_target**2 * np.pi * vt * 4 * kt * bw / (2 * vni**2)
        assert noise_efficiency_factor(vni, current, bw) == pytest.approx(
            nef_target, rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            noise_efficiency_factor(0.0, 1e-6, 180.0)


class TestPowerBreakdown:
    def test_total_and_dominant(self):
        b = PowerBreakdown(adc_w=1.0, integrator_w=2.0, amplifier_w=10.0)
        assert b.total_w == 13.0
        assert b.dominant_block() == "amplifier"

    def test_microwatt_keys_match_paper_legend(self):
        b = PowerBreakdown(1e-6, 2e-6, 3e-6)
        uw = b.as_microwatts()
        assert set(uw) == {"P[adc]", "P[Int]", "P[amp]", "P[Total]"}
        assert uw["P[Total]"] == pytest.approx(6.0)

    def test_add_and_scale(self):
        a = PowerBreakdown(1.0, 1.0, 1.0)
        b = PowerBreakdown(2.0, 2.0, 2.0)
        assert (a + b).total_w == pytest.approx(9.0)
        assert a.scaled(0.5).total_w == pytest.approx(1.5)
        with pytest.raises(ValueError):
            a.scaled(-1.0)
