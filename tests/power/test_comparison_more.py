"""Additional power-comparison coverage: paper operating points as data."""

import pytest

from repro.power.comparison import PAPER_OPERATING_POINTS, power_gain
from repro.power.rmpi_power import HybridArchitecture, RmpiArchitecture


class TestPaperOperatingPoints:
    def test_two_points_recorded(self):
        targets = {p.target_snr_db for p in PAPER_OPERATING_POINTS}
        assert targets == {20.0, 17.0}

    def test_counts_match_paper_text(self):
        by_target = {p.target_snr_db: p for p in PAPER_OPERATING_POINTS}
        assert (by_target[20.0].m_normal, by_target[20.0].m_hybrid) == (240, 96)
        assert (by_target[17.0].m_normal, by_target[17.0].m_hybrid) == (176, 16)

    def test_gain_independent_of_frequency(self):
        """Every block scales linearly with fs, so the ratio is
        frequency-free — sanity for using 360 Hz everywhere."""
        for fs in (100.0, 360.0, 1e6):
            assert power_gain(240, 96, fs_hz=fs) == pytest.approx(2.5, rel=0.01)

    def test_gain_approaches_m_ratio_asymptotically(self):
        """With the amplifier dominating, gain → m_normal/m_hybrid; the
        low-res channel keeps it fractionally below."""
        gain = power_gain(240, 96)
        assert gain <= 240 / 96
        assert gain == pytest.approx(240 / 96, rel=1e-3)

    def test_lowres_bits_barely_matter(self):
        """The parallel channel is so cheap that even a 10-bit version
        leaves the gain unchanged to 4 decimals."""
        g7 = power_gain(240, 96, lowres_bits=7)
        g10 = power_gain(240, 96, lowres_bits=10)
        assert g7 == pytest.approx(g10, abs=1e-3)


class TestHybridAccounting:
    def test_breakdown_addition_consistency(self):
        hybrid = HybridArchitecture(cs=RmpiArchitecture(m=96))
        total = hybrid.breakdown(360.0)
        cs = hybrid.cs.breakdown(360.0)
        lowres = hybrid.lowres_breakdown(360.0)
        assert total.total_w == pytest.approx(cs.total_w + lowres.total_w)

    def test_lowres_fraction_grows_with_bits(self):
        low = HybridArchitecture(cs=RmpiArchitecture(m=96), lowres_bits=4)
        high = HybridArchitecture(cs=RmpiArchitecture(m=96), lowres_bits=10)
        assert high.lowres_fraction(360.0) > low.lowres_fraction(360.0)
