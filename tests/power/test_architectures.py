"""Tests of the architecture-level power models and comparisons (§VI)."""

import numpy as np
import pytest

from repro.power.comparison import (
    PAPER_OPERATING_POINTS,
    measurements_for_target_snr,
    power_gain,
)
from repro.power.rmpi_power import (
    HybridArchitecture,
    RmpiArchitecture,
    sweep_frequencies,
)


class TestRmpiArchitecture:
    def test_breakdown_blocks_positive(self):
        arch = RmpiArchitecture(m=240)
        b = arch.breakdown(360.0)
        assert b.adc_w > 0 and b.integrator_w > 0 and b.amplifier_w > 0

    def test_amplifier_dominant(self):
        b = RmpiArchitecture(m=240).breakdown(360.0)
        assert b.dominant_block() == "amplifier"

    def test_power_proportional_to_m(self):
        p240 = RmpiArchitecture(m=240).total_w(360.0)
        p120 = RmpiArchitecture(m=120).total_w(360.0)
        assert p240 / p120 == pytest.approx(2.0, rel=1e-9)

    def test_with_channels(self):
        arch = RmpiArchitecture(m=240)
        assert arch.with_channels(96).m == 96
        assert arch.with_channels(96).n == arch.n

    def test_validation(self):
        with pytest.raises(ValueError):
            RmpiArchitecture(m=0)
        with pytest.raises(ValueError):
            RmpiArchitecture(m=600, n=512)
        with pytest.raises(ValueError):
            RmpiArchitecture(m=96).breakdown(0.0)


class TestHybridArchitecture:
    def _hybrid(self, m=96):
        return HybridArchitecture(cs=RmpiArchitecture(m=m), lowres_bits=7)

    def test_lowres_path_negligible(self):
        """Paper §II: 'power consumption from this path should be
        negligible compared to CS path'."""
        assert self._hybrid().lowres_fraction(360.0) < 0.01

    def test_total_includes_lowres(self):
        h = self._hybrid()
        cs_only = h.cs.total_w(360.0)
        assert h.total_w(360.0) > cs_only

    def test_lowres_breakdown_has_no_integrator(self):
        b = self._hybrid().lowres_breakdown(360.0)
        assert b.integrator_w == 0.0
        assert b.adc_w > 0 and b.amplifier_w > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HybridArchitecture(cs=RmpiArchitecture(m=96), lowres_bits=0)


class TestSweep:
    def test_series_lengths(self):
        arch = RmpiArchitecture(m=96)
        sweep = sweep_frequencies(arch, [100.0, 1000.0, 10000.0])
        assert len(sweep["total_w"]) == 3
        assert sweep["fs_hz"] == [100.0, 1000.0, 10000.0]

    def test_monotone_in_frequency(self):
        arch = RmpiArchitecture(m=96)
        sweep = sweep_frequencies(arch, np.logspace(2, 8, 10))
        assert np.all(np.diff(sweep["total_w"]) > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_frequencies(RmpiArchitecture(m=8), [])


class TestPowerGain:
    def test_paper_2p5x_point(self):
        """At m 240 vs 96 the model gives ~2.5x (amplifier-dominated)."""
        gain = power_gain(240, 96)
        assert gain == pytest.approx(2.5, rel=0.02)

    def test_paper_11x_point(self):
        """At m 176 vs 16 the model gives ~11x."""
        gain = power_gain(176, 16)
        assert gain == pytest.approx(11.0, rel=0.05)

    def test_operating_points_match_their_gains(self):
        for point in PAPER_OPERATING_POINTS:
            assert point.gain() == pytest.approx(point.paper_gain, rel=0.06)

    def test_validation(self):
        with pytest.raises(ValueError):
            power_gain(0, 96)


class TestMeasurementSearch:
    def test_finds_smallest_sufficient(self):
        snr = {8: 5.0, 16: 12.0, 32: 18.0, 64: 21.0, 128: 24.0}
        m = measurements_for_target_snr(lambda m: snr[m], 20.0, list(snr))
        assert m == 64

    def test_none_when_unreachable(self):
        snr = {8: 5.0, 16: 6.0}
        assert measurements_for_target_snr(lambda m: snr[m], 30.0, list(snr)) is None

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            measurements_for_target_snr(lambda m: 0.0, 10.0, [])
