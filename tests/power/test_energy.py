"""Tests of the node energy model."""

import numpy as np
import pytest

from repro.core.packets import WindowPacket
from repro.power.energy import EnergyReport, NodeEnergyModel, RadioModel
from repro.power.rmpi_power import HybridArchitecture, RmpiArchitecture


def _packet(bits_payload=400, m=96, n=512):
    codes = np.zeros(m, dtype=np.int64)
    payload = bytes((bits_payload + 7) // 8)
    return WindowPacket(
        window_index=0,
        n=n,
        measurement_codes=codes,
        measurement_bits=12,
        lowres_payload=payload,
        lowres_bit_length=bits_payload,
    )


class TestRadioModel:
    def test_energy_linear_in_bits(self):
        radio = RadioModel(j_per_bit=5e-9)
        assert radio.window_energy_j(2000, 1.0) == pytest.approx(1e-5)
        assert radio.window_energy_j(4000, 1.0) == pytest.approx(2e-5)

    def test_idle_power_counted(self):
        radio = RadioModel(j_per_bit=5e-9, idle_w=1e-6)
        assert radio.window_energy_j(0, 2.0) == pytest.approx(2e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioModel(j_per_bit=0.0)
        radio = RadioModel()
        with pytest.raises(ValueError):
            radio.window_energy_j(-1, 1.0)
        with pytest.raises(ValueError):
            radio.window_energy_j(10, 0.0)


class TestNodeEnergyModel:
    def _model(self, m=96):
        arch = HybridArchitecture(cs=RmpiArchitecture(m=m, n=512))
        return NodeEnergyModel(arch, fs_hz=360.0)

    def test_window_report_components(self):
        model = self._model()
        report = model.window_report(_packet())
        window_s = 512 / 360.0
        assert report.duration_s == pytest.approx(window_s)
        assert report.frontend_j == pytest.approx(
            model.frontend_power_w() * window_s
        )
        assert report.radio_j > 0
        assert report.total_j == report.frontend_j + report.radio_j

    def test_fewer_channels_less_energy(self):
        few = self._model(m=16).window_report(_packet(m=16))
        many = self._model(m=240).window_report(_packet(m=240))
        assert few.total_j < many.total_j

    def test_stream_aggregation(self):
        model = self._model()
        single = model.window_report(_packet())
        triple = model.stream_report([_packet()] * 3)
        assert triple.total_j == pytest.approx(3 * single.total_j)
        assert triple.duration_s == pytest.approx(3 * single.duration_s)

    def test_compression_saves_radio_energy(self):
        """The compressed hybrid stream must beat raw streaming on the
        radio side (the whole point of on-node compression)."""
        model = self._model()
        hybrid = model.window_report(_packet())
        raw = model.uncompressed_baseline(512)
        assert hybrid.radio_j < raw.radio_j

    def test_battery_days_scale(self):
        report = EnergyReport(frontend_j=1.0, radio_j=1.0, duration_s=1.0)
        days = report.battery_days(capacity_mah=225.0, voltage_v=3.0)
        # 2 W average on a 2430 J battery: ~1215 s = 0.014 days.
        assert days == pytest.approx(2430.0 / 2.0 / 86400.0)
        with pytest.raises(ValueError):
            report.battery_days(0.0)

    def test_validation(self):
        with pytest.raises(TypeError):
            NodeEnergyModel(object())
        with pytest.raises(ValueError):
            NodeEnergyModel(RmpiArchitecture(m=8), fs_hz=0.0)
        with pytest.raises(ValueError):
            self._model().stream_report([])
