"""Tests of canonical Huffman coding: optimality, prefix-freeness,
roundtrips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.bitstream import BitReader, BitWriter
from repro.coding.huffman import (
    HuffmanCodec,
    canonical_codes,
    code_lengths_from_frequencies,
)


class TestCodeLengths:
    def test_uniform_four_symbols(self):
        lengths = code_lengths_from_frequencies({s: 1.0 for s in "abcd"})
        assert all(ln == 2 for ln in lengths.values())

    def test_skewed_distribution(self):
        lengths = code_lengths_from_frequencies({"a": 8, "b": 4, "c": 2, "d": 1, "e": 1})
        assert lengths["a"] == 1
        assert lengths["d"] == lengths["e"] == 4

    def test_single_symbol_gets_one_bit(self):
        assert code_lengths_from_frequencies({"x": 10}) == {"x": 1}

    def test_kraft_equality(self):
        """Huffman lengths saturate the Kraft inequality."""
        freqs = {i: (i + 1) ** 2 for i in range(17)}
        lengths = code_lengths_from_frequencies(freqs)
        assert sum(2.0 ** -ln for ln in lengths.values()) == pytest.approx(1.0)

    def test_optimal_vs_entropy(self):
        """Mean length within 1 bit of the entropy (Huffman's bound)."""
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(25))
        freqs = {i: float(p) for i, p in enumerate(probs)}
        lengths = code_lengths_from_frequencies(freqs)
        mean_len = sum(probs[i] * lengths[i] for i in range(25))
        entropy = -float(np.sum(probs * np.log2(probs)))
        assert entropy <= mean_len < entropy + 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            code_lengths_from_frequencies({})
        with pytest.raises(ValueError):
            code_lengths_from_frequencies({"a": 0.0})


class TestCanonicalCodes:
    def test_prefix_free(self):
        lengths = {"a": 1, "b": 2, "c": 3, "d": 3}
        codes = canonical_codes(lengths)
        words = [format(c, f"0{ln}b") for c, ln in codes.values()]
        for i, w1 in enumerate(words):
            for j, w2 in enumerate(words):
                if i != j:
                    assert not w2.startswith(w1)

    def test_canonical_ordering(self):
        codes = canonical_codes({"a": 2, "b": 2, "c": 2, "d": 2})
        values = sorted(c for c, _ in codes.values())
        assert values == [0, 1, 2, 3]

    def test_kraft_violation_rejected(self):
        with pytest.raises(ValueError):
            canonical_codes({"a": 1, "b": 1, "c": 1})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            canonical_codes({})


class TestHuffmanCodec:
    def _codec(self):
        return HuffmanCodec.from_frequencies(
            {"a": 40, "b": 30, "c": 20, "d": 10}
        )

    def test_encode_decode_roundtrip(self):
        codec = self._codec()
        msg = list("abacabadabra".replace("r", "a"))
        payload, bits = codec.encode(msg)
        assert codec.decode(payload, len(msg), bits) == msg

    def test_common_symbol_shorter(self):
        codec = self._codec()
        assert codec.code_length("a") <= codec.code_length("d")

    def test_mean_code_length(self):
        codec = self._codec()
        freqs = {"a": 40, "b": 30, "c": 20, "d": 10}
        mean = codec.mean_code_length(freqs)
        assert 1.0 <= mean <= 2.0

    def test_from_lengths_rebuilds_same_codes(self):
        codec = self._codec()
        lengths = {s: ln for s, (_, ln) in codec.codes.items()}
        rebuilt = HuffmanCodec.from_lengths(lengths)
        assert rebuilt.codes == codec.codes

    def test_unknown_symbol_rejected(self):
        codec = self._codec()
        with pytest.raises(KeyError):
            codec.encode(["z"])

    def test_decode_symbol_streaming(self):
        codec = self._codec()
        w = BitWriter()
        codec.encode_symbol("c", w)
        codec.encode_symbol("a", w)
        r = BitReader(w.getvalue(), w.bit_length)
        assert codec.decode_symbol(r) == "c"
        assert codec.decode_symbol(r) == "a"

    def test_single_symbol_codec(self):
        codec = HuffmanCodec.from_frequencies({"only": 5})
        payload, bits = codec.encode(["only"] * 7)
        assert bits == 7
        assert codec.decode(payload, 7, bits) == ["only"] * 7

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(-20, 20), min_size=1, max_size=200),
    )
    def test_roundtrip_property(self, message):
        """Any integer message round-trips through a codec trained on its
        own alphabet."""
        freqs = {}
        for s in message:
            freqs[s] = freqs.get(s, 0) + 1
        codec = HuffmanCodec.from_frequencies(freqs)
        payload, bits = codec.encode(message)
        assert codec.decode(payload, len(message), bits) == message
