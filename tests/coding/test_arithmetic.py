"""Tests of the static arithmetic (range) coder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.arithmetic import ArithmeticCodec, ArithmeticModel
from repro.coding.huffman import HuffmanCodec


class TestModel:
    def test_cumulative_structure(self):
        model = ArithmeticModel.from_frequencies({"a": 3, "b": 1})
        assert model.cumulative[0] == 0
        assert model.total == model.cumulative[-1]
        assert len(model.cumulative) == len(model.symbols) + 1

    def test_every_symbol_has_mass(self):
        # A tiny-probability symbol still gets >= 1 count.
        model = ArithmeticModel.from_frequencies({"big": 1e9, "small": 1e-9})
        lo, hi = model.interval("small")
        assert hi - lo >= 1

    def test_symbol_lookup(self):
        model = ArithmeticModel.from_frequencies({"a": 1, "b": 1, "c": 2})
        for sym in model.symbols:
            lo, hi = model.interval(sym)
            found, f_lo, f_hi = model.symbol_for(lo)
            assert found == sym
            assert (f_lo, f_hi) == (lo, hi)

    def test_unknown_symbol(self):
        model = ArithmeticModel.from_frequencies({"a": 1})
        with pytest.raises(KeyError):
            model.interval("z")

    def test_validation(self):
        with pytest.raises(ValueError):
            ArithmeticModel.from_frequencies({})
        with pytest.raises(ValueError):
            ArithmeticModel.from_frequencies({"a": -1.0})


class TestCodec:
    def _codec(self, freqs):
        return ArithmeticCodec(ArithmeticModel.from_frequencies(freqs))

    def test_roundtrip_small(self):
        codec = self._codec({"a": 5, "b": 2, "c": 1})
        msg = list("abacabaacc")
        payload, bits = codec.encode(msg)
        assert codec.decode(payload, len(msg), bits) == msg

    def test_roundtrip_skewed(self):
        codec = self._codec({0: 1000, 1: 1})
        msg = [0] * 500 + [1] + [0] * 499
        payload, bits = codec.encode(msg)
        assert codec.decode(payload, len(msg), bits) == msg
        # Heavily skewed stream: far below 1 bit/symbol.
        assert bits < 0.2 * len(msg)

    def test_empty_message(self):
        codec = self._codec({"a": 1})
        payload, bits = codec.encode([])
        assert codec.decode(payload, 0, bits) == []

    def test_beats_huffman_on_skewed_alphabet(self):
        """The reason to measure the gap: Huffman is floored at
        1 bit/symbol, arithmetic is not."""
        freqs = {0: 95, 1: 3, 2: 2}
        rng = np.random.default_rng(0)
        msg = rng.choice([0, 1, 2], size=4000, p=[0.95, 0.03, 0.02]).tolist()
        arith = self._codec(freqs)
        huff = HuffmanCodec.from_frequencies(freqs)
        _, a_bits = arith.encode(msg)
        _, h_bits = huff.encode(msg)
        assert a_bits < 0.5 * h_bits

    def test_near_entropy(self):
        """Measured rate within ~2% + 1 byte of the source entropy."""
        rng = np.random.default_rng(1)
        p = np.array([0.6, 0.25, 0.1, 0.05])
        msg = rng.choice(4, size=8000, p=p).tolist()
        freqs = {i: float(pi) for i, pi in enumerate(p)}
        codec = self._codec(freqs)
        _, bits = codec.encode(msg)
        entropy = -float(np.sum(p * np.log2(p)))
        assert bits / len(msg) < entropy * 1.02 + 8 / len(msg)

    def test_cross_entropy_helper(self):
        codec = self._codec({"a": 1, "b": 1})
        xent = codec.mean_bits_per_symbol({"a": 1, "b": 1})
        assert xent == pytest.approx(1.0, abs=0.01)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=300))
    def test_roundtrip_property(self, msg):
        freqs = {}
        for s in msg:
            freqs[s] = freqs.get(s, 0) + 1
        codec = self._codec(freqs)
        payload, bits = codec.encode(msg)
        assert codec.decode(payload, len(msg), bits) == msg

    def test_mixed_symbol_types(self):
        """Run-length tokens and ESCAPE coexist with int symbols."""
        from repro.coding.runlength import ZeroRun

        freqs = {0: 10, 1: 3, ZeroRun(4): 5, "ESC": 1}
        codec = self._codec(freqs)
        msg = [0, ZeroRun(4), 1, "ESC", 0, ZeroRun(4)]
        payload, bits = codec.encode(msg)
        assert codec.decode(payload, len(msg), bits) == msg
