"""Tests of the offline difference codebook (paper §III-B, Figs. 5-6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.codebook import ESCAPE, DifferenceCodebook, train_codebook
from repro.sensing.quantizers import requantize_codes


def _train(streams, bits=7, **kw):
    return train_codebook([np.asarray(s, dtype=np.int64) for s in streams], bits, **kw)


class TestTraining:
    def test_contains_escape_and_runs(self):
        book = _train([[10, 10, 11, 11, 12]])
        assert ESCAPE in book.codec.codes
        assert 0 in book.codec.codes

    def test_resolution_recorded(self):
        book = _train([[0, 1, 2]], bits=5)
        assert book.resolution_bits == 5

    def test_coverage_trims_alphabet(self):
        rng = np.random.default_rng(0)
        # Mostly small diffs, occasionally huge ones.
        steps = np.where(rng.uniform(size=5000) < 0.99,
                         rng.integers(-1, 2, 5000),
                         rng.integers(-60, 60, 5000))
        stream = np.clip(64 + np.cumsum(steps), 0, 127).astype(np.int64)
        full = _train([stream], coverage=1.0)
        trimmed = _train([stream], coverage=0.99)
        assert trimmed.n_entries < full.n_entries

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            train_codebook([np.array([5], dtype=np.int64)], 7)

    def test_bad_coverage_rejected(self):
        with pytest.raises(ValueError):
            _train([[0, 1]], coverage=0.0)


class TestEncodeDecode:
    def test_roundtrip_on_training_data(self, record_100):
        codes = requantize_codes(record_100.adu, 11, 7)
        book = _train([codes])
        window = codes[:512]
        payload, bits = book.encode_window(window)
        assert np.array_equal(book.decode_window(payload, 512, bits), window)

    def test_roundtrip_with_escapes(self):
        """Symbols unseen in training must survive via the escape path."""
        book = _train([[64, 64, 65, 65, 64]])
        wild = np.array([0, 100, 3, 90, 90, 90, 2], dtype=np.int64)
        payload, bits = book.encode_window(wild)
        assert np.array_equal(book.decode_window(payload, wild.size, bits), wild)

    def test_compression_beats_raw_on_redundant_stream(self):
        stream = np.repeat(np.arange(8, dtype=np.int64) + 60, 64)
        book = _train([stream])
        assert book.compressed_fraction(stream) < 0.2

    def test_out_of_range_codes_rejected(self):
        book = _train([[0, 1, 2]], bits=4)
        with pytest.raises(ValueError):
            book.encode_window(np.array([16], dtype=np.int64))

    def test_single_sample_window(self):
        book = _train([[3, 3, 4]])
        payload, bits = book.encode_window(np.array([5], dtype=np.int64))
        assert bits == book.resolution_bits
        assert np.array_equal(book.decode_window(payload, 1, bits), [5])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 127), min_size=1, max_size=400))
    def test_roundtrip_property(self, values):
        """Lossless on arbitrary 7-bit streams, even fully untrained."""
        book = _train([[60, 60, 61, 61, 62, 62]])
        window = np.asarray(values, dtype=np.int64)
        payload, bits = book.encode_window(window)
        assert np.array_equal(
            book.decode_window(payload, window.size, bits), window
        )


class TestRunLengthMode:
    def test_rle_beats_plain_on_zero_heavy_streams(self, record_100):
        codes = requantize_codes(record_100.adu, 11, 4)
        rle = train_codebook([codes], 4, use_run_length=True)
        plain = train_codebook([codes], 4, use_run_length=False)
        window = codes[:1024]
        assert rle.compressed_fraction(window) < plain.compressed_fraction(window)

    def test_plain_mode_roundtrip(self, record_100):
        codes = requantize_codes(record_100.adu, 11, 7)
        book = train_codebook([codes], 7, use_run_length=False)
        window = codes[:512]
        payload, bits = book.encode_window(window)
        assert np.array_equal(book.decode_window(payload, 512, bits), window)

    def test_sub_bit_per_sample_possible(self):
        """The paper's Table I regime: a constant stream codes below
        1 bit/sample with run tokens (impossible for plain Huffman)."""
        stream = np.full(4096, 9, dtype=np.int64)
        book = train_codebook([stream], 7, use_run_length=True)
        assert book.compressed_fraction(stream) * 7 < 0.2


class TestStorageModel:
    def test_entry_size_scales_with_resolution(self):
        lo = _train([[1, 1, 2, 2, 3]], bits=4)
        hi = _train([[1, 1, 2, 2, 3]], bits=10)
        # Same alphabet; wider symbols may need more bytes per entry.
        assert hi.storage_bytes() >= lo.storage_bytes()

    def test_storage_counts_all_entries(self):
        book = _train([[5, 5, 6, 6, 7, 7]])
        assert book.storage_bytes() % book.n_entries == 0

    def test_validation_requires_run_tokens(self):
        from repro.coding.huffman import HuffmanCodec

        codec = HuffmanCodec.from_frequencies({0: 1.0, ESCAPE: 1.0})
        with pytest.raises(ValueError):
            DifferenceCodebook(resolution_bits=7, codec=codec, use_run_length=True)

    def test_validation_requires_escape(self):
        from repro.coding.huffman import HuffmanCodec

        codec = HuffmanCodec.from_frequencies({0: 1.0, 1: 1.0})
        with pytest.raises(ValueError):
            DifferenceCodebook(resolution_bits=7, codec=codec, use_run_length=False)
