"""Property suite: batched encode == scalar encode, and both round-trip.

Arbitrary B-bit code windows (including odd tails and degenerate
single-sample windows) go through the batch engine; the scalar decoder
must recover them and the scalar encoder must produce the same bytes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.codebook import train_codebook

pytestmark = pytest.mark.property

_BOOKS = {}


def _book(bits, use_run_length):
    """Codebooks are deterministic; build each once for the whole suite."""
    key = (bits, use_run_length)
    if key not in _BOOKS:
        rng = np.random.default_rng(17 + bits)
        steps = np.where(
            rng.uniform(size=3000) < 0.55,
            0,
            rng.integers(-2, 3, 3000),
        )
        half = 1 << (bits - 1)
        stream = np.clip(half + np.cumsum(steps), 0, (1 << bits) - 1)
        _BOOKS[key] = train_codebook(
            [stream.astype(np.int64)], bits, use_run_length=use_run_length
        )
    return _BOOKS[key]


@st.composite
def window_stacks(draw):
    """A (windows, samples) stack plus its codebook parameters."""
    bits = draw(st.sampled_from([7, 8]))
    use_run_length = draw(st.booleans())
    w = draw(st.integers(min_value=1, max_value=5))
    k = draw(st.integers(min_value=1, max_value=75))
    flat = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=w * k,
            max_size=w * k,
        )
    )
    codes = np.array(flat, dtype=np.int64).reshape(w, k)
    return bits, use_run_length, codes


class TestRoundTrip:
    @given(window_stacks())
    @settings(max_examples=60, deadline=None)
    def test_batched_encode_scalar_decode(self, params):
        bits, use_run_length, codes = params
        book = _book(bits, use_run_length)
        for row, (payload, bit_length) in zip(
            codes, book.encode_windows(codes)
        ):
            assert np.array_equal(
                book.decode_window(payload, row.size, bit_length), row
            )

    @given(window_stacks())
    @settings(max_examples=60, deadline=None)
    def test_batched_bytes_equal_scalar_bytes(self, params):
        bits, use_run_length, codes = params
        book = _book(bits, use_run_length)
        batched = book.encode_windows(codes)
        scalar = [book.encode_window(row) for row in codes]
        assert batched == scalar

    @given(
        st.integers(min_value=1, max_value=400),
        st.sampled_from([7, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_zero_windows_any_tail(self, k, bits):
        """Pure zero runs of every length, including non-power-of-two tails."""
        book = _book(bits, True)
        codes = np.zeros((2, k), dtype=np.int64)
        batched = book.encode_windows(codes)
        assert batched == [book.encode_window(row) for row in codes]
        payload, bit_length = batched[0]
        assert np.array_equal(
            book.decode_window(payload, k, bit_length), codes[0]
        )
