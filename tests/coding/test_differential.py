"""Tests of difference coding and its statistics (paper Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.differential import (
    difference_decode,
    difference_encode,
    difference_histogram,
    difference_pdf,
    empirical_entropy_bits,
)


class TestDifferenceTransform:
    def test_known_stream(self):
        first, diffs = difference_encode(np.array([5, 7, 7, 4], dtype=np.int64))
        assert first == 5
        assert list(diffs) == [2, 0, -3]

    def test_roundtrip(self, rng):
        codes = rng.integers(0, 128, size=500)
        first, diffs = difference_encode(codes)
        assert np.array_equal(difference_decode(first, diffs), codes)

    def test_single_sample(self):
        first, diffs = difference_encode(np.array([42], dtype=np.int64))
        assert first == 42
        assert diffs.size == 0
        assert np.array_equal(difference_decode(first, diffs), [42])

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            difference_encode(np.array([1.5]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            difference_encode(np.array([], dtype=np.int64))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=300))
    def test_roundtrip_property(self, values):
        codes = np.asarray(values, dtype=np.int64)
        first, diffs = difference_encode(codes)
        assert np.array_equal(difference_decode(first, diffs), codes)


class TestStatistics:
    def test_histogram_counts(self):
        codes = np.array([0, 0, 1, 1, 1, 0], dtype=np.int64)
        hist = difference_histogram(codes)
        assert hist == {0: 3, 1: 1, -1: 1}

    def test_histogram_matches_counter(self, rng):
        """The bincount fast path equals symbol-by-symbol counting."""
        from collections import Counter

        codes = rng.integers(0, 128, size=2000)
        _, diffs = difference_encode(codes)
        expected = {int(k): int(v) for k, v in Counter(diffs.tolist()).items()}
        assert difference_histogram(codes) == expected

    def test_histogram_keys_ascending(self, rng):
        codes = rng.integers(0, 128, size=500)
        keys = list(difference_histogram(codes))
        assert keys == sorted(keys)

    def test_histogram_single_sample_empty(self):
        assert difference_histogram(np.array([3], dtype=np.int64)) == {}

    def test_histogram_wide_span_fallback(self):
        """Ranges beyond the bincount limit go through np.unique."""
        codes = np.array([0, 1 << 22, 0, 1 << 22], dtype=np.int64)
        hist = difference_histogram(codes)
        assert hist == {-(1 << 22): 1, (1 << 22): 2}

    def test_pdf_sums_to_one(self, rng):
        codes = rng.integers(0, 16, size=1000)
        support, probs = difference_pdf(codes)
        assert probs.sum() == pytest.approx(1.0)

    def test_pdf_restricted_support(self):
        codes = np.array([0, 5, 0, 5, 0], dtype=np.int64)
        support, probs = difference_pdf(codes, support=np.array([0]))
        assert probs.size == 1
        assert probs[0] == 0.0  # no zero differences in this stream

    def test_constant_stream_entropy_zero(self):
        codes = np.full(100, 7, dtype=np.int64)
        assert empirical_entropy_bits(codes) == pytest.approx(0.0)

    def test_uniform_diffs_entropy(self):
        # Alternating +1/-1 differences: two equiprobable symbols = 1 bit.
        codes = np.array([0, 1] * 100, dtype=np.int64)
        assert empirical_entropy_bits(codes) == pytest.approx(1.0, abs=0.05)

    def test_lower_resolution_has_lower_entropy(self, record_100):
        """The Fig. 4/6 mechanism: coarser quantization → sharper diff
        distribution → lower entropy."""
        from repro.sensing.quantizers import requantize_codes

        e = {
            bits: empirical_entropy_bits(
                requantize_codes(record_100.adu, 11, bits)
            )
            for bits in (4, 6, 8, 10)
        }
        assert e[4] < e[6] < e[8] < e[10]
