"""Tests of the MSB-first bit writer/reader."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.bitstream import BitReader, BitWriter


class TestBitWriter:
    def test_docstring_example(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_uint(7, 5)
        assert w.bit_length == 8
        assert w.getvalue() == b"\xa7"

    def test_empty(self):
        w = BitWriter()
        assert w.bit_length == 0
        assert w.getvalue() == b""

    def test_padding_to_byte(self):
        w = BitWriter()
        w.write_bit(1)
        assert w.getvalue() == b"\x80"
        assert w.bit_length == 1

    def test_cross_byte_value(self):
        w = BitWriter()
        w.write_uint(0xABC, 12)
        assert w.getvalue() == b"\xab\xc0"

    def test_write_code(self):
        w = BitWriter()
        w.write_code([1, 0, 1, 1])
        assert w.getvalue() == b"\xb0"

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(8, 3)

    def test_negative_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bits(-1, 4)

    def test_bad_bit_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bit(2)

    def test_zero_width_write_is_noop(self):
        w = BitWriter()
        w.write_bits(0, 0)
        assert w.bit_length == 0


class TestWriteBitsArray:
    """The bulk path must be indistinguishable from the scalar loop."""

    def _reference(self, values, lengths):
        w = BitWriter()
        for value, n_bits in zip(values, lengths):
            w.write_bits(int(value), int(n_bits))
        return w

    def test_matches_scalar_loop(self):
        rng = np.random.default_rng(0)
        lengths = rng.integers(0, 21, size=200)
        values = np.array(
            [int(rng.integers(0, 1 << n)) if n else 0 for n in lengths]
        )
        w = BitWriter()
        w.write_bits_array(values, lengths)
        ref = self._reference(values, lengths)
        assert w.getvalue() == ref.getvalue()
        assert w.bit_length == ref.bit_length

    def test_merges_with_partial_byte(self):
        """Bulk writes after bit-level writes continue the same stream."""
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits_array([0b11, 0x1F], [2, 5])
        ref = self._reference([0b101, 0b11, 0x1F], [3, 2, 5])
        assert w.getvalue() == ref.getvalue()
        assert w.bit_length == ref.bit_length

    def test_scalar_writes_after_bulk(self):
        w = BitWriter()
        w.write_bits_array([0x2A], [7])
        w.write_bits(1, 1)
        assert w.getvalue() == self._reference([0x2A, 1], [7, 1]).getvalue()

    def test_empty_and_zero_length_fields(self):
        w = BitWriter()
        w.write_bits_array([], [])
        w.write_bits_array([0, 0b11, 0], [0, 2, 0])
        assert w.bit_length == 2
        assert w.getvalue() == b"\xc0"

    def test_wide_fields_take_scalar_fallback(self):
        w = BitWriter()
        w.write_bits_array(np.array([0xABCDEF], dtype=np.uint64), [70])
        assert w.getvalue() == self._reference([0xABCDEF], [70]).getvalue()

    def test_64_bit_field_accepted(self):
        value = (1 << 64) - 1
        w = BitWriter()
        w.write_bits_array(np.array([value], dtype=np.uint64), [64])
        assert w.getvalue() == self._reference([value], [64]).getvalue()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits_array([1, 2], [1])

    def test_float_values_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits_array(np.array([1.5]), [2])

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits_array([1], [-1])

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits_array([-1], [4])

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits_array([8], [3])

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**20 - 1), st.integers(0, 20)),
            min_size=0,
            max_size=40,
        )
    )
    def test_bulk_equals_loop_property(self, fields):
        values = [v % (1 << width) if width else 0 for v, width in fields]
        lengths = [width for _, width in fields]
        w = BitWriter()
        w.write_bits_array(values, lengths)
        ref = self._reference(values, lengths)
        assert w.getvalue() == ref.getvalue()
        assert w.bit_length == ref.bit_length


class TestBitReader:
    def test_reads_back_writer_output(self):
        w = BitWriter()
        w.write_uint(0b1101, 4)
        w.write_uint(0x3FF, 10)
        r = BitReader(w.getvalue(), w.bit_length)
        assert r.read_uint(4) == 0b1101
        assert r.read_uint(10) == 0x3FF
        assert r.bits_remaining == 0

    def test_eof_raises(self):
        r = BitReader(b"\xff", bit_length=3)
        r.read_bits(3)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", bit_length=9)

    def test_default_limit_is_buffer(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining == 16

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20)),
            min_size=1,
            max_size=30,
        )
    )
    def test_roundtrip_property(self, fields):
        """Any sequence of (value, width) fields round-trips bit-exactly."""
        w = BitWriter()
        clipped = [(v % (1 << width), width) for v, width in fields]
        for value, width in clipped:
            w.write_uint(value, width)
        r = BitReader(w.getvalue(), w.bit_length)
        for value, width in clipped:
            assert r.read_uint(width) == value
