"""Tests of zero-run-length tokenization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.runlength import (
    MAX_RUN_EXPONENT,
    ZeroRun,
    detokenize_diffs,
    token_histogram,
    tokenize_diffs,
)


class TestZeroRunToken:
    def test_interning(self):
        assert ZeroRun(4) is ZeroRun(4)

    def test_valid_lengths_are_powers_of_two(self):
        for exp in range(1, MAX_RUN_EXPONENT + 1):
            assert ZeroRun(1 << exp).length == 1 << exp

    def test_invalid_lengths_rejected(self):
        for bad in (0, 1, 3, 6, (1 << MAX_RUN_EXPONENT) * 2):
            with pytest.raises(ValueError):
                ZeroRun(bad)

    def test_repr(self):
        assert repr(ZeroRun(8)) == "ZeroRun(8)"


class TestTokenize:
    def test_no_zeros_passthrough(self):
        diffs = [3, -1, 7, -2]
        assert tokenize_diffs(diffs) == diffs

    def test_single_zero_stays_int(self):
        assert tokenize_diffs([1, 0, 2]) == [1, 0, 2]

    def test_run_of_four(self):
        assert tokenize_diffs([0, 0, 0, 0]) == [ZeroRun(4)]

    def test_greedy_decomposition(self):
        # 7 zeros = 4 + 2 + 1.
        assert tokenize_diffs([0] * 7) == [ZeroRun(4), ZeroRun(2), 0]

    def test_run_longer_than_cap(self):
        cap = 1 << MAX_RUN_EXPONENT
        tokens = tokenize_diffs([0] * (cap + 2))
        assert tokens == [ZeroRun(cap), ZeroRun(2)]

    def test_mixed_stream(self):
        tokens = tokenize_diffs([5, 0, 0, -1, 0, 0, 0, 0, 2])
        assert tokens == [5, ZeroRun(2), -1, ZeroRun(4), 2]

    def test_empty(self):
        assert tokenize_diffs([]) == []

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            tokenize_diffs(np.zeros((2, 2), dtype=np.int64))


class TestRoundtrip:
    def test_detokenize_inverts(self):
        diffs = np.array([1, 0, 0, 0, -2, 0, 3], dtype=np.int64)
        assert np.array_equal(detokenize_diffs(tokenize_diffs(diffs)), diffs)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.one_of(st.just(0), st.integers(-50, 50)),
            min_size=0,
            max_size=600,
        )
    )
    def test_roundtrip_property(self, diffs):
        arr = np.asarray(diffs, dtype=np.int64)
        assert np.array_equal(detokenize_diffs(tokenize_diffs(arr)), arr)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2000))
    def test_pure_run_roundtrip(self, length):
        arr = np.zeros(length, dtype=np.int64)
        assert np.array_equal(detokenize_diffs(tokenize_diffs(arr)), arr)


class TestHistogram:
    def test_counts_tokens(self):
        hist = token_histogram([0, 0, 1, 0, 0, 1])
        assert hist[ZeroRun(2)] == 2
        assert hist[1] == 2

    def test_token_savings(self):
        """The point of the transform: long runs collapse to few tokens."""
        diffs = [0] * 1000
        tokens = tokenize_diffs(diffs)
        assert len(tokens) <= 1000 // (1 << MAX_RUN_EXPONENT) + MAX_RUN_EXPONENT
