"""Differential tests: the vectorized batch coder vs the scalar encoder.

The contract under test is equality, not tolerance — every payload the
table-driven kernel produces must match ``encode_window`` byte for byte
(docs/encoding.md).
"""

import numpy as np
import pytest

from repro.coding.bitstream import BitWriter
from repro.coding.codebook import ESCAPE, train_codebook
from repro.coding.vectorized import encode_code_windows, pack_fields


def _train(bits=7, use_run_length=True, seed=0, length=4000):
    """A small codebook over a random-walk stream (zeros + escapes occur)."""
    rng = np.random.default_rng(seed)
    steps = np.where(
        rng.uniform(size=length) < 0.6,
        0,
        rng.integers(-3, 4, length),
    )
    half = 1 << (bits - 1)
    stream = np.clip(half + np.cumsum(steps), 0, (1 << bits) - 1)
    return train_codebook(
        [stream.astype(np.int64)], bits, use_run_length=use_run_length
    )


def _random_windows(rng, bits, w, k):
    return rng.integers(0, 1 << bits, size=(w, k), dtype=np.int64)


def _assert_matches_scalar(book, windows):
    batched = book.encode_windows(windows)
    for row, (payload, bit_length) in zip(windows, batched):
        ref_payload, ref_bits = book.encode_window(row)
        assert payload == ref_payload
        assert bit_length == ref_bits
        assert np.array_equal(
            book.decode_window(payload, row.size, bit_length), row
        )


class TestTables:
    def test_cached_on_codebook(self):
        book = _train()
        assert book.tables is book.tables

    def test_in_alphabet_entries_match_codec(self):
        book = _train()
        tables = book.tables
        offset = (1 << book.resolution_bits) - 1
        for d, (code, length) in book.codec.codes.items():
            if not isinstance(d, int):
                continue
            assert int(tables.diff_values[d + offset]) == code
            assert int(tables.diff_lengths[d + offset]) == length

    def test_out_of_alphabet_entries_fuse_escape(self):
        book = _train()
        tables = book.tables
        bits = book.resolution_bits
        offset = (1 << bits) - 1
        esc_code, esc_len = book.codec.codes[ESCAPE]
        payload_bits = book.escape_payload_bits
        missing = [
            d
            for d in range(-offset, offset + 1)
            if d not in book.codec.codes
        ]
        assert missing, "training stream should leave alphabet gaps"
        d = missing[0]
        expected = (esc_code << payload_bits) | (d + (1 << bits))
        assert int(tables.diff_values[d + offset]) == expected
        assert int(tables.diff_lengths[d + offset]) == esc_len + payload_bits

    def test_run_tables_zero_without_rle(self):
        book = _train(use_run_length=False)
        assert not book.tables.use_run_length
        assert not book.tables.run_lengths.any()


class TestByteEquality:
    @pytest.mark.parametrize("bits", [3, 7, 8])
    @pytest.mark.parametrize("use_run_length", [True, False])
    def test_random_stacks(self, bits, use_run_length):
        book = _train(bits=bits, use_run_length=use_run_length)
        rng = np.random.default_rng(bits * 10 + use_run_length)
        _assert_matches_scalar(book, _random_windows(rng, bits, 6, 97))

    def test_all_zero_windows(self):
        book = _train()
        windows = np.zeros((4, 300), dtype=np.int64)
        _assert_matches_scalar(book, windows)

    def test_runs_break_at_window_boundaries(self):
        """A zero run ending one window and starting the next must not fuse."""
        book = _train()
        windows = np.zeros((3, 64), dtype=np.int64)
        windows[:, 0] = 9  # non-trivial first sample, then 63 zero diffs
        _assert_matches_scalar(book, windows)

    def test_single_sample_windows(self):
        book = _train()
        windows = np.array([[5], [0], [127]], dtype=np.int64)
        _assert_matches_scalar(book, windows)

    def test_escape_heavy_windows(self):
        """Alternating extremes force the fused-escape LUT entries."""
        book = _train()
        row = np.tile([0, 127], 40).astype(np.int64)
        _assert_matches_scalar(book, np.vstack([row, row[::-1]]))

    def test_matches_real_record_windows(self, record_100):
        from repro.sensing.quantizers import requantize_codes

        codes = requantize_codes(record_100.adu, 11, 7)
        book = _train()
        usable = (codes.size // 512) * 512
        _assert_matches_scalar(book, codes[:usable].reshape(-1, 512)[:4])


class TestValidation:
    def test_float_codes_rejected(self):
        book = _train()
        with pytest.raises(TypeError):
            book.encode_windows(np.zeros((2, 8)))

    def test_one_dimensional_rejected(self):
        book = _train()
        with pytest.raises(ValueError):
            book.encode_windows(np.zeros(8, dtype=np.int64))

    def test_empty_windows_rejected(self):
        book = _train()
        with pytest.raises(ValueError):
            book.encode_windows(np.zeros((2, 0), dtype=np.int64))

    def test_out_of_range_rejected(self):
        book = _train(bits=7)
        with pytest.raises(ValueError):
            book.encode_windows(np.full((1, 4), 128, dtype=np.int64))

    def test_kernel_rejects_bad_shapes(self):
        tables = _train().tables
        with pytest.raises(ValueError):
            encode_code_windows(tables, np.zeros(4, dtype=np.int64))


class TestPackFields:
    def test_matches_bitwriter(self, rng):
        lengths = rng.integers(1, 17, size=30).astype(np.int64)
        values = np.array(
            [int(rng.integers(0, 1 << int(n))) for n in lengths],
            dtype=np.uint64,
        )
        starts = np.array([0, 7, 11], dtype=np.int64)
        payloads, bits = pack_fields(values, lengths, starts)
        bounds = list(starts) + [lengths.size]
        for i, payload in enumerate(payloads):
            writer = BitWriter()
            for j in range(bounds[i], bounds[i + 1]):
                writer.write_bits(int(values[j]), int(lengths[j]))
            assert payload == writer.getvalue()
            assert int(bits[i]) == writer.bit_length
