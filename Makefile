# Developer entry points (see CONTRIBUTING.md).

PYTHON ?= python

.PHONY: install test lint bench bench-full report examples clean-cache

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src --strict

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=full REPRO_CACHE_DIR=.repro_cache \
		$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report --strict

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean-cache:
	rm -rf .repro_cache benchmarks/results
