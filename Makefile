# Developer entry points (see CONTRIBUTING.md).

PYTHON ?= python

.PHONY: install test test-fast test-cov lint lint-fast lint-sarif bench bench-smoke bench-encode-smoke bench-bsbl-smoke bench-backend-smoke bench-full profile-smoke stream-smoke loadtest-smoke report examples clean-cache

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	PYTHONPATH=src $(PYTHON) -m pytest tests/

# Everything except the randomized property suites (hypothesis) — the
# quick local loop; CI always runs the full `test` target.
test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest tests/ -m "not property"

# Full suite under coverage with the fail-under gate from pyproject.toml.
# Gated on pytest-cov being importable so the target degrades gracefully
# in environments without it (the gate still runs in CI).
test-cov:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src $(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing; \
	else \
		echo "pytest-cov not installed; running without coverage"; \
		PYTHONPATH=src $(PYTHON) -m pytest tests/; \
	fi

lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src --strict

# The quick local loop: warm content-hash cache, all CPUs for the
# per-file pass, findings reported only for files changed vs HEAD
# (the whole-program RL1xx analysis still sees every file).
lint-fast:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src --strict --jobs 0 --changed

# The CI artifact: the same strict run, written as SARIF 2.1.0.
lint-sarif:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src --strict \
		--format sarif --output benchmarks/results/LINT.sarif

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# 2-record parallel mini-sweep through the execution engine; emits
# machine-readable throughput numbers (wall-clock, windows/sec, speedup
# over serial) to benchmarks/results/BENCH_sweep.json.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --smoke --workers 2 \
		--output benchmarks/results/BENCH_sweep.json

# Encoder-only microbenchmark: batched encode engine + vectorized
# synthesis kernels vs their scalar reference loops, with byte/bit
# identity checks. Writes benchmarks/results/BENCH_encode.json (also
# produced by bench-smoke as part of the full `repro bench` run).
bench-encode-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --smoke --encode-only \
		--encode-output benchmarks/results/BENCH_encode.json

# Bayesian-family comparison (BSBL vs hybrid) + batched-vs-scalar
# agreement; also produced as part of the full `repro bench` run.
bench-bsbl-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --smoke --bsbl-only \
		--workers 2 --bsbl-output benchmarks/results/BENCH_bsbl.json

# Per-backend microbenchmarks: the solver/encode grids run twice per
# cell — the exact numpy/float64 arm (which feeds the gated aggregates)
# plus the numpy/float32 fast arm, whose deviation metrics land in the
# artifacts' by_backend sections (see docs/backends.md).
bench-backend-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --smoke --workers 2 \
		--backend numpy --precision float32 \
		--output benchmarks/results/BENCH_sweep.json

# Workspace/allocation profile of the hot kernels: every batched engine
# runs twice — fresh allocations vs pooled workspaces — plus a traced
# tracemalloc pass. Writes benchmarks/results/BENCH_profile.json, whose
# gates (zero output deviation, >=5x solver allocation reduction) CI
# asserts; see docs/performance.md.
profile-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli profile --smoke \
		--output benchmarks/results/BENCH_profile.json

# 4-patient online streaming run over a 10% lossy link through the
# multi-session gateway; writes the final telemetry snapshot.
stream-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli stream --patients 4 --duration 10 \
		--workers 2 --output benchmarks/results/STREAM_smoke.json

# Deterministic 200-patient load test against the 2-shard wire-framed
# cluster, cross-checked against a single-process baseline for byte
# identity and throughput; writes benchmarks/results/BENCH_gateway.json
# (rendered by `repro report`, gated in CI).
loadtest-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli loadtest --patients 200 \
		--duration 1.0 --window 128 --measurements 48 --max-iter 300 \
		--chunk 181 --seed 7 --shards 2 --transport wire --workers 2 \
		--compare-single --output benchmarks/results/BENCH_gateway.json

bench-full:
	REPRO_BENCH_SCALE=full REPRO_CACHE_DIR=.repro_cache \
		$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report --strict

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean-cache:
	rm -rf .repro_cache benchmarks/results
