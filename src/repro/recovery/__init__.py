"""Sparse-recovery solvers: Eq. 1 (hybrid), BPDN, BSBL, and baselines."""

from repro.recovery.admm import solve_bpdn_admm
from repro.recovery.batched import (
    recover_windows,
    recover_windows_loop,
    solve_batch,
    solve_bpdn_admm_batch,
    solve_bsbl_batch,
    solve_bsbl_dequant_batch,
    solve_fista_batch,
    stack_measurements,
)
from repro.recovery.bpdn import ball_block, solve_bpdn
from repro.recovery.bsbl import (
    BsblSettings,
    lowres_cell_stats,
    measurement_noise_var,
    solve_bsbl,
    solve_bsbl_dequant,
)
from repro.recovery.methods import (
    METHODS,
    MethodSpec,
    method_names,
    resolve_method,
)
from repro.recovery.fista import lambda_max, solve_fista
from repro.recovery.opcache import (
    PROBLEM_CACHE,
    ProblemCache,
    ProblemKey,
    RecoveryEngineSettings,
    problem_for_config,
)
from repro.recovery.greedy import solve_cosamp, solve_iht, solve_omp
from repro.recovery.hybrid import box_block, solve_hybrid
from repro.recovery.pdhg import ConstraintBlock, PdhgSettings, solve_l1_constrained
from repro.recovery.problem import CsProblem
from repro.recovery.prox import (
    project_box,
    project_l2_ball,
    prox_l1,
    soft_threshold,
)
from repro.recovery.phase_transition import (
    TransitionPoint,
    empirical_transition,
    success_probability,
)
from repro.recovery.result import RecoveryResult
from repro.recovery.structured import (
    solve_model_iht,
    solve_reweighted_bpdn,
    solve_reweighted_hybrid,
    tree_project,
    wavelet_tree_parents,
)

__all__ = [
    "BsblSettings",
    "ConstraintBlock",
    "CsProblem",
    "METHODS",
    "MethodSpec",
    "PROBLEM_CACHE",
    "PdhgSettings",
    "ProblemCache",
    "ProblemKey",
    "RecoveryEngineSettings",
    "RecoveryResult",
    "TransitionPoint",
    "ball_block",
    "lowres_cell_stats",
    "measurement_noise_var",
    "method_names",
    "resolve_method",
    "empirical_transition",
    "success_probability",
    "box_block",
    "lambda_max",
    "problem_for_config",
    "project_box",
    "recover_windows",
    "recover_windows_loop",
    "project_l2_ball",
    "prox_l1",
    "soft_threshold",
    "solve_batch",
    "solve_bpdn",
    "solve_bpdn_admm",
    "solve_bpdn_admm_batch",
    "solve_bsbl",
    "solve_bsbl_batch",
    "solve_bsbl_dequant",
    "solve_bsbl_dequant_batch",
    "solve_cosamp",
    "solve_fista",
    "solve_fista_batch",
    "solve_hybrid",
    "solve_iht",
    "solve_l1_constrained",
    "solve_model_iht",
    "solve_omp",
    "solve_reweighted_bpdn",
    "solve_reweighted_hybrid",
    "stack_measurements",
    "tree_project",
    "wavelet_tree_parents",
]
