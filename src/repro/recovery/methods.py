"""Named recovery-method registry shared by runtime, streaming and CLI.

Historically every layer that accepted a ``method`` string (window tasks,
record jobs, ingest sessions, CLI flags) kept its own hard-coded
``("hybrid", "normal")`` tuple, and an unknown name surfaced as a raw
``KeyError``/``ValueError`` with no hint of what *is* registered.  This
module is the single source of truth: a :class:`MethodSpec` per method,
:func:`resolve_method` with a helpful error, and the derived facts the
wiring layers need (does the method consume the low-res parallel path,
hence need a codebook and the hybrid front-end?).

The module is intentionally dependency-free (no numpy) so the CLI can
import it to build ``--method`` choices without paying for the scientific
stack at parser-construction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["MethodSpec", "METHODS", "method_names", "resolve_method"]


@dataclass(frozen=True)
class MethodSpec:
    """Everything the wiring layers need to know about one method name.

    Attributes
    ----------
    name:
        The registry key, as it appears on CLI flags and task records.
    uses_lowres:
        Whether the method consumes the low-res parallel path — this is
        what decides the front-end (hybrid vs normal CS), whether a
        codebook must be resolved, and whether packets carry a payload.
    family:
        ``"convex"`` (the paper's Eq.-1 / BPDN solvers) or ``"bayesian"``
        (the BSBL family); reporting and benches group by this.
    solver:
        Receiver dispatch key (see
        :meth:`repro.core.receiver.HybridReceiver.reconstruct`).
    description:
        One-line human-readable summary (CLI help, reports).
    """

    name: str
    uses_lowres: bool
    family: str
    solver: str
    description: str


METHODS: Dict[str, MethodSpec] = {
    spec.name: spec
    for spec in (
        MethodSpec(
            name="hybrid",
            uses_lowres=True,
            family="convex",
            solver="eq1",
            description="Paper Eq. 1: BPDN with the low-res box constraint",
        ),
        MethodSpec(
            name="normal",
            uses_lowres=False,
            family="convex",
            solver="bpdn",
            description="Plain CS baseline: BPDN from measurements only",
        ),
        MethodSpec(
            name="bsbl",
            uses_lowres=False,
            family="bayesian",
            solver="bsbl",
            description="Block-sparse Bayesian learning from measurements only",
        ),
        MethodSpec(
            name="bsbl-dequant",
            uses_lowres=True,
            family="bayesian",
            solver="bsbl-dequant",
            description=(
                "BSBL with Bayesian de-quantization: the low-res cells enter "
                "as Gaussian pseudo-observations instead of a hard box"
            ),
        ),
    )
}


def method_names() -> Tuple[str, ...]:
    """Registered method names, sorted (stable CLI choices ordering)."""
    return tuple(sorted(METHODS))


def resolve_method(name: str) -> MethodSpec:
    """The :class:`MethodSpec` for ``name``.

    Raises
    ------
    ValueError
        If ``name`` is not registered; the message lists every registered
        method so a typo on a CLI flag or task record is self-explaining.
    """
    try:
        return METHODS[name]
    except KeyError:
        known = ", ".join(method_names())
        raise ValueError(
            f"unknown recovery method {name!r}; registered methods: {known}"
        ) from None
