"""Greedy sparse-recovery baselines: OMP, CoSaMP and IHT.

The paper's introduction situates hybrid CS against "model-based and
similar structural sparse recovery techniques" that squeeze more out of a
fixed measurement budget.  These greedy baselines are the standard
reference points for that comparison and are exercised by the solver
ablation benchmark: they need an explicit sparsity level ``k`` and degrade
faster than convex recovery on *compressible* (not exactly sparse) ECG,
which is precisely the paper's motivation for convex recovery plus side
information.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.recovery.problem import CsProblem
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis

__all__ = ["solve_omp", "solve_cosamp", "solve_iht"]


def _check_inputs(prob: CsProblem, y: np.ndarray, k: int) -> np.ndarray:
    y = np.asarray(y, dtype=float)
    if y.shape != (prob.m,):
        raise ValueError(f"expected {prob.m} measurements")
    if not 1 <= k <= prob.m:
        raise ValueError(f"sparsity k must be in [1, m={prob.m}]")
    return y


def _ls_on_support(a: np.ndarray, y: np.ndarray, support: np.ndarray) -> np.ndarray:
    coef, *_ = np.linalg.lstsq(a[:, support], y, rcond=None)
    return coef


def solve_omp(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    k: int,
    *,
    tol: float = 1e-8,
    problem: Optional[CsProblem] = None,
) -> RecoveryResult:
    """Orthogonal matching pursuit with target sparsity ``k``.

    Greedily adds the column most correlated with the residual and
    re-solves least squares on the support; stops early when the residual
    norm falls below ``tol * ||y||``.
    """
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = _check_inputs(prob, y, k)
    a = prob.a
    residual = y.copy()
    support: list = []
    y_norm = max(float(np.linalg.norm(y)), 1e-30)
    iterations = 0
    for iterations in range(1, k + 1):
        scores = np.abs(a.T @ residual)
        scores[support] = -np.inf
        support.append(int(np.argmax(scores)))
        idx = np.asarray(support)
        coef = _ls_on_support(a, y, idx)
        residual = y - a[:, idx] @ coef
        if np.linalg.norm(residual) <= tol * y_norm:
            break
    alpha = np.zeros(prob.n)
    alpha[np.asarray(support)] = coef
    return RecoveryResult(
        alpha=alpha,
        x=prob.basis.synthesize(alpha),
        iterations=iterations,
        converged=True,
        residual_norm=float(np.linalg.norm(residual)),
        objective=float(np.sum(np.abs(alpha))),
        solver="omp",
        info={"k": float(k)},
    )


def solve_cosamp(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-7,
    problem: Optional[CsProblem] = None,
) -> RecoveryResult:
    """Compressive sampling matching pursuit (Needell & Tropp 2009)."""
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = _check_inputs(prob, y, k)
    a = prob.a
    alpha = np.zeros(prob.n)
    residual = y.copy()
    y_norm = max(float(np.linalg.norm(y)), 1e-30)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        proxy = np.abs(a.T @ residual)
        omega = np.argsort(proxy)[::-1][: 2 * k]
        candidate = np.union1d(omega, np.nonzero(alpha)[0]).astype(int, copy=False)
        coef = _ls_on_support(a, y, candidate)
        # Prune to the k largest.
        keep = np.argsort(np.abs(coef))[::-1][:k]
        alpha_new = np.zeros(prob.n)
        alpha_new[candidate[keep]] = coef[keep]
        residual = y - a @ alpha_new
        change = float(np.linalg.norm(alpha_new - alpha))
        alpha = alpha_new
        if np.linalg.norm(residual) <= tol * y_norm or change <= tol:
            converged = True
            break
    return RecoveryResult(
        alpha=alpha,
        x=prob.basis.synthesize(alpha),
        iterations=iterations,
        converged=converged,
        residual_norm=float(np.linalg.norm(residual)),
        objective=float(np.sum(np.abs(alpha))),
        solver="cosamp",
        info={"k": float(k)},
    )


def solve_iht(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    k: int,
    *,
    max_iter: int = 300,
    step: Optional[float] = None,
    tol: float = 1e-7,
    problem: Optional[CsProblem] = None,
) -> RecoveryResult:
    """Iterative hard thresholding with fixed sparsity ``k``.

    Uses step ``1/||A||^2`` by default, which guarantees monotone descent
    of the data term for our normalized ensembles.
    """
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = _check_inputs(prob, y, k)
    a = prob.a
    mu = step if step is not None else 1.0 / prob.opnorm_sq()
    if mu <= 0:
        raise ValueError("step must be positive")
    alpha = np.zeros(prob.n)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        grad = a.T @ (a @ alpha - y)
        updated = alpha - mu * grad
        keep = np.argsort(np.abs(updated))[::-1][:k]
        alpha_new = np.zeros(prob.n)
        alpha_new[keep] = updated[keep]
        change = float(np.linalg.norm(alpha_new - alpha))
        scale = max(float(np.linalg.norm(alpha_new)), 1.0)
        alpha = alpha_new
        if change <= tol * scale:
            converged = True
            break
    residual = float(np.linalg.norm(a @ alpha - y))
    return RecoveryResult(
        alpha=alpha,
        x=prob.basis.synthesize(alpha),
        iterations=iterations,
        converged=converged,
        residual_norm=residual,
        objective=float(np.sum(np.abs(alpha))),
        solver="iht",
        info={"k": float(k), "step": float(mu)},
    )
