"""ADMM solver for basis-pursuit denoising — an independent cross-check.

Solves the same problem as :func:`repro.recovery.bpdn.solve_bpdn`::

    min ||w||_1   s.t.   ||z - y|| <= sigma,  w = alpha,  z = A alpha

via consensus ADMM with a cached Cholesky factorization of
``(I + A^T A)``.  Having two structurally different solvers for the same
convex program lets the test suite assert they agree, which is the
strongest available evidence of solver correctness short of a KKT check
(which the tests also perform on small instances).

When a pre-built :class:`CsProblem` is supplied, the factorization comes
from :meth:`CsProblem.admm_factor` — computed once per operator and
shared by every window (and by the batched engine in
:mod:`repro.recovery.batched`), which removes the ``O(n^3)`` per-window
setup cost that used to dominate repeated solves.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import cho_solve

from repro.recovery.problem import CsProblem
from repro.recovery.prox import project_l2_ball, soft_threshold
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis

__all__ = ["solve_bpdn_admm"]


def solve_bpdn_admm(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    sigma: float,
    *,
    rho: float = 1.0,
    max_iter: int = 3000,
    tol: float = 1e-5,
    problem: Optional[CsProblem] = None,
    alpha0: Optional[np.ndarray] = None,
) -> RecoveryResult:
    """BPDN via ADMM.

    Parameters
    ----------
    phi, basis, y, sigma:
        As in :func:`repro.recovery.bpdn.solve_bpdn`.
    rho:
        Augmented-Lagrangian penalty (the method converges for any
        positive value; ``1.0`` is a fine default at our scaling).
    max_iter, tol:
        Iteration cap and primal/dual residual tolerance.
    problem:
        Pre-built :class:`CsProblem`; reuses its cached Cholesky
        factorization of ``I + A^T A`` across windows.
    alpha0:
        Optional warm start for the L1 split ``w`` (defaults to zero).
    """
    if sigma < 0:
        raise ValueError("sigma cannot be negative")
    if rho <= 0:
        raise ValueError("rho must be positive")
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    if y.shape != (prob.m,):
        raise ValueError(f"expected {prob.m} measurements")

    a = prob.a
    n = prob.n
    chol = prob.admm_factor()

    if alpha0 is None:
        alpha = np.zeros(n)
    else:
        alpha = np.asarray(alpha0, dtype=float).copy()
        if alpha.shape != (n,):
            raise ValueError(f"alpha0 must be a vector of length {n}")
    w = alpha.copy()  # split of alpha carrying the L1 term
    z = y.copy()  # split of A alpha carrying the ball constraint
    u_w = np.zeros(n)
    u_z = np.zeros(prob.m)

    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        # alpha-step: least squares over both consensus constraints.
        rhs = (w - u_w) + a.T @ (z - u_z)
        alpha = cho_solve(chol, rhs)
        a_alpha = a @ alpha
        # w-step: prox of ||.||_1 / rho.
        w_new = soft_threshold(alpha + u_w, 1.0 / rho)
        # z-step: projection onto the sigma-ball around y.
        z_new = project_l2_ball(a_alpha + u_z, y, sigma)
        # Dual updates.
        u_w += alpha - w_new
        u_z += a_alpha - z_new

        primal = np.sqrt(
            float(np.linalg.norm(alpha - w_new)) ** 2
            + float(np.linalg.norm(a_alpha - z_new)) ** 2
        )
        dual = rho * np.sqrt(
            float(np.linalg.norm(w_new - w)) ** 2
            + float(np.linalg.norm(a.T @ (z_new - z))) ** 2
        )
        w, z = w_new, z_new
        scale = max(float(np.linalg.norm(w)), 1.0)
        if primal <= tol * scale and dual <= tol * scale:
            converged = True
            break

    residual = float(np.linalg.norm(prob.forward(w) - y))
    return RecoveryResult(
        alpha=w,
        x=prob.basis.synthesize(w),
        iterations=iterations,
        converged=converged,
        residual_norm=residual,
        objective=float(np.sum(np.abs(w))),
        solver="admm-bpdn",
        info={"rho": float(rho)},
    )
