"""Shared problem setup for CS recovery: the composed operator A = Φ Ψ.

Every solver works on ``y = A alpha + noise`` with ``A = Φ Ψ`` (sensing
matrix times synthesis basis).  For the window sizes used here (n ≈ 512)
the dense composition is small, and caching it per (Φ, basis) pair makes
repeated window solves BLAS-bound instead of transform-bound.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.sensing.matrices import operator_norm
from repro.wavelets.operators import SynthesisBasis

__all__ = ["CsProblem"]


class CsProblem:
    """The composed measurement operator for one (Φ, Ψ) configuration.

    Parameters
    ----------
    phi:
        Dense ``m x n`` sensing matrix.
    basis:
        Orthonormal synthesis basis Ψ on ``R^n``.

    Notes
    -----
    Since Ψ is orthonormal, ``||A|| = ||Φ||`` and ``A^T = Ψ^T Φ^T``; the
    dense ``A`` is materialized once and reused across windows.
    """

    def __init__(self, phi: np.ndarray, basis: SynthesisBasis) -> None:
        phi = np.asarray(phi, dtype=float)
        if phi.ndim != 2:
            raise ValueError("phi must be a 2-D matrix")
        if phi.shape[1] != basis.n:
            raise ValueError(
                f"phi has {phi.shape[1]} columns but the basis length is {basis.n}"
            )
        self.phi = phi
        self.basis = basis
        self._a: Optional[np.ndarray] = None
        self._psi: Optional[np.ndarray] = None
        self._opnorm_sq: Optional[float] = None

    @property
    def m(self) -> int:
        """Number of measurements."""
        return self.phi.shape[0]

    @property
    def n(self) -> int:
        """Signal / coefficient dimension."""
        return self.phi.shape[1]

    @property
    def psi(self) -> np.ndarray:
        """The dense synthesis matrix Ψ (built lazily, cached)."""
        if self._psi is None:
            self._psi = self.basis.as_matrix()
        return self._psi

    @property
    def a(self) -> np.ndarray:
        """The dense composed operator ``A = Φ Ψ`` (built lazily)."""
        if self._a is None:
            self._a = self.phi @ self.psi
        return self._a

    def opnorm_sq(self) -> float:
        """Upper bound on ``||A||^2`` (= ``||Φ||^2`` by orthonormality)."""
        if self._opnorm_sq is None:
            self._opnorm_sq = operator_norm(self.phi) ** 2 * 1.01
        return self._opnorm_sq

    def forward(self, alpha: np.ndarray) -> np.ndarray:
        """``A alpha``."""
        return self.a @ alpha

    def adjoint(self, z: np.ndarray) -> np.ndarray:
        """``A^T z``."""
        return self.a.T @ z

    def measure_signal(self, x: np.ndarray) -> np.ndarray:
        """Direct measurement of a signal window: ``Φ x``."""
        return self.phi @ np.asarray(x, dtype=float)

    def least_squares_init(self, y: np.ndarray) -> np.ndarray:
        """Cheap warm start: ``A^T y`` (matched filter in coefficient space)."""
        return self.adjoint(np.asarray(y, dtype=float))
