"""Shared problem setup for CS recovery: the composed operator A = Φ Ψ.

Every solver works on ``y = A alpha + noise`` with ``A = Φ Ψ`` (sensing
matrix times synthesis basis).  For the window sizes used here (n ≈ 512)
the dense composition is small, and caching it per (Φ, basis) pair makes
repeated window solves BLAS-bound instead of transform-bound.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.devtools.contracts import check_finite, check_shape
from repro.sensing.matrices import operator_norm
from repro.wavelets.operators import SynthesisBasis

__all__ = ["CsProblem"]


class CsProblem:
    """The composed measurement operator for one (Φ, Ψ) configuration.

    Parameters
    ----------
    phi:
        Dense ``m x n`` sensing matrix.
    basis:
        Orthonormal synthesis basis Ψ on ``R^n``.

    Notes
    -----
    Since Ψ is orthonormal, ``||A|| = ||Φ||`` and ``A^T = Ψ^T Φ^T``; the
    dense ``A`` is materialized once and reused across windows.
    """

    def __init__(self, phi: np.ndarray, basis: SynthesisBasis) -> None:
        phi = np.asarray(phi, dtype=float)
        if phi.ndim != 2:
            raise ValueError("phi must be a 2-D matrix")
        phi = check_finite(phi, name="phi")
        if phi.shape[1] != basis.n:
            raise ValueError(
                f"phi has {phi.shape[1]} columns but the basis length is {basis.n}"
            )
        self.phi = phi
        self.basis = basis
        self._a: Optional[np.ndarray] = None
        self._psi: Optional[np.ndarray] = None
        self._opnorm_sq: Optional[float] = None

    @property
    def m(self) -> int:
        """Number of measurements."""
        return self.phi.shape[0]

    @property
    def n(self) -> int:
        """Signal / coefficient dimension."""
        return self.phi.shape[1]

    @property
    def psi(self) -> np.ndarray:
        """The dense synthesis matrix Ψ, shape ``(n, n)`` (built lazily)."""
        if self._psi is None:
            self._psi = self.basis.as_matrix()
        return self._psi

    @property
    def a(self) -> np.ndarray:
        """The dense composed operator ``A = Φ Ψ``, shape ``(m, n)`` (lazy)."""
        if self._a is None:
            self._a = self.phi @ self.psi
        return self._a

    def opnorm_sq(self) -> float:
        """Upper bound on ``||A||^2`` (= ``||Φ||^2`` by orthonormality)."""
        if self._opnorm_sq is None:
            self._opnorm_sq = operator_norm(self.phi) ** 2 * 1.01
        return self._opnorm_sq

    def forward(self, alpha: np.ndarray) -> np.ndarray:
        """``A alpha``: coefficients of shape ``(n,)`` to measurements ``(m,)``."""
        return self.a @ check_shape(alpha, (self.n,), name="alpha")

    def adjoint(self, z: np.ndarray) -> np.ndarray:
        """``A^T z``: measurements of shape ``(m,)`` to coefficients ``(n,)``."""
        return self.a.T @ check_shape(z, (self.m,), name="z")

    def measure_signal(self, x: np.ndarray) -> np.ndarray:
        """Direct measurement of a signal window: ``Φ x``, shape ``(m,)``."""
        return self.phi @ check_shape(
            np.asarray(x, dtype=float), (self.n,), name="x"
        )

    def least_squares_init(self, y: np.ndarray) -> np.ndarray:
        """Cheap warm start ``A^T y``, shape ``(n,)`` (matched filter)."""
        return self.adjoint(
            check_finite(np.asarray(y, dtype=float), name="y")
        )
