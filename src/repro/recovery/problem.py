"""Shared problem setup for CS recovery: the composed operator A = Φ Ψ.

Every solver works on ``y = A alpha + noise`` with ``A = Φ Ψ`` (sensing
matrix times synthesis basis).  For the window sizes used here (n ≈ 512)
the dense composition is small, and caching it per (Φ, basis) pair makes
repeated window solves BLAS-bound instead of transform-bound.

Beyond the composed matrix itself, a :class:`CsProblem` memoizes every
piece of per-operator precomputation the solvers need — the Gram matrix,
the squared operator norm, the ADMM Cholesky factor of ``I + A^T A`` and
the least-squares factor of ``A A^T`` — so a problem shared across
thousands of windows (see :mod:`repro.recovery.opcache`) pays each
factorization exactly once per process instead of once per window.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.devtools.contracts import check_finite, check_shape
from repro.sensing.matrices import operator_norm
from repro.wavelets.operators import SynthesisBasis

__all__ = ["CsProblem"]


class CsProblem:
    """The composed measurement operator for one (Φ, Ψ) configuration.

    Parameters
    ----------
    phi:
        Dense ``m x n`` sensing matrix.
    basis:
        Orthonormal synthesis basis Ψ on ``R^n``.

    Notes
    -----
    Since Ψ is orthonormal, ``||A|| = ||Φ||`` and ``A^T = Ψ^T Φ^T``; the
    dense ``A`` is materialized once and reused across windows.
    """

    def __init__(self, phi: np.ndarray, basis: SynthesisBasis) -> None:
        phi = np.asarray(phi, dtype=float)
        if phi.ndim != 2:
            raise ValueError("phi must be a 2-D matrix")
        phi = check_finite(phi, name="phi")
        if phi.shape[1] != basis.n:
            raise ValueError(
                f"phi has {phi.shape[1]} columns but the basis length is {basis.n}"
            )
        self.phi = phi
        self.basis = basis
        self._a: Optional[np.ndarray] = None
        self._psi: Optional[np.ndarray] = None
        self._opnorm_sq: Optional[float] = None
        self._gram: Optional[np.ndarray] = None
        self._admm_factor: Optional[Tuple[np.ndarray, bool]] = None
        self._lstsq_factor: Optional[Tuple[np.ndarray, bool]] = None

    @property
    def m(self) -> int:
        """Number of measurements."""
        return self.phi.shape[0]

    @property
    def n(self) -> int:
        """Signal / coefficient dimension."""
        return self.phi.shape[1]

    @property
    def psi(self) -> np.ndarray:
        """The dense synthesis matrix Ψ, shape ``(n, n)`` (built lazily)."""
        if self._psi is None:
            self._psi = self.basis.as_matrix()
        return self._psi

    @property
    def a(self) -> np.ndarray:
        """The dense composed operator ``A = Φ Ψ``, shape ``(m, n)`` (lazy)."""
        if self._a is None:
            self._a = self.phi @ self.psi
        return self._a

    def opnorm_sq(self) -> float:
        """Upper bound on ``||A||^2`` (= ``||Φ||^2`` by orthonormality)."""
        if self._opnorm_sq is None:
            self._opnorm_sq = operator_norm(self.phi) ** 2 * 1.01
        return self._opnorm_sq

    def forward(self, alpha: np.ndarray) -> np.ndarray:
        """``A alpha``: coefficients of shape ``(n,)`` to measurements ``(m,)``."""
        return self.a @ check_shape(alpha, (self.n,), name="alpha")

    def adjoint(self, z: np.ndarray) -> np.ndarray:
        """``A^T z``: measurements of shape ``(m,)`` to coefficients ``(n,)``."""
        return self.a.T @ check_shape(z, (self.m,), name="z")

    def measure_signal(self, x: np.ndarray) -> np.ndarray:
        """Direct measurement of a signal window: ``Φ x``, shape ``(m,)``."""
        return self.phi @ check_shape(
            np.asarray(x, dtype=float), (self.n,), name="x"
        )

    def matched_filter(self, y: np.ndarray) -> np.ndarray:
        """The matched-filter estimate ``A^T y``, shape ``(n,)``."""
        return self.adjoint(
            check_finite(np.asarray(y, dtype=float), name="y")
        )

    def gram(self) -> np.ndarray:
        """The Gram matrix ``A^T A``, shape ``(n, n)`` (built lazily)."""
        if self._gram is None:
            a = self.a
            self._gram = a.T @ a
        return self._gram

    def admm_factor(self) -> Tuple[np.ndarray, bool]:
        """Cached Cholesky factorization of ``I + A^T A`` (for ADMM).

        Returned in :func:`scipy.linalg.cho_factor` form, ready for
        :func:`scipy.linalg.cho_solve`; computed once per problem, which
        turns the ADMM per-window setup (an ``O(n^3)`` factorization at
        ``n = 512``) into a one-time cost per operator.
        """
        if self._admm_factor is None:
            from scipy.linalg import cho_factor

            self._admm_factor = cho_factor(np.eye(self.n) + self.gram())
        return self._admm_factor

    def lstsq_factor(self) -> Tuple[np.ndarray, bool]:
        """Cached Cholesky factorization of ``A A^T`` (for least squares).

        ``A`` has full row rank for every ensemble used here (m < n random
        rows), so ``A A^T`` is positive definite and the minimum-norm
        least-squares solution is ``A^T (A A^T)^{-1} y``.
        """
        if self._lstsq_factor is None:
            from scipy.linalg import cho_factor

            a = self.a
            self._lstsq_factor = cho_factor(a @ a.T)
        return self._lstsq_factor

    def least_squares_init(self, y: np.ndarray) -> np.ndarray:
        """Minimum-norm least-squares warm start, shape ``(n,)``.

        Solves ``min_alpha ||alpha||_2 s.t. A alpha = y`` as
        ``A^T (A A^T)^{-1} y`` through the cached Cholesky factor of
        ``A A^T`` — the factorization is computed once per problem and
        every subsequent call is two triangular solves plus a matvec,
        instead of a fresh ``lstsq`` decomposition per window.
        """
        from scipy.linalg import cho_solve

        y = check_finite(np.asarray(y, dtype=float), name="y")
        y = check_shape(y, (self.m,), name="y")
        return self.a.T @ cho_solve(self.lstsq_factor(), y)
