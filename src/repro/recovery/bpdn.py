"""Basis-pursuit denoising: the *normal CS* recovery baseline.

Solves::

    min_alpha ||alpha||_1   subject to   ||A alpha - y||_2 <= sigma

— the paper's Eq. 1 *without* the low-resolution box constraint, i.e. what
the paper calls "normal CS" / "CS" in Figs. 7-8.  Implemented on the PDHG
engine with a single L2-ball constraint block.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.recovery.pdhg import ConstraintBlock, PdhgSettings, solve_l1_constrained
from repro.recovery.problem import CsProblem
from repro.recovery.prox import project_l2_ball
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis

__all__ = ["ball_block", "solve_bpdn"]


def ball_block(problem: CsProblem, y: np.ndarray, sigma: float) -> ConstraintBlock:
    """The measurement-fidelity block ``||A alpha - y|| <= sigma``."""
    y = np.asarray(y, dtype=float)
    if y.ndim != 1 or y.size != problem.m:
        raise ValueError(f"expected {problem.m} measurements")
    if sigma < 0:
        raise ValueError("sigma cannot be negative")

    def violation(z: np.ndarray) -> float:
        return max(0.0, float(np.linalg.norm(z - y)) - sigma)

    return ConstraintBlock(
        forward=problem.forward,
        adjoint=problem.adjoint,
        project=lambda z: project_l2_ball(z, y, sigma),
        opnorm_sq=problem.opnorm_sq(),
        violation=violation,
        out_dim=problem.m,
    )


def solve_bpdn(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    sigma: float,
    *,
    settings: PdhgSettings = PdhgSettings(),
    problem: Optional[CsProblem] = None,
    alpha0: Optional[np.ndarray] = None,
) -> RecoveryResult:
    """Recover a window from CS measurements alone (normal CS).

    Parameters
    ----------
    phi:
        ``m x n`` sensing matrix (ignored if ``problem`` is given).
    basis:
        Sparsifying synthesis basis Ψ.
    y:
        Measurement vector ``Φ x + noise``.
    sigma:
        Fidelity radius; use (an upper bound on) the measurement-noise
        2-norm.  ``sigma = 0`` gives equality-constrained basis pursuit.
    settings:
        PDHG iteration controls.
    problem:
        Pre-built :class:`CsProblem` to reuse the cached composed operator
        across windows.
    alpha0:
        Optional warm start (e.g. the previous window's solution in a
        streaming session); defaults to zero.

    Returns
    -------
    RecoveryResult
        With ``x`` in signal units and ``residual_norm = ||A alpha - y||``.
    """
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    result = solve_l1_constrained(
        prob.n,
        [ball_block(prob, y, sigma)],
        settings=settings,
        synthesize=prob.basis.synthesize,
        alpha0=alpha0,
        solver_name="pdhg-bpdn",
    )
    true_residual = float(np.linalg.norm(prob.forward(result.alpha) - y))
    return dataclasses.replace(result, residual_norm=true_residual)
