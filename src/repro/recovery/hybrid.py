"""Hybrid CS recovery — the paper's Eq. 1, its central contribution.

Solves::

    min_alpha ||alpha||_1   subject to   ||A alpha - y||_2 <= sigma
                                          lower <= Ψ alpha <= upper

where ``lower = x_dot`` (the dequantized low-resolution samples) and
``upper = x_dot + d`` with ``d`` the low-resolution step — "a strong bound
... an upper and lower bound for each sample" (paper §II).  The PDHG engine
takes the L2 ball in measurement space and the box in *signal* space as two
constraint blocks; since Ψ is orthonormal its block contributes exactly 1
to the squared operator norm.

The paper solved this with the SDPT3 conic toolbox; any convergent convex
solver reaches the same optimum (DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.recovery.bpdn import ball_block
from repro.recovery.pdhg import ConstraintBlock, PdhgSettings, solve_l1_constrained
from repro.recovery.problem import CsProblem
from repro.recovery.prox import project_box
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis

__all__ = ["box_block", "solve_hybrid"]


def box_block(
    basis: SynthesisBasis,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    psi: Optional[np.ndarray] = None,
) -> ConstraintBlock:
    """The low-resolution bound block ``lower <= Ψ alpha <= upper``.

    When the dense synthesis matrix ``psi`` is supplied (e.g. from a cached
    :class:`CsProblem`), the per-iteration transform becomes a BLAS matvec,
    which is considerably faster than the pure-Python DWT at window sizes
    of a few hundred samples.
    """
    lo = np.asarray(lower, dtype=float)
    hi = np.asarray(upper, dtype=float)
    if lo.shape != (basis.n,) or hi.shape != (basis.n,):
        raise ValueError(f"bounds must be vectors of length {basis.n}")
    if np.any(lo > hi):
        raise ValueError("empty box: a lower bound exceeds its upper bound")

    if psi is not None:
        forward = lambda alpha: psi @ alpha  # noqa: E731
        adjoint = lambda z: psi.T @ z  # noqa: E731
    else:
        forward = basis.synthesize
        adjoint = basis.analyze

    def violation(z: np.ndarray) -> float:
        return float(np.linalg.norm(z - np.clip(z, lo, hi)))

    return ConstraintBlock(
        forward=forward,
        adjoint=adjoint,
        project=lambda z: project_box(z, lo, hi),
        opnorm_sq=1.0,  # Ψ is orthonormal
        violation=violation,
        out_dim=basis.n,
    )


def solve_hybrid(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    sigma: float,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    settings: PdhgSettings = PdhgSettings(),
    problem: Optional[CsProblem] = None,
    alpha0: Optional[np.ndarray] = None,
) -> RecoveryResult:
    """Recover a window using CS measurements *and* low-resolution bounds.

    Parameters
    ----------
    phi, basis, y, sigma:
        As in :func:`repro.recovery.bpdn.solve_bpdn`.
    lower, upper:
        Per-sample signal bounds from the low-resolution channel, in the
        same units as the signal the measurements were taken from
        (``x_dot`` and ``x_dot + d`` in the paper's notation).
    settings:
        PDHG iteration controls.
    problem:
        Pre-built :class:`CsProblem` for operator reuse across windows.
    alpha0:
        Optional explicit warm start (e.g. the previous window's solution
        in a streaming session).  Defaults to the box-projected midpoint,
        the historical cold-start choice.

    Returns
    -------
    RecoveryResult
        ``info["violation_1"]`` reports the final box infeasibility
        (0 when the bounds are met exactly).
    """
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    if alpha0 is None:
        # Warm start at the box-projected midpoint: a feasible-ish point
        # that is already consistent with the low-resolution channel.
        mid = (
            np.asarray(lower, dtype=float) + np.asarray(upper, dtype=float)
        ) / 2.0
        alpha0 = prob.basis.analyze(mid)
    result = solve_l1_constrained(
        prob.n,
        [
            ball_block(prob, y, sigma),
            box_block(prob.basis, lower, upper, psi=prob.psi),
        ],
        settings=settings,
        synthesize=prob.basis.synthesize,
        alpha0=alpha0,
        solver_name="pdhg-hybrid",
    )
    true_residual = float(np.linalg.norm(prob.forward(result.alpha) - y))
    return dataclasses.replace(result, residual_norm=true_residual)
