"""Chambolle-Pock primal-dual hybrid gradient (PDHG) engine.

Solves problems of the form::

    min_alpha  g(alpha) + sum_i f_i(K_i alpha)

with ``g`` prox-friendly (here: the L1 norm) and each ``f_i`` the indicator
of a simple convex set (here: an L2 ball in measurement space and/or a box
in signal space).  This is exactly the structure of the paper's Eq. 1 —
the SDPT3 conic solve is replaced by this first-order method, which finds
the same optimum of the same convex problem (DESIGN.md §2).

The iteration (Chambolle & Pock 2011, with over-relaxation ``theta = 1``)::

    u_i <- prox_{sigma f_i*}(u_i + sigma K_i alpha_bar)     (dual ascent)
    alpha+ <- prox_{tau g}(alpha - tau sum_i K_i^T u_i)     (primal descent)
    alpha_bar <- 2 alpha+ - alpha

where ``prox_{sigma f*}`` is evaluated through Moreau's identity from the
*projection* implementing ``prox_f``.  Step sizes satisfy
``tau * sigma * L^2 <= 1`` with ``L^2 = sum_i ||K_i||^2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.recovery.prox import soft_threshold
from repro.recovery.result import RecoveryResult

__all__ = ["ConstraintBlock", "PdhgSettings", "solve_l1_constrained"]

Vector = np.ndarray


@dataclass(frozen=True)
class ConstraintBlock:
    """One ``f_i(K_i alpha)`` term: a linear map plus a set projection.

    Attributes
    ----------
    forward:
        ``alpha -> K_i alpha``.
    adjoint:
        ``z -> K_i^T z``.
    project:
        Euclidean projection onto the constraint set (the prox of the
        indicator ``f_i``).
    opnorm_sq:
        An upper bound on ``||K_i||^2`` (used for step sizing).
    violation:
        Distance-style feasibility measure ``z -> dist(z, set)`` used by
        the stopping rule; returns 0 when feasible.
    out_dim:
        Dimension of the block's range.
    """

    forward: Callable[[Vector], Vector]
    adjoint: Callable[[Vector], Vector]
    project: Callable[[Vector], Vector]
    opnorm_sq: float
    violation: Callable[[Vector], float]
    out_dim: int


@dataclass(frozen=True)
class PdhgSettings:
    """Iteration controls for :func:`solve_l1_constrained`.

    ``tol`` bounds both the relative primal change and the scaled
    constraint violation at the accepted solution; ``check_every`` sets how
    often the (slightly costly) convergence test runs.
    """

    max_iter: int = 4000
    tol: float = 1e-4
    check_every: int = 25
    step_ratio: float = 1.0  # tau/sigma balance; 1.0 is the symmetric choice

    def __post_init__(self) -> None:
        if self.max_iter <= 0:
            raise ValueError("max_iter must be positive")
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if self.check_every <= 0:
            raise ValueError("check_every must be positive")
        if self.step_ratio <= 0:
            raise ValueError("step_ratio must be positive")


def solve_l1_constrained(
    n: int,
    blocks: Sequence[ConstraintBlock],
    *,
    settings: PdhgSettings = PdhgSettings(),
    synthesize: Optional[Callable[[Vector], Vector]] = None,
    alpha0: Optional[Vector] = None,
    weights: Optional[Vector] = None,
    solver_name: str = "pdhg",
) -> RecoveryResult:
    """Minimize ``||alpha||_1`` subject to the blocks' set constraints.

    Parameters
    ----------
    n:
        Dimension of ``alpha``.
    blocks:
        The constraint terms (at least one).
    settings:
        Iteration controls.
    synthesize:
        Optional coefficient-to-signal map for the returned ``x``
        (defaults to identity).
    alpha0:
        Warm start (defaults to zero).
    weights:
        Optional non-negative per-coefficient weights: the objective
        becomes ``sum_i weights_i |alpha_i|`` (used by reweighted-L1
        recovery).  ``None`` means unit weights.
    solver_name:
        Label recorded in the result.

    Returns
    -------
    RecoveryResult
        ``residual_norm`` reports the first block's violation (by
        convention the measurement-fidelity block goes first).
    """
    if not blocks:
        raise ValueError("need at least one constraint block")
    if n <= 0:
        raise ValueError("n must be positive")
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError(f"weights must be a vector of length {n}")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")

    lip_sq = float(sum(b.opnorm_sq for b in blocks))
    if lip_sq <= 0:
        raise ValueError("operator norms must be positive")
    # tau * sigma * L^2 = 1 with tau/sigma = step_ratio.
    sigma = 1.0 / np.sqrt(lip_sq * settings.step_ratio)
    tau = settings.step_ratio * sigma

    alpha = np.zeros(n) if alpha0 is None else np.asarray(alpha0, dtype=float).copy()
    alpha_bar = alpha.copy()
    duals: List[Vector] = [np.zeros(b.out_dim) for b in blocks]

    converged = False
    iterations = 0
    # Scale for the relative-violation test: typical magnitude of the data.
    for iterations in range(1, settings.max_iter + 1):
        # Dual step with Moreau: prox_{sigma f*}(v) = v - sigma prox_{f/sigma}(v/sigma)
        # and for an indicator prox_{f/sigma} is the projection.
        for i, blk in enumerate(blocks):
            v = duals[i] + sigma * blk.forward(alpha_bar)
            duals[i] = v - sigma * blk.project(v / sigma)

        grad = np.zeros(n)
        for i, blk in enumerate(blocks):
            grad += blk.adjoint(duals[i])
        step_in = alpha - tau * grad
        if weights is None:
            alpha_new = soft_threshold(step_in, tau)
        else:
            # Weighted L1: per-coefficient thresholds tau * w_i.
            alpha_new = np.sign(step_in) * np.maximum(
                np.abs(step_in) - tau * weights, 0.0
            )
        alpha_bar = 2.0 * alpha_new - alpha
        change = float(np.linalg.norm(alpha_new - alpha))
        alpha = alpha_new

        if iterations % settings.check_every == 0:
            scale = max(float(np.linalg.norm(alpha)), 1.0)
            feasible = all(
                blk.violation(blk.forward(alpha)) <= settings.tol * max(scale, 1.0)
                for blk in blocks
            )
            if feasible and change <= settings.tol * scale:
                converged = True
                break

    x = synthesize(alpha) if synthesize is not None else alpha.copy()
    first_violation = blocks[0].violation(blocks[0].forward(alpha))
    info = {
        "tau": float(tau),
        "sigma": float(sigma),
        "lipschitz_sq": lip_sq,
    }
    for i, blk in enumerate(blocks):
        info[f"violation_{i}"] = float(blk.violation(blk.forward(alpha)))
    if weights is None:
        objective = float(np.sum(np.abs(alpha)))
    else:
        objective = float(np.sum(weights * np.abs(alpha)))
    return RecoveryResult(
        alpha=alpha,
        x=x,
        iterations=iterations,
        converged=converged,
        residual_norm=float(first_violation),
        objective=objective,
        solver=solver_name,
        info=info,
    )
