"""Empirical phase-transition measurement for L1 recovery.

The paper's introduction anchors on the sampling bound ``m = s log(n/s)``
(and its worse compressible-signal variant) as *the* obstacle to analog
CS — every extra required measurement is an extra RMPI channel.  The
precise geometry is the Donoho-Tanner phase transition: in the
``(delta, rho) = (m/n, s/m)`` plane, equality-constrained basis pursuit
succeeds with overwhelming probability below a curve and fails above it.

:func:`success_probability` estimates the success rate at one grid point
by Monte-Carlo over random instances; :func:`empirical_transition` sweeps
``delta`` and locates the empirical 50 % crossing, producing the curve the
benchmark prints.  Beyond reproducing textbook geometry, this grounds the
paper's measurement counts: at ECG's effective sparsity the transition
sits exactly where Fig. 7 shows normal CS collapsing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.recovery.bpdn import solve_bpdn
from repro.recovery.pdhg import PdhgSettings
from repro.sensing.matrices import gaussian_matrix
from repro.wavelets.operators import IdentityBasis

__all__ = ["success_probability", "empirical_transition", "TransitionPoint"]


def _random_instance(
    n: int, m: int, s: int, rng: np.random.Generator, trial_seed: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    phi = gaussian_matrix(m, n, seed=trial_seed)
    alpha = np.zeros(n)
    support = rng.choice(n, size=s, replace=False)
    alpha[support] = rng.standard_normal(s)
    return phi, alpha, phi @ alpha


def success_probability(
    n: int,
    m: int,
    s: int,
    *,
    n_trials: int = 10,
    tolerance: float = 1e-2,
    seed: int = 0,
    settings: Optional[PdhgSettings] = None,
) -> float:
    """Monte-Carlo success rate of basis pursuit at one ``(n, m, s)``.

    A trial succeeds when the relative recovery error is below
    ``tolerance``.  Gaussian ensembles and exactly sparse vectors — the
    canonical phase-transition setting.
    """
    if not 1 <= s <= m <= n:
        raise ValueError("need 1 <= s <= m <= n")
    if n_trials < 1:
        raise ValueError("n_trials must be positive")
    basis = IdentityBasis(n)
    solver_settings = settings or PdhgSettings(max_iter=3000, tol=1e-6)
    rng = np.random.default_rng(seed)
    successes = 0
    for trial in range(n_trials):
        phi, alpha, y = _random_instance(n, m, s, rng, seed * 1000 + trial)
        result = solve_bpdn(
            phi, basis, y, sigma=1e-9, settings=solver_settings
        )
        err = np.linalg.norm(result.alpha - alpha) / max(
            np.linalg.norm(alpha), 1e-12
        )
        if err < tolerance:
            successes += 1
    return successes / n_trials


@dataclass(frozen=True)
class TransitionPoint:
    """One delta column of the empirical transition."""

    delta: float
    m: int
    rho_star: float  # empirical 50% crossing of rho = s/m
    success_at: Tuple[Tuple[float, float], ...]  # (rho, success rate)


def empirical_transition(
    n: int = 64,
    deltas: Sequence[float] = (0.25, 0.5, 0.75),
    rhos: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    *,
    n_trials: int = 8,
    seed: int = 1,
) -> List[TransitionPoint]:
    """Sweep the (delta, rho) grid and locate the 50 % crossings.

    Small ``n`` keeps this minutes-fast; the transition's location is
    already within a few percent of its asymptote at n = 64.
    """
    if n < 8:
        raise ValueError("n too small for a meaningful transition")
    points: List[TransitionPoint] = []
    for delta in deltas:
        m = max(1, int(round(delta * n)))
        rates = []
        for rho in rhos:
            s = max(1, int(round(rho * m)))
            if s > m:
                rates.append((float(rho), 0.0))
                continue
            rate = success_probability(
                n, m, s, n_trials=n_trials, seed=seed
            )
            rates.append((float(rho), rate))
        # 50% crossing by linear interpolation on the measured curve.
        rho_star = rates[-1][0]
        for (r0, p0), (r1, p1) in zip(rates[:-1], rates[1:]):
            if p0 >= 0.5 > p1:
                if p0 == p1:
                    rho_star = r0
                else:
                    rho_star = r0 + (p0 - 0.5) * (r1 - r0) / (p0 - p1)
                break
        else:
            if rates and rates[0][1] < 0.5:
                rho_star = 0.0
        points.append(
            TransitionPoint(
                delta=float(delta),
                m=m,
                rho_star=float(rho_star),
                success_at=tuple(rates),
            )
        )
    return points
