"""Structured and reweighted sparse recovery.

The paper's introduction points at "model-based and similar structural
sparse recovery techniques" (its refs. [8], [9]) as the other lever for
cutting the measurement count.  This module implements the two standard
representatives so the benchmark suite can compare them against the hybrid
design's side-information lever:

* **Reweighted-L1 BPDN** (Candès-Wakin-Boyd): iterate BPDN, reweighting
  each coefficient by ``1 / (|alpha_i| + eps)`` so that large coefficients
  stop paying L1 penalty — sharpening the solution toward L0.  Works for
  both the plain and the box-constrained (hybrid) problem.

* **Tree-model IHT** (Baraniuk et al., model-based CS): iterative hard
  thresholding whose thresholding step projects onto *rooted wavelet
  trees* instead of unstructured k-sparse sets, exploiting the
  parent-child persistence of wavelet coefficients of piecewise-smooth
  signals like ECG.  The tree projection uses the standard greedy
  top-down selection (optimal projection is NP-ish; the greedy heuristic
  is what practical implementations use).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.recovery.bpdn import ball_block
from repro.recovery.hybrid import box_block
from repro.recovery.pdhg import PdhgSettings, solve_l1_constrained
from repro.recovery.problem import CsProblem
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis, WaveletBasis

__all__ = [
    "solve_reweighted_bpdn",
    "solve_reweighted_hybrid",
    "wavelet_tree_parents",
    "tree_project",
    "solve_model_iht",
]


def _reweighted(
    prob: CsProblem,
    blocks_builder,
    *,
    n_reweights: int,
    epsilon: float,
    settings: PdhgSettings,
    solver_name: str,
) -> RecoveryResult:
    if n_reweights < 1:
        raise ValueError("n_reweights must be >= 1")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    weights = np.ones(prob.n)
    result: Optional[RecoveryResult] = None
    alpha0 = None
    for _ in range(n_reweights):
        result = solve_l1_constrained(
            prob.n,
            blocks_builder(),
            settings=settings,
            synthesize=prob.basis.synthesize,
            alpha0=alpha0,
            weights=weights,
            solver_name=solver_name,
        )
        alpha0 = result.alpha
        scale = float(np.max(np.abs(result.alpha)))
        eps = epsilon * max(scale, 1e-12)
        weights = 1.0 / (np.abs(result.alpha) + eps)
        # Normalize so step sizing stays comparable across rounds.
        weights = weights / np.mean(weights)
    assert result is not None
    return result


def solve_reweighted_bpdn(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    sigma: float,
    *,
    n_reweights: int = 3,
    epsilon: float = 0.1,
    settings: PdhgSettings = PdhgSettings(),
    problem: Optional[CsProblem] = None,
) -> RecoveryResult:
    """Reweighted-L1 basis-pursuit denoising.

    Parameters
    ----------
    phi, basis, y, sigma:
        As in :func:`repro.recovery.bpdn.solve_bpdn`.
    n_reweights:
        Total solves (1 = plain BPDN).
    epsilon:
        Reweighting floor, relative to the largest coefficient magnitude.
    """
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    return _reweighted(
        prob,
        lambda: [ball_block(prob, y, sigma)],
        n_reweights=n_reweights,
        epsilon=epsilon,
        settings=settings,
        solver_name="pdhg-rw-bpdn",
    )


def solve_reweighted_hybrid(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    sigma: float,
    lower: np.ndarray,
    upper: np.ndarray,
    *,
    n_reweights: int = 3,
    epsilon: float = 0.1,
    settings: PdhgSettings = PdhgSettings(),
    problem: Optional[CsProblem] = None,
) -> RecoveryResult:
    """Reweighted-L1 solve of the paper's Eq. 1 (box + ball constraints).

    Stacks the reweighting loop on top of the hybrid problem — combining
    the paper's side-information lever with the enhanced-recovery lever
    its introduction mentions.
    """
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    return _reweighted(
        prob,
        lambda: [
            ball_block(prob, y, sigma),
            box_block(prob.basis, lower, upper, psi=prob.psi),
        ],
        n_reweights=n_reweights,
        epsilon=epsilon,
        settings=settings,
        solver_name="pdhg-rw-hybrid",
    )


def wavelet_tree_parents(n: int, levels: int) -> np.ndarray:
    """Parent index of each flat coefficient, shape ``(n,)`` (-1 = root).

    Layout follows :func:`repro.wavelets.dwt.coeff_slices`:
    ``[a_J | d_J | d_{J-1} | ... | d_1]``.  Approximation coefficients and
    the coarsest detail band are roots; detail coefficient ``i`` of level
    ``j`` has parent ``i // 2`` of level ``j+1`` (one scale coarser).
    """
    from repro.wavelets.dwt import coeff_slices

    slices = coeff_slices(n, levels)
    parents = np.full(n, -1, dtype=np.int64)
    # slices[0] = approx (roots); slices[1] = d_J (roots);
    # slices[k >= 2] children of slices[k-1].
    for k in range(2, len(slices)):
        child = slices[k]
        parent = slices[k - 1]
        for i in range(child.stop - child.start):
            parents[child.start + i] = parent.start + i // 2
    return parents


def tree_project(
    alpha: np.ndarray, k: int, parents: np.ndarray
) -> np.ndarray:
    """Greedy projection onto k-sparse rooted-subtree supports.

    Selects coefficients in decreasing magnitude, admitting one only when
    its parent chain is already selected (roots are always admissible);
    passes over the candidate list until ``k`` are kept or no admissible
    candidate remains.  Returns ``alpha`` with the complement zeroed (same shape).
    """
    alpha = np.asarray(alpha, dtype=float)
    if alpha.shape != parents.shape:
        raise ValueError("alpha and parents must have equal length")
    if not 1 <= k <= alpha.size:
        raise ValueError(f"k must be in [1, {alpha.size}]")
    order = np.argsort(np.abs(alpha))[::-1]
    selected = np.zeros(alpha.size, dtype=bool)
    kept = 0
    changed = True
    while kept < k and changed:
        changed = False
        for idx in order:
            if kept >= k:
                break
            if selected[idx] or alpha[idx] == 0.0:
                continue
            parent = parents[idx]
            if parent < 0 or selected[parent]:
                selected[idx] = True
                kept += 1
                changed = True
    out = np.zeros_like(alpha)
    out[selected] = alpha[selected]
    return out


def solve_model_iht(
    phi: np.ndarray,
    basis: WaveletBasis,
    y: np.ndarray,
    k: int,
    *,
    max_iter: int = 300,
    tol: float = 1e-7,
    step: Optional[float] = None,
    problem: Optional[CsProblem] = None,
) -> RecoveryResult:
    """Model-based IHT with a rooted-wavelet-tree sparsity model.

    Identical to :func:`repro.recovery.greedy.solve_iht` except the
    thresholding step is :func:`tree_project`, so the iterates respect the
    parent-child structure of wavelet-compressible signals.

    Requires a :class:`~repro.wavelets.operators.WaveletBasis` (the tree
    is defined by its subband layout).
    """
    if not isinstance(basis, WaveletBasis):
        raise TypeError("model IHT needs a WaveletBasis (the tree model)")
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    if y.shape != (prob.m,):
        raise ValueError(f"expected {prob.m} measurements")
    if not 1 <= k <= prob.m:
        raise ValueError(f"sparsity k must be in [1, m={prob.m}]")
    parents = wavelet_tree_parents(prob.n, basis.levels)
    a = prob.a
    mu = step if step is not None else 1.0 / prob.opnorm_sq()
    if mu <= 0:
        raise ValueError("step must be positive")
    alpha = np.zeros(prob.n)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        grad = a.T @ (a @ alpha - y)
        alpha_new = tree_project(alpha - mu * grad, k, parents)
        change = float(np.linalg.norm(alpha_new - alpha))
        scale = max(float(np.linalg.norm(alpha_new)), 1.0)
        alpha = alpha_new
        if change <= tol * scale:
            converged = True
            break
    residual = float(np.linalg.norm(a @ alpha - y))
    return RecoveryResult(
        alpha=alpha,
        x=prob.basis.synthesize(alpha),
        iterations=iterations,
        converged=converged,
        residual_norm=residual,
        objective=float(np.sum(np.abs(alpha))),
        solver="model-iht",
        info={"k": float(k), "step": float(mu)},
    )
