"""Batched recovery: vectorized FISTA/ADMM over stacks of windows.

Every window of a record (and every window of every record at one sweep
grid cell) solves against the *same* composed operator ``A = Φ Ψ``.  The
per-window solvers spend their time in matrix-vector products with that
shared ``A``; stacking ``k`` windows' measurement vectors as the columns
of one right-hand-side matrix turns each iteration's ``k`` GEMV calls
into a single GEMM — far better BLAS arithmetic intensity for identical
per-column math.

Two vectorized engines are provided, mirroring their scalar siblings
iteration-for-iteration:

* :func:`solve_fista_batch` — the LASSO path of
  :func:`repro.recovery.fista.solve_fista`;
* :func:`solve_bpdn_admm_batch` — the BPDN path of
  :func:`repro.recovery.admm.solve_bpdn_admm`, through the cached
  ``I + A^T A`` factorization.

**Convergence masking:** each column tracks the scalar solver's own
stopping rule; a converged column is frozen at its current iterate and
compacted out of the active stack, so late stragglers never perturb (or
pay for) finished windows.  Because the per-column arithmetic is the
scalar solver's arithmetic, a batched solve agrees with the per-window
loop to BLAS rounding (~1e-13); the differential test suite pins the
agreement at 1e-8.

**Warm starting:** :func:`recover_windows` chunks a record's windows into
stacks of ``batch_size`` and, when ``warm_start`` is on, seeds every
column of chunk ``c+1`` from the final solution of the last window of
chunk ``c`` — the most recent temporally-adjacent solution available
without serializing the batch.  :func:`recover_windows_loop` implements
the identical schedule window-by-window, which is both the benchmark
baseline and the differential-test reference.

**Backend seam:** the engines consume :mod:`repro.backend` (the ``xp``
namespace protocol) instead of numpy directly; every solver takes an
optional :class:`~repro.backend.BackendSettings`.  ``None`` or
NumPy/float64 is the exact path — ``xp`` *is* the numpy module there,
so results stay bit-identical to the pre-seam code — while float32 (or
a GPU backend) is the fast path, with its operator stack and ADMM
factorization pulled per ``(backend, precision)`` from
:func:`repro.recovery.opcache.operators_for`.  Results always return as
host float64 :class:`~repro.recovery.result.RecoveryResult` objects, so
warm-start carries and downstream metrics are backend-agnostic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional, Sequence

from repro.backend import BackendSettings, HOST, ndarray, resolve
from repro.perf import lease_workspace, profiled
from repro.recovery.admm import solve_bpdn_admm
from repro.recovery.bsbl import (
    BsblSettings,
    ar1_blocks,
    ar1_estimate,
    bo_gamma_factor,
    initial_gamma,
    solve_bsbl,
    solve_bsbl_dequant,
)
from repro.recovery.fista import solve_fista
from repro.recovery.opcache import OperatorSet, operators_for
from repro.recovery.problem import CsProblem
from repro.recovery.result import RecoveryResult

__backend_seam__ = True

__all__ = [
    "stack_measurements",
    "solve_fista_batch",
    "solve_bpdn_admm_batch",
    "solve_bsbl_batch",
    "solve_bsbl_dequant_batch",
    "solve_batch",
    "recover_windows",
    "recover_windows_loop",
]

#: Fraction of the active stack that must be frozen (converged) before
#: the convex engines pay for a compaction copy.  Compacting on every
#: convergence event copied the whole active stack each time one window
#: finished; deferring until a quarter is frozen bounds the wasted work
#: (frozen columns iterate harmlessly — the math is column-independent
#: and their results were recorded at freeze time) while keeping the
#: GEMM width shrinking.  The Bayesian engine compacts immediately: its
#: per-column E-step is a dense ``n x n`` solve, so carrying a frozen
#: column even one extra iteration costs more than the copy.
_COMPACT_FRACTION = 0.25


def stack_measurements(
    problem: CsProblem,
    ys: Sequence[ndarray],
    *,
    settings: Optional[BackendSettings] = None,
) -> Any:
    """Validate and stack window measurements as columns, shape ``(m, k)``.

    The stack lives on the settings' backend in the settings' dtype (the
    engine dtype policy — float64 on the default exact path).
    """
    if len(ys) == 0:
        raise ValueError("need at least one measurement vector")
    _, xp, dtype, _ = resolve(settings)
    cols = []
    for j, y in enumerate(ys):
        arr = xp.asarray(y, dtype=dtype)
        if arr.shape != (problem.m,):
            raise ValueError(
                f"window {j}: expected {problem.m} measurements, got shape {arr.shape}"
            )
        cols.append(arr)
    return xp.stack(cols, axis=1)


def _stack_alpha0(
    problem: CsProblem,
    alpha0: Optional[ndarray],
    k: int,
    xp: Any,
    dtype: Any,
) -> Any:
    """Initial coefficient stack, shape ``(n, k)``, in the engine dtype.

    ``alpha0`` may be ``None`` (cold start at zero), one ``(n,)`` vector
    (broadcast to every column — the chunk warm-start shape) or a full
    ``(n, k)`` stack.
    """
    if alpha0 is None:
        return xp.zeros((problem.n, k), dtype=dtype)
    arr = xp.asarray(alpha0, dtype=dtype)
    if arr.shape == (problem.n,):
        return xp.repeat(arr[:, None], k, axis=1)
    if arr.shape == (problem.n, k):
        return arr.copy()
    raise ValueError(
        f"alpha0 must have shape ({problem.n},) or ({problem.n}, {k})"
    )


def _finalize(
    ops: OperatorSet,
    alphas: Any,
    ys: Any,
    iterations: Any,
    converged: Any,
    solver: str,
    info: dict,
) -> List[RecoveryResult]:
    """Per-window :class:`RecoveryResult` objects from the solved stack.

    The device→host boundary: whatever backend/dtype solved the stack,
    results come back as float64 numpy arrays (coefficients, synthesized
    windows, norms), so callers never see backend types.
    """
    problem = ops.problem
    xp = ops.backend.xp
    host = HOST.xp
    residuals = ops.backend.to_numpy(
        xp.linalg.norm(ops.a @ alphas - ys, axis=0)
    )
    alphas_host = host.asarray(
        ops.backend.to_numpy(alphas), dtype=host.float64
    )
    iterations = ops.backend.to_numpy(iterations)
    converged = ops.backend.to_numpy(converged)
    results = []
    for j in range(alphas_host.shape[1]):
        alpha = alphas_host[:, j].copy()
        results.append(
            RecoveryResult(
                alpha=alpha,
                x=problem.basis.synthesize(alpha),
                iterations=int(iterations[j]),
                converged=bool(converged[j]),
                residual_norm=float(residuals[j]),
                objective=float(host.sum(host.abs(alpha))),
                solver=solver,
                info=dict(info),
            )
        )
    return results


@profiled("recovery.fista_batch")
def solve_fista_batch(
    problem: CsProblem,
    ys: Sequence[ndarray],
    lam: float,
    *,
    max_iter: int = 2000,
    tol: float = 1e-6,
    alpha0: Optional[ndarray] = None,
    settings: Optional[BackendSettings] = None,
) -> List[RecoveryResult]:
    """Vectorized :func:`~repro.recovery.fista.solve_fista` over a stack.

    One GEMM pair per iteration over the active columns; Nesterov's
    ``t_k`` sequence is data-independent, so it is shared by every
    column exactly as in the scalar solver.  Per-iteration temporaries
    live in a leased workspace (fresh allocations only while the lease
    is cold), with the iterate/momentum stacks double-buffered by
    iteration parity.  A converged column is frozen — its result and
    iteration count recorded immediately — but the compaction copy is
    deferred until :data:`_COMPACT_FRACTION` of the stack is frozen.
    Returns one result per input window, in order.
    """
    if lam <= 0:
        raise ValueError("lam must be positive")
    backend, xp, dtype, settings = resolve(settings)
    y_stack = stack_measurements(problem, ys, settings=settings)
    k = y_stack.shape[1]
    ops = operators_for(problem, settings)
    a = ops.a
    a_t = a.T
    m, n = a.shape
    step = 1.0 / ops.opnorm_sq()

    alpha = _stack_alpha0(problem, alpha0, k, xp, dtype)
    momentum = alpha.copy()
    t_k = 1.0

    # Per-window bookkeeping; ``frozen`` marks converged columns of the
    # current active stack whose compaction is still pending.
    final = xp.empty_like(alpha)
    iterations = xp.zeros(k, dtype=xp.int64)
    converged = xp.zeros(k, dtype=xp.bool_)
    active = xp.arange(k)
    frozen = xp.zeros(k, dtype=xp.bool_)
    y_act = y_stack  # full active set: the stack itself, no copy

    with lease_workspace(settings, f"fista:{m}x{n}") as ws:
        for it in range(1, max_iter + 1):
            ka = int(active.size)
            resid = ws.buf("resid", (m, ka), dtype)
            backend.matmul(a, momentum, out=resid)
            resid -= y_act
            grad = ws.buf("grad", (n, ka), dtype)
            backend.matmul(a_t, resid, out=grad)
            prox = ws.buf("prox", (n, ka), dtype)
            xp.multiply(grad, step, out=prox)
            xp.subtract(momentum, prox, out=prox)
            # alpha persists into the next iteration (the momentum and
            # change terms read it), so the new iterate alternates
            # between two named buffers by iteration parity.
            alpha_new = ws.buf(
                "alpha_a" if it % 2 else "alpha_b", (n, ka), dtype
            )
            backend.soft_threshold(prox, step * lam, out=alpha_new)
            t_next = (1.0 + xp.sqrt(1.0 + 4.0 * t_k**2)) / 2.0
            diff = ws.buf("diff", (n, ka), dtype)
            xp.subtract(alpha_new, alpha, out=diff)
            change = xp.linalg.norm(diff, axis=0)
            # momentum was last read computing resid/prox above, so its
            # buffer is safe to overwrite in place here.
            mom_new = ws.buf("momentum", (n, ka), dtype)
            xp.multiply(diff, (t_k - 1.0) / t_next, out=mom_new)
            xp.add(alpha_new, mom_new, out=mom_new)
            scale = xp.maximum(xp.linalg.norm(alpha_new, axis=0), 1.0)
            alpha = alpha_new
            momentum = mom_new
            t_k = t_next

            done = change <= tol * scale
            newly = done & ~frozen
            if xp.any(newly):
                cols = active[newly]
                final[:, cols] = alpha[:, newly]
                iterations[cols] = it
                converged[cols] = True
                frozen = frozen | newly
            nfrozen = int(frozen.sum())
            if nfrozen == ka or nfrozen >= _COMPACT_FRACTION * ka:
                keep = ~frozen
                active = active[keep]
                if active.size == 0:
                    break
                # Fancy indexing yields owned copies, ending any
                # aliasing with the parity buffers above.
                alpha = alpha[:, keep]
                momentum = momentum[:, keep]
                y_act = y_stack[:, active]
                frozen = xp.zeros(active.size, dtype=xp.bool_)

    if active.size:
        left = ~frozen
        cols = active[left]
        if cols.size:
            final[:, cols] = alpha[:, left]
            iterations[cols] = max_iter

    info = {
        "lam": float(lam),
        "step": float(step),
        "batch": float(k),
        "backend": settings.label,
    }
    return _finalize(
        ops, final, y_stack, iterations, converged, "fista-lasso-batch", info
    )


def _project_l2_ball_columns(
    xp: Any,
    v: Any,
    centers: Any,
    radius: float,
    out: Any = None,
    diff_buf: Any = None,
) -> Any:
    """Column-wise Euclidean projection onto ``||z - center_j|| <= radius``.

    The vectorized twin of :func:`repro.recovery.prox.project_l2_ball`,
    including its "already inside (or at the center): return unchanged"
    branch, so each column matches the scalar projection bit-for-bit.
    ``out``/``diff_buf`` route the result and the ``v - centers``
    temporary into workspace buffers; both start as full copies/
    overwrites, so the values are identical to the allocating form.
    """
    if diff_buf is None:
        diff = v - centers
    else:
        diff = diff_buf
        xp.subtract(v, centers, out=diff)
    norms = xp.linalg.norm(diff, axis=0)
    if out is None:
        out = v.copy()
    else:
        out[...] = v
    shrink = (norms > radius) & (norms > 0.0)
    if xp.any(shrink):
        out[:, shrink] = centers[:, shrink] + diff[:, shrink] * (
            radius / norms[shrink]
        )
    return out


@profiled("recovery.admm_batch")
def solve_bpdn_admm_batch(
    problem: CsProblem,
    ys: Sequence[ndarray],
    sigma: float,
    *,
    rho: float = 1.0,
    max_iter: int = 3000,
    tol: float = 1e-5,
    alpha0: Optional[ndarray] = None,
    settings: Optional[BackendSettings] = None,
) -> List[RecoveryResult]:
    """Vectorized :func:`~repro.recovery.admm.solve_bpdn_admm` over a stack.

    The ``alpha``-step solves against the *cached* Cholesky factor of
    ``I + A^T A`` — held per ``(backend, precision)`` by the operator
    cache — with a multi-column right-hand side, so the whole stack
    costs one factorization ever (per process and precision) and two
    triangular GEMM solves per iteration.
    """
    if sigma < 0:
        raise ValueError("sigma cannot be negative")
    if rho <= 0:
        raise ValueError("rho must be positive")
    backend, xp, dtype, settings = resolve(settings)
    y_stack = stack_measurements(problem, ys, settings=settings)
    k = y_stack.shape[1]
    ops = operators_for(problem, settings)
    a = ops.a
    a_t = a.T
    m, n = a.shape

    alpha = _stack_alpha0(problem, alpha0, k, xp, dtype)
    w = alpha.copy()
    z = y_stack.copy()
    u_w = xp.zeros_like(alpha)
    u_z = xp.zeros_like(y_stack)

    final = xp.empty_like(alpha)
    iterations = xp.zeros(k, dtype=xp.int64)
    converged = xp.zeros(k, dtype=xp.bool_)
    active = xp.arange(k)
    frozen = xp.zeros(k, dtype=xp.bool_)
    y_act = y_stack  # full active set: the stack itself, no copy

    with lease_workspace(settings, f"admm:{m}x{n}") as ws:
        for it in range(1, max_iter + 1):
            ka = int(active.size)
            # rhs = (w - u_w) + a.T @ (z - u_z), accumulated in place.
            zt = ws.buf("zt", (m, ka), dtype)
            xp.subtract(z, u_z, out=zt)
            rhs = ws.buf("rhs", (n, ka), dtype)
            backend.matmul(a_t, zt, out=rhs)
            wd = ws.buf("wd", (n, ka), dtype)
            xp.subtract(w, u_w, out=wd)
            xp.add(wd, rhs, out=rhs)
            # The triangular solves allocate their solution internally
            # (LAPACK copies a C-ordered rhs regardless); rhs itself is
            # dead after this call, hence overwrite_b.
            alpha = ops.cho_solve(rhs, overwrite_b=True)
            a_alpha = ws.buf("a_alpha", (m, ka), dtype)
            backend.matmul(a, alpha, out=a_alpha)
            wsum = ws.buf("wsum", (n, ka), dtype)
            xp.add(alpha, u_w, out=wsum)
            # w and z persist across iterations (read at the top and in
            # the dual residual), so their successors alternate between
            # parity-named buffers.
            w_new = ws.buf("w_a" if it % 2 else "w_b", (n, ka), dtype)
            backend.soft_threshold(wsum, 1.0 / rho, out=w_new)
            zsum = ws.buf("zsum", (m, ka), dtype)
            xp.add(a_alpha, u_z, out=zsum)
            z_new = _project_l2_ball_columns(
                xp,
                zsum,
                y_act,
                sigma,
                out=ws.buf("z_a" if it % 2 else "z_b", (m, ka), dtype),
                diff_buf=ws.buf("zdiff", (m, ka), dtype),
            )
            # Each difference is computed once and reused for the dual
            # update and the residual norm (identical values to the
            # original's two evaluations of the same expression).
            dw = ws.buf("dw", (n, ka), dtype)
            xp.subtract(alpha, w_new, out=dw)
            u_w += dw
            dz = ws.buf("dz", (m, ka), dtype)
            xp.subtract(a_alpha, z_new, out=dz)
            u_z += dz

            primal = xp.sqrt(
                xp.linalg.norm(dw, axis=0) ** 2
                + xp.linalg.norm(dz, axis=0) ** 2
            )
            zdel = ws.buf("zdel", (m, ka), dtype)
            xp.subtract(z_new, z, out=zdel)
            atzd = ws.buf("atzd", (n, ka), dtype)
            backend.matmul(a_t, zdel, out=atzd)
            wdel = ws.buf("wdel", (n, ka), dtype)
            xp.subtract(w_new, w, out=wdel)
            dual = rho * xp.sqrt(
                xp.linalg.norm(wdel, axis=0) ** 2
                + xp.linalg.norm(atzd, axis=0) ** 2
            )
            w, z = w_new, z_new
            scale = xp.maximum(xp.linalg.norm(w, axis=0), 1.0)

            done = (primal <= tol * scale) & (dual <= tol * scale)
            newly = done & ~frozen
            if xp.any(newly):
                cols = active[newly]
                final[:, cols] = w[:, newly]
                iterations[cols] = it
                converged[cols] = True
                frozen = frozen | newly
            nfrozen = int(frozen.sum())
            if nfrozen == ka or nfrozen >= _COMPACT_FRACTION * ka:
                keep = ~frozen
                active = active[keep]
                if active.size == 0:
                    break
                w = w[:, keep]
                z = z[:, keep]
                u_w = u_w[:, keep]
                u_z = u_z[:, keep]
                y_act = y_stack[:, active]
                frozen = xp.zeros(active.size, dtype=xp.bool_)

    if active.size:
        left = ~frozen
        cols = active[left]
        if cols.size:
            final[:, cols] = w[:, left]
            iterations[cols] = max_iter

    info = {"rho": float(rho), "batch": float(k), "backend": settings.label}
    return _finalize(
        ops, final, y_stack, iterations, converged, "admm-bpdn-batch", info
    )


def _bsbl_overrides(
    bsbl: Optional[BsblSettings],
    max_iter: Optional[int],
    tol: Optional[float],
) -> BsblSettings:
    """EM settings with the engine-level iteration overrides applied."""
    settings = bsbl or BsblSettings()
    updates: dict = {}
    if max_iter is not None:
        updates["max_iter"] = max_iter
    if tol is not None:
        updates["tol"] = tol
    return replace(settings, **updates) if updates else settings


@profiled("recovery.bsbl_batch")
def _solve_bsbl_stack(
    ops: OperatorSet,
    y_stack: Any,
    gmat: Any,
    b_stack: Any,
    bsbl: BsblSettings,
    alpha0: Optional[ndarray],
    xp: Any,
    dtype: Any,
    solver: str,
    info: dict,
) -> List[RecoveryResult]:
    """The batched BSBL-BO EM loop over an information-form stack.

    Mirrors ``repro.recovery.bsbl._em_information_form`` column-for-column
    — one batched SPD solve per iteration against ``M_j = Γ_j^{-1} + G``
    with a multi-column right-hand side ``[b_j | G]`` (the GEMM-shaped
    E-step), the shared BO gamma rule, the shared AR(1) correlation
    re-estimate — with the engine's usual convergence masking: a
    converged window is frozen and compacted out of the active stack.
    The evidence bookkeeping (scalar ``objective_history``) is skipped;
    it never feeds back into the iteration.
    """
    problem = ops.problem
    backend = ops.backend
    n = problem.n
    k = y_stack.shape[1]
    blen = bsbl.block_len
    g = bsbl.blocks_for(n)
    idx = xp.arange(g)
    gdiag = gmat.reshape(g, blen, g, blen)[idx, :, idx, :]
    gblocks = gmat.reshape(g, blen, n)

    alpha0_stack = (
        None if alpha0 is None else _stack_alpha0(problem, alpha0, k, xp, dtype)
    )
    gamma = xp.asarray(initial_gamma(xp, alpha0_stack, k, g, blen), dtype=dtype)
    r = xp.zeros(k, dtype=dtype)
    mu = xp.zeros((k, n), dtype=dtype)
    b_act = b_stack

    final = xp.empty_like(mu)
    iterations = xp.zeros(k, dtype=xp.int64)
    converged = xp.zeros(k, dtype=xp.bool_)
    active = xp.arange(k)

    ws_ctx = lease_workspace(ops.settings, f"bsbl:{n}:b{blen}")
    with ws_ctx as ws:
        for it in range(1, bsbl.max_iter + 1):
            ka = int(active.size)
            bmat, binv, _ = ar1_blocks(xp, r, blen)
            # The three O(ka * n^2) E-step temporaries — the information
            # stack, the [b | G] right-hand side and its solution — are
            # the whole allocation story of this solver; all live in the
            # workspace and are fully overwritten below.
            m_stack = ws.buf("m_stack", (ka, n, n), dtype)
            m_stack[:] = gmat
            m5 = m_stack.reshape(ka, g, blen, g, blen)
            add = ws.buf("add", (ka, g, blen, blen), dtype)
            xp.divide(binv[:, None, :, :], gamma[:, :, None, None], out=add)
            m5[:, idx, :, idx, :] += xp.transpose(add, (1, 0, 2, 3))

            rhs = ws.buf("rhs", (ka, n, n + 1), dtype)
            rhs[:, :, 0] = b_act
            rhs[:, :, 1:] = gmat
            sol = backend.solve(
                m_stack, rhs, out=ws.buf("sol", (ka, n, n + 1), dtype)
            )
            # mu persists across iterations (the change norm reads last
            # round's value) while sol's buffer is overwritten next
            # round, so the posterior mean moves to a parity-named pair.
            mu_new = ws.buf("mu_a" if it % 2 else "mu_b", (ka, n), dtype)
            mu_new[...] = sol[:, :, 0]
            w = sol[:, :, 1:]

            # G is symmetric, so right-multiplying the row stack matches
            # the scalar path's ``b - G @ mu`` up to GEMM rounding.
            q = ws.buf("q", (ka, n), dtype)
            backend.matmul(mu_new, gmat, out=q)
            xp.subtract(b_act, q, out=q)
            qb = q.reshape(ka, g, blen)
            num = xp.einsum("kgb,kbc,kgc->kg", qb, bmat, qb)
            gw = xp.einsum("ibn,knie->kibe", gblocks, w.reshape(ka, n, g, blen))
            den = xp.einsum("kbc,kgcb->kg", bmat, gdiag[None] - gw)
            gamma_prev = gamma
            gamma = xp.maximum(
                gamma * bo_gamma_factor(xp, num, den), bsbl.gamma_floor
            )

            mudiff = ws.buf("mudiff", (ka, n), dtype)
            xp.subtract(mu_new, mu, out=mudiff)
            change = xp.linalg.norm(mudiff, axis=1)
            scale = xp.maximum(xp.linalg.norm(mu_new, axis=1), 1e-12)
            mu = mu_new

            done = change <= bsbl.tol * scale
            if xp.any(done):
                cols = active[done]
                final[cols] = mu[done]
                iterations[cols] = it
                converged[cols] = True
                keep = ~done
                active = active[keep]
                if active.size == 0:
                    break
                # Owned compacted copies: mu leaves the parity buffers.
                mu = mu[keep]
                gamma = gamma[keep]
                gamma_prev = gamma_prev[keep]
                b_act = b_act[keep]
                r = r[keep]

            if bsbl.learn_correlation and blen > 1:
                r = ar1_estimate(
                    xp, mu.reshape(-1, g, blen), gamma_prev, bsbl.corr_limit
                )

    if active.size:
        final[active] = mu
        iterations[active] = bsbl.max_iter

    return _finalize(
        ops, final.T, y_stack, iterations, converged, solver, info
    )


def solve_bsbl_batch(
    problem: CsProblem,
    ys: Sequence[ndarray],
    noise_var: float,
    *,
    bsbl: Optional[BsblSettings] = None,
    alpha0: Optional[ndarray] = None,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
    settings: Optional[BackendSettings] = None,
) -> List[RecoveryResult]:
    """Vectorized :func:`~repro.recovery.bsbl.solve_bsbl` over a stack.

    The information matrix ``G = AᵀA / lambda`` is built once from the
    operator cache's per-``(backend, precision)`` Gram memo; each EM
    iteration is one batched SPD solve over the active windows.
    """
    if noise_var <= 0:
        raise ValueError("noise_var must be positive")
    _, xp, dtype, settings = resolve(settings)
    y_stack = stack_measurements(problem, ys, settings=settings)
    ops = operators_for(problem, settings)
    em = _bsbl_overrides(bsbl, max_iter, tol)
    gmat = xp.asarray(ops.gram(), dtype=dtype) / noise_var
    b_stack = (ops.a.T @ y_stack).T / noise_var
    info = {
        "noise_var": float(noise_var),
        "block_len": float(em.block_len),
        "batch": float(y_stack.shape[1]),
        "backend": settings.label,
    }
    return _solve_bsbl_stack(
        ops, y_stack, gmat, b_stack, em, alpha0, xp, dtype,
        "bsbl-bo-batch", info,
    )


def solve_bsbl_dequant_batch(
    problem: CsProblem,
    ys: Sequence[ndarray],
    noise_var: float,
    x_mids: Sequence[ndarray],
    quant_var: float,
    *,
    bsbl: Optional[BsblSettings] = None,
    alpha0: Optional[ndarray] = None,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
    settings: Optional[BackendSettings] = None,
) -> List[RecoveryResult]:
    """Vectorized :func:`~repro.recovery.bsbl.solve_bsbl_dequant`.

    ``x_mids`` holds one low-res cell-midpoint vector per window (same
    centered units as the solver domain).  The analysis transforms run
    per window on the host — bit-identical to the scalar path — and the
    augmented information pair then feeds the shared batched EM kernel.
    """
    if noise_var <= 0:
        raise ValueError("noise_var must be positive")
    if quant_var <= 0:
        raise ValueError("quant_var must be positive")
    if len(x_mids) != len(ys):
        raise ValueError("need one x_mid vector per measurement window")
    _, xp, dtype, settings = resolve(settings)
    y_stack = stack_measurements(problem, ys, settings=settings)
    ops = operators_for(problem, settings)
    em = _bsbl_overrides(bsbl, max_iter, tol)
    host = HOST.xp
    c_cols = []
    for j, x_mid in enumerate(x_mids):
        arr = host.asarray(x_mid, dtype=host.float64)
        if arr.shape != (problem.n,):
            raise ValueError(
                f"window {j}: expected {problem.n} midpoints, got shape {arr.shape}"
            )
        c_cols.append(problem.basis.analyze(arr))
    c_stack = xp.asarray(host.stack(c_cols, axis=0), dtype=dtype)
    gmat = (
        xp.asarray(ops.gram(), dtype=dtype) / noise_var
        + xp.eye(problem.n, dtype=dtype) / quant_var
    )
    b_stack = (ops.a.T @ y_stack).T / noise_var + c_stack / quant_var
    info = {
        "noise_var": float(noise_var),
        "quant_var": float(quant_var),
        "block_len": float(em.block_len),
        "batch": float(y_stack.shape[1]),
        "backend": settings.label,
    }
    return _solve_bsbl_stack(
        ops, y_stack, gmat, b_stack, em, alpha0, xp, dtype,
        "bsbl-bo-dequant-batch", info,
    )


def solve_batch(
    problem: CsProblem,
    ys: Sequence[ndarray],
    *,
    method: str = "admm",
    sigma: Optional[float] = None,
    lam: Optional[float] = None,
    noise_var: Optional[float] = None,
    x_mids: Optional[Sequence[ndarray]] = None,
    quant_var: Optional[float] = None,
    bsbl: Optional[BsblSettings] = None,
    alpha0: Optional[ndarray] = None,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
    settings: Optional[BackendSettings] = None,
) -> List[RecoveryResult]:
    """One batched solve over a window stack, dispatching on ``method``.

    ``method="admm"`` solves BPDN (needs ``sigma``); ``method="fista"``
    solves the LASSO (needs ``lam``); ``method="bsbl"`` runs the
    Bayesian family (needs ``noise_var``) and ``method="bsbl-dequant"``
    additionally takes the low-res channel (``x_mids``, ``quant_var``).
    Unset iteration controls fall back to each solver's own defaults.
    """
    kwargs: dict = {"settings": settings}
    if max_iter is not None:
        kwargs["max_iter"] = max_iter
    if tol is not None:
        kwargs["tol"] = tol
    if method == "admm":
        if sigma is None:
            raise ValueError("method 'admm' needs sigma")
        return solve_bpdn_admm_batch(problem, ys, sigma, alpha0=alpha0, **kwargs)
    if method == "fista":
        if lam is None:
            raise ValueError("method 'fista' needs lam")
        return solve_fista_batch(problem, ys, lam, alpha0=alpha0, **kwargs)
    if method == "bsbl":
        if noise_var is None:
            raise ValueError("method 'bsbl' needs noise_var")
        return solve_bsbl_batch(
            problem, ys, noise_var, bsbl=bsbl, alpha0=alpha0, **kwargs
        )
    if method == "bsbl-dequant":
        if noise_var is None:
            raise ValueError("method 'bsbl-dequant' needs noise_var")
        if x_mids is None or quant_var is None:
            raise ValueError("method 'bsbl-dequant' needs x_mids and quant_var")
        return solve_bsbl_dequant_batch(
            problem, ys, noise_var, x_mids, quant_var,
            bsbl=bsbl, alpha0=alpha0, **kwargs,
        )
    raise ValueError(f"unknown batch method {method!r}")


def _chunks(count: int, size: int):
    for start in range(0, count, size):
        yield range(start, min(start + size, count))


def recover_windows(
    problem: CsProblem,
    ys: Sequence[ndarray],
    *,
    method: str = "admm",
    sigma: Optional[float] = None,
    lam: Optional[float] = None,
    noise_var: Optional[float] = None,
    x_mids: Optional[Sequence[ndarray]] = None,
    quant_var: Optional[float] = None,
    bsbl: Optional[BsblSettings] = None,
    batch_size: int = 32,
    warm_start: bool = True,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
    settings: Optional[BackendSettings] = None,
) -> List[RecoveryResult]:
    """Solve a record's window sequence through the batched engine.

    Windows are grouped into stacks of ``batch_size``; with
    ``warm_start`` every column of a stack is seeded from the final
    solution of the *last window of the previous stack* (the newest
    solution that temporally precedes the whole stack).  The schedule is
    a pure function of the window sequence, so results are deterministic
    regardless of hardware or timing.  Warm-start carries are host
    float64 regardless of ``settings``; each chunk re-casts them to the
    engine dtype.  For ``method="bsbl-dequant"`` the per-window
    ``x_mids`` sequence is chunked in lockstep with ``ys``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if x_mids is not None and len(x_mids) != len(ys):
        raise ValueError("need one x_mid vector per measurement window")
    results: List[RecoveryResult] = []
    carry: Optional[ndarray] = None
    for chunk in _chunks(len(ys), batch_size):
        batch = [ys[j] for j in chunk]
        mids = None if x_mids is None else [x_mids[j] for j in chunk]
        alpha0 = carry if warm_start else None
        solved = solve_batch(
            problem,
            batch,
            method=method,
            sigma=sigma,
            lam=lam,
            noise_var=noise_var,
            x_mids=mids,
            quant_var=quant_var,
            bsbl=bsbl,
            alpha0=alpha0,
            max_iter=max_iter,
            tol=tol,
            settings=settings,
        )
        results.extend(solved)
        carry = solved[-1].alpha
    return results


def recover_windows_loop(
    problem: CsProblem,
    ys: Sequence[ndarray],
    *,
    method: str = "admm",
    sigma: Optional[float] = None,
    lam: Optional[float] = None,
    noise_var: Optional[float] = None,
    x_mids: Optional[Sequence[ndarray]] = None,
    quant_var: Optional[float] = None,
    bsbl: Optional[BsblSettings] = None,
    batch_size: int = 32,
    warm_start: bool = True,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
    fresh_problem: bool = False,
) -> List[RecoveryResult]:
    """The per-window reference loop for :func:`recover_windows`.

    Identical warm-start schedule (chunk boundaries included), one scalar
    solve per window.  This is the benchmark baseline and the
    differential-test oracle — including for the fast-path backends,
    which is why it takes no backend settings: the oracle is always the
    scalar float64 path.  ``fresh_problem=True`` additionally rebuilds
    the composed operator per window, reproducing the pre-cache cost
    model the benchmarks compare against.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if x_mids is not None and len(x_mids) != len(ys):
        raise ValueError("need one x_mid vector per measurement window")
    results: List[RecoveryResult] = []
    carry: Optional[ndarray] = None
    kwargs: dict = {}
    if max_iter is not None:
        kwargs["max_iter"] = max_iter
    if tol is not None:
        kwargs["tol"] = tol
    em = _bsbl_overrides(bsbl, max_iter, tol)
    for chunk in _chunks(len(ys), batch_size):
        chunk_carry = carry if warm_start else None
        for j in chunk:
            prob_arg = None if fresh_problem else problem
            if method == "admm":
                if sigma is None:
                    raise ValueError("method 'admm' needs sigma")
                result = solve_bpdn_admm(
                    problem.phi,
                    problem.basis,
                    ys[j],
                    sigma,
                    problem=prob_arg,
                    alpha0=chunk_carry,
                    **kwargs,
                )
            elif method == "fista":
                if lam is None:
                    raise ValueError("method 'fista' needs lam")
                result = solve_fista(
                    problem.phi,
                    problem.basis,
                    ys[j],
                    lam,
                    problem=prob_arg,
                    alpha0=chunk_carry,
                    **kwargs,
                )
            elif method == "bsbl":
                if noise_var is None:
                    raise ValueError("method 'bsbl' needs noise_var")
                result = solve_bsbl(
                    problem.phi,
                    problem.basis,
                    ys[j],
                    noise_var,
                    settings=em,
                    problem=prob_arg,
                    alpha0=chunk_carry,
                )
            elif method == "bsbl-dequant":
                if noise_var is None:
                    raise ValueError("method 'bsbl-dequant' needs noise_var")
                if x_mids is None or quant_var is None:
                    raise ValueError(
                        "method 'bsbl-dequant' needs x_mids and quant_var"
                    )
                result = solve_bsbl_dequant(
                    problem.phi,
                    problem.basis,
                    ys[j],
                    noise_var,
                    x_mids[j],
                    quant_var,
                    settings=em,
                    problem=prob_arg,
                    alpha0=chunk_carry,
                )
            else:
                raise ValueError(f"unknown batch method {method!r}")
            results.append(result)
        carry = results[-1].alpha
    return results
