"""Batched recovery: vectorized FISTA/ADMM over stacks of windows.

Every window of a record (and every window of every record at one sweep
grid cell) solves against the *same* composed operator ``A = Φ Ψ``.  The
per-window solvers spend their time in matrix-vector products with that
shared ``A``; stacking ``k`` windows' measurement vectors as the columns
of one right-hand-side matrix turns each iteration's ``k`` GEMV calls
into a single GEMM — far better BLAS arithmetic intensity for identical
per-column math.

Two vectorized engines are provided, mirroring their scalar siblings
iteration-for-iteration:

* :func:`solve_fista_batch` — the LASSO path of
  :func:`repro.recovery.fista.solve_fista`;
* :func:`solve_bpdn_admm_batch` — the BPDN path of
  :func:`repro.recovery.admm.solve_bpdn_admm`, through the problem's
  cached ``I + A^T A`` factorization.

**Convergence masking:** each column tracks the scalar solver's own
stopping rule; a converged column is frozen at its current iterate and
compacted out of the active stack, so late stragglers never perturb (or
pay for) finished windows.  Because the per-column arithmetic is the
scalar solver's arithmetic, a batched solve agrees with the per-window
loop to BLAS rounding (~1e-13); the differential test suite pins the
agreement at 1e-8.

**Warm starting:** :func:`recover_windows` chunks a record's windows into
stacks of ``batch_size`` and, when ``warm_start`` is on, seeds every
column of chunk ``c+1`` from the final solution of the last window of
chunk ``c`` — the most recent temporally-adjacent solution available
without serializing the batch.  :func:`recover_windows_loop` implements
the identical schedule window-by-window, which is both the benchmark
baseline and the differential-test reference.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.recovery.admm import solve_bpdn_admm
from repro.recovery.fista import solve_fista
from repro.recovery.problem import CsProblem
from repro.recovery.prox import soft_threshold
from repro.recovery.result import RecoveryResult

__all__ = [
    "stack_measurements",
    "solve_fista_batch",
    "solve_bpdn_admm_batch",
    "solve_batch",
    "recover_windows",
    "recover_windows_loop",
]


def stack_measurements(problem: CsProblem, ys: Sequence[np.ndarray]) -> np.ndarray:
    """Validate and stack window measurements as columns, shape ``(m, k)``."""
    if len(ys) == 0:
        raise ValueError("need at least one measurement vector")
    cols = []
    for j, y in enumerate(ys):
        arr = np.asarray(y, dtype=float)
        if arr.shape != (problem.m,):
            raise ValueError(
                f"window {j}: expected {problem.m} measurements, got shape {arr.shape}"
            )
        cols.append(arr)
    return np.stack(cols, axis=1)


def _stack_alpha0(
    problem: CsProblem, alpha0: Optional[np.ndarray], k: int
) -> np.ndarray:
    """Initial coefficient stack, shape ``(n, k)``.

    ``alpha0`` may be ``None`` (cold start at zero), one ``(n,)`` vector
    (broadcast to every column — the chunk warm-start shape) or a full
    ``(n, k)`` stack.
    """
    if alpha0 is None:
        return np.zeros((problem.n, k))
    arr = np.asarray(alpha0, dtype=float)
    if arr.shape == (problem.n,):
        return np.repeat(arr[:, None], k, axis=1)
    if arr.shape == (problem.n, k):
        return arr.copy()
    raise ValueError(
        f"alpha0 must have shape ({problem.n},) or ({problem.n}, {k})"
    )


def _finalize(
    problem: CsProblem,
    alphas: np.ndarray,
    ys: np.ndarray,
    iterations: np.ndarray,
    converged: np.ndarray,
    solver: str,
    info: dict,
) -> List[RecoveryResult]:
    """Per-window :class:`RecoveryResult` objects from the solved stack."""
    residuals = np.linalg.norm(problem.a @ alphas - ys, axis=0)
    results = []
    for j in range(alphas.shape[1]):
        alpha = alphas[:, j].copy()
        results.append(
            RecoveryResult(
                alpha=alpha,
                x=problem.basis.synthesize(alpha),
                iterations=int(iterations[j]),
                converged=bool(converged[j]),
                residual_norm=float(residuals[j]),
                objective=float(np.sum(np.abs(alpha))),
                solver=solver,
                info=dict(info),
            )
        )
    return results


def solve_fista_batch(
    problem: CsProblem,
    ys: Sequence[np.ndarray],
    lam: float,
    *,
    max_iter: int = 2000,
    tol: float = 1e-6,
    alpha0: Optional[np.ndarray] = None,
) -> List[RecoveryResult]:
    """Vectorized :func:`~repro.recovery.fista.solve_fista` over a stack.

    One GEMM pair per iteration over the active columns; Nesterov's
    ``t_k`` sequence is data-independent, so it is shared by every
    column exactly as in the scalar solver.  Returns one result per
    input window, in order.
    """
    if lam <= 0:
        raise ValueError("lam must be positive")
    y_stack = stack_measurements(problem, ys)
    k = y_stack.shape[1]
    a = problem.a
    step = 1.0 / problem.opnorm_sq()

    alpha = _stack_alpha0(problem, alpha0, k)
    momentum = alpha.copy()
    t_k = 1.0

    # Per-window bookkeeping; frozen columns are compacted out of the
    # active stack so converged windows stop paying for stragglers.
    final = np.empty_like(alpha)
    iterations = np.full(k, 0, dtype=int)
    converged = np.zeros(k, dtype=bool)
    active = np.arange(k)

    for it in range(1, max_iter + 1):
        grad = a.T @ (a @ momentum - y_stack[:, active])
        alpha_new = soft_threshold(momentum - step * grad, step * lam)
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t_k**2)) / 2.0
        momentum = alpha_new + ((t_k - 1.0) / t_next) * (alpha_new - alpha)
        change = np.linalg.norm(alpha_new - alpha, axis=0)
        scale = np.maximum(np.linalg.norm(alpha_new, axis=0), 1.0)
        alpha = alpha_new
        t_k = t_next

        done = change <= tol * scale
        if np.any(done):
            cols = active[done]
            final[:, cols] = alpha[:, done]
            iterations[cols] = it
            converged[cols] = True
            keep = ~done
            active = active[keep]
            if active.size == 0:
                break
            alpha = alpha[:, keep]
            momentum = momentum[:, keep]

    if active.size:
        final[:, active] = alpha
        iterations[active] = max_iter

    info = {"lam": float(lam), "step": float(step), "batch": float(k)}
    return _finalize(
        problem, final, y_stack, iterations, converged, "fista-lasso-batch", info
    )


def _project_l2_ball_columns(
    v: np.ndarray, centers: np.ndarray, radius: float
) -> np.ndarray:
    """Column-wise Euclidean projection onto ``||z - center_j|| <= radius``.

    The vectorized twin of :func:`repro.recovery.prox.project_l2_ball`,
    including its "already inside (or at the center): return unchanged"
    branch, so each column matches the scalar projection bit-for-bit.
    """
    diff = v - centers
    norms = np.linalg.norm(diff, axis=0)
    out = v.copy()
    shrink = (norms > radius) & (norms > 0.0)
    if np.any(shrink):
        out[:, shrink] = centers[:, shrink] + diff[:, shrink] * (
            radius / norms[shrink]
        )
    return out


def solve_bpdn_admm_batch(
    problem: CsProblem,
    ys: Sequence[np.ndarray],
    sigma: float,
    *,
    rho: float = 1.0,
    max_iter: int = 3000,
    tol: float = 1e-5,
    alpha0: Optional[np.ndarray] = None,
) -> List[RecoveryResult]:
    """Vectorized :func:`~repro.recovery.admm.solve_bpdn_admm` over a stack.

    The ``alpha``-step solves against the problem's *cached* Cholesky
    factor of ``I + A^T A`` with a multi-column right-hand side, so the
    whole stack costs one factorization ever (per process) and two
    triangular GEMM solves per iteration.
    """
    from scipy.linalg import cho_solve

    if sigma < 0:
        raise ValueError("sigma cannot be negative")
    if rho <= 0:
        raise ValueError("rho must be positive")
    y_stack = stack_measurements(problem, ys)
    k = y_stack.shape[1]
    a = problem.a
    chol = problem.admm_factor()

    alpha = _stack_alpha0(problem, alpha0, k)
    w = alpha.copy()
    z = y_stack.copy()
    u_w = np.zeros_like(alpha)
    u_z = np.zeros_like(y_stack)

    final = np.empty_like(alpha)
    iterations = np.full(k, 0, dtype=int)
    converged = np.zeros(k, dtype=bool)
    active = np.arange(k)

    for it in range(1, max_iter + 1):
        y_act = y_stack[:, active]
        rhs = (w - u_w) + a.T @ (z - u_z)
        alpha = cho_solve(chol, rhs)
        a_alpha = a @ alpha
        w_new = soft_threshold(alpha + u_w, 1.0 / rho)
        z_new = _project_l2_ball_columns(a_alpha + u_z, y_act, sigma)
        u_w += alpha - w_new
        u_z += a_alpha - z_new

        primal = np.sqrt(
            np.linalg.norm(alpha - w_new, axis=0) ** 2
            + np.linalg.norm(a_alpha - z_new, axis=0) ** 2
        )
        dual = rho * np.sqrt(
            np.linalg.norm(w_new - w, axis=0) ** 2
            + np.linalg.norm(a.T @ (z_new - z), axis=0) ** 2
        )
        w, z = w_new, z_new
        scale = np.maximum(np.linalg.norm(w, axis=0), 1.0)

        done = (primal <= tol * scale) & (dual <= tol * scale)
        if np.any(done):
            cols = active[done]
            final[:, cols] = w[:, done]
            iterations[cols] = it
            converged[cols] = True
            keep = ~done
            active = active[keep]
            if active.size == 0:
                break
            w = w[:, keep]
            z = z[:, keep]
            u_w = u_w[:, keep]
            u_z = u_z[:, keep]

    if active.size:
        final[:, active] = w
        iterations[active] = max_iter

    info = {"rho": float(rho), "batch": float(k)}
    return _finalize(
        problem, final, y_stack, iterations, converged, "admm-bpdn-batch", info
    )


def solve_batch(
    problem: CsProblem,
    ys: Sequence[np.ndarray],
    *,
    method: str = "admm",
    sigma: Optional[float] = None,
    lam: Optional[float] = None,
    alpha0: Optional[np.ndarray] = None,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
) -> List[RecoveryResult]:
    """One batched solve over a window stack, dispatching on ``method``.

    ``method="admm"`` solves BPDN (needs ``sigma``); ``method="fista"``
    solves the LASSO (needs ``lam``).  Unset iteration controls fall back
    to each solver's own defaults.
    """
    kwargs: dict = {}
    if max_iter is not None:
        kwargs["max_iter"] = max_iter
    if tol is not None:
        kwargs["tol"] = tol
    if method == "admm":
        if sigma is None:
            raise ValueError("method 'admm' needs sigma")
        return solve_bpdn_admm_batch(problem, ys, sigma, alpha0=alpha0, **kwargs)
    if method == "fista":
        if lam is None:
            raise ValueError("method 'fista' needs lam")
        return solve_fista_batch(problem, ys, lam, alpha0=alpha0, **kwargs)
    raise ValueError(f"unknown batch method {method!r}")


def _chunks(count: int, size: int):
    for start in range(0, count, size):
        yield range(start, min(start + size, count))


def recover_windows(
    problem: CsProblem,
    ys: Sequence[np.ndarray],
    *,
    method: str = "admm",
    sigma: Optional[float] = None,
    lam: Optional[float] = None,
    batch_size: int = 32,
    warm_start: bool = True,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
) -> List[RecoveryResult]:
    """Solve a record's window sequence through the batched engine.

    Windows are grouped into stacks of ``batch_size``; with
    ``warm_start`` every column of a stack is seeded from the final
    solution of the *last window of the previous stack* (the newest
    solution that temporally precedes the whole stack).  The schedule is
    a pure function of the window sequence, so results are deterministic
    regardless of hardware or timing.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    results: List[RecoveryResult] = []
    carry: Optional[np.ndarray] = None
    for chunk in _chunks(len(ys), batch_size):
        batch = [ys[j] for j in chunk]
        alpha0 = carry if warm_start else None
        solved = solve_batch(
            problem,
            batch,
            method=method,
            sigma=sigma,
            lam=lam,
            alpha0=alpha0,
            max_iter=max_iter,
            tol=tol,
        )
        results.extend(solved)
        carry = solved[-1].alpha
    return results


def recover_windows_loop(
    problem: CsProblem,
    ys: Sequence[np.ndarray],
    *,
    method: str = "admm",
    sigma: Optional[float] = None,
    lam: Optional[float] = None,
    batch_size: int = 32,
    warm_start: bool = True,
    max_iter: Optional[int] = None,
    tol: Optional[float] = None,
    fresh_problem: bool = False,
) -> List[RecoveryResult]:
    """The per-window reference loop for :func:`recover_windows`.

    Identical warm-start schedule (chunk boundaries included), one scalar
    solve per window.  This is the benchmark baseline and the
    differential-test oracle; ``fresh_problem=True`` additionally rebuilds
    the composed operator per window, reproducing the pre-cache cost
    model the benchmarks compare against.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    results: List[RecoveryResult] = []
    carry: Optional[np.ndarray] = None
    kwargs: dict = {}
    if max_iter is not None:
        kwargs["max_iter"] = max_iter
    if tol is not None:
        kwargs["tol"] = tol
    for chunk in _chunks(len(ys), batch_size):
        chunk_carry = carry if warm_start else None
        for j in chunk:
            prob_arg = None if fresh_problem else problem
            if method == "admm":
                if sigma is None:
                    raise ValueError("method 'admm' needs sigma")
                result = solve_bpdn_admm(
                    problem.phi,
                    problem.basis,
                    ys[j],
                    sigma,
                    problem=prob_arg,
                    alpha0=chunk_carry,
                    **kwargs,
                )
            elif method == "fista":
                if lam is None:
                    raise ValueError("method 'fista' needs lam")
                result = solve_fista(
                    problem.phi,
                    problem.basis,
                    ys[j],
                    lam,
                    problem=prob_arg,
                    alpha0=chunk_carry,
                    **kwargs,
                )
            else:
                raise ValueError(f"unknown batch method {method!r}")
            results.append(result)
        carry = results[-1].alpha
    return results
