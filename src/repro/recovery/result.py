"""Result container shared by all recovery algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["RecoveryResult"]


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of a sparse-recovery solve.

    Attributes
    ----------
    alpha:
        Recovered coefficient vector (in the sparsifying basis).
    x:
        Recovered signal ``Ψ alpha`` in the same units the solver ran in.
    iterations:
        Iterations actually executed.
    converged:
        Whether the stopping criterion fired before the iteration cap.
    residual_norm:
        Final measurement-space residual ``||A alpha - y||_2``.
    objective:
        Final ``||alpha||_1``.
    solver:
        Short solver identifier (``"pdhg-bpdn"``, ``"omp"``, ...).
    info:
        Solver-specific diagnostics (step sizes, constraint violations...).
    """

    alpha: np.ndarray
    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    objective: float
    solver: str
    info: Dict[str, float] = field(default_factory=dict)

    def sparsity(self, threshold: float = 1e-6) -> int:
        """Number of coefficients with magnitude above ``threshold`` times
        the largest coefficient magnitude."""
        mags = np.abs(self.alpha)
        peak = float(mags.max()) if mags.size else 0.0
        if peak == 0.0:
            return 0
        return int(np.count_nonzero(mags > threshold * peak))

    def summary(self) -> str:
        """One-line human-readable description."""
        status = "converged" if self.converged else "max-iter"
        return (
            f"{self.solver}: {status} after {self.iterations} iters, "
            f"residual {self.residual_norm:.3e}, |alpha|_1 {self.objective:.3e}"
        )
