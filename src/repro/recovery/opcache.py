"""Process-wide operator cache for CS recovery problems.

Every sweep point, bench cell and streaming session that shares a
``(sensing spec, m, n, basis)`` configuration solves against the *same*
composed operator ``A = Φ Ψ`` — and, through :class:`CsProblem`, the same
Gram matrix, operator norm and factorizations.  Building that state per
window (or even per receiver) is the dominant fixed cost of a sweep:
Φ construction, the dense ``n x n`` Ψ, the ``m x n`` composition and the
``O(n^3)`` ADMM factorization.

:class:`ProblemCache` amortizes all of it: a bounded process-wide LRU of
:class:`CsProblem` instances keyed by :class:`ProblemKey` (sensing spec ×
measurement count × window length × basis), with a second-level basis
memo so two cache cells at different compression ratios still share one
dense Ψ.  Construction is deterministic, so a cached problem is
bit-identical to a freshly built one — callers opt in for speed, never
for different numerics (the differential test suite pins this).

Cache **keying**: the full :class:`ProblemKey` tuple; two configs that
differ in any keyed field never share state.  **Invalidation**: entries
are evicted least-recently-used beyond ``maxsize``; there is no dirty
state to invalidate because problems are immutable once built (their lazy
factorizations are pure functions of the key).  ``clear()`` exists for
tests and long-lived processes that change workload shape.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.recovery.problem import CsProblem
from repro.sensing.matrices import SensingSpec
from repro.wavelets.operators import SynthesisBasis, make_basis

__all__ = [
    "ProblemKey",
    "ProblemCache",
    "RecoveryEngineSettings",
    "PROBLEM_CACHE",
    "problem_for_config",
]


@dataclass(frozen=True)
class ProblemKey:
    """Identity of one composed operator: everything that determines A.

    Hashable and cheap, so it can key a process-wide cache and travel in
    benchmark artifacts.  ``m`` varies with the compression ratio while
    ``n``/``basis_spec`` usually stay fixed across a sweep — which is why
    the cache shares the dense Ψ across keys at the basis level.
    """

    sensing: SensingSpec
    m: int
    n: int
    basis_spec: str

    def __post_init__(self) -> None:
        if not 1 <= self.m <= self.n:
            raise ValueError("problem key needs 1 <= m <= n")

    @classmethod
    def from_config(cls, config) -> "ProblemKey":
        """The key for a front-end config (duck-typed to avoid an import
        cycle with :mod:`repro.core.config`)."""
        return cls(
            sensing=config.sensing,
            m=config.n_measurements,
            n=config.window_len,
            basis_spec=config.basis_spec,
        )


class ProblemCache:
    """Bounded LRU of :class:`CsProblem` instances, with hit accounting.

    Parameters
    ----------
    maxsize:
        Maximum retained problems.  A full paper sweep touches
        ``len(PAPER_CR_VALUES)`` distinct keys per basis, so the default
        comfortably holds an entire grid.

    Notes
    -----
    The cache is *not* thread-safe by design: the runtime fans work out
    over processes, and each worker process owns one cache instance (the
    same pattern as :func:`repro.runtime.stages.link_for`).
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._problems: "OrderedDict[ProblemKey, CsProblem]" = OrderedDict()
        self._bases: Dict[Tuple[int, str], SynthesisBasis] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._problems)

    def basis_for(self, n: int, basis_spec: str) -> SynthesisBasis:
        """The shared synthesis basis for ``(n, basis_spec)``.

        Second-level memo: different compression ratios (different ``m``)
        are distinct problem keys but share one Ψ, so sweeping the CR
        axis builds the dense basis exactly once.
        """
        bkey = (int(n), str(basis_spec))
        basis = self._bases.get(bkey)
        if basis is None:
            basis = make_basis(n, basis_spec)
            self._bases[bkey] = basis
        return basis

    def get(self, key: ProblemKey) -> CsProblem:
        """The cached problem for ``key``, building it on first use."""
        hit = self._problems.get(key)
        if hit is not None:
            self.hits += 1
            self._problems.move_to_end(key)
            return hit
        self.misses += 1
        phi = key.sensing.build(key.m, key.n)
        problem = CsProblem(phi, self.basis_for(key.n, key.basis_spec))
        self._problems[key] = problem
        while len(self._problems) > self.maxsize:
            self._problems.popitem(last=False)
        return problem

    def stats(self) -> Dict[str, float]:
        """Hit/miss accounting (reported by ``repro bench``)."""
        total = self.hits + self.misses
        return {
            "size": len(self._problems),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters (test isolation)."""
        self._problems.clear()
        self._bases.clear()
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class RecoveryEngineSettings:
    """Config flags for the batched/cached recovery layer.

    Hashable so it can live inside :class:`repro.core.config.FrontEndConfig`.

    Attributes
    ----------
    cache_problems:
        Pull the receiver's :class:`CsProblem` from the process-wide
        :data:`PROBLEM_CACHE` instead of building a private one.  Exact:
        problem construction is deterministic, so results are
        bit-identical either way.  Default on.
    warm_start_streams:
        Streaming sessions seed each window's solve from the previous
        window's recovered coefficients when that solution has already
        been applied (see ``docs/recovery.md`` for the determinism
        contract).  Default on.
    batch_size:
        Windows per stack in the batched solver engine
        (:mod:`repro.recovery.batched`).
    """

    cache_problems: bool = True
    warm_start_streams: bool = True
    batch_size: int = 32

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")


#: The per-process operator cache (one per worker, like the link cache).
PROBLEM_CACHE = ProblemCache()


def problem_for_config(config, cache: Optional[ProblemCache] = None) -> CsProblem:
    """The (usually cached) recovery problem for a front-end config.

    Honors ``config.recovery.cache_problems``: when the flag is off a
    fresh private :class:`CsProblem` is built, which is what the flag's
    bit-identity guarantee is tested against.
    """
    key = ProblemKey.from_config(config)
    settings = getattr(config, "recovery", None)
    if settings is not None and not settings.cache_problems:
        return CsProblem(
            key.sensing.build(key.m, key.n), make_basis(key.n, key.basis_spec)
        )
    # Explicit None test: an *empty* cache is falsy (it has __len__), and
    # `cache or PROBLEM_CACHE` would silently redirect it to the singleton.
    return (PROBLEM_CACHE if cache is None else cache).get(key)
