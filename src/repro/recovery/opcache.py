"""Process-wide operator cache for CS recovery problems.

Every sweep point, bench cell and streaming session that shares a
``(sensing spec, m, n, basis)`` configuration solves against the *same*
composed operator ``A = Φ Ψ`` — and, through :class:`CsProblem`, the same
Gram matrix, operator norm and factorizations.  Building that state per
window (or even per receiver) is the dominant fixed cost of a sweep:
Φ construction, the dense ``n x n`` Ψ, the ``m x n`` composition and the
``O(n^3)`` ADMM factorization.

:class:`ProblemCache` amortizes all of it: a bounded process-wide LRU of
:class:`CsProblem` instances keyed by :class:`ProblemKey` (sensing spec ×
measurement count × window length × basis), with a second-level basis
memo so two cache cells at different compression ratios still share one
dense Ψ.  Construction is deterministic, so a cached problem is
bit-identical to a freshly built one — callers opt in for speed, never
for different numerics (the differential test suite pins this).

Cache **keying**: the full :class:`ProblemKey` tuple; two configs that
differ in any keyed field never share state.  **Invalidation**: entries
are evicted least-recently-used beyond ``maxsize``; there is no dirty
state to invalidate because problems are immutable once built (their lazy
factorizations are pure functions of the key).  ``clear()`` exists for
tests and long-lived processes that change workload shape.

Since the array-backend seam (:mod:`repro.backend`) the cache also holds
**operator sets**: the backend-resident copy of ``A`` and its ADMM
factorization for one ``(problem, backend, precision)`` triple, keyed by
all three — a float32 solve and a float64 solve of the same problem
never share a factorization.  The exact NumPy/float64 set is a pure
delegate to the problem's own lazily cached state, so the bit-identity
contract is untouched.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.backend import BackendSettings, get_backend
from repro.recovery.bsbl import BsblSettings
from repro.recovery.problem import CsProblem
from repro.sensing.matrices import SensingSpec
from repro.wavelets.operators import SynthesisBasis, make_basis

__all__ = [
    "ProblemKey",
    "ProblemCache",
    "OperatorSet",
    "RecoveryEngineSettings",
    "PROBLEM_CACHE",
    "problem_for_config",
    "operators_for",
]


@dataclass(frozen=True)
class ProblemKey:
    """Identity of one composed operator: everything that determines A.

    Hashable and cheap, so it can key a process-wide cache and travel in
    benchmark artifacts.  ``m`` varies with the compression ratio while
    ``n``/``basis_spec`` usually stay fixed across a sweep — which is why
    the cache shares the dense Ψ across keys at the basis level.
    """

    sensing: SensingSpec
    m: int
    n: int
    basis_spec: str

    def __post_init__(self) -> None:
        if not 1 <= self.m <= self.n:
            raise ValueError("problem key needs 1 <= m <= n")

    @classmethod
    def from_config(cls, config) -> "ProblemKey":
        """The key for a front-end config (duck-typed to avoid an import
        cycle with :mod:`repro.core.config`)."""
        return cls(
            sensing=config.sensing,
            m=config.n_measurements,
            n=config.window_len,
            basis_spec=config.basis_spec,
        )


class OperatorSet:
    """Backend-resident operator state for one ``(problem, backend, dtype)``.

    The batched solvers consume this instead of touching ``problem.a`` /
    ``problem.admm_factor()`` directly.  On the exact NumPy/float64 path
    every accessor *delegates* to the problem's own lazily cached state —
    same objects, same numerics, so factor sharing and bit-identity are
    preserved.  On a fast path the set owns a converted copy of ``A`` and
    a factorization of ``I + AᵀA`` computed natively in the target
    precision on the target backend (a float32 solve uses a float32
    Cholesky, not a demoted float64 one).
    """

    def __init__(self, problem: CsProblem, settings: BackendSettings) -> None:
        self.problem = problem
        self.settings = settings
        self.backend = get_backend(settings.name)
        self.dtype = self.backend.dtype(settings.precision)
        self._a = None
        self._gram = None
        self._admm_factor = None

    @property
    def a(self):
        """The composed operator ``A = Φ Ψ`` on this backend/precision;
        shape ``(m, n)``."""
        if self.settings.is_exact:
            return self.problem.a
        if self._a is None:
            self._a = self.backend.asarray(self.problem.a, dtype=self.dtype)
        return self._a

    def opnorm_sq(self) -> float:
        """``||A||_2^2`` (scalar step sizes stay host floats everywhere)."""
        return self.problem.opnorm_sq()

    def gram(self):
        """The Gram matrix ``AᵀA`` on this backend/precision; ``(n, n)``.

        The block-structured Bayesian solvers build their information
        matrix from this each solve, so it is memoized per operator set —
        exactly once per ``(problem, backend, precision)``, like the ADMM
        factor.  The exact path delegates to the problem's own cached
        Gram, so scalar and batched BSBL share one bit-identical matrix.
        """
        if self.settings.is_exact:
            return self.problem.gram()
        if self._gram is None:
            a = self.a
            self._gram = a.T @ a
        return self._gram

    def admm_factor(self):
        """Cholesky factor of ``I + AᵀA`` in this backend/precision."""
        if self.settings.is_exact:
            return self.problem.admm_factor()
        if self._admm_factor is None:
            xp = self.backend.xp
            a = self.a
            self._admm_factor = self.backend.cho_factor(
                xp.eye(a.shape[1], dtype=self.dtype) + self.gram()
            )
        return self._admm_factor

    def cho_solve(self, rhs, overwrite_b: bool = False):
        """Solve ``(I + AᵀA) x = rhs`` through the cached factorization;
        ``rhs`` may be an ``(n, k)`` stack.  ``overwrite_b=True`` lets
        the backend use ``rhs`` as scratch (identical solution values;
        pass it only for right-hand sides you are done reading)."""
        return self.backend.cho_solve(
            self.admm_factor(), rhs, overwrite_b=overwrite_b
        )


class ProblemCache:
    """Bounded LRU of :class:`CsProblem` instances, with hit accounting.

    Parameters
    ----------
    maxsize:
        Maximum retained problems.  A full paper sweep touches
        ``len(PAPER_CR_VALUES)`` distinct keys per basis, so the default
        comfortably holds an entire grid.

    Notes
    -----
    The cache is *not* thread-safe by design: the runtime fans work out
    over processes, and each worker process owns one cache instance (the
    same pattern as :func:`repro.runtime.stages.link_for`).
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        self._problems: "OrderedDict[ProblemKey, CsProblem]" = OrderedDict()
        self._bases: Dict[Tuple[int, str], SynthesisBasis] = {}
        # Operator sets keyed by (problem identity, backend, precision).
        # The OperatorSet holds a strong reference to its problem, so the
        # id() stays valid for exactly as long as the entry lives (the
        # same identity-keyed pattern as the runtime's inline link memo).
        self._operators: "OrderedDict[Tuple[int, str, str], OperatorSet]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.operator_hits = 0
        self.operator_misses = 0

    def __len__(self) -> int:
        return len(self._problems)

    def basis_for(self, n: int, basis_spec: str) -> SynthesisBasis:
        """The shared synthesis basis for ``(n, basis_spec)``.

        Second-level memo: different compression ratios (different ``m``)
        are distinct problem keys but share one Ψ, so sweeping the CR
        axis builds the dense basis exactly once.
        """
        bkey = (int(n), str(basis_spec))
        basis = self._bases.get(bkey)
        if basis is None:
            basis = make_basis(n, basis_spec)
            self._bases[bkey] = basis
        return basis

    def get(self, key: ProblemKey) -> CsProblem:
        """The cached problem for ``key``, building it on first use."""
        hit = self._problems.get(key)
        if hit is not None:
            self.hits += 1
            self._problems.move_to_end(key)
            return hit
        self.misses += 1
        phi = key.sensing.build(key.m, key.n)
        problem = CsProblem(phi, self.basis_for(key.n, key.basis_spec))
        self._problems[key] = problem
        while len(self._problems) > self.maxsize:
            self._problems.popitem(last=False)
        return problem

    def operators(self, problem: CsProblem, settings: BackendSettings) -> OperatorSet:
        """The cached :class:`OperatorSet` for a problem at given settings.

        Keyed by ``(problem, backend name, precision)`` — all three
        participate, so switching backend *or* dtype never reuses a
        factorization computed for another combination.
        """
        okey = (id(problem), settings.name, settings.precision)
        hit = self._operators.get(okey)
        if hit is not None:
            self.operator_hits += 1
            self._operators.move_to_end(okey)
            return hit
        self.operator_misses += 1
        ops = OperatorSet(problem, settings)
        self._operators[okey] = ops
        while len(self._operators) > self.maxsize:
            self._operators.popitem(last=False)
        return ops

    def stats(self) -> Dict[str, float]:
        """Hit/miss accounting (reported by ``repro bench``)."""
        total = self.hits + self.misses
        op_total = self.operator_hits + self.operator_misses
        return {
            "size": len(self._problems),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
            "operator_sets": len(self._operators),
            "operator_hits": self.operator_hits,
            "operator_misses": self.operator_misses,
            "operator_hit_rate": (
                (self.operator_hits / op_total) if op_total else 0.0
            ),
        }

    def resize(self, maxsize: int) -> None:
        """Change the LRU bound, evicting least-recently-used overflow.

        Serves the ``--cache-size`` bench knob: shrinking below the live
        population evicts immediately (problems and operator sets both),
        so hit-rate experiments see the new bound without a restart.
        Counters are kept — resizing is an observation change, not a
        reset.
        """
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = int(maxsize)
        while len(self._problems) > self.maxsize:
            self._problems.popitem(last=False)
        while len(self._operators) > self.maxsize:
            self._operators.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the counters (test isolation)."""
        self._problems.clear()
        self._bases.clear()
        self._operators.clear()
        self.hits = 0
        self.misses = 0
        self.operator_hits = 0
        self.operator_misses = 0


@dataclass(frozen=True)
class RecoveryEngineSettings:
    """Config flags for the batched/cached recovery layer.

    Hashable so it can live inside :class:`repro.core.config.FrontEndConfig`.

    Attributes
    ----------
    cache_problems:
        Pull the receiver's :class:`CsProblem` from the process-wide
        :data:`PROBLEM_CACHE` instead of building a private one.  Exact:
        problem construction is deterministic, so results are
        bit-identical either way.  Default on.
    warm_start_streams:
        Streaming sessions seed each window's solve from the previous
        window's recovered coefficients when that solution has already
        been applied (see ``docs/recovery.md`` for the determinism
        contract).  Default on.
    batch_size:
        Windows per stack in the batched solver engine
        (:mod:`repro.recovery.batched`).
    bsbl:
        EM knobs for the Bayesian recovery family
        (:mod:`repro.recovery.bsbl`); ignored by the convex methods.
    """

    cache_problems: bool = True
    warm_start_streams: bool = True
    batch_size: int = 32
    bsbl: BsblSettings = field(default_factory=BsblSettings)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")


#: The per-process operator cache (one per worker, like the link cache).
PROBLEM_CACHE = ProblemCache()


def problem_for_config(config, cache: Optional[ProblemCache] = None) -> CsProblem:
    """The (usually cached) recovery problem for a front-end config.

    Honors ``config.recovery.cache_problems``: when the flag is off a
    fresh private :class:`CsProblem` is built, which is what the flag's
    bit-identity guarantee is tested against.
    """
    key = ProblemKey.from_config(config)
    settings = getattr(config, "recovery", None)
    if settings is not None and not settings.cache_problems:
        return CsProblem(
            key.sensing.build(key.m, key.n), make_basis(key.n, key.basis_spec)
        )
    # Explicit None test: an *empty* cache is falsy (it has __len__), and
    # `cache or PROBLEM_CACHE` would silently redirect it to the singleton.
    return (PROBLEM_CACHE if cache is None else cache).get(key)


def operators_for(
    problem: CsProblem,
    settings: Optional[BackendSettings] = None,
    cache: Optional[ProblemCache] = None,
) -> OperatorSet:
    """The (cached) operator set for a problem at given backend settings.

    ``None`` settings mean the exact NumPy/float64 default.  Every call
    goes through the operator store, so repeated solves at the same
    ``(backend, precision)`` reuse one converted operator and one
    factorization, while differing combinations get distinct sets.
    """
    if settings is None:
        settings = BackendSettings()
    store = PROBLEM_CACHE if cache is None else cache
    return store.operators(problem, settings)
