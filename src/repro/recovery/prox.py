"""Proximal operators and projections used by the convex solvers.

All maps here are the textbook closed forms; the test suite checks each
against its defining variational property (nonexpansiveness, idempotence of
projections, the prox optimality condition) with hypothesis-generated
inputs.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "soft_threshold",
    "project_l2_ball",
    "project_box",
    "prox_l1",
]


def soft_threshold(v: np.ndarray, threshold: float) -> np.ndarray:
    """Soft-thresholding ``sign(v) * max(|v| - threshold, 0)``.

    The proximal operator of ``threshold * ||.||_1``; same shape as ``v``.
    """
    if threshold < 0:
        raise ValueError("threshold cannot be negative")
    arr = np.asarray(v, dtype=float)
    return np.sign(arr) * np.maximum(np.abs(arr) - threshold, 0.0)


# The prox of t*||.||_1 *is* soft thresholding; alias for readability at
# call sites that think in prox terms.
prox_l1 = soft_threshold


def project_l2_ball(
    v: np.ndarray, center: np.ndarray, radius: float
) -> np.ndarray:
    """Euclidean projection onto the ball ``||z - center||_2 <= radius``;
    same shape as ``z``."""
    if radius < 0:
        raise ValueError("radius cannot be negative")
    arr = np.asarray(v, dtype=float)
    c = np.asarray(center, dtype=float)
    if arr.shape != c.shape:
        raise ValueError("vector and center shapes differ")
    diff = arr - c
    norm = float(np.linalg.norm(diff))
    if norm <= radius or norm == 0.0:
        return arr.copy()
    return c + diff * (radius / norm)


def project_box(
    v: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """Projection onto the box ``{z : lower <= z <= upper}`` (elementwise).

    ``lower``/``upper`` may be scalars or arrays broadcastable to ``v``;
    every lower bound must not exceed its upper bound.
    """
    arr = np.asarray(v, dtype=float)
    lo = np.broadcast_to(np.asarray(lower, dtype=float), arr.shape)
    hi = np.broadcast_to(np.asarray(upper, dtype=float), arr.shape)
    if np.any(lo > hi):
        raise ValueError("box is empty: some lower bound exceeds its upper bound")
    return np.clip(arr, lo, hi)
