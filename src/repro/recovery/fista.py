"""FISTA for the unconstrained LASSO formulation.

Solves the penalized form ``min 0.5 ||A alpha - y||^2 + lam ||alpha||_1``
with Nesterov acceleration.  Included as (a) an independent cross-check of
the PDHG solutions (for matched ``lam``/``sigma`` pairs the solution paths
agree) and (b) a baseline the solver ablation benchmarks exercise.

Two optional behaviors extend the textbook iteration:

* **warm starting** (``alpha0``) — start from a previous window's
  solution; the momentum state and ``t_k`` sequence restart from scratch,
  so a warm-started solve is exactly a cold solve of the shifted problem;
* **monotone adaptive restart** (``adaptive_restart``) — the
  O'Donoghue–Candès function scheme with step rejection: when the
  accelerated candidate increases the composite objective, the momentum
  is discarded (``t_k = 1``) and the iterate is recomputed as a plain
  ISTA step from the previous point, which the majorization property
  guarantees is non-increasing.  With the flag on, the composite
  objective is non-increasing at *every* accepted iterate — a property
  the hypothesis suite checks.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.recovery.problem import CsProblem
from repro.recovery.prox import soft_threshold
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis

__all__ = ["solve_fista", "lambda_max"]


def lambda_max(problem: CsProblem, y: np.ndarray) -> float:
    """Smallest ``lam`` for which the LASSO solution is exactly zero
    (``||A^T y||_inf``); useful for scaling regularization sweeps."""
    return float(np.max(np.abs(problem.adjoint(np.asarray(y, dtype=float)))))


def _composite_objective(
    prob: CsProblem, alpha: np.ndarray, y: np.ndarray, lam: float
) -> float:
    """The LASSO objective ``0.5 ||A alpha - y||^2 + lam ||alpha||_1``."""
    residual = prob.forward(alpha) - y
    return 0.5 * float(residual @ residual) + lam * float(np.sum(np.abs(alpha)))


def solve_fista(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    lam: float,
    *,
    max_iter: int = 2000,
    tol: float = 1e-6,
    problem: Optional[CsProblem] = None,
    alpha0: Optional[np.ndarray] = None,
    adaptive_restart: bool = False,
    objective_history: Optional[List[float]] = None,
) -> RecoveryResult:
    """Accelerated proximal-gradient solve of the LASSO.

    Parameters
    ----------
    phi, basis, y:
        Measurement setup, as elsewhere in :mod:`repro.recovery`.
    lam:
        L1 penalty weight (must be positive; see :func:`lambda_max`).
    max_iter, tol:
        Iteration cap and relative-change stopping tolerance.
    problem:
        Optional pre-built :class:`CsProblem`.
    alpha0:
        Optional warm start (defaults to zero).
    adaptive_restart:
        Enable the monotone restart scheme (see module docstring); the
        number of restarts taken is reported in ``info["restarts"]``.
    objective_history:
        When a list is supplied, the composite objective at the starting
        point and after every accepted iterate is appended to it.
    """
    if lam <= 0:
        raise ValueError("lam must be positive")
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    if y.shape != (prob.m,):
        raise ValueError(f"expected {prob.m} measurements")

    step = 1.0 / prob.opnorm_sq()
    if alpha0 is None:
        alpha = np.zeros(prob.n)
    else:
        alpha = np.asarray(alpha0, dtype=float).copy()
        if alpha.shape != (prob.n,):
            raise ValueError(f"alpha0 must be a vector of length {prob.n}")
    momentum = alpha.copy()
    t_k = 1.0
    restarts = 0
    track = adaptive_restart or objective_history is not None
    objective_now = (
        _composite_objective(prob, alpha, y, lam) if track else 0.0
    )
    if objective_history is not None:
        objective_history.append(objective_now)

    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        grad = prob.adjoint(prob.forward(momentum) - y)
        alpha_new = soft_threshold(momentum - step * grad, step * lam)
        if adaptive_restart:
            objective_new = _composite_objective(prob, alpha_new, y, lam)
            if objective_new > objective_now:
                # Reject the accelerated candidate: restart the momentum
                # and take a plain ISTA step from the current point, which
                # cannot increase the objective at step <= 1/L.
                restarts += 1
                t_k = 1.0
                grad = prob.adjoint(prob.forward(alpha) - y)
                alpha_new = soft_threshold(alpha - step * grad, step * lam)
                objective_new = _composite_objective(prob, alpha_new, y, lam)
            objective_now = objective_new
        elif objective_history is not None:
            objective_now = _composite_objective(prob, alpha_new, y, lam)
        if objective_history is not None:
            objective_history.append(objective_now)
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t_k**2)) / 2.0
        momentum = alpha_new + ((t_k - 1.0) / t_next) * (alpha_new - alpha)
        change = float(np.linalg.norm(alpha_new - alpha))
        scale = max(float(np.linalg.norm(alpha_new)), 1.0)
        alpha = alpha_new
        t_k = t_next
        if change <= tol * scale:
            converged = True
            break

    residual = float(np.linalg.norm(prob.forward(alpha) - y))
    info = {"lam": float(lam), "step": float(step)}
    if adaptive_restart:
        info["restarts"] = float(restarts)
    return RecoveryResult(
        alpha=alpha,
        x=prob.basis.synthesize(alpha),
        iterations=iterations,
        converged=converged,
        residual_norm=residual,
        objective=float(np.sum(np.abs(alpha))),
        solver="fista-lasso",
        info=info,
    )
