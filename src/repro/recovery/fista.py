"""FISTA for the unconstrained LASSO formulation.

Solves the penalized form ``min 0.5 ||A alpha - y||^2 + lam ||alpha||_1``
with Nesterov acceleration.  Included as (a) an independent cross-check of
the PDHG solutions (for matched ``lam``/``sigma`` pairs the solution paths
agree) and (b) a baseline the solver ablation benchmarks exercise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.recovery.problem import CsProblem
from repro.recovery.prox import soft_threshold
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis

__all__ = ["solve_fista", "lambda_max"]


def lambda_max(problem: CsProblem, y: np.ndarray) -> float:
    """Smallest ``lam`` for which the LASSO solution is exactly zero
    (``||A^T y||_inf``); useful for scaling regularization sweeps."""
    return float(np.max(np.abs(problem.adjoint(np.asarray(y, dtype=float)))))


def solve_fista(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    lam: float,
    *,
    max_iter: int = 2000,
    tol: float = 1e-6,
    problem: Optional[CsProblem] = None,
) -> RecoveryResult:
    """Accelerated proximal-gradient solve of the LASSO.

    Parameters
    ----------
    phi, basis, y:
        Measurement setup, as elsewhere in :mod:`repro.recovery`.
    lam:
        L1 penalty weight (must be positive; see :func:`lambda_max`).
    max_iter, tol:
        Iteration cap and relative-change stopping tolerance.
    problem:
        Optional pre-built :class:`CsProblem`.
    """
    if lam <= 0:
        raise ValueError("lam must be positive")
    prob = problem if problem is not None else CsProblem(phi, basis)
    y = np.asarray(y, dtype=float)
    if y.shape != (prob.m,):
        raise ValueError(f"expected {prob.m} measurements")

    step = 1.0 / prob.opnorm_sq()
    alpha = np.zeros(prob.n)
    momentum = alpha.copy()
    t_k = 1.0
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        grad = prob.adjoint(prob.forward(momentum) - y)
        alpha_new = soft_threshold(momentum - step * grad, step * lam)
        t_next = (1.0 + np.sqrt(1.0 + 4.0 * t_k**2)) / 2.0
        momentum = alpha_new + ((t_k - 1.0) / t_next) * (alpha_new - alpha)
        change = float(np.linalg.norm(alpha_new - alpha))
        scale = max(float(np.linalg.norm(alpha_new)), 1.0)
        alpha = alpha_new
        t_k = t_next
        if change <= tol * scale:
            converged = True
            break

    residual = float(np.linalg.norm(prob.forward(alpha) - y))
    return RecoveryResult(
        alpha=alpha,
        x=prob.basis.synthesize(alpha),
        iterations=iterations,
        converged=converged,
        residual_norm=residual,
        objective=float(np.sum(np.abs(alpha))),
        solver="fista-lasso",
        info={"lam": float(lam), "step": float(step)},
    )
