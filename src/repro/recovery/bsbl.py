"""Block-sparse Bayesian learning (BSBL-BO) with Bayesian de-quantization.

The paper's Eq. 1 treats the coarsely quantized measurements as exact and
the low-res parallel path as a hard per-sample box.  The Bayesian family
implemented here instead models both channels statistically, following
Zhang & Rao's BSBL-BO (bound-optimization) algorithm:

.. math::

    y = A \\alpha + v, \\quad v \\sim N(0, \\lambda I), \\qquad
    \\alpha \\sim N(0, \\Gamma), \\quad
    \\Gamma = \\mathrm{blockdiag}(\\gamma_1 B, \\ldots, \\gamma_g B)

with ``A = Φ Ψ``, a fixed partition of the ``n`` wavelet coefficients
into ``g = n / block_len`` equal blocks, one nonnegative scale
``gamma_g`` per block and a shared intra-block correlation matrix ``B``
(AR(1) Toeplitz, optionally re-estimated each EM iteration).  The
posterior mean is the estimate; block scales are learned by the BO
fixed-point rule, which provably never increases the negative log
evidence for a fixed ``B`` (the property suite pins this).

**Information form.**  All solvers here iterate in coefficient space on

.. math::

    G = A^T R^{-1} A, \\qquad b = A^T R^{-1} y

which stays *fixed across EM iterations* (and, through the operator
cache, across windows), so each iteration costs one SPD solve against
``M = \\Gamma^{-1} + G`` with ``mu = M^{-1} b``,
``\\Sigma = M^{-1}``.  The classical C-space quantities follow from the
Woodbury identities ``q = b - G mu`` and ``H = G - G \\Sigma G`` (only
the diagonal blocks of ``H`` are formed), and the evidence via
``log|C| = log|R| + log|\\Gamma| + log|M|`` and
``y^T C^{-1} y = y^T R^{-1} y - b^T mu``.

**Bayesian de-quantization.**  The hybrid path's low-res samples pin each
signal value to a cell of ``d`` acquisition codes.  Instead of Eq. 1's
hard box, :func:`solve_bsbl_dequant` treats the cell midpoint as a noisy
observation of the signal with the cell's own quantization-noise variance
(``(d^2 - 1) / 12`` for a discrete uniform over ``d`` codes).  Because Ψ
is orthonormal this adds ``I / \\sigma_q^2`` to ``G`` and
``Ψ^T x_mid / \\sigma_q^2`` to ``b`` — the de-quantizer is the *same*
EM iteration on an augmented information pair, so both modes share one
kernel (and one batched twin in :mod:`repro.recovery.batched`).

The measurement noise is the CS quantizer's own error,
``\\lambda = step^2 / 12`` (see :func:`measurement_noise_var` and the
receiver's ``sigma()`` rationale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from repro.devtools.contracts import check_finite, check_shape
from repro.recovery.problem import CsProblem
from repro.recovery.result import RecoveryResult
from repro.wavelets.operators import SynthesisBasis

__all__ = [
    "BsblSettings",
    "measurement_noise_var",
    "lowres_cell_stats",
    "solve_bsbl",
    "solve_bsbl_dequant",
]

#: Positivity floor used wherever a ratio could divide by ~0.
_TINY = 1e-30


@dataclass(frozen=True)
class BsblSettings:
    """Knobs for the BSBL-BO expectation-maximization loop.

    Hashable (all-scalar, frozen) so it can ride inside
    :class:`repro.recovery.opcache.RecoveryEngineSettings` and hence
    :class:`repro.core.config.FrontEndConfig`.

    Attributes
    ----------
    block_len:
        Coefficients per block; must divide the window length.  The
        paper-scale windows (512/256/128) all work with the default 16,
        which matches the db4 subband granularity well.
    max_iter:
        EM iteration cap.
    tol:
        Relative posterior-mean change below which the loop stops.
    learn_correlation:
        Re-estimate the shared intra-block AR(1) correlation ``r`` from
        the posterior mean each iteration.  Off: ``B = I`` stays fixed,
        which is the setting under which the BO update is provably
        monotone (the property suite runs with it off for that reason).
    corr_limit:
        Clip for the learned ``|r|`` (keeps ``B`` well conditioned).
    gamma_floor:
        Lower clamp for block scales; blocks at the floor are effectively
        pruned without changing the iteration shape (batched and scalar
        paths stay aligned column-for-column).
    noise_scale:
        Multiplier on the quantization-noise standard deviation used to
        build ``lambda`` — the Bayesian analogue of ``sigma_safety``.
    """

    block_len: int = 16
    max_iter: int = 120
    tol: float = 1e-4
    learn_correlation: bool = True
    corr_limit: float = 0.95
    gamma_floor: float = 1e-12
    noise_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.block_len < 1:
            raise ValueError("block_len must be positive")
        if self.max_iter < 1:
            raise ValueError("max_iter must be positive")
        if self.tol <= 0:
            raise ValueError("tol must be positive")
        if not 0.0 <= self.corr_limit < 1.0:
            raise ValueError("corr_limit must be in [0, 1)")
        if self.gamma_floor <= 0:
            raise ValueError("gamma_floor must be positive")
        if self.noise_scale <= 0:
            raise ValueError("noise_scale must be positive")

    def blocks_for(self, n: int) -> int:
        """Number of blocks for an ``n``-coefficient window (validating)."""
        if n % self.block_len:
            raise ValueError(
                f"block_len {self.block_len} does not divide window length {n}"
            )
        return n // self.block_len


def measurement_noise_var(step: float, noise_scale: float = 1.0) -> float:
    """Per-measurement quantization-noise variance ``(scale * step)^2 / 12``.

    The CS quantizer's error is uniform in ``±step/2``; this is the same
    noise model behind the convex path's fidelity radius ``sigma()``,
    expressed as a variance for the Gaussian likelihood.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    return (noise_scale * step) ** 2 / 12.0


def lowres_cell_stats(
    lower: np.ndarray, upper: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Midpoints and variance of the low-res cells ``[lower, upper]``.

    ``lower``/``upper`` are the Eq.-1 box bounds on the acquisition-code
    grid (each cell spans ``d = upper - lower + 1`` integer codes).  The
    underlying code is discrete-uniform over the cell, so the observation
    is the midpoint with variance ``(d^2 - 1) / 12`` — floored at
    ``1/12`` (one acquisition LSB) because even an exact low-res sample
    was itself integerized from the analog signal.
    """
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if lower.shape != upper.shape:
        raise ValueError("lower/upper must share a shape")
    width = upper - lower + 1.0
    if np.any(width < 1.0):
        raise ValueError("cells must span at least one code")
    mid = 0.5 * (lower + upper)
    var = float(np.mean((width * width - 1.0) / 12.0))
    return mid, max(var, 1.0 / 12.0)


def ar1_blocks(xp: Any, r: Any, block_len: int) -> Tuple[Any, Any, Any]:
    """AR(1) Toeplitz ``B``, its closed-form inverse and ``log|B|``.

    ``r`` is a stack of correlations, shape ``(k,)``; returns
    ``(B, B_inv, logdet)`` with shapes ``(k, b, b)``, ``(k, b, b)`` and
    ``(k,)``.  ``B[i, j] = r^|i-j|`` has the classical tridiagonal
    inverse ``(1/(1-r^2)) tridiag(-r; 1, 1+r^2, ..., 1+r^2, 1; -r)`` and
    ``log|B| = (b-1) log(1-r^2)`` — exact, so neither path ever
    factorizes a ``B``.  Parameterized on the array namespace ``xp`` so
    the backend-seam batched engine shares the arithmetic.
    """
    r = xp.asarray(r)
    k = r.shape[0]
    b = int(block_len)
    dtype = r.dtype
    if b == 1:
        ones = xp.ones((k, 1, 1), dtype=dtype)
        return ones, ones.copy(), xp.zeros(k, dtype=dtype)
    idx = xp.arange(b)
    powers = xp.abs(idx[:, None] - idx[None, :])
    bmat = r[:, None, None] ** powers[None, :, :]
    denom = 1.0 - r * r
    binv = xp.zeros((k, b, b), dtype=dtype)
    binv[:, idx, idx] = (1.0 + r * r)[:, None]
    binv[:, 0, 0] = 1.0
    binv[:, b - 1, b - 1] = 1.0
    binv[:, idx[:-1], idx[1:]] = -r[:, None]
    binv[:, idx[1:], idx[:-1]] = -r[:, None]
    binv = binv / denom[:, None, None]
    logdet = (b - 1) * xp.log(denom)
    return bmat, binv, logdet


def bo_gamma_factor(xp: Any, num: Any, den: Any) -> Any:
    """The BO multiplicative update ``sqrt(num / den)``, guarded.

    ``num = q^T B q >= 0`` and ``den = tr(B H) > 0`` in exact arithmetic;
    the guards only protect against floating-point collapse of a dead
    block, and are shared verbatim by the scalar and batched loops so the
    two stay aligned elementwise.
    """
    safe_den = xp.maximum(den, _TINY)
    return xp.sqrt(xp.maximum(num, 0.0) / safe_den)


def ar1_estimate(xp: Any, mub: Any, gamma: Any, corr_limit: float) -> Any:
    """Per-window AR(1) correlation from posterior-mean blocks.

    ``mub`` has shape ``(k, g, b)`` and ``gamma`` ``(k, g)``; returns the
    clipped lag-1 correlation per window, shape ``(k,)`` — Zhang & Rao's
    practical ``B`` re-estimation from the scale-whitened empirical block
    covariance, reduced to its Toeplitz (lag-averaged) form.
    """
    inv_gamma = 1.0 / xp.maximum(gamma, _TINY)
    diag = xp.einsum("kgb,kgb,kg->k", mub, mub, inv_gamma)
    off = xp.einsum("kgb,kgb,kg->k", mub[:, :, :-1], mub[:, :, 1:], inv_gamma)
    b = mub.shape[2]
    diag_mean = diag / b
    off_mean = off / max(b - 1, 1)
    raw = xp.where(diag_mean > _TINY, off_mean / xp.maximum(diag_mean, _TINY), 0.0)
    raw = xp.where(xp.isfinite(raw), raw, 0.0)
    return xp.clip(raw, -corr_limit, corr_limit)


def initial_gamma(xp: Any, alpha0: Any, k: int, g: int, block_len: int) -> Any:
    """Block scales seeding the EM: flat 1.0 cold, energy-based warm.

    ``alpha0`` is ``None`` (cold start) or an ``(n, k)`` coefficient
    stack; warm scales are the per-block mean square plus a small offset
    so a zero warm-start block can still wake up.
    """
    if alpha0 is None:
        return xp.ones((k, g))
    blocks = xp.transpose(alpha0).reshape(k, g, block_len)
    return xp.mean(blocks * blocks, axis=2) + 1e-2


def _em_information_form(
    G: np.ndarray,
    b_vec: np.ndarray,
    y_quad: float,
    logdet_r: float,
    settings: BsblSettings,
    alpha0: Optional[np.ndarray],
) -> Tuple[np.ndarray, int, bool, list]:
    """The scalar BSBL-BO loop on one information pair ``(G, b)``.

    Returns ``(mu, iterations, converged, objective_history)`` where the
    history holds the negative log evidence *before* each gamma update —
    non-increasing for fixed ``B`` (``learn_correlation=False``).  This
    is the differential oracle for the batched engine: the batched loop
    in :mod:`repro.recovery.batched` repeats this arithmetic
    column-for-column (minus the evidence bookkeeping).
    """
    n = G.shape[0]
    blen = settings.block_len
    g = settings.blocks_for(n)
    idx = np.arange(g)
    gdiag = G.reshape(g, blen, g, blen)[idx, :, idx, :]
    gamma = initial_gamma(
        np, None if alpha0 is None else alpha0[:, None], 1, g, blen
    )[0]
    r = 0.0
    mu = np.zeros(n)
    history: list = []
    iterations = 0
    converged = False

    for it in range(1, settings.max_iter + 1):
        iterations = it
        bmat, binv, logdet_b = ar1_blocks(np, np.array([r]), blen)
        m_mat = G.copy()
        mview = m_mat.reshape(g, blen, g, blen)
        mview[idx, :, idx, :] += binv[0][None, :, :] / gamma[:, None, None]

        rhs = np.concatenate([b_vec[:, None], G], axis=1)
        sol = np.linalg.solve(m_mat, rhs)
        mu_new = sol[:, 0]
        w_mat = sol[:, 1:]

        _, logdet_m = np.linalg.slogdet(m_mat)
        logdet_gamma = blen * float(np.sum(np.log(gamma))) + g * float(logdet_b[0])
        history.append(
            logdet_r
            + logdet_gamma
            + float(logdet_m)
            + y_quad
            - float(b_vec @ mu_new)
        )

        q = b_vec - G @ mu_new
        qb = q.reshape(g, blen)
        num = np.einsum("gb,bc,gc->g", qb, bmat[0], qb)
        gw = np.einsum("ibn,nie->ibe", G.reshape(g, blen, n), w_mat.reshape(n, g, blen))
        den = np.einsum("bc,gcb->g", bmat[0], gdiag - gw)
        gamma_prev = gamma
        gamma = np.maximum(
            gamma * bo_gamma_factor(np, num, den), settings.gamma_floor
        )

        change = float(np.linalg.norm(mu_new - mu))
        scale = max(float(np.linalg.norm(mu_new)), 1e-12)
        mu = mu_new
        if change <= settings.tol * scale:
            converged = True
            break

        if settings.learn_correlation and blen > 1:
            r = float(
                ar1_estimate(
                    np,
                    mu.reshape(1, g, blen),
                    gamma_prev[None, :],
                    settings.corr_limit,
                )[0]
            )

    return mu, iterations, converged, history


def _finish(
    problem: CsProblem,
    y: np.ndarray,
    mu: np.ndarray,
    iterations: int,
    converged: bool,
    history: list,
    solver: str,
    settings: BsblSettings,
    extra: dict,
) -> RecoveryResult:
    info = {
        "block_len": float(settings.block_len),
        "em_objective": float(history[-1]),
        "objective_history": tuple(history),
    }
    info.update(extra)
    return RecoveryResult(
        alpha=mu,
        x=problem.basis.synthesize(mu),
        iterations=iterations,
        converged=converged,
        residual_norm=float(np.linalg.norm(problem.forward(mu) - y)),
        objective=float(np.sum(np.abs(mu))),
        solver=solver,
        info=info,
    )


def _check_inputs(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    problem: Optional[CsProblem],
    alpha0: Optional[np.ndarray],
) -> Tuple[CsProblem, np.ndarray, Optional[np.ndarray]]:
    if problem is None:
        problem = CsProblem(phi, basis)
    y = check_finite(np.asarray(y, dtype=float), name="y")
    y = check_shape(y, (problem.m,), name="y")
    if alpha0 is not None:
        alpha0 = check_shape(
            np.asarray(alpha0, dtype=float), (problem.n,), name="alpha0"
        )
    return problem, y, alpha0


def solve_bsbl(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    noise_var: float,
    *,
    settings: Optional[BsblSettings] = None,
    problem: Optional[CsProblem] = None,
    alpha0: Optional[np.ndarray] = None,
) -> RecoveryResult:
    """BSBL-BO posterior-mean recovery from CS measurements alone.

    Parameters
    ----------
    noise_var:
        Measurement-noise variance ``lambda`` (use
        :func:`measurement_noise_var` for the quantization-derived value).
    alpha0:
        Optional warm start; seeds the block scales (the posterior mean
        itself is recomputed from scratch each E-step).
    """
    if noise_var <= 0:
        raise ValueError("noise_var must be positive")
    settings = settings or BsblSettings()
    problem, y, alpha0 = _check_inputs(phi, basis, y, problem, alpha0)
    G = problem.gram() / noise_var
    b_vec = problem.adjoint(y) / noise_var
    y_quad = float(y @ y) / noise_var
    logdet_r = problem.m * float(np.log(noise_var))
    mu, iterations, converged, history = _em_information_form(
        G, b_vec, y_quad, logdet_r, settings, alpha0
    )
    return _finish(
        problem,
        y,
        mu,
        iterations,
        converged,
        history,
        "bsbl-bo",
        settings,
        {"noise_var": float(noise_var)},
    )


def solve_bsbl_dequant(
    phi: np.ndarray,
    basis: SynthesisBasis,
    y: np.ndarray,
    noise_var: float,
    x_mid: np.ndarray,
    quant_var: float,
    *,
    settings: Optional[BsblSettings] = None,
    problem: Optional[CsProblem] = None,
    alpha0: Optional[np.ndarray] = None,
) -> RecoveryResult:
    """BSBL with the low-res path as Gaussian pseudo-observations.

    ``x_mid`` holds the per-sample cell midpoints, shape ``(n,)`` in the
    same centered units as the solver domain, and ``quant_var`` the
    shared cell variance — both from :func:`lowres_cell_stats`.  Because Ψ is orthonormal the extra
    channel contributes ``I / quant_var`` to ``G`` and
    ``Ψ^T x_mid / quant_var`` to ``b``; everything else is the plain
    BSBL iteration, so the de-quantizer inherits its convergence and
    batching behavior unchanged.
    """
    if noise_var <= 0:
        raise ValueError("noise_var must be positive")
    if quant_var <= 0:
        raise ValueError("quant_var must be positive")
    settings = settings or BsblSettings()
    problem, y, alpha0 = _check_inputs(phi, basis, y, problem, alpha0)
    x_mid = check_finite(np.asarray(x_mid, dtype=float), name="x_mid")
    x_mid = check_shape(x_mid, (problem.n,), name="x_mid")
    n = problem.n
    G = problem.gram() / noise_var + np.eye(n) / quant_var
    c_vec = problem.basis.analyze(x_mid)
    b_vec = problem.adjoint(y) / noise_var + c_vec / quant_var
    y_quad = float(y @ y) / noise_var + float(x_mid @ x_mid) / quant_var
    logdet_r = problem.m * float(np.log(noise_var)) + n * float(
        np.log(quant_var)
    )
    mu, iterations, converged, history = _em_information_form(
        G, b_vec, y_quad, logdet_r, settings, alpha0
    )
    return _finish(
        problem,
        y,
        mu,
        iterations,
        converged,
        history,
        "bsbl-bo-dequant",
        settings,
        {"noise_var": float(noise_var), "quant_var": float(quant_var)},
    )
