"""Length-prefixed wire framing for :class:`~repro.stream.ingest.StreamFrame`.

The byte-stream ingress format of the sharded gateway: what a TCP
socket, a serial radio bridge, or an in-process byte channel carries
between a sensor fleet and a gateway shard.  A byte stream has no
message boundaries, so every frame is wrapped as::

    u32 body_length | u32 crc32(body) | body

with the body itself carrying a version tag, the routing key, the
link-layer CRC side channel, the on-air packet bytes
(:meth:`~repro.core.packets.WindowPacket.to_bytes` — already bit-exact),
and the optional telemetry reference window.  All integers big-endian.

Two properties the fuzz suite (``tests/stream/test_wire.py``) pins down:

* **reassembly is chunking-invariant** — a :class:`FrameAssembler` fed
  any re-chunking of a frame sequence yields byte-identical frames in
  order;
* **damage is loud** — a corrupted length prefix or body fails with
  :class:`WireError` (header CRC mismatch, bound violation, or a
  truncated tail reported at :meth:`FrameAssembler.close`); a damaged
  stream never silently splices two frames into one.

The prefix CRC is what makes a *corrupted length header* detectable at
all: a flipped length bit mis-slices the body, the body checksum then
disagrees, and the assembler refuses instead of resynchronizing onto
garbage.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional

import numpy as np

from repro.core.packets import WindowPacket
from repro.stream.ingest import StreamFrame

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode_frame",
    "decode_frame_body",
    "FrameAssembler",
]

#: Wire format version stamped into (and checked out of) every body.
WIRE_VERSION = 1

#: Default per-frame size bound; a length prefix beyond this is treated
#: as corruption, not as an instruction to buffer without limit.
MAX_FRAME_BYTES = 1 << 20

_PREFIX = struct.Struct(">II")  # body length, crc32(body)
_FLAG_REFERENCE = 0x01


class WireError(ValueError):
    """A framing violation: corrupt header, damaged body, truncated tail."""


def _crc32(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def encode_frame(frame: StreamFrame) -> bytes:
    """Serialize one frame to its prefixed wire bytes."""
    patient = frame.patient_id.encode("utf-8")
    if len(patient) > 0xFFFF:
        raise WireError("patient id too long for the wire format")
    packet_bytes = frame.packet.to_bytes()
    parts = [
        struct.pack(">BBH", WIRE_VERSION,
                    _FLAG_REFERENCE if frame.reference is not None else 0,
                    len(patient)),
        patient,
        struct.pack(">II", frame.crc & 0xFFFFFFFF, len(packet_bytes)),
        packet_bytes,
    ]
    if frame.reference is not None:
        ref = np.asarray(frame.reference)
        if ref.ndim != 1 or not np.issubdtype(ref.dtype, np.integer):
            raise WireError("reference must be a 1-D integer array")
        if ref.size and (
            int(ref.min()) < np.iinfo(np.int32).min
            or int(ref.max()) > np.iinfo(np.int32).max
        ):
            raise WireError("reference codes exceed the 32-bit wire range")
        parts.append(struct.pack(">I", ref.size))
        parts.append(ref.astype(">i4").tobytes())
    body = b"".join(parts)
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame body of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _PREFIX.pack(len(body), _crc32(body)) + body


class _BodyReader:
    """Cursor over one frame body; every read is bounds-checked."""

    def __init__(self, body: bytes) -> None:
        self._body = body
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._body):
            raise WireError("frame body truncated mid-field")
        out = self._body[self._pos : self._pos + n]
        self._pos += n
        return out

    def done(self) -> None:
        if self._pos != len(self._body):
            raise WireError(
                f"{len(self._body) - self._pos} trailing bytes in frame body"
            )


def decode_frame_body(body: bytes, measurement_bits: int) -> StreamFrame:
    """Parse one frame body (the bytes after the prefix) back to a frame.

    ``measurement_bits`` is offline shared state (from the link
    :class:`~repro.core.config.FrontEndConfig`), exactly as in
    :meth:`WindowPacket.from_bytes`.
    """
    reader = _BodyReader(body)
    version, flags, patient_len = struct.unpack(">BBH", reader.take(4))
    if version != WIRE_VERSION:
        raise WireError(f"unsupported wire version {version}")
    if flags & ~_FLAG_REFERENCE:
        raise WireError(f"unknown wire flags 0x{flags:02x}")
    try:
        patient_id = reader.take(patient_len).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError("patient id is not valid UTF-8") from exc
    crc, packet_len = struct.unpack(">II", reader.take(8))
    packet_bytes = reader.take(packet_len)
    try:
        packet = WindowPacket.from_bytes(packet_bytes, measurement_bits)
    except (ValueError, TypeError, IndexError) as exc:
        raise WireError(f"undecodable packet bytes: {exc}") from exc
    expected_bits = packet.total_bits
    if len(packet_bytes) != (expected_bits + 7) // 8:
        # from_bytes tolerates trailing slack the encoder never
        # produces; a length disagreement means spliced/damaged bytes.
        raise WireError("packet byte length disagrees with its header")
    reference: Optional[np.ndarray] = None
    if flags & _FLAG_REFERENCE:
        (ref_len,) = struct.unpack(">I", reader.take(4))
        reference = np.frombuffer(
            reader.take(4 * ref_len), dtype=">i4"
        ).astype(np.int64)
    reader.done()
    return StreamFrame(
        patient_id=patient_id, packet=packet, crc=crc, reference=reference
    )


class FrameAssembler:
    """Incremental decoder of a prefixed frame byte stream.

    Feed arbitrary byte chunks (:meth:`feed`) — window boundaries never
    have to align with chunk boundaries, mirroring the ingest framer —
    and collect completed frames.  Call :meth:`close` at end of stream:
    leftover buffered bytes mean the stream was cut mid-frame, which is
    an error, never a silently dropped suffix.

    Parameters
    ----------
    measurement_bits:
        Offline shared packet field width (from the link config).
    max_frame_bytes:
        Upper bound a length prefix may announce; beyond it the stream
        is declared corrupt immediately rather than buffered forever.
    """

    def __init__(
        self,
        measurement_bits: int,
        *,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if measurement_bits <= 0:
            raise ValueError("measurement_bits must be positive")
        if max_frame_bytes <= 0:
            raise ValueError("max_frame_bytes must be positive")
        self.measurement_bits = int(measurement_bits)
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self.frames_out = 0
        self.bytes_in = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward the next (incomplete) frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[StreamFrame]:
        """Absorb one chunk; return every frame it completed, in order."""
        self._buffer.extend(chunk)
        self.bytes_in += len(chunk)
        frames: List[StreamFrame] = []
        while len(self._buffer) >= _PREFIX.size:
            body_len, body_crc = _PREFIX.unpack_from(self._buffer)
            if body_len > self.max_frame_bytes:
                raise WireError(
                    f"length prefix {body_len} exceeds the "
                    f"{self.max_frame_bytes}-byte frame bound (corrupt header?)"
                )
            if len(self._buffer) < _PREFIX.size + body_len:
                break  # wait for the rest of this frame
            body = bytes(
                self._buffer[_PREFIX.size : _PREFIX.size + body_len]
            )
            if _crc32(body) != body_crc:
                raise WireError(
                    "frame body checksum mismatch (corrupt length header "
                    "or damaged body)"
                )
            frames.append(decode_frame_body(body, self.measurement_bits))
            del self._buffer[: _PREFIX.size + body_len]
            self.frames_out += 1
        return frames

    def close(self) -> None:
        """Assert the stream ended on a frame boundary.

        Raises :class:`WireError` when bytes are still buffered — a
        truncated tail is damage, not a clean end of stream.
        """
        if self._buffer:
            raise WireError(
                f"stream truncated: {len(self._buffer)} bytes of an "
                "incomplete frame at end of stream"
            )
