"""Node-side streaming ingest: samples in, transmit frames out.

:class:`IngestSession` is the online counterpart of
:meth:`repro.core.frontend.HybridFrontEnd.process_record`: it accepts
ECG acquisition codes in arbitrary-sized chunks (whatever a DMA/radio
tick delivers), re-blocks them with the same
:class:`~repro.core.windowing.WindowFramer` the batch path uses, and
emits one :class:`StreamFrame` per completed window.  Because the
framer, the front-end, and the default codebook resolution are all
shared with the batch pipeline, the emitted packets are **bit-identical**
to the offline encoder's output on the same record — the property the
streaming tests assert byte-for-byte.

Each frame also carries the CRC-32 of its payload (the side channel a
real link would append for error detection) and, optionally, the raw
reference window for receiver-side quality telemetry in this synthetic
testbed; neither is part of the on-air packet bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.channel import payload_crc
from repro.core.codebooks import CodebookKey
from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.core.packets import WindowPacket
from repro.core.windowing import WindowFramer
from repro.devtools.contracts import check_dtype, check_shape
from repro.recovery.methods import resolve_method
from repro.runtime.task import CodebookSpec

__all__ = ["StreamFrame", "IngestSession", "codebook_spec_for"]


def codebook_spec_for(
    config: FrontEndConfig,
    method: str,
    codebook: Optional[DifferenceCodebook] = None,
) -> CodebookSpec:
    """The codebook spec a streaming endpoint should carry.

    Mirrors :meth:`repro.runtime.engine.RecordJob.resolved_codebook_spec`
    exactly, so a streaming transmitter/receiver pair resolves the same
    offline state as a batch job under the same config — the root of the
    bit-identity guarantee.
    """
    if not resolve_method(method).uses_lowres:
        return CodebookSpec.none()
    if codebook is not None:
        return CodebookSpec.from_object(codebook)
    return CodebookSpec.default(
        CodebookKey(
            lowres_bits=config.lowres_bits,
            acquisition_bits=config.acquisition_bits,
        )
    )


@dataclass(frozen=True)
class StreamFrame:
    """One transmitted window plus its link-layer side channel.

    Attributes
    ----------
    patient_id:
        Which patient stream the frame belongs to (gateway routing key).
    packet:
        The on-air :class:`~repro.core.packets.WindowPacket`.
    crc:
        CRC-32 of the packet's semantic payload
        (:func:`repro.core.channel.payload_crc` at encode time); the
        receiver recomputes it to detect payload corruption.
    reference:
        Optional raw acquisition codes of the window, shape ``(n,)``
        int — telemetry-only ground truth for rolling PRD/SNR in the
        synthetic testbed, never counted as transmitted bits.
    """

    patient_id: str
    packet: WindowPacket
    crc: int
    reference: Optional[np.ndarray] = None

    @property
    def window_index(self) -> int:
        """Sequence number of the window in its patient stream."""
        return self.packet.window_index


class IngestSession:
    """Incremental windower/encoder for one patient's sample stream.

    Parameters
    ----------
    patient_id:
        Stream identity stamped on every emitted frame.
    config:
        Shared link configuration (same object the receiver uses).
    method:
        A registered recovery-method name; methods that consume the
        low-res path (``"hybrid"``, ``"bsbl-dequant"``) transmit through
        the hybrid front-end, the rest are CS-only.
    codebook:
        Explicit difference codebook; the default trained codebook for
        the config's resolutions is used when omitted (hybrid only).
    carry_reference:
        Attach each window's raw codes to its frame for receiver-side
        quality telemetry (disable to model a blind deployment).
    """

    def __init__(
        self,
        patient_id: str,
        config: FrontEndConfig,
        *,
        method: str = "hybrid",
        codebook: Optional[DifferenceCodebook] = None,
        carry_reference: bool = True,
    ) -> None:
        self.patient_id = str(patient_id)
        self.config = config
        self.method = method
        self.codebook_spec = codebook_spec_for(config, method, codebook)
        self.carry_reference = bool(carry_reference)
        if resolve_method(method).uses_lowres:
            resolved = self.codebook_spec.resolve()
            assert resolved is not None
            self._frontend = HybridFrontEnd(config, resolved)
        else:
            self._frontend = NormalCsFrontEnd(config)
        self._framer = WindowFramer(config.window_len)

    @property
    def pending_samples(self) -> int:
        """Samples buffered toward the next (incomplete) window."""
        return self._framer.pending

    @property
    def windows_emitted(self) -> int:
        """Complete windows encoded and emitted so far."""
        return self._framer.windows_emitted

    def push(self, samples: np.ndarray) -> List[StreamFrame]:
        """Feed a chunk of acquisition codes; return newly completed frames.

        ``samples`` is a 1-D integer array of any length (including
        empty); window boundaries
        never have to align with chunk boundaries.  Frames come back in
        window order with consecutive ``window_index`` values starting
        at zero.
        """
        arr = check_shape(samples, (None,), name="samples")
        arr = check_dtype(arr, "integer", name="samples")
        windows = list(self._framer.push(arr))
        if not windows:
            return []
        base = self._framer.windows_emitted - len(windows)
        if self.config.encode.batched and len(windows) > 1:
            # One engine call for every window this chunk completed —
            # bit-identical to the per-window path (docs/encoding.md).
            packets = self._frontend.encode_windows(
                np.stack(windows), start_index=base
            )
        else:
            packets = [
                self._frontend.process_window(window, base + offset)
                for offset, window in enumerate(windows)
            ]
        return [
            StreamFrame(
                patient_id=self.patient_id,
                packet=packet,
                crc=payload_crc(packet),
                reference=window.copy() if self.carry_reference else None,
            )
            for packet, window in zip(packets, windows)
        ]

    def flush(self) -> np.ndarray:
        """Discard and return the buffered partial window (1-D, possibly empty).

        A real node never transmits a partial window; callers that want
        zero-padding semantics can pad and :meth:`push` the result.
        """
        return self._framer.flush()
