"""Per-patient receiver sessions for the streaming gateway.

A :class:`PatientSession` is the stateful receiver end of one patient's
stream.  It tolerates the real-world arrival pathologies the batch
pipeline never sees:

* **out-of-order frames** — held in a bounded reorder buffer and
  released in window order once the gap fills or the reorder horizon
  (``reorder_depth`` windows) is exceeded;
* **erasures** — a window that never arrives is detected as a sequence
  gap and concealed by zero-order hold (the previous completed window's
  reconstruction, or the baseline for a cold start), exactly the
  :class:`repro.core.channel.RobustReceiver` policy;
* **payload corruption** — CRC mismatch or Huffman desync falls back to
  CS-only recovery via :func:`repro.core.channel.decode_robust`;
* **late/duplicate frames** — counted and dropped.

The expensive per-window convex solves are *not* run inside the session:
the session plans work (:class:`PlannedWindow`), the gateway fans the
resulting :class:`RecoveryTask` units out through a
:class:`repro.runtime.executors.Executor` (the solves are independent
pure functions, like every batch window task), and completed results are
applied back in window order.  Reconstructed signal is retained in a
bounded :class:`SignalRing` — a session's memory footprint is constant
no matter how long the stream runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.channel import decode_robust
from repro.core.config import FrontEndConfig
from repro.core.packets import WindowPacket
from repro.devtools.contracts import check_dtype, check_shape
from repro.metrics.quality import prd as prd_metric
from repro.recovery.methods import resolve_method
from repro.runtime.stages import link_for_params, reference_centered
from repro.runtime.task import CodebookSpec
from repro.stream.ingest import StreamFrame, codebook_spec_for
from repro.stream.metrics import RollingStat, SessionSnapshot

__all__ = [
    "RecoveryTask",
    "RecoveredWindow",
    "execute_recovery_task",
    "PlannedWindow",
    "SessionState",
    "SignalRing",
    "PatientSession",
]

#: SNR is clipped here (dB), mirroring the batch score stage.
_SNR_CEILING_DB = 120.0


@dataclass(frozen=True)
class RecoveryTask:
    """One streaming window solve as a picklable work unit.

    The streaming analogue of :class:`repro.runtime.task.WindowTask`:
    every field is a plain value, so the task can cross a process
    boundary and any worker reconstructs identical state from it via the
    per-process link cache (:func:`repro.runtime.stages.link_for_params`).

    ``warm_start`` optionally carries the previous window's solved
    coefficients as the solver's starting point.  It is attached at
    *plan* time (never inside a worker), so the task stays a pure value
    and the result is independent of executor scheduling.
    """

    patient_id: str
    window_index: int
    packet: WindowPacket
    crc: Optional[int]
    config: FrontEndConfig
    method: str
    codebook: CodebookSpec
    reference: Optional[np.ndarray] = None
    warm_start: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        resolve_method(self.method)
        if self.window_index < 0:
            raise ValueError("window_index cannot be negative")


@dataclass(frozen=True)
class RecoveredWindow:
    """Result of one streaming window solve.

    ``mode`` is ``"hybrid"`` or ``"cs-fallback"`` (concealment never
    reaches a worker); ``prd_percent``/``snr_db`` are ``None`` when the
    frame carried no reference.  ``alpha`` is the solved coefficient
    vector, kept so the session can warm-start the next window.
    """

    patient_id: str
    window_index: int
    x_codes: np.ndarray
    mode: str
    prd_percent: Optional[float]
    snr_db: Optional[float]
    iterations: int
    converged: bool
    alpha: Optional[np.ndarray] = None


def execute_recovery_task(task: RecoveryTask) -> RecoveredWindow:
    """Run one streaming recovery solve; pure in ``task``.

    This is the worker function the gateway hands to its executor: CRC
    check, hybrid Eq. 1 solve with CS-only fallback on payload damage,
    and optional scoring against the frame's telemetry reference — all
    stateless, so solves parallelize across windows, sessions, and
    processes and are bit-identical regardless of scheduling.
    """
    link = link_for_params(task.config, task.method, task.codebook)
    recon, mode = decode_robust(
        task.packet, task.crc, link.receiver, alpha0=task.warm_start
    )
    prd_percent: Optional[float] = None
    snr: Optional[float] = None
    if task.reference is not None:
        center = 1 << (task.config.acquisition_bits - 1)
        reference = reference_centered(task.reference, center)
        prd_percent = prd_metric(reference, recon.x_centered(center))
        snr = (
            _SNR_CEILING_DB
            if prd_percent == 0
            else min(-20.0 * np.log10(0.01 * prd_percent), _SNR_CEILING_DB)
        )
    return RecoveredWindow(
        patient_id=task.patient_id,
        window_index=task.window_index,
        x_codes=recon.x_codes,
        mode=mode,
        prd_percent=prd_percent,
        snr_db=snr,
        iterations=recon.recovery.iterations,
        converged=recon.recovery.converged,
        alpha=recon.recovery.alpha,
    )


@dataclass(frozen=True)
class PlannedWindow:
    """One in-order window the session has released for completion.

    ``task is None`` means the window was declared lost and must be
    concealed locally; otherwise the task is dispatched to an executor
    and its result applied back.  ``arrival_ts`` is the gateway-clock
    arrival time (``None`` for concealments — nothing ever arrived).
    """

    patient_id: str
    window_index: int
    task: Optional[RecoveryTask]
    arrival_ts: Optional[float]


@dataclass(frozen=True)
class SessionState:
    """Picklable decoder state of one :class:`PatientSession`.

    Everything a receiver needs to resume a stream *mid-flight* on
    another shard (or after a restart) without disturbing the output:
    the sequence cursor, the reorder buffer, the zero-order-hold
    concealment codes, the warm-start chain head, the loss counters, the
    rolling quality stats, and the retained reconstruction ring.  Plain
    values only — the state crosses process boundaries exactly like a
    :class:`RecoveryTask` does.
    """

    patient_id: str
    method: str
    next_window: int
    pending: Tuple[Tuple[int, StreamFrame, Optional[float]], ...]
    last_codes: Optional[np.ndarray]
    last_alpha: Optional[Tuple[int, np.ndarray]]
    late_drops: int
    duplicate_drops: int
    solved: int
    concealed: int
    cs_fallbacks: int
    prd_values: Tuple[float, ...]
    prd_count: int
    snr_values: Tuple[float, ...]
    snr_count: int
    ring_samples: np.ndarray
    ring_total: int


class SignalRing:
    """Bounded ring buffer over the latest reconstructed samples.

    Appends are O(chunk); memory is a fixed ``capacity`` floats no
    matter how many samples stream through — the session's contribution
    to the gateway's bounded-memory guarantee.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._buf = np.zeros(self.capacity)
        self._size = 0
        self._pos = 0  # next write position
        self._total = 0

    def __len__(self) -> int:
        return self._size

    @property
    def total_written(self) -> int:
        """Lifetime number of samples appended."""
        return self._total

    def extend(self, samples: np.ndarray) -> None:
        """Append a 1-D sample chunk, evicting the oldest beyond capacity."""
        arr = np.asarray(samples, dtype=float).ravel()
        self._total += arr.size
        if arr.size >= self.capacity:
            self._buf[:] = arr[-self.capacity :]
            self._pos = 0
            self._size = self.capacity
            return
        first = min(arr.size, self.capacity - self._pos)
        self._buf[self._pos : self._pos + first] = arr[:first]
        rest = arr.size - first
        if rest:
            self._buf[:rest] = arr[first:]
        self._pos = (self._pos + arr.size) % self.capacity
        self._size = min(self._size + arr.size, self.capacity)

    def read(self) -> np.ndarray:
        """The retained samples oldest→newest; 1-D, shape ``(len(self),)``."""
        if self._size < self.capacity:
            return self._buf[: self._size].copy()
        return np.concatenate((self._buf[self._pos :], self._buf[: self._pos]))

    def restore(self, samples: np.ndarray, total_written: int) -> None:
        """Reset contents to ``samples`` with a given lifetime counter.

        The migration inverse of (:meth:`read`, :attr:`total_written`):
        after ``restore(ring.read(), ring.total_written)`` a fresh ring
        reads back byte-identically and keeps counting from the same
        lifetime total.
        """
        arr = np.asarray(samples, dtype=float).ravel()
        if total_written < arr.size:
            raise ValueError("total_written cannot be less than the retained size")
        self._buf[:] = 0.0
        self._size = 0
        self._pos = 0
        self._total = 0
        self.extend(arr)
        self._total = int(total_written)


class PatientSession:
    """Receiver-side state for one patient stream.

    Parameters
    ----------
    patient_id:
        Stream identity (must match the frames routed here).
    config:
        Shared link configuration (equal to the transmitter's).
    method:
        ``"hybrid"`` or ``"normal"`` — selects the solve the session's
        recovery tasks run.
    codebook:
        Explicit codebook; defaults to the trained default codebook for
        the config's resolutions (hybrid only).
    reorder_depth:
        How many windows ahead of the next expected index a frame may
        run before the gap is declared an erasure and concealed.  ``0``
        disables reordering: any gap is concealed immediately.
    ring_windows:
        Reconstructed-signal retention, in windows.
    rolling_window:
        Number of recent scored windows in the PRD/SNR rolling means.
    """

    def __init__(
        self,
        patient_id: str,
        config: FrontEndConfig,
        *,
        method: str = "hybrid",
        codebook: Optional[DifferenceCodebook] = None,
        reorder_depth: int = 4,
        ring_windows: int = 8,
        rolling_window: int = 256,
    ) -> None:
        if reorder_depth < 0:
            raise ValueError("reorder_depth cannot be negative")
        if ring_windows <= 0:
            raise ValueError("ring_windows must be positive")
        self.patient_id = str(patient_id)
        self.config = config
        self.method = method
        self.codebook_spec = codebook_spec_for(config, method, codebook)
        self.reorder_depth = int(reorder_depth)
        self.ring = SignalRing(ring_windows * config.window_len)
        self.rolling_prd = RollingStat(rolling_window)
        self.rolling_snr = RollingStat(rolling_window)

        self._next = 0  # next window index to release, in order
        self._pending: Dict[int, Tuple[StreamFrame, Optional[float]]] = {}
        self._last_codes: Optional[np.ndarray] = None
        # (window_index, alpha) of the most recent *solved* window; used
        # to warm-start the immediately following window at plan time.
        self._last_alpha: Optional[Tuple[int, np.ndarray]] = None
        self.late_drops = 0
        self.duplicate_drops = 0
        self.solved = 0
        self.concealed = 0
        self.cs_fallbacks = 0

    @property
    def next_window(self) -> int:
        """Next window index the session will release."""
        return self._next

    @property
    def windows_completed(self) -> int:
        """Windows fully resolved (solved or concealed)."""
        return self.solved + self.concealed

    @property
    def pending_reorder(self) -> int:
        """Frames held in the reorder buffer awaiting release."""
        return len(self._pending)

    def _task_for(self, frame: StreamFrame) -> RecoveryTask:
        reference = frame.reference
        if reference is not None:
            reference = check_shape(
                reference, (self.config.window_len,), name="reference"
            )
            reference = check_dtype(reference, "integer", name="reference")
        # Warm-start only from the *immediately preceding* window, and
        # only if its solve has already been applied by plan time: the
        # seed is a pure function of the arrival/apply schedule, so
        # serial and parallel executors produce identical results.
        warm_start: Optional[np.ndarray] = None
        if (
            self.config.recovery.warm_start_streams
            and self._last_alpha is not None
            and self._last_alpha[0] == frame.window_index - 1
        ):
            warm_start = self._last_alpha[1]
        return RecoveryTask(
            patient_id=self.patient_id,
            window_index=frame.window_index,
            packet=frame.packet,
            crc=frame.crc,
            config=self.config,
            method=self.method,
            codebook=self.codebook_spec,
            reference=reference,
            warm_start=warm_start,
        )

    def _release(self, force: bool) -> List[PlannedWindow]:
        ready: List[PlannedWindow] = []
        while self._pending:
            held = self._pending.pop(self._next, None)
            if held is not None:
                frame, ts = held
                ready.append(
                    PlannedWindow(
                        self.patient_id, self._next, self._task_for(frame), ts
                    )
                )
                self._next += 1
                continue
            horizon = max(self._pending)
            if not force and horizon - self._next < self.reorder_depth:
                break
            # The gap outlived the reorder horizon: that window is lost.
            ready.append(
                PlannedWindow(self.patient_id, self._next, None, None)
            )
            self._next += 1
        return ready

    def offer(
        self, frame: StreamFrame, arrival_ts: Optional[float] = None
    ) -> List[PlannedWindow]:
        """Accept one arriving frame; return windows now ready to resolve.

        Released windows come back strictly in window order.  A frame
        whose index was already resolved counts as a late drop; a frame
        already held counts as a duplicate.  Frames for other patients
        are rejected loudly — routing is the gateway's job.
        """
        if frame.patient_id != self.patient_id:
            raise ValueError(
                f"frame for patient {frame.patient_id!r} offered to "
                f"session {self.patient_id!r}"
            )
        index = frame.window_index
        if index < self._next:
            self.late_drops += 1
            return []
        if index in self._pending:
            self.duplicate_drops += 1
            return []
        self._pending[index] = (frame, arrival_ts)
        return self._release(force=False)

    def finish(self) -> List[PlannedWindow]:
        """Flush the reorder buffer at end of stream.

        Remaining gaps are concealed and every held frame is released;
        erasures *after* the last received frame are unknowable (nothing
        ever signals them) and are intentionally not synthesized.
        """
        return self._release(force=True)

    def apply(
        self, planned: PlannedWindow, result: Optional[RecoveredWindow]
    ) -> str:
        """Complete one released window with its solve result (or conceal).

        Must be called in release order; updates the zero-order-hold
        state, the signal ring, the counters, and (for scored solves)
        the rolling quality stats.  Returns the completion mode:
        ``"hybrid"``, ``"cs-fallback"`` or ``"concealed"``.
        """
        if planned.patient_id != self.patient_id:
            raise ValueError("planned window belongs to another session")
        if planned.task is None:
            codes = self._conceal_codes()
            mode = "concealed"
            self.concealed += 1
        else:
            if result is None:
                raise ValueError("solve-planned window completed without a result")
            codes = result.x_codes
            mode = result.mode
            self.solved += 1
            if mode == "cs-fallback":
                self.cs_fallbacks += 1
            if result.prd_percent is not None:
                self.rolling_prd.push(result.prd_percent)
            if result.snr_db is not None:
                self.rolling_snr.push(result.snr_db)
            if result.alpha is not None:
                self._last_alpha = (planned.window_index, result.alpha)
        self._last_codes = codes
        self.ring.extend(codes)
        return mode

    def _conceal_codes(self) -> np.ndarray:
        """Zero-order-hold replacement codes, shape ``(window_len,)``."""
        if self._last_codes is not None:
            return self._last_codes.copy()
        center = 1 << (self.config.acquisition_bits - 1)
        return np.full(self.config.window_len, float(center))

    # -- migration (shard drain/restart) ------------------------------------

    def export_state(self) -> SessionState:
        """Freeze the full decoder state as a picklable value.

        A session restored from this state (:meth:`restore_state`)
        continues the stream exactly where this one stood: same sequence
        cursor, same reorder holdings, same concealment/warm-start
        chain, same counters and rolling stats — the property the
        cluster's serial-vs-sharded equivalence tests pin down.
        """
        return SessionState(
            patient_id=self.patient_id,
            method=self.method,
            next_window=self._next,
            pending=tuple(
                (index, frame, ts)
                for index, (frame, ts) in sorted(self._pending.items())
            ),
            last_codes=(
                None if self._last_codes is None else self._last_codes.copy()
            ),
            last_alpha=(
                None
                if self._last_alpha is None
                else (self._last_alpha[0], self._last_alpha[1].copy())
            ),
            late_drops=self.late_drops,
            duplicate_drops=self.duplicate_drops,
            solved=self.solved,
            concealed=self.concealed,
            cs_fallbacks=self.cs_fallbacks,
            prd_values=tuple(self.rolling_prd._values),
            prd_count=self.rolling_prd.count,
            snr_values=tuple(self.rolling_snr._values),
            snr_count=self.rolling_snr.count,
            ring_samples=self.ring.read(),
            ring_total=self.ring.total_written,
        )

    def restore_state(self, state: SessionState) -> None:
        """Adopt a migrated decoder state (must match id and method)."""
        if state.patient_id != self.patient_id:
            raise ValueError(
                f"state for patient {state.patient_id!r} restored into "
                f"session {self.patient_id!r}"
            )
        if state.method != self.method:
            raise ValueError(
                f"state method {state.method!r} != session {self.method!r}"
            )
        self._next = state.next_window
        self._pending = {
            index: (frame, ts) for index, frame, ts in state.pending
        }
        self._last_codes = (
            None if state.last_codes is None else state.last_codes.copy()
        )
        self._last_alpha = (
            None
            if state.last_alpha is None
            else (state.last_alpha[0], state.last_alpha[1].copy())
        )
        self.late_drops = state.late_drops
        self.duplicate_drops = state.duplicate_drops
        self.solved = state.solved
        self.concealed = state.concealed
        self.cs_fallbacks = state.cs_fallbacks
        self.rolling_prd = RollingStat(
            self.rolling_prd.window, deque(state.prd_values), state.prd_count
        )
        self.rolling_snr = RollingStat(
            self.rolling_snr.window, deque(state.snr_values), state.snr_count
        )
        self.ring.restore(state.ring_samples, state.ring_total)

    def snapshot(self) -> SessionSnapshot:
        """The session's current telemetry as an immutable snapshot."""
        return SessionSnapshot(
            patient_id=self.patient_id,
            next_window=self._next,
            windows_completed=self.windows_completed,
            solved=self.solved,
            concealed=self.concealed,
            cs_fallbacks=self.cs_fallbacks,
            late_drops=self.late_drops,
            duplicate_drops=self.duplicate_drops,
            pending_reorder=len(self._pending),
            buffered_samples=len(self.ring),
            rolling_prd_percent=self.rolling_prd.mean,
            rolling_snr_db=self.rolling_snr.mean,
            prd_p95_percent=self.rolling_prd.percentile(95.0),
        )
