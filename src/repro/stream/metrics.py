"""Rolling telemetry and serializable snapshots for the streaming gateway.

A live gateway cannot afford unbounded per-window histories, so every
statistic here is either a counter or a bounded rolling aggregate:
:class:`RollingStat` keeps the last ``window`` observations of one
scalar, and the snapshot dataclasses (:class:`SessionSnapshot`,
:class:`GatewaySnapshot`) are immutable, JSON-serializable views of the
gateway state at one instant — the wire format ``repro stream`` prints
periodically and writes at shutdown.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RollingStat",
    "rolling_percentile",
    "SessionSnapshot",
    "GatewaySnapshot",
]


@dataclass
class RollingStat:
    """Bounded rolling aggregate of one scalar telemetry series.

    Keeps the most recent ``window`` observations (default 256) plus a
    lifetime counter, so long-running sessions report *recent* quality
    rather than an average diluted by hours of history, at O(window)
    memory.
    """

    window: int = 256
    _values: Deque[float] = field(default_factory=deque, repr=False)
    _count: int = 0

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        self._values = deque(self._values, maxlen=self.window)

    def push(self, value: float) -> None:
        """Record one observation (evicts the oldest beyond ``window``)."""
        self._values.append(float(value))
        self._count += 1

    @property
    def count(self) -> int:
        """Lifetime number of observations pushed."""
        return self._count

    @property
    def mean(self) -> Optional[float]:
        """Mean of the retained window; ``None`` before any observation."""
        if not self._values:
            return None
        return float(np.mean(self._values))

    @property
    def last(self) -> Optional[float]:
        """Most recent observation; ``None`` before any observation."""
        return self._values[-1] if self._values else None

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile of the retained window (``None`` if empty)."""
        return rolling_percentile(self._values, q)


def rolling_percentile(values: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-th percentile of a sample list, or ``None`` when empty.

    ``None`` (rather than NaN) keeps the snapshots strictly
    JSON-portable — ``json.dumps`` would emit the non-standard ``NaN``
    token otherwise.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    vals = [v for v in values if not math.isnan(v)]
    if not vals:
        return None
    return float(np.percentile(vals, q))


@dataclass(frozen=True)
class SessionSnapshot:
    """One patient session's state at a snapshot instant.

    ``rolling_prd_percent`` / ``rolling_snr_db`` are means over the
    session's bounded rolling window of *scored* solves (windows whose
    frames carried a reference); concealed windows have no reference by
    construction and are counted, not scored.
    """

    patient_id: str
    next_window: int
    windows_completed: int
    solved: int
    concealed: int
    cs_fallbacks: int
    late_drops: int
    duplicate_drops: int
    pending_reorder: int
    buffered_samples: int
    rolling_prd_percent: Optional[float]
    rolling_snr_db: Optional[float]
    #: 95th percentile of the rolling PRD window; ``None`` (never 0.0,
    #: never a crash) for a session that has applied zero scored windows.
    prd_p95_percent: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-Python dict form (JSON-ready)."""
        return {
            "patient_id": self.patient_id,
            "next_window": self.next_window,
            "windows_completed": self.windows_completed,
            "solved": self.solved,
            "concealed": self.concealed,
            "cs_fallbacks": self.cs_fallbacks,
            "late_drops": self.late_drops,
            "duplicate_drops": self.duplicate_drops,
            "pending_reorder": self.pending_reorder,
            "buffered_samples": self.buffered_samples,
            "rolling_prd_percent": self.rolling_prd_percent,
            "rolling_snr_db": self.rolling_snr_db,
            "prd_p95_percent": self.prd_p95_percent,
        }


@dataclass(frozen=True)
class GatewaySnapshot:
    """Gateway-wide telemetry at one instant, serializable to JSON.

    ``windows_inflight`` counts frames accepted but not yet resolved
    (queued at ingress plus held in per-session reorder buffers);
    ``latency_p50_s`` / ``latency_p95_s`` / ``latency_p99_s`` are
    percentiles over the bounded window of recent arrival→completion
    latencies for solved windows.  Every percentile/rate field is
    ``None`` — never 0.0, never a crash — until the statistic actually
    exists (first completed window), so an idle gateway serializes to
    honest JSON.

    ``queue_drops`` / ``queue_rejects`` / ``patient_sheds`` /
    ``shed_frames`` are the per-policy ingress shedding counters (see
    :data:`~repro.stream.gateway.SHEDDING_POLICIES`): only the counters
    of the active ``shed_policy`` can grow, the others stay zero.
    """

    uptime_s: float
    sessions: int
    windows_inflight: int
    windows_completed: int
    reconstructed_per_sec: Optional[float]
    queue_drops: int
    queue_high_water: int
    late_drops: int
    duplicate_drops: int
    concealed: int
    cs_fallbacks: int
    latency_p50_s: Optional[float]
    latency_p95_s: Optional[float]
    latency_p99_s: Optional[float] = None
    shed_policy: str = "drop-oldest"
    queue_rejects: int = 0
    patient_sheds: int = 0
    shed_frames: int = 0
    per_session: Tuple[SessionSnapshot, ...] = ()
    #: Process-wide recovery cache counters (``PROBLEM_CACHE`` hit/miss
    #: rates, operator-set occupancy, link memo sizes) at snapshot time;
    #: ``None`` when the producer did not sample them.  The recovery
    #: cache is per process, so a multi-shard snapshot reports it once —
    #: summing per-shard views of the same singleton would double count.
    recovery_cache: Optional[Dict[str, Any]] = None

    @property
    def frames_lost(self) -> int:
        """Frames discarded at ingress across every shedding policy."""
        return self.queue_drops + self.queue_rejects + self.shed_frames

    def to_dict(self) -> Dict[str, Any]:
        """Plain-Python dict form (JSON-ready)."""
        return {
            "schema": "repro-stream-snapshot/v1",
            "uptime_s": self.uptime_s,
            "sessions": self.sessions,
            "windows_inflight": self.windows_inflight,
            "windows_completed": self.windows_completed,
            "reconstructed_per_sec": self.reconstructed_per_sec,
            "shed_policy": self.shed_policy,
            "queue_drops": self.queue_drops,
            "queue_rejects": self.queue_rejects,
            "patient_sheds": self.patient_sheds,
            "shed_frames": self.shed_frames,
            "queue_high_water": self.queue_high_water,
            "late_drops": self.late_drops,
            "duplicate_drops": self.duplicate_drops,
            "concealed": self.concealed,
            "cs_fallbacks": self.cs_fallbacks,
            "latency_p50_s": self.latency_p50_s,
            "latency_p95_s": self.latency_p95_s,
            "latency_p99_s": self.latency_p99_s,
            "recovery_cache": self.recovery_cache,
            "per_session": [s.to_dict() for s in self.per_session],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """JSON document form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    def summary_line(self) -> str:
        """One human-readable status line (the periodic CLI output)."""
        prds = [
            s.rolling_prd_percent
            for s in self.per_session
            if s.rolling_prd_percent is not None
        ]
        prd = f"{float(np.mean(prds)):.2f}%" if prds else "-"
        rate = (
            f"{self.reconstructed_per_sec:.1f}/s"
            if self.reconstructed_per_sec is not None
            else "-"
        )
        p95 = (
            f"{1e3 * self.latency_p95_s:.0f}ms"
            if self.latency_p95_s is not None
            else "-"
        )
        return (
            f"[{self.uptime_s:7.2f}s] sessions={self.sessions} "
            f"done={self.windows_completed} inflight={self.windows_inflight} "
            f"rate={rate} prd={prd} p95={p95} "
            f"concealed={self.concealed} fallback={self.cs_fallbacks} "
            f"drops={self.queue_drops} rejects={self.queue_rejects} "
            f"shed={self.shed_frames}"
        )
