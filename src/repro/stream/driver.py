"""Synthetic end-to-end stream driver: N patients → lossy link → gateway.

The harness behind ``repro stream`` and the streaming section of
``repro bench``: it replays synthetic MIT-BIH records as interleaved
chunked sample streams (:func:`repro.signals.database.interleave_playback`
— deterministic, wall-clock-free), encodes them through per-patient
:class:`~repro.stream.ingest.IngestSession`\\ s, impairs each patient's
frames with an independent seeded
:class:`~repro.core.channel.LossyLink`, and feeds the survivors into a
:class:`~repro.stream.gateway.StreamGateway` that is polled every
``poll_every`` chunks.

Everything upstream of the gateway clock is deterministic in the
parameters, so two runs with the same :class:`StreamScenario` transmit
byte-identical frames and suffer identical erasures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.channel import LossyLink
from repro.core.config import FrontEndConfig
from repro.runtime.executors import Executor
from repro.signals.database import (
    MITBIH_RECORD_NAMES,
    interleave_playback,
    load_record,
)
from repro.stream.gateway import StreamGateway
from repro.stream.ingest import IngestSession, StreamFrame
from repro.stream.metrics import GatewaySnapshot

__all__ = ["StreamScenario", "run_stream_scenario"]


@dataclass(frozen=True)
class StreamScenario:
    """Parameters of one synthetic multi-patient streaming run.

    Attributes
    ----------
    patients:
        Number of concurrent patient streams (records are the first N
        MIT-BIH names).
    duration_s:
        Length of each patient's record in seconds.
    config:
        Shared link configuration for every patient.
    method:
        Front-end method for every patient (``"hybrid"``/``"normal"``).
    chunk_size:
        Samples per playback chunk (a deliberately window-misaligned
        default exercises the incremental framer).
    erasure_rate / bit_error_rate:
        Per-patient :class:`~repro.core.channel.LossyLink` impairments.
    seed:
        Base channel seed; patient ``i`` uses ``seed + i``.
    queue_capacity / reorder_depth / ring_windows:
        Gateway/session bounds (see their classes).
    shed_policy:
        Gateway ingress overflow policy, one of
        :data:`~repro.stream.gateway.SHEDDING_POLICIES`.
    poll_every:
        Gateway poll cadence, in playback chunks.
    """

    patients: int = 4
    duration_s: float = 10.0
    config: FrontEndConfig = FrontEndConfig()
    method: str = "hybrid"
    chunk_size: int = 181
    erasure_rate: float = 0.1
    bit_error_rate: float = 0.0
    seed: int = 0
    queue_capacity: int = 64
    shed_policy: str = "drop-oldest"
    reorder_depth: int = 4
    ring_windows: int = 8
    poll_every: int = 8

    def __post_init__(self) -> None:
        if self.patients < 1:
            raise ValueError("patients must be >= 1")
        if self.patients > len(MITBIH_RECORD_NAMES):
            raise ValueError(
                f"at most {len(MITBIH_RECORD_NAMES)} synthetic patients available"
            )
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.chunk_size <= 0 or self.poll_every <= 0:
            raise ValueError("chunk_size and poll_every must be positive")


def run_stream_scenario(
    scenario: StreamScenario,
    *,
    executor: Optional[Executor] = None,
    clock: Callable[[], float] = time.monotonic,
    on_snapshot: Optional[Callable[[GatewaySnapshot], None]] = None,
) -> GatewaySnapshot:
    """Drive one scenario to completion; return the final snapshot.

    ``on_snapshot`` (if given) is called with a fresh
    :class:`~repro.stream.metrics.GatewaySnapshot` after every gateway
    poll — the hook the CLI uses for its periodic status lines.
    """
    cfg = scenario.config
    names = MITBIH_RECORD_NAMES[: scenario.patients]
    records = [
        load_record(name, duration_s=scenario.duration_s) for name in names
    ]
    encoders = {
        name: IngestSession(name, cfg, method=scenario.method)
        for name in names
    }
    links = {
        name: LossyLink(
            bit_error_rate=scenario.bit_error_rate,
            packet_erasure_rate=scenario.erasure_rate,
            seed=scenario.seed + i,
        )
        for i, name in enumerate(names)
    }
    gateway = StreamGateway(
        executor=executor,
        queue_capacity=scenario.queue_capacity,
        shed_policy=scenario.shed_policy,
        clock=clock,
    )
    for name in names:
        gateway.open_session(
            name,
            cfg,
            method=scenario.method,
            reorder_depth=scenario.reorder_depth,
            ring_windows=scenario.ring_windows,
        )

    chunks_seen = 0
    for name, chunk in interleave_playback(records, scenario.chunk_size):
        for frame in encoders[name].push(chunk):
            impaired = links[name].transmit(frame.packet)
            if impaired is None:
                continue  # erased on air: the receiver sees only a gap
            gateway.submit(
                StreamFrame(
                    patient_id=frame.patient_id,
                    packet=impaired,
                    crc=frame.crc,
                    reference=frame.reference,
                )
            )
        chunks_seen += 1
        if chunks_seen % scenario.poll_every == 0:
            gateway.poll()
            if on_snapshot is not None:
                on_snapshot(gateway.snapshot())

    gateway.finish()
    return gateway.snapshot()
