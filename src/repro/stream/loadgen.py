"""Deterministic load-test harness behind ``repro loadtest``.

Replays *thousands* of interleaved synthetic patients against a gateway
— the single-process :class:`~repro.stream.gateway.StreamGateway` or the
sharded :class:`~repro.stream.cluster.ShardedGateway` — and emits one
machine-readable ``BENCH_gateway.json`` payload (p50/p95/p99 frame
latency, frames/sec, drop/conceal/shed rates, per-shard balance).

Determinism is total on the data path: patient ``i`` replays synthetic
record ``MITBIH_RECORD_NAMES[i % 48]`` under a fresh patient id, every
lossy link is seeded from ``(seed, phase, patient)``, and the gateway
clock is an injectable :class:`StepClock` advanced a fixed tick per
playback round — so two runs of the same :class:`LoadScenario` transmit
byte-identical frames, suffer identical erasures, and report identical
latency percentiles.  Only the wall-clock throughput number varies with
the machine.

Overload is *scripted*, not accidental: the timeline is divided into
:class:`LoadPhase`\\ s, each with its own erasure/bit-error rates and
poll cadence.  A phase with ``poll_every=0`` starves the gateway of
polls while arrivals continue — ingress queues fill past capacity and
the configured shedding policy (see
:data:`~repro.stream.gateway.SHEDDING_POLICIES`) decides who pays,
which is exactly what the loadtest is there to measure.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.channel import LossyLink
from repro.core.config import FrontEndConfig
from repro.runtime.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
)
from repro.signals.database import (
    MITBIH_RECORD_NAMES,
    iter_record_chunks,
    load_record,
)
from repro.stream.cluster import ShardedGateway
from repro.stream.gateway import SHEDDING_POLICIES, StreamGateway
from repro.stream.ingest import IngestSession, StreamFrame

__all__ = [
    "StepClock",
    "LoadPhase",
    "LoadScenario",
    "PHASE_SCRIPTS",
    "build_gateway",
    "recovered_digest",
    "run_loadtest",
]

#: Seed stride between phases, so per-phase links are independent.
_PHASE_SEED_STRIDE = 1_000_003


class StepClock:
    """A manually advanced monotonic clock (callable, seconds).

    Injected as the gateway ``clock`` so latency/throughput telemetry is
    a pure function of the scenario: the harness advances it one fixed
    tick per playback round, never from the wall.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        self._now += float(dt)


@dataclass(frozen=True)
class LoadPhase:
    """One scripted stretch of the load timeline.

    Attributes
    ----------
    name:
        Label in the per-phase section of the artifact.
    fraction:
        Share of the playback rounds this phase covers (normalized over
        the scenario's phases).
    erasure_rate / bit_error_rate:
        Link impairments during the phase.
    poll_every:
        Gateway poll cadence in playback rounds; ``0`` starves the
        gateway for the whole phase (the scripted overload/burst: queues
        fill and the shedding policy engages).
    """

    name: str
    fraction: float
    erasure_rate: float = 0.0
    bit_error_rate: float = 0.0
    poll_every: int = 4

    def __post_init__(self) -> None:
        if self.fraction <= 0:
            raise ValueError("fraction must be positive")
        if self.poll_every < 0:
            raise ValueError("poll_every cannot be negative")


#: Named phase scripts selectable as ``repro loadtest --phases NAME``.
PHASE_SCRIPTS: Dict[str, Tuple[LoadPhase, ...]] = {
    # Steady nominal-rate traffic, no impairments: the acceptance run —
    # every frame must arrive and zero frames may be shed.
    "nominal": (LoadPhase("nominal", 1.0),),
    # Nominal warm-up, then a lossy stretch, then a poll-starved
    # overload burst: exercises concealment and shedding in one run.
    "stress": (
        LoadPhase("nominal", 0.4),
        LoadPhase("loss", 0.3, erasure_rate=0.25),
        LoadPhase("overload", 0.3, poll_every=0),
    ),
}


@dataclass(frozen=True)
class LoadScenario:
    """Parameters of one deterministic gateway load test.

    ``patients`` may exceed the 48 synthetic records: patient ``i``
    replays record ``i % 48`` under its own ``p<i>`` identity (the
    record cache makes the reuse free), which is how a laptop-sized run
    still interleaves thousands of concurrent sessions.
    """

    patients: int = 200
    duration_s: float = 1.5
    config: FrontEndConfig = FrontEndConfig()
    method: str = "hybrid"
    chunk_size: int = 181
    seed: int = 0
    queue_capacity: int = 64
    shed_policy: str = "drop-oldest"
    reorder_depth: int = 4
    ring_windows: int = 8
    phases: Tuple[LoadPhase, ...] = field(
        default_factory=lambda: PHASE_SCRIPTS["nominal"]
    )
    #: Simulated seconds per playback round; default = one chunk of
    #: samples at the record rate (i.e. real-time playback).
    tick_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.patients < 1:
            raise ValueError("patients must be >= 1")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.shed_policy not in SHEDDING_POLICIES:
            raise ValueError(
                f"unknown shedding policy {self.shed_policy!r}; "
                f"choose from {SHEDDING_POLICIES}"
            )
        if not self.phases:
            raise ValueError("need at least one phase")
        if self.tick_s is not None and self.tick_s < 0:
            raise ValueError("tick_s cannot be negative")

    def patient_ids(self) -> List[str]:
        """The synthetic patient identities, in submission order."""
        return [f"p{i:04d}" for i in range(self.patients)]

    def record_name_for(self, index: int) -> str:
        """Which synthetic record patient ``index`` replays."""
        return MITBIH_RECORD_NAMES[index % len(MITBIH_RECORD_NAMES)]


def _phase_schedule(
    phases: Tuple[LoadPhase, ...], rounds: int
) -> List[int]:
    """Map each playback round to its phase index (fractions normalized)."""
    total = sum(p.fraction for p in phases)
    edges = []
    acc = 0.0
    for phase in phases:
        acc += phase.fraction / total
        edges.append(acc)
    schedule = []
    for r in range(rounds):
        progress = (r + 1) / rounds
        index = next(
            i for i, edge in enumerate(edges) if progress <= edge + 1e-12
        )
        schedule.append(index)
    return schedule


def _rate(count: int, total: int) -> Optional[float]:
    """``count / total`` as a rate, ``None`` when the denominator is zero."""
    return count / total if total > 0 else None


def build_gateway(
    scenario: LoadScenario,
    clock: Callable[[], float],
    *,
    shards: int = 1,
    transport: str = "inproc",
    workers: int = 1,
) -> Union[StreamGateway, ShardedGateway]:
    """The gateway under test: single-process, or sharded for ``shards > 1``.

    ``workers > 1`` gives each gateway (each *shard*, in cluster mode) a
    persistent worker pool — the long-lived-service executor lifecycle,
    released by ``gateway.executor.shutdown()`` / ``cluster.close()``.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")

    def make_executor() -> Executor:
        if workers > 1:
            return ParallelExecutor(workers=workers, persistent=True)
        return SerialExecutor()

    if shards == 1:
        return StreamGateway(
            executor=make_executor(),
            queue_capacity=scenario.queue_capacity,
            shed_policy=scenario.shed_policy,
            clock=clock,
        )
    return ShardedGateway(
        shards,
        executor_factory=lambda name: make_executor(),
        transport=transport,
        queue_capacity=scenario.queue_capacity,
        shed_policy=scenario.shed_policy,
        clock=clock,
    )


def recovered_digest(
    gateway: Union[StreamGateway, ShardedGateway]
) -> str:
    """SHA-256 over every session's recovered output and loss accounting.

    The identity check between runtimes: a single-process and a sharded
    run over the same scenario must produce the same digest — same
    retained reconstruction bytes, same solve/conceal/fallback counts,
    per patient.  Sessions are folded in patient-id order so shard
    layout cannot leak into the hash.
    """
    h = hashlib.sha256()
    for session in sorted(gateway.sessions, key=lambda s: s.patient_id):
        h.update(session.patient_id.encode("utf-8"))
        counts = np.array(
            [
                session.solved,
                session.concealed,
                session.cs_fallbacks,
                session.late_drops,
                session.duplicate_drops,
                session.ring.total_written,
            ],
            dtype=np.int64,
        )
        h.update(counts.tobytes())
        h.update(np.ascontiguousarray(session.ring.read()).tobytes())
    return h.hexdigest()


def run_loadtest(
    scenario: LoadScenario,
    *,
    shards: int = 1,
    transport: str = "inproc",
    workers: int = 1,
    on_progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Drive one scenario to completion; return the artifact payload.

    The returned dict is the ``BENCH_gateway.json`` schema: scenario
    echo, runtime mode, wall/simulated time, frame accounting, latency
    percentiles (simulated clock), per-policy shedding counters,
    per-phase traffic, per-shard balance, and the
    :func:`recovered_digest` identity hash.
    """
    cfg = scenario.config
    ids = scenario.patient_ids()
    # Distinct records only — the LRU record cache plus shared chunk
    # views keep thousands of patients at tens-of-records memory cost.
    chunks_by_name = {
        name: list(
            iter_record_chunks(
                load_record(name, duration_s=scenario.duration_s),
                scenario.chunk_size,
            )
        )
        for name in {
            scenario.record_name_for(i) for i in range(scenario.patients)
        }
    }
    playback = [
        chunks_by_name[scenario.record_name_for(i)]
        for i in range(scenario.patients)
    ]
    rounds = max(len(chunks) for chunks in playback)
    schedule = _phase_schedule(scenario.phases, rounds)
    tick = (
        scenario.tick_s
        if scenario.tick_s is not None
        else scenario.chunk_size / 360.0
    )

    clock = StepClock()
    gateway = build_gateway(
        scenario, clock, shards=shards, transport=transport, workers=workers
    )
    encoders: Dict[str, IngestSession] = {}
    for i, pid in enumerate(ids):
        encoders[pid] = IngestSession(pid, cfg, method=scenario.method)
        gateway.open_session(
            pid,
            cfg,
            method=scenario.method,
            reorder_depth=scenario.reorder_depth,
            ring_windows=scenario.ring_windows,
        )

    links: Dict[Tuple[int, int], LossyLink] = {}

    def link_for(phase_index: int, patient_index: int) -> LossyLink:
        key = (phase_index, patient_index)
        if key not in links:
            phase = scenario.phases[phase_index]
            links[key] = LossyLink(
                bit_error_rate=phase.bit_error_rate,
                packet_erasure_rate=phase.erasure_rate,
                seed=scenario.seed
                + _PHASE_SEED_STRIDE * phase_index
                + patient_index,
            )
        return links[key]

    frames_sent = 0
    frames_erased = 0
    frames_delivered = 0
    per_phase: List[Dict[str, Any]] = [
        {"name": p.name, "rounds": 0, "frames_sent": 0, "frames_erased": 0}
        for p in scenario.phases
    ]

    wall_start = time.perf_counter()
    rounds_in_phase = 0
    for r in range(rounds):
        phase_index = schedule[r]
        phase = scenario.phases[phase_index]
        if r > 0 and schedule[r - 1] != phase_index:
            rounds_in_phase = 0
        per_phase[phase_index]["rounds"] += 1
        for i, pid in enumerate(ids):
            if r >= len(playback[i]):
                continue
            for frame in encoders[pid].push(playback[i][r]):
                frames_sent += 1
                per_phase[phase_index]["frames_sent"] += 1
                impaired = link_for(phase_index, i).transmit(frame.packet)
                if impaired is None:
                    frames_erased += 1
                    per_phase[phase_index]["frames_erased"] += 1
                    continue
                frames_delivered += 1
                gateway.submit(
                    StreamFrame(
                        patient_id=pid,
                        packet=impaired,
                        crc=frame.crc,
                        reference=frame.reference,
                    )
                )
        clock.advance(tick)
        rounds_in_phase += 1
        if phase.poll_every and rounds_in_phase % phase.poll_every == 0:
            gateway.poll()
            if on_progress is not None:
                on_progress(
                    f"[{phase.name}] round {r + 1}/{rounds}: "
                    f"{gateway.snapshot().summary_line()}"
                )
    gateway.finish()
    wall_s = time.perf_counter() - wall_start

    snapshot = gateway.snapshot()
    digest = recovered_digest(gateway)
    balance = gateway.balance() if isinstance(gateway, ShardedGateway) else None
    if hasattr(gateway, "close"):
        gateway.close()
    else:
        gateway.executor.shutdown()

    completed = snapshot.windows_completed
    return {
        "schema": "repro-bench-gateway/v1",
        "scenario": {
            "patients": scenario.patients,
            "duration_s": scenario.duration_s,
            "method": scenario.method,
            "window_len": cfg.window_len,
            "n_measurements": cfg.n_measurements,
            "chunk_size": scenario.chunk_size,
            "seed": scenario.seed,
            "queue_capacity": scenario.queue_capacity,
            "shed_policy": scenario.shed_policy,
            "reorder_depth": scenario.reorder_depth,
            "tick_s": tick,
            "phases": [
                {
                    "name": p.name,
                    "fraction": p.fraction,
                    "erasure_rate": p.erasure_rate,
                    "bit_error_rate": p.bit_error_rate,
                    "poll_every": p.poll_every,
                }
                for p in scenario.phases
            ],
        },
        "mode": {
            "shards": shards,
            "transport": transport if shards > 1 else None,
            "workers": workers,
        },
        "wall_s": wall_s,
        "sim_s": clock(),
        "frames_sent": frames_sent,
        "frames_erased": frames_erased,
        "frames_delivered": frames_delivered,
        "windows_completed": completed,
        "frames_per_sec": completed / wall_s if wall_s > 0 else None,
        "latency_p50_s": snapshot.latency_p50_s,
        "latency_p95_s": snapshot.latency_p95_s,
        "latency_p99_s": snapshot.latency_p99_s,
        "queue_drops": snapshot.queue_drops,
        "queue_rejects": snapshot.queue_rejects,
        "patient_sheds": snapshot.patient_sheds,
        "shed_frames": snapshot.shed_frames,
        "frames_lost": snapshot.frames_lost,
        "queue_high_water": snapshot.queue_high_water,
        "concealed": snapshot.concealed,
        "cs_fallbacks": snapshot.cs_fallbacks,
        "late_drops": snapshot.late_drops,
        "duplicate_drops": snapshot.duplicate_drops,
        "conceal_rate": _rate(snapshot.concealed, completed),
        "shed_rate": _rate(snapshot.frames_lost, frames_delivered),
        "per_phase": per_phase,
        "per_shard": balance,
        "recovered_digest": digest,
    }
