"""Real-time multi-patient streaming telemetry over the CS front-end.

The serving layer the paper's deployment story implies: the batch
pipeline turned online.  Per-patient
:class:`~repro.stream.ingest.IngestSession`\\ s window and encode live
sample streams (bit-identical to the batch encoder),
:class:`~repro.stream.session.PatientSession`\\ s reconstruct frame
streams under loss/reordering with CRC fallback and zero-order-hold
concealment, and a :class:`~repro.stream.gateway.StreamGateway` serves
many sessions at once with bounded queues, an explicit drop-oldest
backpressure policy, and recovery-solve fan-out through the
:mod:`repro.runtime` executors.  See ``docs/streaming.md``.
"""

from repro.stream.driver import StreamScenario, run_stream_scenario
from repro.stream.gateway import BoundedQueue, StreamGateway
from repro.stream.ingest import IngestSession, StreamFrame, codebook_spec_for
from repro.stream.metrics import GatewaySnapshot, RollingStat, SessionSnapshot
from repro.stream.session import (
    PatientSession,
    PlannedWindow,
    RecoveredWindow,
    RecoveryTask,
    SignalRing,
    execute_recovery_task,
)

__all__ = [
    "BoundedQueue",
    "GatewaySnapshot",
    "IngestSession",
    "PatientSession",
    "PlannedWindow",
    "RecoveredWindow",
    "RecoveryTask",
    "RollingStat",
    "SessionSnapshot",
    "SignalRing",
    "StreamFrame",
    "StreamGateway",
    "StreamScenario",
    "codebook_spec_for",
    "execute_recovery_task",
    "run_stream_scenario",
]
