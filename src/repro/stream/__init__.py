"""Real-time multi-patient streaming telemetry over the CS front-end.

The serving layer the paper's deployment story implies: the batch
pipeline turned online.  Per-patient
:class:`~repro.stream.ingest.IngestSession`\\ s window and encode live
sample streams (bit-identical to the batch encoder),
:class:`~repro.stream.session.PatientSession`\\ s reconstruct frame
streams under loss/reordering with CRC fallback and zero-order-hold
concealment, and a :class:`~repro.stream.gateway.StreamGateway` serves
many sessions at once with bounded queues, selectable load-shedding
policies (:data:`~repro.stream.gateway.SHEDDING_POLICIES`), and
recovery-solve fan-out through the :mod:`repro.runtime` executors.

Scaling out, a :class:`~repro.stream.cluster.ShardedGateway` partitions
sessions across shards by consistent hashing
(:class:`~repro.stream.cluster.HashRing`), optionally fed through the
length-prefixed :mod:`repro.stream.wire` byte framing, with graceful
drain/restart via :class:`~repro.stream.session.SessionState`
migration; :mod:`repro.stream.loadgen` is the deterministic load-test
harness (``repro loadtest``) that measures all of it.  See
``docs/streaming.md``.
"""

from repro.stream.cluster import HashRing, ShardedGateway, stable_hash
from repro.stream.driver import StreamScenario, run_stream_scenario
from repro.stream.gateway import (
    SHEDDING_POLICIES,
    BoundedQueue,
    StreamGateway,
)
from repro.stream.ingest import IngestSession, StreamFrame, codebook_spec_for
from repro.stream.loadgen import (
    PHASE_SCRIPTS,
    LoadPhase,
    LoadScenario,
    StepClock,
    build_gateway,
    recovered_digest,
    run_loadtest,
)
from repro.stream.metrics import GatewaySnapshot, RollingStat, SessionSnapshot
from repro.stream.session import (
    PatientSession,
    PlannedWindow,
    RecoveredWindow,
    RecoveryTask,
    SessionState,
    SignalRing,
    execute_recovery_task,
)
from repro.stream.wire import (
    FrameAssembler,
    WireError,
    decode_frame_body,
    encode_frame,
)

__all__ = [
    "BoundedQueue",
    "FrameAssembler",
    "GatewaySnapshot",
    "HashRing",
    "IngestSession",
    "LoadPhase",
    "LoadScenario",
    "PHASE_SCRIPTS",
    "PatientSession",
    "PlannedWindow",
    "RecoveredWindow",
    "RecoveryTask",
    "RollingStat",
    "SHEDDING_POLICIES",
    "SessionSnapshot",
    "SessionState",
    "ShardedGateway",
    "SignalRing",
    "StepClock",
    "StreamFrame",
    "StreamGateway",
    "StreamScenario",
    "WireError",
    "build_gateway",
    "codebook_spec_for",
    "decode_frame_body",
    "encode_frame",
    "execute_recovery_task",
    "recovered_digest",
    "run_loadtest",
    "run_stream_scenario",
    "stable_hash",
]
