"""Multi-patient streaming gateway: bounded queues, executor fan-out.

:class:`StreamGateway` is the serving layer of the telemetry system: it
routes arriving :class:`~repro.stream.ingest.StreamFrame`\\ s into
bounded per-session ingress queues, and on each :meth:`poll` drains the
queues through the sessions' reorder logic and fans the released
recovery solves out through one pluggable
:class:`repro.runtime.executors.Executor` — the same scheduling layer
the batch sweeps use, so ``--workers N`` scales streaming recovery the
same way it scales ``repro compress``.

**Backpressure policies:** every ingress queue is a bounded FIFO of
fixed capacity with a selectable shedding policy (``shed_policy``):

* ``drop-oldest`` (default) — the oldest queued frame is discarded
  (counted in ``queue_drops``); bounded staleness, freshest data wins.
* ``drop-newest`` — the arriving frame is rejected (counted in
  ``queue_rejects``); in-flight work is never invalidated, arrivals
  during overload are sacrificed.
* ``shed-patient`` — the overloaded patient's whole backlog is cleared
  in one shed event (``patient_sheds`` events, ``shed_frames`` frames)
  and the arriving frame is accepted; one misbehaving/overdriven
  patient pays for its own overload instead of degrading smoothly.

Whatever the policy, a discarded frame later surfaces as a sequence gap
and the receiver conceals that window via the normal erasure path —
bounded staleness and bounded memory, never an unbounded backlog.
Queue high-water marks are tracked so the bound is observable (and
asserted in tests).

Wall-clock use is injectable (``clock=``) so latency/throughput
telemetry is real in production yet fully deterministic in tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.coding.codebook import DifferenceCodebook
from repro.core.config import FrontEndConfig
from repro.runtime.executors import Executor, SerialExecutor
from repro.runtime.stages import recovery_cache_stats
from repro.stream.ingest import StreamFrame
from repro.stream.metrics import GatewaySnapshot, rolling_percentile
from repro.stream.session import (
    PatientSession,
    PlannedWindow,
    execute_recovery_task,
)

__all__ = ["SHEDDING_POLICIES", "BoundedQueue", "StreamGateway"]

#: The ingress load-shedding policies a gateway queue can run.
SHEDDING_POLICIES = ("drop-oldest", "drop-newest", "shed-patient")


class BoundedQueue:
    """Bounded FIFO with a selectable overflow policy and per-policy counters.

    ``drops`` counts frames discarded by ``drop-oldest`` overflow,
    ``rejects`` counts arrivals refused by ``drop-newest``, and
    ``sheds``/``shed_frames`` count ``shed-patient`` backlog-clear
    events and the frames they discarded.  ``high_water`` tracks the
    deepest the queue ever got, whatever the policy.
    """

    def __init__(self, capacity: int, policy: str = "drop-oldest") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if policy not in SHEDDING_POLICIES:
            raise ValueError(
                f"unknown shedding policy {policy!r}; "
                f"choose from {SHEDDING_POLICIES}"
            )
        self.capacity = int(capacity)
        self.policy = str(policy)
        self._items: Deque = deque()
        self.drops = 0
        self.rejects = 0
        self.sheds = 0
        self.shed_frames = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def lost(self) -> int:
        """Total frames this queue discarded, across all policies."""
        return self.drops + self.rejects + self.shed_frames

    def push(self, item) -> bool:
        """Enqueue ``item``; returns False when any frame was discarded.

        On overflow the configured policy decides who pays: the oldest
        queued entry (``drop-oldest``), the arriving ``item``
        (``drop-newest``), or the whole backlog (``shed-patient``, which
        then accepts ``item`` into the emptied queue).
        """
        kept = True
        if len(self._items) >= self.capacity:
            kept = False
            if self.policy == "drop-oldest":
                self._items.popleft()
                self.drops += 1
            elif self.policy == "drop-newest":
                self.rejects += 1
                return False
            else:  # shed-patient
                self.sheds += 1
                self.shed_frames += len(self._items)
                self._items.clear()
        self._items.append(item)
        self.high_water = max(self.high_water, len(self._items))
        return kept

    def popleft(self):
        """Dequeue the oldest item (raises ``IndexError`` when empty)."""
        return self._items.popleft()

    def drain(self) -> List:
        """Remove and return every queued item, oldest first."""
        items = list(self._items)
        self._items.clear()
        return items


class StreamGateway:
    """Receives many patients' frame streams and reconstructs them online.

    Parameters
    ----------
    executor:
        Recovery-solve scheduler; defaults to the serial executor.  A
        :class:`~repro.runtime.executors.ParallelExecutor` overlaps the
        independent window solves across processes.
    queue_capacity:
        Per-session ingress queue bound (``shed_policy`` beyond this).
    shed_policy:
        Ingress overflow policy, one of :data:`SHEDDING_POLICIES`
        (default ``drop-oldest``).
    latency_window:
        Number of recent per-window latencies retained for percentiles.
    clock:
        Monotonic time source (seconds); injectable for deterministic
        tests.
    """

    def __init__(
        self,
        *,
        executor: Optional[Executor] = None,
        queue_capacity: int = 64,
        shed_policy: str = "drop-oldest",
        latency_window: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        if shed_policy not in SHEDDING_POLICIES:
            raise ValueError(
                f"unknown shedding policy {shed_policy!r}; "
                f"choose from {SHEDDING_POLICIES}"
            )
        self.executor = executor or SerialExecutor()
        self.queue_capacity = int(queue_capacity)
        self.shed_policy = str(shed_policy)
        self._clock = clock
        self._start = clock()
        self._sessions: Dict[str, PatientSession] = {}
        self._queues: Dict[str, BoundedQueue] = {}
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))
        self._completed = 0
        # Loss accounting carried over from queues evicted by migration.
        self._migrated_drops = 0
        self._migrated_rejects = 0
        self._migrated_sheds = 0
        self._migrated_shed_frames = 0
        self._migrated_high_water = 0

    # -- session management -------------------------------------------------

    def open_session(
        self,
        patient_id: str,
        config: FrontEndConfig,
        *,
        method: str = "hybrid",
        codebook: Optional[DifferenceCodebook] = None,
        reorder_depth: int = 4,
        ring_windows: int = 8,
    ) -> PatientSession:
        """Create and register the receiver session for one patient.

        Resolves the session's codebook spec eagerly so offline state is
        trained once in the gateway process (fork-based executor workers
        then inherit the cache instead of retraining per worker).
        """
        if patient_id in self._sessions:
            raise ValueError(f"session {patient_id!r} already open")
        session = PatientSession(
            patient_id,
            config,
            method=method,
            codebook=codebook,
            reorder_depth=reorder_depth,
            ring_windows=ring_windows,
        )
        session.codebook_spec.resolve()
        self._sessions[patient_id] = session
        self._queues[patient_id] = BoundedQueue(
            self.queue_capacity, self.shed_policy
        )
        return session

    def session(self, patient_id: str) -> PatientSession:
        """The registered session for ``patient_id`` (KeyError if unknown)."""
        return self._sessions[patient_id]

    @property
    def sessions(self) -> Tuple[PatientSession, ...]:
        """All registered sessions, in registration order."""
        return tuple(self._sessions.values())

    # -- session migration (shard drain/restart) ----------------------------

    def evict_session(
        self, patient_id: str
    ) -> Tuple[PatientSession, List[Tuple[StreamFrame, float]]]:
        """Deregister one session, returning it plus its queued frames.

        The migration half-step a draining shard runs: the session object
        (sequence cursor, warm-start chain, concealment state and
        counters intact) and the undrained ingress backlog move to
        whichever gateway :meth:`adopt_session`\\ s them next.  The
        evicted queue's loss/high-water counters stay aggregated here so
        gateway telemetry never goes backwards.
        """
        session = self._sessions.pop(patient_id)
        queue = self._queues.pop(patient_id)
        self._migrated_drops += queue.drops
        self._migrated_rejects += queue.rejects
        self._migrated_sheds += queue.sheds
        self._migrated_shed_frames += queue.shed_frames
        self._migrated_high_water = max(
            self._migrated_high_water, queue.high_water
        )
        return session, queue.drain()

    def adopt_session(
        self,
        session: PatientSession,
        queued: Optional[List[Tuple[StreamFrame, float]]] = None,
    ) -> PatientSession:
        """Register a migrated session (the other half of an eviction).

        The session arrives with its full decoder state; any carried
        backlog is re-queued in arrival order under *this* gateway's
        shedding policy.
        """
        if session.patient_id in self._sessions:
            raise ValueError(f"session {session.patient_id!r} already open")
        self._sessions[session.patient_id] = session
        queue = BoundedQueue(self.queue_capacity, self.shed_policy)
        for item in queued or []:
            queue.push(item)
        self._queues[session.patient_id] = queue
        return session

    # -- ingress ------------------------------------------------------------

    def submit(self, frame: StreamFrame) -> bool:
        """Enqueue one arriving frame for its patient's session.

        Timestamps the arrival with the gateway clock.  Returns False
        when backpressure dropped the session's oldest queued frame to
        make room.  Unknown patients raise ``KeyError`` — erased frames
        simply never show up here, exactly like a real radio.
        """
        queue = self._queues[frame.patient_id]
        return queue.push((frame, self._clock()))

    # -- processing ---------------------------------------------------------

    def poll(self) -> int:
        """Drain every ingress queue and resolve all released windows.

        One poll: queued frames flow through their sessions' reorder
        logic; every released solve is fanned out through the executor
        as one flat batch (windows from different sessions interleave
        freely — they are independent); concealments and results are
        applied back in per-session window order.  Returns the number of
        windows completed.
        """
        planned: List[Tuple[PatientSession, PlannedWindow]] = []
        for patient_id, queue in self._queues.items():
            session = self._sessions[patient_id]
            while len(queue):
                frame, arrival_ts = queue.popleft()
                planned.extend(
                    (session, p) for p in session.offer(frame, arrival_ts)
                )
        return self._complete(planned)

    def finish(self) -> int:
        """Drain queues, then flush every session's reorder buffer.

        Call once at end of stream; returns windows completed by the
        final flush (concealing any unfilled gaps).
        """
        completed = self.poll()
        planned: List[Tuple[PatientSession, PlannedWindow]] = []
        for session in self._sessions.values():
            planned.extend((session, p) for p in session.finish())
        return completed + self._complete(planned)

    def _complete(self, planned: List[Tuple[PatientSession, PlannedWindow]]) -> int:
        tasks = [p.task for _, p in planned if p.task is not None]
        results = (
            self.executor.run_tasks(tasks, fn=execute_recovery_task)
            if tasks
            else []
        )
        result_iter = iter(results)
        now = self._clock()
        for session, plan in planned:
            result = next(result_iter) if plan.task is not None else None
            session.apply(plan, result)
            if plan.arrival_ts is not None:
                self._latencies.append(now - plan.arrival_ts)
        self._completed += len(planned)
        return len(planned)

    # -- telemetry ----------------------------------------------------------

    @property
    def windows_inflight(self) -> int:
        """Frames accepted but not yet resolved (queued + reorder-held)."""
        queued = sum(len(q) for q in self._queues.values())
        held = sum(s.pending_reorder for s in self._sessions.values())
        return queued + held

    @property
    def recent_latencies(self) -> Tuple[float, ...]:
        """The retained arrival→completion latency samples (seconds).

        Exposed so a cluster front can merge percentile *samples* across
        shards — percentiles themselves do not compose.
        """
        return tuple(self._latencies)

    def snapshot(self) -> GatewaySnapshot:
        """Current gateway-wide telemetry as an immutable snapshot."""
        uptime = self._clock() - self._start
        # null, not 0.0: a rate only exists once a window has completed
        # inside a positive uptime.
        rate = (
            self._completed / uptime
            if uptime > 0 and self._completed > 0
            else None
        )
        return GatewaySnapshot(
            uptime_s=uptime,
            sessions=len(self._sessions),
            windows_inflight=self.windows_inflight,
            windows_completed=self._completed,
            reconstructed_per_sec=rate,
            shed_policy=self.shed_policy,
            queue_drops=self._migrated_drops
            + sum(q.drops for q in self._queues.values()),
            queue_rejects=self._migrated_rejects
            + sum(q.rejects for q in self._queues.values()),
            patient_sheds=self._migrated_sheds
            + sum(q.sheds for q in self._queues.values()),
            shed_frames=self._migrated_shed_frames
            + sum(q.shed_frames for q in self._queues.values()),
            queue_high_water=max(
                self._migrated_high_water,
                max((q.high_water for q in self._queues.values()), default=0),
            ),
            late_drops=sum(s.late_drops for s in self._sessions.values()),
            duplicate_drops=sum(
                s.duplicate_drops for s in self._sessions.values()
            ),
            concealed=sum(s.concealed for s in self._sessions.values()),
            cs_fallbacks=sum(s.cs_fallbacks for s in self._sessions.values()),
            latency_p50_s=rolling_percentile(self._latencies, 50.0),
            latency_p95_s=rolling_percentile(self._latencies, 95.0),
            latency_p99_s=rolling_percentile(self._latencies, 99.0),
            per_session=tuple(
                s.snapshot() for s in self._sessions.values()
            ),
            recovery_cache=recovery_cache_stats(),
        )
