"""Multi-patient streaming gateway: bounded queues, executor fan-out.

:class:`StreamGateway` is the serving layer of the telemetry system: it
routes arriving :class:`~repro.stream.ingest.StreamFrame`\\ s into
bounded per-session ingress queues, and on each :meth:`poll` drains the
queues through the sessions' reorder logic and fans the released
recovery solves out through one pluggable
:class:`repro.runtime.executors.Executor` — the same scheduling layer
the batch sweeps use, so ``--workers N`` scales streaming recovery the
same way it scales ``repro compress``.

**Backpressure policy:** every ingress queue is a drop-oldest FIFO of
fixed capacity.  When a producer outruns recovery, the oldest queued
frame is discarded (counted in ``queue_drops``) and the receiver later
conceals that window via the normal erasure path — bounded staleness
and bounded memory, never an unbounded backlog.  Queue high-water marks
are tracked so the bound is observable (and asserted in tests).

Wall-clock use is injectable (``clock=``) so latency/throughput
telemetry is real in production yet fully deterministic in tests.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.coding.codebook import DifferenceCodebook
from repro.core.config import FrontEndConfig
from repro.runtime.executors import Executor, SerialExecutor
from repro.stream.ingest import StreamFrame
from repro.stream.metrics import GatewaySnapshot, rolling_percentile
from repro.stream.session import (
    PatientSession,
    PlannedWindow,
    execute_recovery_task,
)

__all__ = ["BoundedQueue", "StreamGateway"]


class BoundedQueue:
    """Drop-oldest bounded FIFO with a drop counter and high-water mark."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self._items: Deque = deque()
        self.drops = 0
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item) -> bool:
        """Enqueue ``item``; returns False when the oldest entry was dropped."""
        kept = True
        if len(self._items) >= self.capacity:
            self._items.popleft()
            self.drops += 1
            kept = False
        self._items.append(item)
        self.high_water = max(self.high_water, len(self._items))
        return kept

    def popleft(self):
        """Dequeue the oldest item (raises ``IndexError`` when empty)."""
        return self._items.popleft()


class StreamGateway:
    """Receives many patients' frame streams and reconstructs them online.

    Parameters
    ----------
    executor:
        Recovery-solve scheduler; defaults to the serial executor.  A
        :class:`~repro.runtime.executors.ParallelExecutor` overlaps the
        independent window solves across processes.
    queue_capacity:
        Per-session ingress queue bound (drop-oldest beyond this).
    latency_window:
        Number of recent per-window latencies retained for percentiles.
    clock:
        Monotonic time source (seconds); injectable for deterministic
        tests.
    """

    def __init__(
        self,
        *,
        executor: Optional[Executor] = None,
        queue_capacity: int = 64,
        latency_window: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if latency_window <= 0:
            raise ValueError("latency_window must be positive")
        self.executor = executor or SerialExecutor()
        self.queue_capacity = int(queue_capacity)
        self._clock = clock
        self._start = clock()
        self._sessions: Dict[str, PatientSession] = {}
        self._queues: Dict[str, BoundedQueue] = {}
        self._latencies: Deque[float] = deque(maxlen=int(latency_window))
        self._completed = 0

    # -- session management -------------------------------------------------

    def open_session(
        self,
        patient_id: str,
        config: FrontEndConfig,
        *,
        method: str = "hybrid",
        codebook: Optional[DifferenceCodebook] = None,
        reorder_depth: int = 4,
        ring_windows: int = 8,
    ) -> PatientSession:
        """Create and register the receiver session for one patient.

        Resolves the session's codebook spec eagerly so offline state is
        trained once in the gateway process (fork-based executor workers
        then inherit the cache instead of retraining per worker).
        """
        if patient_id in self._sessions:
            raise ValueError(f"session {patient_id!r} already open")
        session = PatientSession(
            patient_id,
            config,
            method=method,
            codebook=codebook,
            reorder_depth=reorder_depth,
            ring_windows=ring_windows,
        )
        session.codebook_spec.resolve()
        self._sessions[patient_id] = session
        self._queues[patient_id] = BoundedQueue(self.queue_capacity)
        return session

    def session(self, patient_id: str) -> PatientSession:
        """The registered session for ``patient_id`` (KeyError if unknown)."""
        return self._sessions[patient_id]

    @property
    def sessions(self) -> Tuple[PatientSession, ...]:
        """All registered sessions, in registration order."""
        return tuple(self._sessions.values())

    # -- ingress ------------------------------------------------------------

    def submit(self, frame: StreamFrame) -> bool:
        """Enqueue one arriving frame for its patient's session.

        Timestamps the arrival with the gateway clock.  Returns False
        when backpressure dropped the session's oldest queued frame to
        make room.  Unknown patients raise ``KeyError`` — erased frames
        simply never show up here, exactly like a real radio.
        """
        queue = self._queues[frame.patient_id]
        return queue.push((frame, self._clock()))

    # -- processing ---------------------------------------------------------

    def poll(self) -> int:
        """Drain every ingress queue and resolve all released windows.

        One poll: queued frames flow through their sessions' reorder
        logic; every released solve is fanned out through the executor
        as one flat batch (windows from different sessions interleave
        freely — they are independent); concealments and results are
        applied back in per-session window order.  Returns the number of
        windows completed.
        """
        planned: List[Tuple[PatientSession, PlannedWindow]] = []
        for patient_id, queue in self._queues.items():
            session = self._sessions[patient_id]
            while len(queue):
                frame, arrival_ts = queue.popleft()
                planned.extend(
                    (session, p) for p in session.offer(frame, arrival_ts)
                )
        return self._complete(planned)

    def finish(self) -> int:
        """Drain queues, then flush every session's reorder buffer.

        Call once at end of stream; returns windows completed by the
        final flush (concealing any unfilled gaps).
        """
        completed = self.poll()
        planned: List[Tuple[PatientSession, PlannedWindow]] = []
        for session in self._sessions.values():
            planned.extend((session, p) for p in session.finish())
        return completed + self._complete(planned)

    def _complete(self, planned: List[Tuple[PatientSession, PlannedWindow]]) -> int:
        tasks = [p.task for _, p in planned if p.task is not None]
        results = (
            self.executor.run_tasks(tasks, fn=execute_recovery_task)
            if tasks
            else []
        )
        result_iter = iter(results)
        now = self._clock()
        for session, plan in planned:
            result = next(result_iter) if plan.task is not None else None
            session.apply(plan, result)
            if plan.arrival_ts is not None:
                self._latencies.append(now - plan.arrival_ts)
        self._completed += len(planned)
        return len(planned)

    # -- telemetry ----------------------------------------------------------

    @property
    def windows_inflight(self) -> int:
        """Frames accepted but not yet resolved (queued + reorder-held)."""
        queued = sum(len(q) for q in self._queues.values())
        held = sum(s.pending_reorder for s in self._sessions.values())
        return queued + held

    def snapshot(self) -> GatewaySnapshot:
        """Current gateway-wide telemetry as an immutable snapshot."""
        uptime = self._clock() - self._start
        rate = self._completed / uptime if uptime > 0 else None
        return GatewaySnapshot(
            uptime_s=uptime,
            sessions=len(self._sessions),
            windows_inflight=self.windows_inflight,
            windows_completed=self._completed,
            reconstructed_per_sec=rate,
            queue_drops=sum(q.drops for q in self._queues.values()),
            queue_high_water=max(
                (q.high_water for q in self._queues.values()), default=0
            ),
            late_drops=sum(s.late_drops for s in self._sessions.values()),
            duplicate_drops=sum(
                s.duplicate_drops for s in self._sessions.values()
            ),
            concealed=sum(s.concealed for s in self._sessions.values()),
            cs_fallbacks=sum(s.cs_fallbacks for s in self._sessions.values()),
            latency_p50_s=rolling_percentile(self._latencies, 50.0),
            latency_p95_s=rolling_percentile(self._latencies, 95.0),
            per_session=tuple(
                s.snapshot() for s in self._sessions.values()
            ),
        )
