"""Sharded streaming gateway: consistent hashing, migration, transports.

The horizontal story for :class:`~repro.stream.gateway.StreamGateway`:
a :class:`ShardedGateway` partitions :class:`~repro.stream.session.
PatientSession`\\ s across N worker shards by consistent hashing on
patient id (:class:`HashRing`), each shard running the existing
single-process gateway loop with its own
:class:`~repro.runtime.executors.Executor`.  Because every session is
pinned to exactly one shard and the per-window solves are pure
functions, the cluster's recovered output is **bit-identical** to one
big gateway fed the same frames — the equivalence the tests assert
per-patient, down to conceal/drop accounting.

Two ingress transports are selectable:

* ``inproc`` — frames are handed to the owning shard as objects (a
  shared in-process queue; zero copies, the fast path);
* ``wire`` — frames are serialized through the length-prefixed
  :mod:`repro.stream.wire` format and re-assembled at the shard from
  MTU-sized byte chunks, exercising exactly what a socket pair between
  an ingress front and a shard process would carry.

Scale-out events are first-class: :meth:`ShardedGateway.add_shard` /
:meth:`~ShardedGateway.remove_shard` move only the consistent-hashing
minimum of sessions, and :meth:`~ShardedGateway.restart_shard` drains a
shard through :class:`~repro.stream.session.SessionState` export/restore
— sequence cursor, warm-start chain, concealment state and queued
backlog all survive, so a rolling restart is invisible in the recovered
signal.
"""

from __future__ import annotations

import hashlib
import time
from bisect import bisect_right
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.coding.codebook import DifferenceCodebook
from repro.core.config import FrontEndConfig
from repro.runtime.executors import Executor
from repro.runtime.stages import recovery_cache_stats
from repro.stream.gateway import SHEDDING_POLICIES, StreamGateway
from repro.stream.ingest import StreamFrame
from repro.stream.metrics import GatewaySnapshot, rolling_percentile
from repro.stream.session import PatientSession
from repro.stream.wire import FrameAssembler, encode_frame

__all__ = ["stable_hash", "HashRing", "ShardedGateway", "TRANSPORTS"]

#: Selectable ingress transports (see the module docstring).
TRANSPORTS = ("inproc", "wire")

#: Virtual nodes per shard on the ring; more replicas smooth the key
#: distribution at O(replicas · shards · log) ring-build cost.
DEFAULT_RING_REPLICAS = 64

#: Default wire-transport chunk size — deliberately prime so frame
#: boundaries almost never align with delivery boundaries.
DEFAULT_WIRE_MTU = 509


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash of ``key``.

    ``hash()`` is salted per interpreter run; routing must be a pure
    function of the patient id so that placement is reproducible across
    runs, machines, and restarts.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping string keys to named shards.

    Each shard contributes ``replicas`` virtual points; a key lands on
    the first point clockwise from its own hash.  Adding a shard steals
    keys *only for the new shard*; removing one reassigns *only its own*
    keys — the bounded-movement property the cluster's migration logic
    (and its tests) rely on.
    """

    def __init__(
        self,
        shards: Sequence[str] = (),
        *,
        replicas: int = DEFAULT_RING_REPLICAS,
    ) -> None:
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = int(replicas)
        self._points: List[Tuple[int, str]] = []
        self._shards: Dict[str, None] = {}  # insertion-ordered set
        for name in shards:
            self.add_shard(name)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    @property
    def shards(self) -> Tuple[str, ...]:
        """Shard names, in the order they were added."""
        return tuple(self._shards)

    def add_shard(self, name: str) -> None:
        """Add ``name``'s virtual points to the ring."""
        name = str(name)
        if not name:
            raise ValueError("shard name cannot be empty")
        if name in self._shards:
            raise ValueError(f"shard {name!r} already on the ring")
        self._shards[name] = None
        for replica in range(self.replicas):
            self._points.append((stable_hash(f"{name}#{replica}"), name))
        self._points.sort()

    def remove_shard(self, name: str) -> None:
        """Remove ``name`` and all its virtual points."""
        if name not in self._shards:
            raise KeyError(f"shard {name!r} not on the ring")
        del self._shards[name]
        self._points = [(p, s) for p, s in self._points if s != name]

    def assign(self, key: str) -> str:
        """The shard owning ``key`` (ValueError on an empty ring)."""
        if not self._points:
            raise ValueError("cannot assign on an empty ring")
        point = stable_hash(key)
        index = bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0  # wrap around
        return self._points[index][1]


class _WireChannel:
    """One shard's byte-stream ingress: encode → chunked delivery → shard.

    Models the socket between the ingress front and a shard worker: the
    producer side appends encoded frame bytes to an outbox, and
    :meth:`pump` delivers them to the shard's
    :class:`~repro.stream.wire.FrameAssembler` in ``mtu``-sized chunks
    (a trailing partial chunk waits for more bytes, exactly like a
    nagled socket; :meth:`flush` pushes it through at end of stream).
    """

    def __init__(self, measurement_bits: int, mtu: int) -> None:
        if mtu <= 0:
            raise ValueError("mtu must be positive")
        self.mtu = int(mtu)
        self.assembler = FrameAssembler(measurement_bits)
        self._outbox = bytearray()

    def send(self, frame: StreamFrame) -> None:
        self._outbox.extend(encode_frame(frame))

    def pump(self) -> List[StreamFrame]:
        """Deliver every full MTU chunk; return the frames they completed."""
        frames: List[StreamFrame] = []
        while len(self._outbox) >= self.mtu:
            chunk = bytes(self._outbox[: self.mtu])
            del self._outbox[: self.mtu]
            frames.extend(self.assembler.feed(chunk))
        return frames

    def deliver_pending(self) -> List[StreamFrame]:
        """Deliver every buffered byte; the stream stays open.

        The poll-time flush: a trailing sub-MTU chunk is pushed through
        instead of nagling past the poll, so frame *delivery* timing
        relative to gateway polls matches the in-process transport —
        which is what keeps the sharded runtime's warm-start chains (and
        therefore its recovered bytes) identical to single-process.
        """
        frames = self.pump()
        if self._outbox:
            frames.extend(self.assembler.feed(bytes(self._outbox)))
            self._outbox.clear()
        return frames

    def flush(self) -> List[StreamFrame]:
        """Deliver everything, close the stream, assert a clean boundary."""
        frames = self.deliver_pending()
        self.assembler.close()
        return frames


class ShardedGateway:
    """N gateway shards behind one routing front.

    The public surface mirrors :class:`~repro.stream.gateway.
    StreamGateway` (``open_session`` / ``submit`` / ``poll`` /
    ``finish`` / ``snapshot``), so drivers and benchmarks swap between
    the single-process and sharded runtimes with one constructor change.

    Parameters
    ----------
    shards:
        Shard count (names become ``shard-0..N-1``) or explicit names.
    executor_factory:
        ``factory(shard_name) -> Executor`` building each shard's solve
        scheduler (default: a fresh serial executor per shard).  The
        factory seam is what lets a benchmark give every shard its own
        process pool while tests keep everything serial.
    transport:
        ``"inproc"`` or ``"wire"`` (see the module docstring).
    wire_mtu:
        Chunk size of the simulated byte channel (wire transport only).
    queue_capacity / shed_policy / latency_window / clock:
        Forwarded to every shard's :class:`StreamGateway`.
    """

    def __init__(
        self,
        shards: Union[int, Sequence[str]] = 2,
        *,
        executor_factory: Optional[Callable[[str], Executor]] = None,
        transport: str = "inproc",
        wire_mtu: int = DEFAULT_WIRE_MTU,
        queue_capacity: int = 64,
        shed_policy: str = "drop-oldest",
        latency_window: int = 512,
        ring_replicas: int = DEFAULT_RING_REPLICAS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if isinstance(shards, int):
            if shards < 1:
                raise ValueError("need at least one shard")
            names: Tuple[str, ...] = tuple(
                f"shard-{i}" for i in range(shards)
            )
        else:
            names = tuple(str(s) for s in shards)
            if not names:
                raise ValueError("need at least one shard")
            if len(set(names)) != len(names):
                raise ValueError("shard names must be unique")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        if shed_policy not in SHEDDING_POLICIES:
            raise ValueError(
                f"unknown shedding policy {shed_policy!r}; "
                f"choose from {SHEDDING_POLICIES}"
            )
        self.transport = str(transport)
        self.wire_mtu = int(wire_mtu)
        self.queue_capacity = int(queue_capacity)
        self.shed_policy = str(shed_policy)
        self.latency_window = int(latency_window)
        self._clock = clock
        self._start = clock()
        self._executor_factory = executor_factory
        self.ring = HashRing(names, replicas=ring_replicas)
        self._shards: Dict[str, StreamGateway] = {}
        self._channels: Dict[str, _WireChannel] = {}
        self._owner: Dict[str, str] = {}  # patient id -> shard name
        # Session build parameters, kept so migration can reconstruct a
        # session on its destination shard from exported state alone.
        self._session_params: Dict[str, dict] = {}
        self._measurement_bits: Optional[int] = None
        for name in names:
            self._shards[name] = self._new_shard_gateway(name)

    # -- construction helpers -----------------------------------------------

    def _new_shard_gateway(self, name: str) -> StreamGateway:
        executor = (
            self._executor_factory(name)
            if self._executor_factory is not None
            else None
        )
        return StreamGateway(
            executor=executor,
            queue_capacity=self.queue_capacity,
            shed_policy=self.shed_policy,
            latency_window=self.latency_window,
            clock=self._clock,
        )

    def _channel_for(self, shard: str) -> _WireChannel:
        if shard not in self._channels:
            assert self._measurement_bits is not None
            self._channels[shard] = _WireChannel(
                self._measurement_bits, self.wire_mtu
            )
        return self._channels[shard]

    # -- session management -------------------------------------------------

    @property
    def shard_names(self) -> Tuple[str, ...]:
        """Live shard names, in creation order."""
        return tuple(self._shards)

    def shard(self, name: str) -> StreamGateway:
        """The underlying gateway of one shard (KeyError if unknown)."""
        return self._shards[name]

    def owner_of(self, patient_id: str) -> str:
        """Which shard currently serves ``patient_id``."""
        return self._owner[patient_id]

    def open_session(
        self,
        patient_id: str,
        config: FrontEndConfig,
        *,
        method: str = "hybrid",
        codebook: Optional[DifferenceCodebook] = None,
        reorder_depth: int = 4,
        ring_windows: int = 8,
    ) -> PatientSession:
        """Create the patient's receiver session on its ring-owned shard."""
        if patient_id in self._owner:
            raise ValueError(f"session {patient_id!r} already open")
        if self.transport == "wire":
            if self._measurement_bits is None:
                self._measurement_bits = config.measurement_bits
            elif self._measurement_bits != config.measurement_bits:
                raise ValueError(
                    "wire transport requires a uniform measurement_bits "
                    "across sessions (it is offline shared state)"
                )
        shard = self.ring.assign(patient_id)
        session = self._shards[shard].open_session(
            patient_id,
            config,
            method=method,
            codebook=codebook,
            reorder_depth=reorder_depth,
            ring_windows=ring_windows,
        )
        self._owner[patient_id] = shard
        self._session_params[patient_id] = {
            "config": config,
            "method": method,
            "codebook": codebook,
            "reorder_depth": reorder_depth,
            "ring_windows": ring_windows,
        }
        return session

    def session(self, patient_id: str) -> PatientSession:
        """The registered session for ``patient_id`` (KeyError if unknown)."""
        return self._shards[self._owner[patient_id]].session(patient_id)

    @property
    def sessions(self) -> Tuple[PatientSession, ...]:
        """Every session across all shards, grouped by shard."""
        return tuple(
            s for gw in self._shards.values() for s in gw.sessions
        )

    # -- ingress ------------------------------------------------------------

    def submit(self, frame: StreamFrame) -> bool:
        """Route one arriving frame to its owning shard.

        Returns False when the shard's ingress queue shed a frame to
        absorb this one (wire transport reports per delivered frame at
        pump time, so its submit path always returns True).
        """
        shard = self._owner[frame.patient_id]
        if self.transport == "wire":
            channel = self._channel_for(shard)
            channel.send(frame)
            ok = True
            for delivered in channel.pump():
                ok = (
                    self._shards[self._owner[delivered.patient_id]].submit(
                        delivered
                    )
                    and ok
                )
            return ok
        return self._shards[shard].submit(frame)

    # -- processing ---------------------------------------------------------

    def poll(self) -> int:
        """Pump transports and poll every shard; total windows completed."""
        completed = 0
        if self.transport == "wire":
            for channel in self._channels.values():
                for delivered in channel.deliver_pending():
                    self._shards[self._owner[delivered.patient_id]].submit(
                        delivered
                    )
        for gateway in self._shards.values():
            completed += gateway.poll()
        return completed

    def finish(self) -> int:
        """Flush transports and finish every shard (end of stream)."""
        completed = 0
        if self.transport == "wire":
            for channel in self._channels.values():
                for delivered in channel.flush():
                    self._shards[self._owner[delivered.patient_id]].submit(
                        delivered
                    )
            self._channels.clear()
        for gateway in self._shards.values():
            completed += gateway.finish()
        return completed

    def close(self) -> None:
        """Release every shard's executor (idempotent)."""
        for gateway in self._shards.values():
            gateway.executor.shutdown()

    def __enter__(self) -> "ShardedGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scale-out events ---------------------------------------------------

    def _migrate(self, patient_id: str, source: str, target: str) -> None:
        """Move one session's decoder state + backlog between shards."""
        session, queued = self._shards[source].evict_session(patient_id)
        state = session.export_state()
        params = self._session_params[patient_id]
        fresh = PatientSession(
            patient_id,
            params["config"],
            method=params["method"],
            codebook=params["codebook"],
            reorder_depth=params["reorder_depth"],
            ring_windows=params["ring_windows"],
        )
        fresh.codebook_spec.resolve()
        fresh.restore_state(state)
        self._shards[target].adopt_session(fresh, queued)
        self._owner[patient_id] = target

    def _rebalance(self) -> List[str]:
        """Move every session whose ring assignment changed; return ids."""
        moved = []
        for patient_id, current in list(self._owner.items()):
            target = self.ring.assign(patient_id)
            if target != current:
                self._migrate(patient_id, current, target)
                moved.append(patient_id)
        return moved

    def add_shard(self, name: str) -> List[str]:
        """Bring a new shard online; returns the migrated patient ids.

        Consistent hashing guarantees sessions only move *onto* the new
        shard — the rest of the fleet is untouched.
        """
        self.ring.add_shard(name)
        self._shards[name] = self._new_shard_gateway(name)
        return self._rebalance()

    def remove_shard(self, name: str) -> List[str]:
        """Gracefully drain a shard out of the cluster.

        Every session the shard owns (decoder state, warm-start chain,
        queued backlog) migrates to its new ring owner; the emptied
        shard's executor is released.  Returns the migrated patient ids.
        """
        if len(self._shards) <= 1:
            raise ValueError("cannot remove the last shard")
        if name not in self._shards:
            raise KeyError(f"shard {name!r} not in the cluster")
        self.ring.remove_shard(name)
        moved = self._rebalance()
        # Wire bytes in flight toward the drained shard must land before
        # the channel disappears.
        channel = self._channels.pop(name, None)
        if channel is not None:
            for delivered in channel.flush():
                self._shards[self._owner[delivered.patient_id]].submit(
                    delivered
                )
        gateway = self._shards.pop(name)
        assert not gateway.sessions, "drain left sessions behind"
        gateway.executor.shutdown()
        return moved

    def restart_shard(self, name: str) -> int:
        """Bounce one shard in place (simulated worker restart).

        Sessions are exported, the shard's gateway is rebuilt from
        scratch, and the sessions are restored onto it — queued backlog
        included.  Returns the number of sessions that survived the
        bounce (all of them, as the tests assert).
        """
        if name not in self._shards:
            raise KeyError(f"shard {name!r} not in the cluster")
        old = self._shards[name]
        owned = [s.patient_id for s in old.sessions]
        exported = []
        for patient_id in owned:
            session, queued = old.evict_session(patient_id)
            exported.append((patient_id, session.export_state(), queued))
        old.executor.shutdown()
        self._shards[name] = self._new_shard_gateway(name)
        for patient_id, state, queued in exported:
            params = self._session_params[patient_id]
            fresh = PatientSession(
                patient_id,
                params["config"],
                method=params["method"],
                codebook=params["codebook"],
                reorder_depth=params["reorder_depth"],
                ring_windows=params["ring_windows"],
            )
            fresh.codebook_spec.resolve()
            fresh.restore_state(state)
            self._shards[name].adopt_session(fresh, queued)
        return len(exported)

    # -- telemetry ----------------------------------------------------------

    @property
    def windows_inflight(self) -> int:
        """Frames accepted but unresolved, summed across shards."""
        return sum(gw.windows_inflight for gw in self._shards.values())

    def shard_snapshots(self) -> Dict[str, GatewaySnapshot]:
        """Per-shard telemetry, keyed by shard name."""
        return {name: gw.snapshot() for name, gw in self._shards.items()}

    def snapshot(self) -> GatewaySnapshot:
        """Cluster-wide telemetry in the single-gateway snapshot schema.

        Counters are sums over shards; latency percentiles are computed
        over the union of the shards' retained latency windows (you
        cannot merge percentiles, only samples).
        """
        shard_snaps = list(self.shard_snapshots().values())
        uptime = self._clock() - self._start
        completed = sum(s.windows_completed for s in shard_snaps)
        latencies = [
            lat for gw in self._shards.values() for lat in gw.recent_latencies
        ]
        return GatewaySnapshot(
            uptime_s=uptime,
            sessions=sum(s.sessions for s in shard_snaps),
            windows_inflight=sum(s.windows_inflight for s in shard_snaps),
            windows_completed=completed,
            reconstructed_per_sec=(
                completed / uptime if uptime > 0 and completed > 0 else None
            ),
            shed_policy=self.shed_policy,
            queue_drops=sum(s.queue_drops for s in shard_snaps),
            queue_rejects=sum(s.queue_rejects for s in shard_snaps),
            patient_sheds=sum(s.patient_sheds for s in shard_snaps),
            shed_frames=sum(s.shed_frames for s in shard_snaps),
            queue_high_water=max(
                (s.queue_high_water for s in shard_snaps), default=0
            ),
            late_drops=sum(s.late_drops for s in shard_snaps),
            duplicate_drops=sum(s.duplicate_drops for s in shard_snaps),
            concealed=sum(s.concealed for s in shard_snaps),
            cs_fallbacks=sum(s.cs_fallbacks for s in shard_snaps),
            latency_p50_s=rolling_percentile(latencies, 50.0),
            latency_p95_s=rolling_percentile(latencies, 95.0),
            latency_p99_s=rolling_percentile(latencies, 99.0),
            per_session=tuple(
                sess for s in shard_snaps for sess in s.per_session
            ),
            # Shards share the per-process PROBLEM_CACHE singleton, so the
            # cluster samples it once rather than summing per-shard views.
            recovery_cache=recovery_cache_stats(),
        )

    def balance(self) -> Dict[str, Dict[str, int]]:
        """Per-shard load: sessions served and windows completed.

        The load-test artifact's ``per_shard`` section — a skewed ring
        shows up here long before it shows up in tail latency.
        """
        return {
            name: {
                "sessions": len(gw.sessions),
                "windows_completed": sum(
                    s.windows_completed for s in gw.sessions
                ),
            }
            for name, gw in self._shards.items()
        }
