"""Static arithmetic (range) coding over an arbitrary symbol alphabet.

The paper commits to Huffman coding for the low-resolution stream
(§III-B), which pays up to one bit of redundancy per *token*.  Arithmetic
coding reaches the entropy asymptotically at the cost of multiplies the
paper's node class avoids — making the Huffman-vs-arithmetic gap a design
quantity worth measuring (``benchmarks/test_ablation_entropy_coder.py``).

This is a classic 32-bit integer range coder with carry-free renormalized
intervals (the Witten-Neal-Cleary construction): encoder and decoder walk
the same cumulative-frequency table, so any trained token distribution
(including the run-length tokens and the ESCAPE symbol) plugs in directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Mapping, Sequence, Tuple

from repro.coding.bitstream import BitReader, BitWriter

__all__ = ["ArithmeticModel", "ArithmeticCodec"]

Symbol = Hashable

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
#: Total frequency mass is capped so `range * cum` fits in 64 bits.
_MAX_TOTAL = 1 << 16


@dataclass(frozen=True)
class ArithmeticModel:
    """Frozen cumulative-frequency model over a symbol alphabet.

    Built from (unnormalized) frequencies; counts are rescaled to a
    16-bit total, flooring every symbol at one count so the coder can
    always represent any trained symbol.
    """

    symbols: Tuple[Symbol, ...]
    cumulative: Tuple[int, ...]  # len(symbols) + 1, starting at 0

    @staticmethod
    def from_frequencies(frequencies: Mapping[Symbol, float]) -> "ArithmeticModel":
        """Quantize a frequency table into a coder-ready model."""
        if not frequencies:
            raise ValueError("frequency table is empty")
        items = sorted(frequencies.items(), key=lambda kv: str(kv[0]))
        total = float(sum(f for _, f in items))
        if total <= 0:
            raise ValueError("frequencies must sum to a positive value")
        budget = _MAX_TOTAL - len(items)  # reserve 1 per symbol
        counts: List[int] = []
        for _, freq in items:
            if freq < 0:
                raise ValueError("frequencies cannot be negative")
            counts.append(1 + int(budget * freq / total))
        cumulative = [0]
        for c in counts:
            cumulative.append(cumulative[-1] + c)
        return ArithmeticModel(
            symbols=tuple(s for s, _ in items), cumulative=tuple(cumulative)
        )

    @property
    def total(self) -> int:
        """Total frequency mass."""
        return self.cumulative[-1]

    def interval(self, symbol: Symbol) -> Tuple[int, int]:
        """Half-open cumulative interval of a symbol."""
        try:
            idx = self.symbols.index(symbol)
        except ValueError:
            raise KeyError(f"symbol {symbol!r} not in model") from None
        return self.cumulative[idx], self.cumulative[idx + 1]

    def symbol_for(self, cum_value: int) -> Tuple[Symbol, int, int]:
        """The symbol whose interval contains ``cum_value`` (binary search)."""
        lo, hi = 0, len(self.symbols) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.cumulative[mid + 1] <= cum_value:
                lo = mid + 1
            else:
                hi = mid
        return self.symbols[lo], self.cumulative[lo], self.cumulative[lo + 1]


class ArithmeticCodec:
    """Encoder/decoder over a fixed :class:`ArithmeticModel`."""

    def __init__(self, model: ArithmeticModel) -> None:
        if model.total >= _QUARTER:
            raise ValueError("model total too large for the coder precision")
        self.model = model

    # ------------------------------------------------------------------
    def encode(self, symbols: Sequence[Symbol]) -> Tuple[bytes, int]:
        """Encode a symbol sequence; returns ``(payload, bit_length)``."""
        low = 0
        high = _TOP
        pending = 0
        writer = BitWriter()

        def emit(bit: int) -> None:
            nonlocal pending
            writer.write_bit(bit)
            while pending:
                writer.write_bit(1 - bit)
                pending -= 1

        total = self.model.total
        for sym in symbols:
            c_lo, c_hi = self.model.interval(sym)
            span = high - low + 1
            high = low + span * c_hi // total - 1
            low = low + span * c_lo // total
            while True:
                if high < _HALF:
                    emit(0)
                elif low >= _HALF:
                    emit(1)
                    low -= _HALF
                    high -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    pending += 1
                    low -= _QUARTER
                    high -= _QUARTER
                else:
                    break
                low = low * 2
                high = high * 2 + 1
        # Flush: disambiguate the final interval.
        pending += 1
        emit(0 if low < _QUARTER else 1)
        return writer.getvalue(), writer.bit_length

    def decode(
        self, payload: bytes, n_symbols: int, bit_length: int | None = None
    ) -> List[Symbol]:
        """Decode exactly ``n_symbols`` symbols."""
        if n_symbols < 0:
            raise ValueError("n_symbols cannot be negative")
        reader = BitReader(payload, bit_length)

        def next_bit() -> int:
            try:
                return reader.read_bit()
            except EOFError:
                return 0  # the stream is padded with zeros conceptually

        low = 0
        high = _TOP
        value = 0
        for _ in range(_CODE_BITS):
            value = (value << 1) | next_bit()

        total = self.model.total
        out: List[Symbol] = []
        for _ in range(n_symbols):
            span = high - low + 1
            cum = ((value - low + 1) * total - 1) // span
            sym, c_lo, c_hi = self.model.symbol_for(cum)
            out.append(sym)
            high = low + span * c_hi // total - 1
            low = low + span * c_lo // total
            while True:
                if high < _HALF:
                    pass
                elif low >= _HALF:
                    low -= _HALF
                    high -= _HALF
                    value -= _HALF
                elif low >= _QUARTER and high < _THREE_QUARTERS:
                    low -= _QUARTER
                    high -= _QUARTER
                    value -= _QUARTER
                else:
                    break
                low = low * 2
                high = high * 2 + 1
                value = value * 2 + next_bit()
        return out

    def mean_bits_per_symbol(self, frequencies: Mapping[Symbol, float]) -> float:
        """Expected code length under the model for a true distribution
        (cross-entropy in bits) — the analytic counterpart of measuring
        an encoded stream."""
        import math

        total_freq = float(sum(frequencies.values()))
        if total_freq <= 0:
            raise ValueError("frequencies sum to zero")
        bits = 0.0
        model_total = self.model.total
        for sym, freq in frequencies.items():
            c_lo, c_hi = self.model.interval(sym)
            p_model = (c_hi - c_lo) / model_total
            bits += (freq / total_freq) * -math.log2(p_model)
        return bits
