"""Bit-level I/O used by the entropy coder and the transmit framing.

Minimal MSB-first bit writer/reader over a growable byte buffer.  All
compression-ratio numbers in the experiments are measured on streams
produced by these classes, so the accounting is bit-exact rather than
estimated from entropy formulas.

:class:`BitWriter` is backed by a ``bytearray`` and offers a bulk
:meth:`~BitWriter.write_bits_array` fast path (array expansion +
``np.packbits``) used by the batched packet serializer; the bit-at-a-time
methods remain the reference semantics and the two paths produce
identical buffers.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulate bits MSB-first and render them as bytes.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_bits(0b101, 3)
    >>> w.write_uint(7, 5)
    >>> w.bit_length
    8
    >>> w.getvalue()
    b'\\xa7'
    """

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bitpos = 0  # bits used in the current (last) byte

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        if not self._bytes:
            return 0
        return (len(self._bytes) - 1) * 8 + (self._bitpos or 8)

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        if self._bitpos in (0, 8):
            self._bytes.append(0)
            self._bitpos = 0
        self._bytes[-1] |= bit << (7 - self._bitpos)
        self._bitpos += 1

    def write_bits(self, value: int, n_bits: int) -> None:
        """Append the ``n_bits`` least-significant bits of ``value``,
        most-significant first."""
        if n_bits < 0:
            raise ValueError("n_bits cannot be negative")
        if value < 0 or (n_bits < value.bit_length()):
            raise ValueError(
                f"value {value} does not fit in {n_bits} unsigned bits"
            )
        for shift in range(n_bits - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    # Alias with self-documenting name for fixed-width fields.
    write_uint = write_bits

    def write_bits_array(self, values, lengths) -> None:
        """Bulk equivalent of ``write_bits(values[i], lengths[i])`` per entry.

        ``values`` and ``lengths`` are equal-length 1-D integer sequences;
        the resulting buffer is identical to calling :meth:`write_bits` in
        a loop, but the bits are expanded and packed as arrays.  Fields
        wider than 64 bits fall back to the scalar path.
        """
        lengths_arr = np.asarray(lengths, dtype=np.int64)
        values_arr = np.asarray(values)
        if lengths_arr.ndim != 1 or values_arr.shape != lengths_arr.shape:
            raise ValueError("values and lengths must be equal-length 1-D")
        if lengths_arr.size == 0:
            return
        if values_arr.dtype.kind not in "iu":
            raise ValueError("values must be integers")
        if np.any(lengths_arr < 0):
            raise ValueError("n_bits cannot be negative")
        if values_arr.dtype.kind == "i" and np.any(values_arr < 0):
            bad = int(values_arr[values_arr < 0][0])
            raise ValueError(f"value {bad} does not fit in unsigned bits")
        if np.any(lengths_arr > 64):
            for value, n_bits in zip(values_arr.tolist(), lengths_arr.tolist()):
                self.write_bits(int(value), int(n_bits))
            return
        values_u = values_arr.astype(np.uint64, copy=False)
        narrow = lengths_arr < 64  # 64-bit fields hold any uint64
        overflow = np.zeros(lengths_arr.shape, dtype=bool)
        overflow[narrow] = (
            values_u[narrow] >> lengths_arr[narrow].astype(np.uint64, copy=False)
        ) != 0
        if np.any(overflow):
            idx = int(np.flatnonzero(overflow)[0])
            raise ValueError(
                f"value {int(values_arr[idx])} does not fit in "
                f"{int(lengths_arr[idx])} unsigned bits"
            )
        keep = lengths_arr > 0
        vals, lens = values_u[keep], lengths_arr[keep]
        total = int(lens.sum())
        if total == 0:
            return
        repeated_vals = np.repeat(vals, lens)
        repeated_lens = np.repeat(lens, lens)
        offsets = np.cumsum(lens) - lens
        intra = np.arange(total, dtype=np.int64) - np.repeat(offsets, lens)
        shifts = (repeated_lens - 1 - intra).astype(np.uint64, copy=False)
        self._append_bit_array(
            ((repeated_vals >> shifts) & np.uint64(1)).astype(
                np.uint8, copy=False
            )
        )

    def _append_bit_array(self, bits: np.ndarray) -> None:
        """Append a non-empty uint8 bit array, merging any dangling byte."""
        if self._bytes and self._bitpos not in (0, 8):
            # Re-pack the partial last byte together with the new bits so
            # packbits sees one contiguous MSB-first stream.
            last = self._bytes.pop()
            prefix = np.unpackbits(np.frombuffer(bytes([last]), dtype=np.uint8))
            bits = np.concatenate([prefix[: self._bitpos], bits])
        self._bytes.extend(np.packbits(bits).tobytes())
        self._bitpos = (bits.size % 8) or 8

    def write_code(self, bits: Iterable[int]) -> None:
        """Append an iterable of single bits (e.g. a Huffman codeword)."""
        for b in bits:
            self.write_bit(b)

    def getvalue(self) -> bytes:
        """The written bits, zero-padded to a whole number of bytes."""
        return bytes(self._bytes)


class BitReader:
    """Sequential MSB-first reader over a byte string.

    Tracks its own cursor; reading past the end raises ``EOFError`` so
    framing bugs fail loudly instead of decoding garbage.
    """

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        self._pos = 0
        max_bits = len(self._data) * 8
        if bit_length is None:
            self._limit = max_bits
        else:
            if not 0 <= bit_length <= max_bits:
                raise ValueError("bit_length exceeds the buffer size")
            self._limit = bit_length

    @property
    def bits_remaining(self) -> int:
        """Bits left before the logical end of stream."""
        return self._limit - self._pos

    def read_bit(self) -> int:
        """Read the next bit."""
        if self._pos >= self._limit:
            raise EOFError("bitstream exhausted")
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - self._pos % 8)) & 1
        self._pos += 1
        return bit

    def read_bits(self, n_bits: int) -> int:
        """Read ``n_bits`` as an unsigned integer, MSB first."""
        if n_bits < 0:
            raise ValueError("n_bits cannot be negative")
        value = 0
        for _ in range(n_bits):
            value = (value << 1) | self.read_bit()
        return value

    # Alias matching BitWriter.write_uint.
    read_uint = read_bits
