"""Table-driven vectorized batch encoder for the low-res channel.

The scalar transmit path (:meth:`repro.coding.codebook.DifferenceCodebook.
encode_window`) walks one symbol at a time through the pure-Python
:class:`~repro.coding.bitstream.BitWriter`.  That is faithful to the
paper's streaming encoder but dominates wall clock once the receiver is
batched (PR 4 made recovery ~5-18x faster, leaving the node side as the
bottleneck of every sweep and stream run).

This module re-expresses the *identical* encoding as array kernels:

* :func:`build_tables` precomputes per-symbol ``(codeword, bit length)``
  look-up arrays from the canonical codebook — differences index a dense
  LUT (out-of-alphabet differences get the ESCAPE codeword fused with
  their raw payload field into one wider codeword), zero-run tokens index
  a small per-exponent LUT;
* :func:`encode_code_windows` maps a whole ``(w, k)`` stack of low-res
  code windows to per-window payloads in one pass: ``np.diff`` across all
  windows, vectorized maximal-zero-run detection (runs never cross window
  boundaries), greedy power-of-two run decomposition via bit tricks, LUT
  fancy indexing, and bitstream assembly with cumulative-bit-offset
  arithmetic + :func:`numpy.packbits`.

The output is **byte-identical** to the scalar path — the same first
sample header, the same token order (largest run chunks first, single
leftover zero last), the same MSB-first packing and zero padding.  The
test suite asserts this equality exhaustively; ``docs/encoding.md``
states the exactness contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.coding.runlength import MAX_RUN_EXPONENT, ZeroRun

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.coding.codebook import DifferenceCodebook

__all__ = ["CodebookTables", "build_tables", "encode_code_windows", "pack_fields"]


@dataclass(frozen=True)
class CodebookTables:
    """Dense codeword look-up arrays derived from one trained codebook.

    Attributes
    ----------
    resolution_bits:
        The B of the B-bit low-res stream the tables encode.
    use_run_length:
        Whether zero runs are tokenized before coding (mirrors the
        codebook's mode).
    diff_values, diff_lengths:
        Codeword value / bit length for every representable difference
        ``d`` of B-bit codes, indexed by ``d + 2**B - 1`` (shape
        ``(2**(B+1) - 1,)``).  Differences outside the trained alphabet
        hold the fused ``ESCAPE + raw (B+1)-bit field`` codeword, so one
        LUT read covers both cases.
    run_values, run_lengths:
        Codeword value / bit length for ``ZeroRun(2**e)`` indexed by the
        exponent ``e`` (index 0 unused; all-zero when run-length coding
        is off).
    """

    resolution_bits: int
    use_run_length: bool
    diff_values: np.ndarray
    diff_lengths: np.ndarray
    run_values: np.ndarray
    run_lengths: np.ndarray


def build_tables(codebook: "DifferenceCodebook") -> CodebookTables:
    """Precompute the vectorized-encoder LUTs for a trained codebook.

    One-time cost per codebook (cached on the codebook object by
    :attr:`DifferenceCodebook.tables`); the loop below runs over the
    ``2**(B+1) - 1`` representable differences, not over any data.
    """
    from repro.coding.codebook import ESCAPE

    bits = codebook.resolution_bits
    payload_bits = codebook.escape_payload_bits
    esc_code, esc_len = codebook.codec.codes[ESCAPE]
    offset = (1 << bits) - 1
    span = 2 * offset + 1
    coded = codebook.codec.codes
    diff_values = np.empty(span, dtype=np.uint64)
    diff_lengths = np.empty(span, dtype=np.int64)
    for d in range(-offset, offset + 1):
        entry = coded.get(d)
        if entry is None:
            # Fused escape: ESC codeword followed by the raw signed field,
            # exactly the bits the scalar path writes back to back.
            field = d + (1 << bits)
            value = (esc_code << payload_bits) | field
            length = esc_len + payload_bits
        else:
            value, length = entry
        diff_values[d + offset] = value
        diff_lengths[d + offset] = length
    run_values = np.zeros(MAX_RUN_EXPONENT + 1, dtype=np.uint64)
    run_lengths = np.zeros(MAX_RUN_EXPONENT + 1, dtype=np.int64)
    if codebook.use_run_length:
        for exponent in range(1, MAX_RUN_EXPONENT + 1):
            value, length = coded[ZeroRun(1 << exponent)]
            run_values[exponent] = value
            run_lengths[exponent] = length
    return CodebookTables(
        resolution_bits=bits,
        use_run_length=codebook.use_run_length,
        diff_values=diff_values,
        diff_lengths=diff_lengths,
        run_values=run_values,
        run_lengths=run_lengths,
    )


def _exclusive_cumsum(counts: np.ndarray) -> np.ndarray:
    """``[0, c0, c0+c1, ...]`` without the final total; shape of input."""
    out = np.empty(counts.size, dtype=np.int64)
    if counts.size:
        out[0] = 0
        np.cumsum(counts[:-1], out=out[1:])
    return out


def _tokenize_stack(
    tables: CodebookTables, diffs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Token codeword stream for a ``(w, k-1)`` difference stack.

    Returns ``(values, lengths, window_of_token)`` in transmit order
    (window-major, in-window stream order).  Zero runs are detected on
    the flattened stack with window boundaries acting as run breaks, then
    decomposed greedily exactly like
    :func:`repro.coding.runlength.tokenize_diffs`: ``run // 256`` tokens
    of ``ZeroRun(256)`` first, then the set bits of ``run % 256`` as
    descending power-of-two runs, then a lone leftover zero as the plain
    ``0`` difference token.
    """
    w, per_row = diffs.shape
    flat = diffs.ravel()
    n = flat.size
    lut_offset = (1 << tables.resolution_bits) - 1

    if not tables.use_run_length:
        values = tables.diff_values[flat + lut_offset]
        lengths = tables.diff_lengths[flat + lut_offset]
        windows = np.repeat(np.arange(w, dtype=np.int64), per_row)
        return values, lengths, windows

    zero = flat == 0
    # A zero run starts where a zero is not preceded by a zero *in the
    # same window*, and ends symmetrically; window edges break runs.
    prev_zero = np.empty(n, dtype=bool)
    prev_zero[0] = False
    prev_zero[1:] = zero[:-1]
    prev_zero[::per_row] = False
    next_zero = np.empty(n, dtype=bool)
    next_zero[-1] = False
    next_zero[:-1] = zero[1:]
    next_zero[per_row - 1 :: per_row] = False
    run_starts = np.flatnonzero(zero & ~prev_zero)
    run_ends = np.flatnonzero(zero & ~next_zero)
    run_lens = run_ends - run_starts + 1

    # Greedy binary decomposition of every run into token "classes",
    # ordered largest-first: [2^8 x q, 2^7, ..., 2^1, lone 0].
    cap = 1 << MAX_RUN_EXPONENT
    q, rem = run_lens // cap, run_lens % cap
    n_classes = MAX_RUN_EXPONENT + 1
    class_counts = np.empty((run_lens.size, n_classes), dtype=np.int64)
    class_counts[:, 0] = q
    for col, exponent in enumerate(range(MAX_RUN_EXPONENT - 1, 0, -1), start=1):
        class_counts[:, col] = (rem >> exponent) & 1
    class_counts[:, n_classes - 1] = rem & 1
    tokens_per_run = class_counts.sum(axis=1)

    # Codeword value/length per class, in the same largest-first order;
    # the lone leftover zero is the plain difference token 0.
    class_values = np.concatenate(
        [tables.run_values[MAX_RUN_EXPONENT:0:-1], tables.diff_values[[lut_offset]]]
    )
    class_lengths = np.concatenate(
        [tables.run_lengths[MAX_RUN_EXPONENT:0:-1], tables.diff_lengths[[lut_offset]]]
    )

    # Interleave run tokens with the non-zero difference tokens in stream
    # order without sorting: give every stream position its token count,
    # then scatter each producer at its position's cumulative offset.
    nonzero_pos = np.flatnonzero(~zero)
    counts_at = np.zeros(n, dtype=np.int64)
    counts_at[nonzero_pos] = 1
    counts_at[run_starts] = tokens_per_run
    token_offset_at = _exclusive_cumsum(counts_at)
    total = int(counts_at.sum())

    values = np.empty(total, dtype=np.uint64)
    lengths = np.empty(total, dtype=np.int64)
    windows = np.empty(total, dtype=np.int64)

    nz_idx = token_offset_at[nonzero_pos]
    values[nz_idx] = tables.diff_values[flat[nonzero_pos] + lut_offset]
    lengths[nz_idx] = tables.diff_lengths[flat[nonzero_pos] + lut_offset]
    windows[nz_idx] = nonzero_pos // per_row

    run_total = int(tokens_per_run.sum())
    if run_total:
        class_of_token = np.repeat(
            np.tile(np.arange(n_classes), run_lens.size), class_counts.ravel()
        )
        run_of_token = np.repeat(
            np.arange(run_lens.size, dtype=np.int64), tokens_per_run
        )
        intra = np.arange(run_total, dtype=np.int64) - np.repeat(
            _exclusive_cumsum(tokens_per_run), tokens_per_run
        )
        run_idx = token_offset_at[run_starts[run_of_token]] + intra
        values[run_idx] = class_values[class_of_token]
        lengths[run_idx] = class_lengths[class_of_token]
        windows[run_idx] = run_starts[run_of_token] // per_row
    return values, lengths, windows


def pack_fields(
    field_values: np.ndarray,
    field_lengths: np.ndarray,
    field_starts: np.ndarray,
) -> Tuple[List[bytes], np.ndarray]:
    """Assemble per-window MSB-first payloads from a flat field stream.

    ``field_values[i]`` carries the ``field_lengths[i]`` least-significant
    bits of field ``i``; ``field_starts[j]`` is the index of window
    ``j``'s first field (strictly increasing, every window non-empty).
    Each window's bitstream is zero-padded to whole bytes exactly like
    :meth:`BitWriter.getvalue`.  Returns ``(payloads, bit_lengths)``.
    """
    field_lengths = np.asarray(field_lengths, dtype=np.int64)
    n_windows = field_starts.size
    bits_per_window = np.add.reduceat(field_lengths, field_starts)
    bytes_per_window = (bits_per_window + 7) >> 3
    byte_base = _exclusive_cumsum(bytes_per_window)
    total_bytes = int(bytes_per_window.sum())

    fields_per_window = np.diff(np.append(field_starts, field_lengths.size))
    window_of_field = np.repeat(np.arange(n_windows, dtype=np.int64), fields_per_window)
    running = _exclusive_cumsum(field_lengths)
    within_window = running - running[field_starts][window_of_field]
    field_bit_pos = (byte_base[window_of_field] << 3) + within_window

    total_bits = int(field_lengths.sum())
    repeated_values = np.repeat(field_values.astype(np.uint64, copy=False), field_lengths)
    repeated_lengths = np.repeat(field_lengths, field_lengths)
    intra_bit = np.arange(total_bits, dtype=np.int64) - np.repeat(running, field_lengths)
    shifts = (repeated_lengths - 1 - intra_bit).astype(np.uint64, copy=False)
    bits = ((repeated_values >> shifts) & np.uint64(1)).astype(
        np.uint8, copy=False
    )

    buffer = np.zeros(total_bytes * 8, dtype=np.uint8)
    buffer[np.repeat(field_bit_pos, field_lengths) + intra_bit] = bits
    packed = np.packbits(buffer)
    payloads = [
        packed[byte_base[i] : byte_base[i] + bytes_per_window[i]].tobytes()
        for i in range(n_windows)
    ]
    return payloads, bits_per_window


def encode_code_windows(
    tables: CodebookTables, codes: np.ndarray
) -> Tuple[List[bytes], np.ndarray]:
    """Encode a ``(w, k)`` stack of B-bit code windows in one pass.

    Returns ``(payloads, bit_lengths)``: window ``i``'s payload bytes and
    exact bit count, byte-identical to ``encode_window(codes[i])`` on the
    owning codebook.  Caller validates the code range.
    """
    codes = np.ascontiguousarray(np.asarray(codes, dtype=np.int64))
    if codes.ndim != 2 or codes.shape[1] == 0:
        raise ValueError("expected a (windows, samples) code matrix")
    w, k = codes.shape
    bits = tables.resolution_bits
    first_values = codes[:, 0].astype(np.uint64, copy=False)

    if k > 1:
        token_values, token_lengths, token_windows = _tokenize_stack(
            tables, np.diff(codes, axis=1)
        )
    else:
        token_values = np.empty(0, dtype=np.uint64)
        token_lengths = np.empty(0, dtype=np.int64)
        token_windows = np.empty(0, dtype=np.int64)

    tokens_per_window = np.bincount(token_windows, minlength=w)
    field_starts = _exclusive_cumsum(1 + tokens_per_window)
    n_fields = w + token_values.size
    field_values = np.empty(n_fields, dtype=np.uint64)
    field_lengths = np.empty(n_fields, dtype=np.int64)
    field_values[field_starts] = first_values
    field_lengths[field_starts] = bits
    if token_values.size:
        intra = np.arange(token_values.size, dtype=np.int64) - _exclusive_cumsum(
            tokens_per_window
        )[token_windows]
        positions = field_starts[token_windows] + 1 + intra
        field_values[positions] = token_values
        field_lengths[positions] = token_lengths
    return pack_fields(field_values, field_lengths, field_starts)
