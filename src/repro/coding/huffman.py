"""Canonical Huffman coding.

The node stores an *offline-generated* codebook (paper Section III-B) and
encodes the differenced low-resolution stream with it.  Canonical codes are
used because they minimize on-node storage: the codebook is fully described
by the (symbol, code length) pairs, which is exactly what the paper's Fig. 5
storage accounting assumes.

Pipeline: :func:`code_lengths_from_frequencies` builds optimal lengths via
the standard two-queue Huffman construction; :func:`canonical_codes` assigns
canonical codewords; :class:`HuffmanCodec` encodes/decodes bitstreams.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.coding.bitstream import BitReader, BitWriter

__all__ = [
    "code_lengths_from_frequencies",
    "canonical_codes",
    "HuffmanCodec",
]

Symbol = Hashable


def code_lengths_from_frequencies(
    frequencies: Mapping[Symbol, float],
) -> Dict[Symbol, int]:
    """Optimal prefix-code lengths for the given symbol frequencies.

    Standard heap-based Huffman construction.  Zero-frequency symbols are
    rejected (drop them before calling); a single-symbol alphabet gets a
    1-bit code (a real encoder must still emit something decodable).
    """
    if not frequencies:
        raise ValueError("frequency table is empty")
    for sym, freq in frequencies.items():
        if freq <= 0:
            raise ValueError(f"symbol {sym!r} has non-positive frequency")
    if len(frequencies) == 1:
        (sym,) = frequencies
        return {sym: 1}

    # Heap entries: (weight, tiebreak, node); leaves are symbols, internal
    # nodes are lists of their leaf symbols, so we can add depth lazily.
    heap: List[Tuple[float, int, List[Symbol]]] = []
    lengths: Dict[Symbol, int] = {}
    for tiebreak, (sym, freq) in enumerate(sorted(frequencies.items(), key=str)):
        heapq.heappush(heap, (float(freq), tiebreak, [sym]))
        lengths[sym] = 0
    counter = len(frequencies)
    while len(heap) > 1:
        w1, _, leaves1 = heapq.heappop(heap)
        w2, _, leaves2 = heapq.heappop(heap)
        merged = leaves1 + leaves2
        for sym in merged:
            lengths[sym] += 1
        heapq.heappush(heap, (w1 + w2, counter, merged))
        counter += 1
    return lengths


def canonical_codes(
    lengths: Mapping[Symbol, int],
) -> Dict[Symbol, Tuple[int, int]]:
    """Assign canonical codewords from code lengths.

    Symbols are sorted by (length, repr) and numbered with the canonical
    increment-and-shift rule.  Returns ``{symbol: (code_value, length)}``;
    the ``length`` MSBs of ``code_value`` are the codeword.
    """
    if not lengths:
        raise ValueError("length table is empty")
    for sym, ln in lengths.items():
        if ln <= 0:
            raise ValueError(f"symbol {sym!r} has non-positive code length")
    ordered = sorted(lengths.items(), key=lambda kv: (kv[1], str(kv[0])))
    codes: Dict[Symbol, Tuple[int, int]] = {}
    code = 0
    prev_len = ordered[0][1]
    for sym, ln in ordered:
        code <<= ln - prev_len
        prev_len = ln
        if code >= (1 << ln):
            raise ValueError("code lengths violate Kraft inequality")
        codes[sym] = (code, ln)
        code += 1
    return codes


@dataclass(frozen=True)
class HuffmanCodec:
    """Encoder/decoder over a fixed canonical codebook.

    Build with :meth:`from_frequencies` (training) or :meth:`from_lengths`
    (reloading a stored codebook — lengths are all a canonical codebook
    needs, mirroring what the node would keep in flash).
    """

    codes: Mapping[Symbol, Tuple[int, int]]

    @staticmethod
    def from_frequencies(frequencies: Mapping[Symbol, float]) -> "HuffmanCodec":
        """Train a codec on a frequency table."""
        lengths = code_lengths_from_frequencies(frequencies)
        return HuffmanCodec(canonical_codes(lengths))

    @staticmethod
    def from_lengths(lengths: Mapping[Symbol, int]) -> "HuffmanCodec":
        """Rebuild a codec from stored (symbol, length) pairs."""
        return HuffmanCodec(canonical_codes(lengths))

    @property
    def symbols(self) -> Tuple[Symbol, ...]:
        """The coded alphabet."""
        return tuple(self.codes.keys())

    def code_length(self, symbol: Symbol) -> int:
        """Length in bits of a symbol's codeword."""
        return self.codes[symbol][1]

    def mean_code_length(self, frequencies: Mapping[Symbol, float]) -> float:
        """Expected bits/symbol under the given (unnormalized) frequencies."""
        total = float(sum(frequencies.values()))
        if total <= 0:
            raise ValueError("frequencies sum to zero")
        bits = 0.0
        for sym, freq in frequencies.items():
            bits += freq * self.codes[sym][1]
        return bits / total

    def encode_symbol(self, symbol: Symbol, writer: BitWriter) -> None:
        """Append one symbol's codeword to a bit writer."""
        try:
            code, length = self.codes[symbol]
        except KeyError:
            raise KeyError(f"symbol {symbol!r} not in codebook") from None
        writer.write_bits(code, length)

    def encode(self, symbols: Sequence[Symbol]) -> Tuple[bytes, int]:
        """Encode a symbol sequence; returns ``(payload, bit_length)``."""
        writer = BitWriter()
        for sym in symbols:
            self.encode_symbol(sym, writer)
        return writer.getvalue(), writer.bit_length

    @cached_property
    def _decode_table(self) -> Dict[Tuple[int, int], Symbol]:
        # cached_property writes to the instance __dict__ directly, which
        # is compatible with the frozen dataclass (the table is derived
        # state, not a field).
        return {code: sym for sym, code in self.codes.items()}

    @cached_property
    def _max_code_length(self) -> int:
        return max(length for _, length in self.codes.values())

    def decode_symbol(self, reader: BitReader) -> Symbol:
        """Read one symbol from a bit reader."""
        table = self._decode_table
        code = 0
        for length in range(1, self._max_code_length + 1):
            code = (code << 1) | reader.read_bit()
            sym = table.get((code, length))
            if sym is not None:
                return sym
        raise ValueError("invalid bitstream: no codeword matched")

    def decode(self, payload: bytes, n_symbols: int, bit_length: int | None = None) -> List[Symbol]:
        """Decode exactly ``n_symbols`` symbols from a payload."""
        reader = BitReader(payload, bit_length)
        out: List[Symbol] = []
        table = self._decode_table
        max_len = self._max_code_length
        for _ in range(n_symbols):
            code = 0
            sym = None
            for length in range(1, max_len + 1):
                code = (code << 1) | reader.read_bit()
                sym = table.get((code, length))
                if sym is not None:
                    break
            if sym is None:
                raise ValueError("invalid bitstream: no codeword matched")
            out.append(sym)
        return out
