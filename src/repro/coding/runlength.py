"""Zero-run-length tokenization of the difference stream.

At low quantizer resolutions the difference stream is dominated by long
runs of exact zeros (Fig. 4: the PDF mass concentrates at 0 as resolution
drops).  Symbol-per-sample Huffman coding is floored at 1 bit/sample, but
the paper's Table I overheads (e.g. 2.3 % at 3-bit, i.e. ~0.09 bits/sample
of the 3-bit stream) are far below that floor — so the entropy coder must
be exploiting runs.  This module provides the classic fix: replace each
maximal run of ``z`` zero differences by a greedy sequence of
``ZRL(2^j)`` tokens (power-of-two run lengths up to a cap), leaving
non-zero differences as their own tokens.  Huffman coding the *token*
stream then reaches sub-bit-per-sample rates on exactly the streams the
paper describes, while staying a strictly lossless transform.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

__all__ = ["ZeroRun", "tokenize_diffs", "detokenize_diffs", "MAX_RUN_EXPONENT"]

#: Largest run token is ``2**MAX_RUN_EXPONENT`` zeros.
MAX_RUN_EXPONENT = 8


class ZeroRun:
    """Token for a run of ``length`` zero differences.

    ``length`` is always a power of two (greedy binary decomposition of the
    actual run).  Instances are interned per length so they hash/compare
    cheaply and train cleanly as Huffman symbols.
    """

    _cache: dict = {}

    def __new__(cls, length: int) -> "ZeroRun":
        if length < 2 or length & (length - 1):
            raise ValueError("run length must be a power of two >= 2")
        if length > (1 << MAX_RUN_EXPONENT):
            raise ValueError(f"run length capped at {1 << MAX_RUN_EXPONENT}")
        cached = cls._cache.get(length)
        if cached is None:
            cached = super().__new__(cls)
            cached._length = length
            cls._cache[length] = cached
        return cached

    @property
    def length(self) -> int:
        """Number of zero differences this token stands for."""
        return self._length

    def __repr__(self) -> str:
        return f"ZeroRun({self._length})"

    def __reduce__(self):
        return (ZeroRun, (self._length,))


Token = Union[int, ZeroRun]


def tokenize_diffs(diffs: Sequence[int]) -> List[Token]:
    """Turn a difference sequence into a token stream.

    Non-zero differences map to themselves (ints); maximal zero runs are
    decomposed greedily into the largest power-of-two :class:`ZeroRun`
    tokens (cap ``2**MAX_RUN_EXPONENT``), with a single leftover zero kept
    as the int token ``0``.  The transform is exactly invertible by
    :func:`detokenize_diffs`.
    """
    arr = np.asarray(diffs, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("diffs must be 1-D")
    tokens: List[Token] = []
    i = 0
    n = arr.size
    while i < n:
        value = int(arr[i])
        if value != 0:
            tokens.append(value)
            i += 1
            continue
        # Measure the maximal zero run.
        j = i
        while j < n and arr[j] == 0:
            j += 1
        run = j - i
        # Greedy binary decomposition, largest chunks first.
        for exponent in range(MAX_RUN_EXPONENT, 0, -1):
            chunk = 1 << exponent
            while run >= chunk:
                tokens.append(ZeroRun(chunk))
                run -= chunk
        if run == 1:
            tokens.append(0)
        i = j
    return tokens


def detokenize_diffs(tokens: Iterable[Token]) -> np.ndarray:
    """Inverse of :func:`tokenize_diffs`; returns the 1-D difference array."""
    out: List[int] = []
    for tok in tokens:
        if isinstance(tok, ZeroRun):
            out.extend([0] * tok.length)
        else:
            out.append(int(tok))
    return np.asarray(out, dtype=np.int64)


def token_histogram(diffs: Sequence[int]) -> dict:
    """Token frequency table for codebook training.

    Equivalent to ``Counter(tokenize_diffs(diffs))`` — only occurring
    tokens appear — but computed with array kernels: non-zero differences
    through ``np.unique``, zero runs through run-boundary detection plus
    the same greedy binary decomposition as :func:`tokenize_diffs`
    (``run // 256`` top-size chunks, then the set bits of ``run % 256``).
    This keeps full-database codebook training out of per-sample Python.
    """
    arr = np.asarray(diffs, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("diffs must be 1-D")
    counts: dict = {}
    nonzero = arr[arr != 0]
    if nonzero.size:
        values, tallies = np.unique(nonzero, return_counts=True)
        counts.update(
            (int(v), int(c)) for v, c in zip(values, tallies)
        )
    zero = arr == 0
    if zero.any():
        starts = np.flatnonzero(zero & ~np.concatenate(([False], zero[:-1])))
        ends = np.flatnonzero(zero & ~np.concatenate((zero[1:], [False])))
        run_lens = ends - starts + 1
        cap = 1 << MAX_RUN_EXPONENT
        top = int((run_lens // cap).sum())
        if top:
            counts[ZeroRun(cap)] = top
        remainders = run_lens % cap
        for exponent in range(MAX_RUN_EXPONENT - 1, 0, -1):
            hits = int(((remainders >> exponent) & 1).sum())
            if hits:
                counts[ZeroRun(1 << exponent)] = hits
        lone = int((remainders & 1).sum())
        if lone:
            counts[0] = lone
    return counts
