"""Difference coding of the low-resolution channel (paper Section III-B).

The B-bit Nyquist-rate stream is highly redundant — neighbouring quantized
samples repeat — so the node transmits the *first-order differences*
``x_dot[k] - x_dot[k-1]`` instead of the samples, and entropy-codes them.
This module provides the lossless difference transform, the empirical
difference distribution (the paper's Fig. 4 PDF), and its entropy (the
information-theoretic floor for the Fig. 6 compression ratios).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = [
    "difference_encode",
    "difference_decode",
    "difference_histogram",
    "difference_pdf",
    "empirical_entropy_bits",
]


def difference_encode(codes: np.ndarray) -> Tuple[int, np.ndarray]:
    """Split an integer code stream into (first sample, differences).

    Returns the raw first sample and the ``len(codes) - 1`` consecutive
    differences.  Exactly invertible by :func:`difference_decode`.
    """
    arr = np.asarray(codes)
    if not np.issubdtype(arr.dtype, np.integer):
        raise TypeError("difference coding operates on integer codes")
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("expected a non-empty 1-D code stream")
    return int(arr[0]), np.diff(arr.astype(np.int64, copy=False))


def difference_decode(first: int, diffs: np.ndarray) -> np.ndarray:
    """Rebuild the 1-D code stream from (first sample, differences)."""
    d = np.asarray(diffs, dtype=np.int64)
    if d.ndim != 1:
        raise ValueError("diffs must be 1-D")
    out = np.empty(d.size + 1, dtype=np.int64)
    out[0] = first
    if d.size:
        out[1:] = first + np.cumsum(d)
    return out


#: Widest difference range counted with a dense ``np.bincount`` table;
#: B-bit code streams span at most ``2**(B+1) - 1`` values, far below this.
_BINCOUNT_SPAN_LIMIT = 1 << 20


def difference_histogram(codes: np.ndarray) -> Dict[int, int]:
    """Count occurrences of each difference value in a code stream.

    Uses a dense shifted ``np.bincount`` over the observed range (one
    pass, no sort) and keeps only the occurring values, so 48-record
    codebook training is a handful of array ops per record; pathological
    streams whose difference range exceeds ``2**20`` fall back to
    ``np.unique``.  The return type is unchanged: ``{difference: count}``
    with ascending keys.
    """
    _, diffs = difference_encode(codes)
    if diffs.size == 0:
        return {}
    lo = int(diffs.min())
    hi = int(diffs.max())
    if hi - lo >= _BINCOUNT_SPAN_LIMIT:
        values, counts = np.unique(diffs, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}
    table = np.bincount(diffs - lo, minlength=hi - lo + 1)
    occurring = np.flatnonzero(table)
    return {int(v) + lo: int(table[v]) for v in occurring}


def difference_pdf(
    codes: np.ndarray, support: np.ndarray | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical PDF of consecutive-sample differences (paper Fig. 4).

    Parameters
    ----------
    codes:
        Integer low-resolution code stream.
    support:
        Difference values at which to evaluate the PDF; defaults to the
        observed range.  Values outside the observed set get probability 0.

    Returns
    -------
    (support, probabilities):
        Matching arrays; probabilities sum to 1 over the full observed
        support (they may sum to less when a restricted ``support`` is
        passed).
    """
    hist = difference_histogram(codes)
    total = sum(hist.values())
    if total == 0:
        raise ValueError("need at least two samples to form differences")
    if support is None:
        lo = min(hist)
        hi = max(hist)
        support = np.arange(lo, hi + 1)
    support = np.asarray(support, dtype=np.int64)
    probs = np.array([hist.get(int(v), 0) / total for v in support])
    return support, probs


def empirical_entropy_bits(codes: np.ndarray) -> float:
    """Shannon entropy (bits/symbol) of the difference distribution.

    Lower-bounds the mean code length any symbol-by-symbol entropy coder
    (including the Huffman codebook) can achieve on this stream.
    """
    hist = difference_histogram(codes)
    counts = np.array(list(hist.values()), dtype=float)
    probs = counts / counts.sum()
    return float(-np.sum(probs * np.log2(probs)))
