"""Lossless entropy coding of the low-resolution channel (paper §III-B)."""

from repro.coding.arithmetic import ArithmeticCodec, ArithmeticModel
from repro.coding.bitstream import BitReader, BitWriter
from repro.coding.codebook import DifferenceCodebook, ESCAPE, train_codebook
from repro.coding.differential import (
    difference_decode,
    difference_encode,
    difference_histogram,
    difference_pdf,
    empirical_entropy_bits,
)
from repro.coding.huffman import (
    HuffmanCodec,
    canonical_codes,
    code_lengths_from_frequencies,
)
from repro.coding.runlength import (
    MAX_RUN_EXPONENT,
    ZeroRun,
    detokenize_diffs,
    token_histogram,
    tokenize_diffs,
)
from repro.coding.vectorized import CodebookTables, build_tables

__all__ = [
    "ArithmeticCodec",
    "ArithmeticModel",
    "BitReader",
    "BitWriter",
    "CodebookTables",
    "DifferenceCodebook",
    "ESCAPE",
    "HuffmanCodec",
    "MAX_RUN_EXPONENT",
    "ZeroRun",
    "detokenize_diffs",
    "token_histogram",
    "tokenize_diffs",
    "build_tables",
    "canonical_codes",
    "code_lengths_from_frequencies",
    "difference_decode",
    "difference_encode",
    "difference_histogram",
    "difference_pdf",
    "empirical_entropy_bits",
    "train_codebook",
]
