"""Offline-generated difference codebooks with on-node storage accounting.

Section III-B of the paper: the Huffman codebook for the differenced
low-resolution stream is generated *offline* (from training data) and
stored on the node, so two figures of merit matter besides compression:

* **codebook storage** (Fig. 5) — bytes of flash needed for the canonical
  (symbol, code-length) table; 68 bytes at the chosen 7-bit operating
  point;
* **robustness to unseen symbols** — a rare difference outside the trained
  alphabet must still be transmittable.  We use the standard ESCAPE-symbol
  mechanism: an escape codeword followed by the raw difference at fixed
  width.  (The paper does not spell out its mechanism; an escape code is
  the minimal-storage choice consistent with its byte counts.)

Two coding modes are supported:

* ``use_run_length=True`` (default): the difference stream is first
  tokenized with :mod:`repro.coding.runlength` so maximal zero runs cost a
  single codeword.  This is required to reach the paper's Table I overhead
  numbers, which fall below the 1-bit/sample floor of symbol-wise Huffman;
* ``use_run_length=False``: plain symbol-per-difference Huffman, kept as
  the ablation baseline (``benchmarks/test_ablation_coding.py``).

:class:`DifferenceCodebook` bundles the trained codec, the encoder/decoder
for whole low-res windows, and the storage model; :func:`train_codebook`
fits one on a corpus of quantized streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.coding.bitstream import BitReader, BitWriter
from repro.coding.differential import difference_decode, difference_encode
from repro.coding.huffman import HuffmanCodec
from repro.coding.runlength import (
    MAX_RUN_EXPONENT,
    ZeroRun,
    token_histogram,
    tokenize_diffs,
)

__all__ = ["ESCAPE", "DifferenceCodebook", "train_codebook"]

#: Sentinel symbol for differences outside the trained alphabet.
ESCAPE = "ESC"

#: Bits used to store one code length in the on-node table (lengths up to 31).
_LENGTH_FIELD_BITS = 5


@dataclass(frozen=True)
class DifferenceCodebook:
    """A trained canonical Huffman codebook over difference tokens.

    Attributes
    ----------
    resolution_bits:
        The low-res quantizer depth B this codebook was trained for; the
        raw escape payload and the first-sample field are sized from it.
    codec:
        The canonical Huffman codec over the token alphabet
        (``{differences...} ∪ {ZeroRun...} ∪ {ESCAPE}``).
    use_run_length:
        Whether windows are tokenized with zero-run-length coding before
        Huffman coding.
    """

    resolution_bits: int
    codec: HuffmanCodec
    use_run_length: bool = True

    def __post_init__(self) -> None:
        if self.resolution_bits <= 0:
            raise ValueError("resolution_bits must be positive")
        if ESCAPE not in self.codec.codes:
            raise ValueError("codebook must contain the ESCAPE symbol")
        if self.use_run_length:
            missing = [
                exp
                for exp in range(1, MAX_RUN_EXPONENT + 1)
                if ZeroRun(1 << exp) not in self.codec.codes
            ]
            if missing or 0 not in self.codec.codes:
                raise ValueError(
                    "run-length codebooks must code every ZeroRun token and 0"
                )

    # ------------------------------------------------------------------
    # Alphabet and storage accounting
    # ------------------------------------------------------------------
    @property
    def alphabet(self) -> Tuple[int, ...]:
        """The trained *difference* values (runs and escape excluded)."""
        return tuple(
            sorted(s for s in self.codec.symbols if isinstance(s, int))
        )

    @property
    def n_entries(self) -> int:
        """Number of stored table entries (runs and escape included)."""
        return len(self.codec.symbols)

    @property
    def symbol_field_bits(self) -> int:
        """Bits to store one symbol value in the table.

        A difference of B-bit codes lies in ``[-(2^B - 1), 2^B - 1]``, so a
        signed (B+1)-bit field suffices; the run and escape entries reuse
        reserved patterns of the same field.
        """
        return self.resolution_bits + 1

    @property
    def escape_payload_bits(self) -> int:
        """Fixed width of the raw difference following an escape code."""
        return self.resolution_bits + 1

    def storage_bytes(self) -> int:
        """On-node flash for the canonical table (paper Fig. 5 model).

        Each entry stores the symbol value and its code length; canonical
        codes need nothing else.  Entries are byte-aligned (flash writes
        are byte-granular on the paper's class of sensor nodes).
        """
        entry_bits = self.symbol_field_bits + _LENGTH_FIELD_BITS
        entry_bytes = math.ceil(entry_bits / 8)
        return self.n_entries * entry_bytes

    # ------------------------------------------------------------------
    # Stream coding
    # ------------------------------------------------------------------
    def _signed_to_field(self, value: int) -> int:
        width = self.escape_payload_bits
        offset = 1 << (width - 1)
        field = value + offset
        if not 0 <= field < (1 << width):
            raise ValueError(
                f"difference {value} cannot occur for {self.resolution_bits}-bit codes"
            )
        return field

    def _field_to_signed(self, field: int) -> int:
        return field - (1 << (self.escape_payload_bits - 1))

    def encode_window(self, codes: np.ndarray) -> Tuple[bytes, int]:
        """Encode one window of B-bit codes; returns (payload, bit length).

        Layout: first sample raw (B bits), then one Huffman codeword per
        token, escapes carrying a raw (B+1)-bit signed difference.
        """
        arr = np.asarray(codes)
        if arr.size and (arr.min() < 0 or arr.max() >= (1 << self.resolution_bits)):
            raise ValueError(
                f"codes out of range for {self.resolution_bits}-bit resolution"
            )
        first, diffs = difference_encode(arr)
        if self.use_run_length:
            tokens: List = tokenize_diffs(diffs)
        else:
            tokens = [int(d) for d in diffs]
        writer = BitWriter()
        writer.write_uint(first, self.resolution_bits)
        coded = self.codec.codes
        for tok in tokens:
            if tok in coded:
                self.codec.encode_symbol(tok, writer)
            elif isinstance(tok, int):
                self.codec.encode_symbol(ESCAPE, writer)
                writer.write_uint(
                    self._signed_to_field(tok), self.escape_payload_bits
                )
            else:  # pragma: no cover - excluded by __post_init__
                raise KeyError(f"token {tok!r} missing from codebook")
        return writer.getvalue(), writer.bit_length

    @cached_property
    def tables(self):
        """Vectorized-encoder LUTs (:class:`~repro.coding.vectorized.
        CodebookTables`), built lazily once per codebook.

        ``cached_property`` stores into the instance ``__dict__`` so the
        frozen dataclass stays immutable from the caller's perspective
        (same pattern as :attr:`HuffmanCodec._decode_table`).
        """
        from repro.coding.vectorized import build_tables

        return build_tables(self)

    def encode_windows(self, codes: np.ndarray) -> List[Tuple[bytes, int]]:
        """Encode a ``(windows, samples)`` stack of B-bit code windows.

        Byte-identical to calling :meth:`encode_window` row by row (the
        exactness contract is stated in ``docs/encoding.md`` and asserted
        by the test suite), but runs as one pass of array kernels via
        :mod:`repro.coding.vectorized`.  Returns one ``(payload,
        bit_length)`` pair per window.
        """
        arr = np.asarray(codes)
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError("difference coding operates on integer codes")
        if arr.ndim != 2 or arr.shape[1] == 0:
            raise ValueError("expected a non-empty (windows, samples) matrix")
        if arr.size and (
            arr.min() < 0 or arr.max() >= (1 << self.resolution_bits)
        ):
            raise ValueError(
                f"codes out of range for {self.resolution_bits}-bit resolution"
            )
        from repro.coding.vectorized import encode_code_windows

        payloads, bit_lengths = encode_code_windows(self.tables, arr)
        return [
            (payload, int(bits))
            for payload, bits in zip(payloads, bit_lengths)
        ]

    def decode_window(
        self, payload: bytes, n_samples: int, bit_length: int | None = None
    ) -> np.ndarray:
        """Inverse of :meth:`encode_window`; the B-bit codes, shape ``(n,)``."""
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        reader = BitReader(payload, bit_length)
        first = reader.read_uint(self.resolution_bits)
        diffs: List[int] = []
        needed = n_samples - 1
        while len(diffs) < needed:
            sym = self.codec.decode_symbol(reader)
            if sym == ESCAPE:
                diffs.append(
                    self._field_to_signed(reader.read_uint(self.escape_payload_bits))
                )
            elif isinstance(sym, ZeroRun):
                diffs.extend([0] * sym.length)
            else:
                diffs.append(int(sym))
        if len(diffs) != needed:
            raise ValueError("corrupt payload: run tokens overshoot the window")
        return difference_decode(first, np.asarray(diffs, dtype=np.int64))

    def compressed_fraction(self, codes: np.ndarray) -> float:
        """Encoded size over raw size ``n * B`` for one window.

        This is the per-window ``CR_i`` of the paper's Eq. (2) / Fig. 6.
        """
        arr = np.asarray(codes)
        _, bits = self.encode_window(arr)
        raw_bits = arr.size * self.resolution_bits
        return bits / raw_bits


def train_codebook(
    streams: Iterable[np.ndarray],
    resolution_bits: int,
    *,
    coverage: float = 0.999,
    escape_weight: float = 0.5,
    use_run_length: bool = True,
) -> DifferenceCodebook:
    """Fit a :class:`DifferenceCodebook` on training code streams.

    Parameters
    ----------
    streams:
        Iterable of integer B-bit code arrays (e.g. one per record).
    resolution_bits:
        The quantizer depth B the streams were produced at.
    coverage:
        Keep the most frequent *difference* tokens until this fraction of
        the training mass is covered; the tail is handled by the escape
        code.  Run tokens (and the lone zero) are always kept — the
        decoder depends on them.  Trimming the tail is what keeps the
        stored table small (Fig. 5) at negligible cost in code length.
    escape_weight:
        Pseudo-count weight (relative to the trimmed tail mass, floored at
        one count) given to the escape symbol when building the tree.
    use_run_length:
        Tokenize zero runs before coding (default; see module docstring).
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    histogram: Dict[object, int] = {}
    total = 0
    for stream in streams:
        _, diffs = difference_encode(np.asarray(stream))
        if use_run_length:
            stream_counts = token_histogram(diffs)
        else:
            values, tallies = np.unique(diffs, return_counts=True)
            stream_counts = {
                int(v): int(c) for v, c in zip(values, tallies)
            }
        for tok, count in stream_counts.items():
            histogram[tok] = histogram.get(tok, 0) + count
            total += count
    if total == 0:
        raise ValueError("training corpus has no differences")

    frequencies: Dict[object, float] = {}
    if use_run_length:
        # Mandatory tokens: every run length and the lone zero, with at
        # least a pseudo-count so the decoder can always follow.
        for exp in range(1, MAX_RUN_EXPONENT + 1):
            run = ZeroRun(1 << exp)
            frequencies[run] = float(histogram.pop(run, 0)) + 1.0
        frequencies[0] = float(histogram.pop(0, 0)) + 1.0

    ranked = sorted(
        histogram.items(), key=lambda kv: (-kv[1], str(kv[0]))
    )
    covered = sum(int(v) for v in frequencies.values())
    kept_any = False
    for value, count in ranked:
        if kept_any and covered / total >= coverage:
            break
        frequencies[value] = float(count)
        covered += count
        kept_any = True
    tail_mass = max(0, total - covered)
    frequencies[ESCAPE] = max(1.0, escape_weight * tail_mass)
    codec = HuffmanCodec.from_frequencies(frequencies)
    return DifferenceCodebook(
        resolution_bits=resolution_bits,
        codec=codec,
        use_run_length=use_run_length,
    )
