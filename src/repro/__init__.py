"""repro — Hybrid compressed-sensing ECG front-end.

A complete, from-scratch Python reproduction of

    H. Mamaghanian and P. Vandergheynst,
    "Ultra-Low-Power ECG Front-End Design based on Compressed Sensing",
    DATE 2015, pp. 671-676.

Subpackages
-----------
``repro.core``
    The paper's contribution: hybrid front-end, packets, receiver, pipeline.
``repro.runtime``
    Staged execution engine with pluggable serial/parallel executors.
``repro.signals``
    Synthetic MIT-BIH-like ECG substrate (ECGSYN model + noise + database).
``repro.wavelets``
    Orthogonal wavelet/DCT sparsifying bases built from first principles.
``repro.sensing``
    Measurement ensembles, ADC quantizers, behavioural RMPI simulator.
``repro.coding``
    Huffman/difference entropy coding of the low-resolution channel.
``repro.recovery``
    Convex (PDHG/ADMM/FISTA) and greedy sparse-recovery solvers, including
    the box-constrained hybrid problem of the paper's Eq. 1.
``repro.power``
    Analytical power models (Eqs. 4-9) and architecture comparisons.
``repro.experiments``
    One driver per paper table/figure, used by the benchmark harness.

Quickstart
----------
>>> from repro.core import DEFAULT_CONFIG, run_record
>>> from repro.signals import load_record
>>> outcome = run_record(load_record("100", duration_s=10.0), DEFAULT_CONFIG,
...                      max_windows=2)
>>> outcome.mean_snr_db > 15
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
