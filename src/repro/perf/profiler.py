"""Kernel-level wall-clock and allocation profiling behind one seam.

The hot kernels are wrapped with :func:`profiled`, whose wrapper does a
single module-global ``None`` check when no profiler is active — the
only cost the production path ever pays.  Inside a :func:`profiling`
context the active :class:`Profiler` accumulates one :class:`KernelStat`
per name: call count, wall-clock seconds and (when ``trace_alloc=True``)
tracemalloc-observed net and peak bytes.

Two caveats, by design rather than accident:

* Nested profiled calls each record their own wall time, so a parent
  kernel's seconds *include* its profiled children — read the report as
  inclusive timings, not a flat decomposition.
* tracemalloc instruments the Python allocator, so enabling
  ``trace_alloc`` slows the measured code substantially.  The profile
  bench therefore times and traces in separate passes; the
  deterministic workspace counters (:mod:`repro.perf.workspace`) are
  the primary allocation metric and tracemalloc is the cross-check.

Everything here is stdlib-only so the profiler can wrap backend code
without joining the backend seam.
"""

from __future__ import annotations

import functools
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = [
    "KernelStat",
    "Profiler",
    "profiled",
    "profiling",
    "active_profiler",
]

F = TypeVar("F", bound=Callable[..., Any])

#: The profiler observing this process, or None (the common case).
#: Writes happen only under _STATE_LOCK; the hot-path read is a bare
#: load, which is safe because a stale None merely skips one sample.
_ACTIVE: Optional["Profiler"] = None
_STATE_LOCK = threading.Lock()


@dataclass
class KernelStat:
    """Accumulated observations for one profiled kernel name."""

    name: str
    calls: int = 0
    wall_s: float = 0.0
    #: Net bytes still allocated when the kernel returned, summed over
    #: calls (tracemalloc; 0 when allocation tracing is off).
    alloc_bytes: int = 0
    #: Highest single-call peak over the kernel's lifetime.
    peak_bytes: int = 0

    def record(self, wall_s: float, alloc_bytes: int, peak_bytes: int) -> None:
        self.calls += 1
        self.wall_s += wall_s
        self.alloc_bytes += alloc_bytes
        self.peak_bytes = max(self.peak_bytes, peak_bytes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "calls": self.calls,
            "wall_s": self.wall_s,
            "alloc_bytes": self.alloc_bytes,
            "peak_bytes": self.peak_bytes,
        }


class Profiler:
    """Accumulates :class:`KernelStat` entries for profiled sections.

    Use via the :func:`profiling` context manager; a profiler instance
    is reusable but only one may be installed at a time.
    """

    def __init__(self, trace_alloc: bool = False) -> None:
        self.trace_alloc = bool(trace_alloc)
        self._stats: Dict[str, KernelStat] = {}
        self._lock = threading.Lock()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time (and optionally trace allocations of) one block."""
        trace = self.trace_alloc and tracemalloc.is_tracing()
        if trace:
            before, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
        start = time.perf_counter()
        try:
            yield
        finally:
            wall = time.perf_counter() - start
            alloc = peak = 0
            if trace:
                after, peak_abs = tracemalloc.get_traced_memory()
                alloc = max(0, after - before)
                peak = max(0, peak_abs - before)
            with self._lock:
                stat = self._stats.get(name)
                if stat is None:
                    stat = self._stats[name] = KernelStat(name)
                stat.record(wall, alloc, peak)

    def stats(self) -> List[KernelStat]:
        """Snapshot of accumulated stats, sorted by total wall time."""
        with self._lock:
            return sorted(
                self._stats.values(), key=lambda s: s.wall_s, reverse=True
            )

    def get(self, name: str) -> Optional[KernelStat]:
        with self._lock:
            return self._stats.get(name)

    def report(self) -> List[Dict[str, Any]]:
        """JSON-ready rows for the ``BENCH_profile.json`` payload."""
        return [stat.to_dict() for stat in self.stats()]

    def clear(self) -> None:
        with self._lock:
            self._stats.clear()


def active_profiler() -> Optional[Profiler]:
    """The installed profiler, or None outside a :func:`profiling` block."""
    return _ACTIVE


def profiled(name: str) -> Callable[[F], F]:
    """Mark a function as a profiled kernel.

    With no active profiler the wrapper costs one global load and a
    ``None`` comparison before delegating — cheap enough to leave on
    the production hot paths unconditionally.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            prof = _ACTIVE
            if prof is None:
                return fn(*args, **kwargs)
            with prof.section(name):
                return fn(*args, **kwargs)

        wrapper.__profiled_name__ = name  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


@contextmanager
def profiling(trace_alloc: bool = False) -> Iterator[Profiler]:
    """Install a fresh :class:`Profiler` for the duration of the block.

    With ``trace_alloc=True`` tracemalloc is started on entry (if not
    already tracing) and stopped on exit (if we started it).  Blocks do
    not nest: a second concurrent ``profiling`` raises, because two
    observers would silently double-count each other's sections.
    """
    global _ACTIVE
    prof = Profiler(trace_alloc=trace_alloc)
    started_tracing = False
    with _STATE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a profiler is already active in this process")
        if trace_alloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracing = True
        _ACTIVE = prof
    try:
        yield prof
    finally:
        with _STATE_LOCK:
            _ACTIVE = None
            if started_tracing:
                tracemalloc.stop()
