"""Reusable named buffers for the batched hot loops.

A :class:`Workspace` owns one flat backing array per ``(name, dtype)``
pair and hands out C-contiguous views of the requested shape.  The hot
loops ask for the same names every iteration, so after the first
iteration of the first solve on a lease every request is served from
memory that already exists — the per-iteration allocation count drops
to the few temporaries that cannot be routed through a buffer (boolean
masks, per-column norms, LAPACK-internal copies).

Contract of :meth:`Workspace.buf`: the returned view is *uninitialized*
(it may hold stale bytes from a previous solve).  Callers must fully
overwrite it before reading — which the engines do by construction,
because every buffer is the ``out=`` target of a GEMM/ufunc or an
explicit full-slice assignment.  That is also why reuse is exact: the
arithmetic never sees the stale contents.

:class:`WorkspacePool` keys workspaces by ``(backend, precision,
shape-class)`` and guarantees two concurrent leases never alias (each
lease pops a workspace from the free list or builds a fresh one, under
a lock).  :class:`NullWorkspace` implements the same ``buf`` API but
allocates fresh every call: with workspaces disabled
(:func:`use_workspaces`), the engines run *byte-for-byte the same code*
against fresh memory — the no-reuse baseline the property suite and the
profile bench compare against.

Accounting: every workspace counts ``bytes_served`` (what the engines
asked for) against ``bytes_allocated`` (what actually hit the
allocator).  The pool folds those counters in at release time, so the
``repro profile`` artifact can report deterministic per-iteration
allocation numbers for the reuse and no-reuse paths of the same solve.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.backend import ArrayBackend, BackendSettings, HOST, get_backend

__backend_seam__ = True

__all__ = [
    "Workspace",
    "NullWorkspace",
    "WorkspacePool",
    "POOL",
    "lease_workspace",
    "use_workspaces",
    "workspaces_enabled",
    "pool_stats",
    "reset_pool",
]


def _size_of(shape: Sequence[int]) -> int:
    count = 1
    for dim in shape:
        if dim < 0:
            raise ValueError(f"negative dimension in shape {tuple(shape)}")
        count *= int(dim)
    return count


def _itemsize(arr: Any) -> int:
    # numpy/cupy expose .itemsize; the torch adapter's tensors expose
    # element_size() (older torch lacks the .itemsize alias).
    size = getattr(arr, "itemsize", None)
    return int(size) if size is not None else int(arr.element_size())


class Workspace:
    """Named reusable buffers on one backend (see module docstring).

    Not thread-safe on its own; exclusivity is the pool's job (one lease
    at a time per workspace).
    """

    def __init__(self, backend: Optional[ArrayBackend] = None) -> None:
        self.backend = HOST if backend is None else backend
        # (name, dtype-str) -> (flat backing array, capacity, itemsize)
        self._raw: Dict[Tuple[str, str], Tuple[Any, int, int]] = {}
        #: Bytes that actually hit the allocator (capacity growth only).
        self.bytes_allocated = 0
        #: Bytes handed to callers across all ``buf`` calls.
        self.bytes_served = 0
        #: Number of ``buf`` calls served.
        self.buf_calls = 0

    def buf(self, name: str, shape: Sequence[int], dtype: Any = None) -> Any:
        """An uninitialized C-contiguous array view of ``shape``.

        Repeated calls with one ``name`` reuse one backing allocation,
        growing it only when the requested element count exceeds the
        retained capacity (so a shrinking active set never reallocates).
        The caller must fully overwrite the view before reading it.
        """
        xp = self.backend.xp
        if dtype is None:
            dtype = xp.float64
        count = _size_of(shape)
        key = (name, str(dtype))
        entry = self._raw.get(key)
        if entry is None or entry[1] < count:
            capacity = max(count, 1)
            raw = xp.empty((capacity,), dtype=dtype)
            entry = (raw, capacity, _itemsize(raw))
            self._raw[key] = entry
            self.bytes_allocated += capacity * entry[2]
        raw, _, itemsize = entry
        self.bytes_served += count * itemsize
        self.buf_calls += 1
        return raw[:count].reshape(tuple(shape))

    @property
    def capacity_bytes(self) -> int:
        """Total bytes currently retained across all named buffers."""
        return sum(
            capacity * itemsize
            for _, capacity, itemsize in self._raw.values()
        )

    def reset_counters(self) -> None:
        """Zero the served/allocated accounting (capacity is kept)."""
        self.bytes_allocated = 0
        self.bytes_served = 0
        self.buf_calls = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Workspace names={len(self._raw)} "
            f"capacity={self.capacity_bytes}B>"
        )


class NullWorkspace(Workspace):
    """The no-reuse baseline: every ``buf`` call allocates fresh.

    Same API, same shapes, same dtype policy — so the engines execute
    identical arithmetic against fresh memory, and ``bytes_allocated``
    equals ``bytes_served`` by construction (the honest baseline for
    the profile artifact's allocation-reduction ratio).
    """

    def buf(self, name: str, shape: Sequence[int], dtype: Any = None) -> Any:
        xp = self.backend.xp
        if dtype is None:
            dtype = xp.float64
        count = _size_of(shape)
        fresh = xp.empty(tuple(shape), dtype=dtype)
        nbytes = count * _itemsize(fresh)
        self.bytes_allocated += nbytes
        self.bytes_served += nbytes
        self.buf_calls += 1
        return fresh


class WorkspacePool:
    """Process-wide workspace pool keyed by ``(backend, precision, class)``.

    ``lease`` pops a workspace from the key's free list (or creates one)
    under a lock and returns it on exit, so two in-flight leases can
    never hand out views of the same backing memory — the aliasing
    guarantee the property suite pins.  Released workspaces keep their
    capacity: the next solve of the same shape class starts warm.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: Dict[Tuple[str, str, str], List[Workspace]] = {}
        self._created = 0
        self._leases = 0
        self._null_leases = 0
        self._bytes_allocated = 0
        self._bytes_served = 0
        self._buf_calls = 0

    def acquire(
        self, settings: BackendSettings, shape_class: str
    ) -> Workspace:
        """Pop (or build) a workspace for the key; caller must release."""
        key = (settings.name, settings.precision, str(shape_class))
        with self._lock:
            self._leases += 1
            free = self._free.get(key)
            if free:
                ws = free.pop()
                ws.reset_counters()
                return ws
            self._created += 1
        return Workspace(get_backend(settings.name))

    def release(
        self, settings: BackendSettings, shape_class: str, ws: Workspace
    ) -> None:
        """Return a workspace to the free list, folding its counters in."""
        key = (settings.name, settings.precision, str(shape_class))
        with self._lock:
            self._bytes_allocated += ws.bytes_allocated
            self._bytes_served += ws.bytes_served
            self._buf_calls += ws.buf_calls
            if isinstance(ws, NullWorkspace):
                self._null_leases += 1
            else:
                self._free.setdefault(key, []).append(ws)

    def stats(self) -> Dict[str, float]:
        """Counters for the profile artifact (process-lifetime totals)."""
        with self._lock:
            capacity = sum(
                ws.capacity_bytes
                for pool in self._free.values()
                for ws in pool
            )
            served = self._bytes_served
            allocated = self._bytes_allocated
            return {
                "leases": self._leases,
                "null_leases": self._null_leases,
                "workspaces_created": self._created,
                "workspaces_free": sum(
                    len(pool) for pool in self._free.values()
                ),
                "capacity_bytes": capacity,
                "bytes_allocated": allocated,
                "bytes_served": served,
                "buf_calls": self._buf_calls,
                "reuse_fraction": (
                    1.0 - allocated / served if served else 0.0
                ),
            }

    def clear(self) -> None:
        """Drop retained workspaces and zero every counter (tests)."""
        with self._lock:
            self._free.clear()
            self._created = 0
            self._leases = 0
            self._null_leases = 0
            self._bytes_allocated = 0
            self._bytes_served = 0
            self._buf_calls = 0


#: The per-process pool every engine leases from (one per worker, like
#: the operator cache).
POOL = WorkspacePool()

#: Module-level switch consulted by :func:`lease_workspace`.  On (the
#: default) leases come from :data:`POOL`; off they yield a fresh
#: :class:`NullWorkspace`, i.e. the fresh-allocation baseline.
_ENABLED = True


def workspaces_enabled() -> bool:
    """Whether engine leases currently reuse pooled buffers."""
    return _ENABLED


@contextmanager
def use_workspaces(enabled: bool) -> Iterator[None]:
    """Scoped override of the reuse switch (benchmarks and tests)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


@contextmanager
def lease_workspace(
    settings: Optional[BackendSettings], shape_class: str
) -> Iterator[Workspace]:
    """Lease a workspace for one engine invocation.

    This is the one seam the engines call: with reuse enabled the
    workspace comes from :data:`POOL` (warm after the first solve of a
    shape class); disabled, a :class:`NullWorkspace` drives the same
    code down the fresh-allocation path.  Either way the lease's
    counters fold into the pool at exit, so both paths are accounted.
    """
    if settings is None:
        settings = BackendSettings()
    ws: Workspace
    if _ENABLED:
        ws = POOL.acquire(settings, shape_class)
    else:
        ws = NullWorkspace(get_backend(settings.name))
    try:
        yield ws
    finally:
        POOL.release(settings, shape_class, ws)


def pool_stats() -> Dict[str, float]:
    """:data:`POOL` counters (see :meth:`WorkspacePool.stats`)."""
    return POOL.stats()


def reset_pool() -> None:
    """Clear :data:`POOL` (test isolation / benchmark baselines)."""
    POOL.clear()
