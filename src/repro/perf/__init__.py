"""Performance subsystem: workspace buffer reuse + hot-path profiling.

The batched engines (PRs 4-5, 9) are GEMM-bound, but every solver
iteration and every encode call still allocated a fresh set of
temporaries — for the BSBL E-step that is three ``O(k n^2)`` arrays per
EM iteration.  This package removes that churn and makes it measurable:

* :mod:`repro.perf.workspace` — named reusable buffers
  (:class:`Workspace`) handed out per ``(backend, precision,
  shape-class)`` by a process-wide :class:`WorkspacePool`, with a
  :class:`NullWorkspace` that allocates fresh on every request so the
  no-reuse baseline runs through the *same* code path (which is what
  makes the bit-identity property suite trivial to state and honest to
  run);
* :mod:`repro.perf.profiler` — stage/kernel wall-clock timers and
  tracemalloc-backed allocation counters behind the near-zero-overhead
  :func:`profiled` seam (one global ``None`` check when profiling is
  off).

``repro profile`` drives both and writes ``BENCH_profile.json``
(schema ``repro-bench-profile/v1``); see ``docs/performance.md``.
"""

from repro.perf.profiler import (
    KernelStat,
    Profiler,
    active_profiler,
    profiled,
    profiling,
)
from repro.perf.workspace import (
    POOL,
    NullWorkspace,
    Workspace,
    WorkspacePool,
    lease_workspace,
    pool_stats,
    reset_pool,
    use_workspaces,
    workspaces_enabled,
)

__all__ = [
    "Workspace",
    "NullWorkspace",
    "WorkspacePool",
    "POOL",
    "lease_workspace",
    "pool_stats",
    "reset_pool",
    "use_workspaces",
    "workspaces_enabled",
    "KernelStat",
    "Profiler",
    "profiled",
    "profiling",
    "active_profiler",
]
