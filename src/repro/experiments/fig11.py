"""Fig. 11 driver: power-consumption breakdown vs sampling frequency.

The paper sweeps the Nyquist sampling frequency from 100 Hz to 100 MHz and
plots the per-block power (ADC, integrator, amplifier, total) for the
normal RMPI (m = 240) and the hybrid design (m = 96), both sized for
SNR = 20 dB.  Two qualitative facts carry the section: the amplifier array
dominates by a large margin, and total power scales with the channel count
— giving the hybrid a ~2.5x advantage at this operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.power.rmpi_power import (
    HybridArchitecture,
    RmpiArchitecture,
    sweep_frequencies,
)

__all__ = ["Fig11Data", "run_fig11", "PAPER_FIG11_M"]

#: Paper Section VI: measurement counts for SNR = 20 dB.
PAPER_FIG11_M: Dict[str, int] = {"normal": 240, "hybrid": 96}


@dataclass(frozen=True)
class Fig11Data:
    """Both architectures' sweeps plus the design points used."""

    fs_hz: Tuple[float, ...]
    normal: Dict[str, list]
    hybrid: Dict[str, list]
    m_normal: int
    m_hybrid: int
    lowres_fraction_at_360hz: float

    def amplifier_dominates(self) -> bool:
        """Amplifier > ADC + integrator at every frequency, both designs."""
        for sweep in (self.normal, self.hybrid):
            amp = np.asarray(sweep["amplifier_w"])
            rest = np.asarray(sweep["adc_w"]) + np.asarray(sweep["integrator_w"])
            if not np.all(amp > rest):
                return False
        return True

    def gain_at(self, fs_hz: float) -> float:
        """P_normal / P_hybrid at the sweep point nearest ``fs_hz``."""
        fs = np.asarray(self.fs_hz)
        idx = int(np.argmin(np.abs(fs - fs_hz)))
        return self.normal["total_w"][idx] / self.hybrid["total_w"][idx]

    def power_scales_linearly(self) -> bool:
        """Total power is proportional to fs in this model (doubling fs
        doubles every block), so the log-log curve has unit slope."""
        fs = np.asarray(self.fs_hz)
        total = np.asarray(self.normal["total_w"])
        slopes = np.diff(np.log(total)) / np.diff(np.log(fs))
        return bool(np.allclose(slopes, 1.0, atol=1e-6))


def run_fig11(
    fs_values_hz: Optional[Sequence[float]] = None,
    *,
    m_normal: int = PAPER_FIG11_M["normal"],
    m_hybrid: int = PAPER_FIG11_M["hybrid"],
    n: int = 512,
    lowres_bits: int = 7,
) -> Fig11Data:
    """Evaluate both architectures over the paper's frequency range."""
    if fs_values_hz is None:
        # 100 Hz .. 100 MHz, log-spaced like the paper's axes.
        fs_values_hz = np.logspace(2, 8, 25)
    normal_arch = RmpiArchitecture(m=m_normal, n=n)
    hybrid_arch = HybridArchitecture(
        cs=RmpiArchitecture(m=m_hybrid, n=n), lowres_bits=lowres_bits
    )
    normal = sweep_frequencies(normal_arch, fs_values_hz)
    hybrid = sweep_frequencies(hybrid_arch, fs_values_hz)
    return Fig11Data(
        fs_hz=tuple(float(f) for f in fs_values_hz),
        normal=normal,
        hybrid=hybrid,
        m_normal=m_normal,
        m_hybrid=m_hybrid,
        lowres_fraction_at_360hz=hybrid_arch.lowres_fraction(360.0),
    )
