"""Experiment drivers: one module per paper table/figure (see DESIGN.md §4)."""

from repro.experiments.cache import SweepCache, cache_from_env, config_fingerprint
from repro.experiments.diagnostic import (
    DiagnosticData,
    DiagnosticPoint,
    run_diagnostic,
)
from repro.experiments.fig2 import Fig2Data, run_fig2
from repro.experiments.fig4 import Fig4Data, PAPER_FIG4_RESOLUTIONS, run_fig4
from repro.experiments.fig5_fig6_table1 import (
    LowresTradeoffData,
    LowresTradeoffRow,
    PAPER_RESOLUTIONS,
    PAPER_TABLE1_OVERHEADS,
    run_lowres_tradeoff,
)
from repro.experiments.fig7 import Fig7Data, Fig7Series, run_fig7
from repro.experiments.fig8 import BoxStats, Fig8Data, box_stats, run_fig8
from repro.experiments.fig9 import (
    Fig9Data,
    Fig9Panel,
    PAPER_FIG9_DELTAS,
    run_fig9,
)
from repro.experiments.fig11 import Fig11Data, PAPER_FIG11_M, run_fig11
from repro.experiments.headline import (
    DEFAULT_M_CANDIDATES,
    HeadlineData,
    HeadlinePoint,
    run_headline,
)
from repro.experiments.runner import (
    CrSweepPoint,
    ExperimentScale,
    FULL_SCALE,
    PAPER_CR_VALUES,
    SMALL_SCALE,
    active_scale,
    sweep_compression_ratios,
)

__all__ = [
    "BoxStats",
    "CrSweepPoint",
    "DEFAULT_M_CANDIDATES",
    "DiagnosticData",
    "DiagnosticPoint",
    "ExperimentScale",
    "run_diagnostic",
    "FULL_SCALE",
    "Fig11Data",
    "Fig2Data",
    "Fig4Data",
    "Fig7Data",
    "Fig7Series",
    "Fig8Data",
    "Fig9Data",
    "Fig9Panel",
    "HeadlineData",
    "HeadlinePoint",
    "LowresTradeoffData",
    "LowresTradeoffRow",
    "PAPER_CR_VALUES",
    "PAPER_FIG11_M",
    "PAPER_FIG4_RESOLUTIONS",
    "PAPER_FIG9_DELTAS",
    "PAPER_RESOLUTIONS",
    "PAPER_TABLE1_OVERHEADS",
    "SMALL_SCALE",
    "SweepCache",
    "active_scale",
    "box_stats",
    "cache_from_env",
    "config_fingerprint",
    "run_fig11",
    "run_fig2",
    "run_fig4",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_headline",
    "run_lowres_tradeoff",
    "sweep_compression_ratios",
]
