"""Workspace/allocation microbenchmark behind ``repro profile``.

For each hot kernel (the batched solvers, the batch encoder and the
vectorized synthesizer) this bench runs the *same* code path twice —
once with pooled workspaces (:func:`repro.perf.use_workspaces` on) and
once against the fresh-allocation :class:`~repro.perf.NullWorkspace`
baseline — and records:

* deterministic allocation counters from the workspace pool
  (``bytes_allocated`` per run, both arms: the baseline equals
  ``bytes_served`` by construction, the warm arm only counts capacity
  growth);
* wall-clock over ``repeats`` timed runs per arm (no tracemalloc — see
  :mod:`repro.perf.profiler` for why tracing and timing never share a
  pass), as windows/sec before/after workspaces;
* the maximum absolute deviation between the two arms' outputs, which
  the CI gates at exactly ``0.0`` — buffer reuse must not change a
  single bit on the exact path;
* one traced pass through every kernel with
  :func:`repro.perf.profiling` (``trace_alloc=True``) as the
  tracemalloc cross-check, reported per ``@profiled`` kernel name.

The result is ``BENCH_profile.json`` (schema ``repro-bench-profile/v1``)
with the workspace-pool totals and the recovery-cache hit rates
alongside the per-kernel cells; ``repro report`` renders it and the CI
asserts the allocation-reduction and zero-deviation gates.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FrontEndConfig
from repro.experiments.solver_bench import _signal_windows
from repro.perf import pool_stats, profiling, use_workspaces
from repro.recovery.batched import (
    solve_bpdn_admm_batch,
    solve_bsbl_batch,
    solve_fista_batch,
)
from repro.recovery.bsbl import measurement_noise_var
from repro.recovery.fista import lambda_max
from repro.recovery.opcache import problem_for_config

__all__ = [
    "PROFILE_KERNELS",
    "SOLVER_KERNELS",
    "ProfileKernelCell",
    "run_profile_bench",
    "profile_bench_payload",
]

#: Every kernel the profile bench exercises, in report order.
PROFILE_KERNELS = ("fista", "admm", "bsbl", "encode", "synth")

#: The iterative-solver subset whose allocation reduction the CI gates
#: (the encoder and synthesizer run few buffers per call, so their
#: reduction ratio is small by construction and stays informational).
SOLVER_KERNELS = ("fista", "admm", "bsbl")


@dataclass(frozen=True)
class ProfileKernelCell:
    """Both arms of one kernel: fresh-allocation baseline vs workspaces."""

    kernel: str
    profiled_name: str
    n_units: int
    units: str
    repeats: int
    baseline_s: float
    workspace_s: float
    baseline_alloc_bytes: int
    workspace_alloc_bytes: int
    bytes_served: int
    buf_calls: int
    max_abs_dev: float

    @property
    def baseline_units_per_sec(self) -> float:
        return self.n_units * self.repeats / self.baseline_s

    @property
    def workspace_units_per_sec(self) -> float:
        return self.n_units * self.repeats / self.workspace_s

    @property
    def speedup(self) -> float:
        """Workspace-arm throughput over the fresh-allocation baseline."""
        return self.baseline_s / self.workspace_s

    @property
    def alloc_reduction(self) -> float:
        """Baseline allocator traffic over the warm workspace arm's.

        A fully warm arm allocates zero bytes; the denominator is
        floored at one byte so the ratio stays finite (and JSON-safe)
        rather than infinite.
        """
        return self.baseline_alloc_bytes / max(self.workspace_alloc_bytes, 1)


def _pool_delta(before: Dict[str, float], after: Dict[str, float]) -> Tuple[int, int, int]:
    """(bytes_allocated, bytes_served, buf_calls) folded in between."""
    return (
        int(after["bytes_allocated"] - before["bytes_allocated"]),
        int(after["bytes_served"] - before["bytes_served"]),
        int(after["buf_calls"] - before["buf_calls"]),
    )


def _measure_kernel(
    kernel: str,
    profiled_name: str,
    run: Callable[[], np.ndarray],
    n_units: int,
    units: str,
    repeats: int,
) -> ProfileKernelCell:
    """Run one kernel through both arms; see the module docstring.

    The warmup call (workspaces on) pays every one-time cost — operator
    cache fills, codebook/LUT builds, pool capacity — outside the
    measured region, so the arms differ only in buffer reuse.
    """
    with use_workspaces(True):
        run()

    # Allocation arms: one run each, measured via pool-counter deltas
    # (leases fold their counters into the pool at release).
    before = pool_stats()
    with use_workspaces(False):
        base_out = run()
    mid = pool_stats()
    with use_workspaces(True):
        ws_out = run()
    after = pool_stats()
    base_alloc, _, _ = _pool_delta(before, mid)
    ws_alloc, served, calls = _pool_delta(mid, after)
    max_abs_dev = float(
        np.max(np.abs(np.asarray(base_out) - np.asarray(ws_out)))
    )

    # Timing arms: repeats runs each, pool already warm, no tracing.
    start = time.perf_counter()
    with use_workspaces(False):
        for _ in range(repeats):
            run()
    baseline_s = time.perf_counter() - start
    start = time.perf_counter()
    with use_workspaces(True):
        for _ in range(repeats):
            run()
    workspace_s = time.perf_counter() - start

    return ProfileKernelCell(
        kernel=kernel,
        profiled_name=profiled_name,
        n_units=n_units,
        units=units,
        repeats=repeats,
        baseline_s=baseline_s,
        workspace_s=workspace_s,
        baseline_alloc_bytes=base_alloc,
        workspace_alloc_bytes=ws_alloc,
        bytes_served=served,
        buf_calls=calls,
        max_abs_dev=max_abs_dev,
    )


def _stack_alphas(results: Sequence[Any]) -> np.ndarray:
    return np.stack([r.alpha for r in results], axis=1)


def run_profile_bench(
    base_config: FrontEndConfig,
    *,
    cr_percent: float = 50.0,
    record_name: str = "100",
    n_windows: int = 8,
    duration_s: float = 30.0,
    repeats: int = 3,
    solver_max_iter: int = 120,
    bsbl_max_iter: int = 10,
    synth_duration_s: float = 4.0,
) -> Tuple[List[ProfileKernelCell], List[Dict[str, Any]]]:
    """Run every profile kernel; returns ``(cells, traced profiler rows)``.

    One record's first ``n_windows`` windows feed the three batched
    solvers and the batch encoder at one CR; the synthesizer runs a
    fixed-seed fast-path waveform.  Solver iteration caps are bench
    knobs (enough iterations for the loop to dominate, few enough for a
    smoke run to stay in seconds) — convergence quality is the solver
    bench's concern, not this one's.
    """
    from repro.core.encode_batch import measure_window_stack
    from repro.sensing.quantizers import measurement_quantizer
    from repro.signals.ecgsyn import synthesize_ecg

    config = base_config.for_cr(cr_percent)
    xs = _signal_windows(
        record_name, config.window_len, n_windows, duration_s
    )
    problem = problem_for_config(config)
    ys = [problem.measure_signal(x) for x in xs]
    sigma = 0.02 * float(np.median([np.linalg.norm(y) for y in ys]))
    lam = 0.05 * max(lambda_max(problem, y) for y in ys)
    noise_var = measurement_noise_var(
        1.0, config.recovery.bsbl.noise_scale
    )

    center = 1 << (config.acquisition_bits - 1)
    quantizer = measurement_quantizer(
        problem.phi, float(center), config.measurement_bits
    )
    centered = np.ascontiguousarray(np.stack(xs, axis=0))

    n_synth = int(round(synth_duration_s * 360.0))

    plans: List[Tuple[str, str, Callable[[], np.ndarray], int, str]] = [
        (
            "fista",
            "recovery.fista_batch",
            lambda: _stack_alphas(
                solve_fista_batch(
                    problem, ys, lam, max_iter=solver_max_iter, tol=1e-9
                )
            ),
            n_windows,
            "windows",
        ),
        (
            "admm",
            "recovery.admm_batch",
            lambda: _stack_alphas(
                solve_bpdn_admm_batch(
                    problem, ys, sigma, max_iter=solver_max_iter, tol=1e-9
                )
            ),
            n_windows,
            "windows",
        ),
        (
            "bsbl",
            "recovery.bsbl_batch",
            lambda: _stack_alphas(
                solve_bsbl_batch(
                    problem,
                    ys,
                    noise_var,
                    bsbl=config.recovery.bsbl,
                    max_iter=bsbl_max_iter,
                    tol=1e-12,
                )
            ),
            n_windows,
            "windows",
        ),
        (
            "encode",
            "core.encode_batch",
            lambda: measure_window_stack(
                problem.phi,
                quantizer,
                centered,
                config.encode.boundary_guard,
            ),
            n_windows,
            "windows",
        ),
        (
            "synth",
            "signals.ecgsyn",
            lambda: synthesize_ecg(synth_duration_s, seed=7),
            n_synth,
            "samples",
        ),
    ]

    cells = [
        _measure_kernel(kernel, name, run, n_units, units, repeats)
        for kernel, name, run, n_units, units in plans
    ]

    # Traced cross-check: one pass per kernel under tracemalloc, both
    # workspaces on — slow, so it never shares a pass with the timings.
    with profiling(trace_alloc=True) as prof:
        for _, _, run, _, _ in plans:
            run()
    return cells, prof.report()


def profile_bench_payload(
    cells: Sequence[ProfileKernelCell],
    profiler_rows: Sequence[Dict[str, Any]],
    *,
    smoke: bool,
    cache_stats: Optional[Dict[str, Any]] = None,
    workspace_stats: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """The ``BENCH_profile.json`` document for a cell list.

    Gated aggregates: ``min_alloc_reduction`` over the solver kernels
    (the encoder/synth cells stay informational) and ``max_abs_dev``
    over every cell, which must be exactly ``0.0`` — workspace reuse is
    a memory optimization, never an arithmetic change.
    """
    solver_cells = [c for c in cells if c.kernel in SOLVER_KERNELS]
    total_baseline = sum(c.baseline_s for c in cells)
    total_workspace = sum(c.workspace_s for c in cells)
    return {
        "schema": "repro-bench-profile/v1",
        "smoke": bool(smoke),
        "cpu_count": os.cpu_count(),
        "kernels": [
            {
                "kernel": c.kernel,
                "profiled_name": c.profiled_name,
                "n_units": c.n_units,
                "units": c.units,
                "repeats": c.repeats,
                "baseline": {
                    "wall_clock_s": c.baseline_s,
                    "units_per_sec": c.baseline_units_per_sec,
                    "alloc_bytes": c.baseline_alloc_bytes,
                },
                "workspace": {
                    "wall_clock_s": c.workspace_s,
                    "units_per_sec": c.workspace_units_per_sec,
                    "alloc_bytes": c.workspace_alloc_bytes,
                },
                "bytes_served": c.bytes_served,
                "buf_calls": c.buf_calls,
                "speedup": c.speedup,
                "alloc_reduction": c.alloc_reduction,
                "max_abs_dev": c.max_abs_dev,
            }
            for c in cells
        ],
        "min_alloc_reduction": (
            min(c.alloc_reduction for c in solver_cells)
            if solver_cells
            else None
        ),
        "min_speedup": min((c.speedup for c in cells), default=None),
        "max_abs_dev": max((c.max_abs_dev for c in cells), default=None),
        "aggregate": {
            "baseline_s": total_baseline,
            "workspace_s": total_workspace,
            "speedup": (
                total_baseline / total_workspace if total_workspace else None
            ),
        },
        "profiler": list(profiler_rows),
        "workspace_pool": dict(workspace_stats)
        if workspace_stats is not None
        else None,
        "recovery_cache": dict(cache_stats)
        if cache_stats is not None
        else None,
    }
