"""Solver microbenchmark: batched+cached engine vs the per-window loop.

``repro bench`` runs this after the sweep and writes the result as
``BENCH_solvers.json``.  For each (solver, CR) cell it times the same
window sequence through two paths:

* **loop** — :func:`repro.recovery.batched.recover_windows_loop` with
  ``fresh_problem=True``: one scalar solve per window against a freshly
  built :class:`~repro.recovery.problem.CsProblem`, i.e. the pre-cache
  cost model (per-window ΦΨ composition, operator norm and — for ADMM —
  Cholesky factorization);
* **batched** — :func:`repro.recovery.batched.recover_windows` against a
  problem from the process-wide
  :data:`~repro.recovery.opcache.PROBLEM_CACHE`: all setup paid once,
  iterations vectorized over window stacks.

Both paths run the identical warm-start schedule, so besides throughput
the cell reports how far the two solution sets drift (``max_prd_dev`` —
the PRD of each batched reconstruction against its loop twin, worst
window): the batched engine is the same arithmetic reordered, so this
sits at BLAS-rounding level (~1e-10 %), far below the 1e-6 acceptance
bound the CI checks.

With extra ``backends`` the batched path also runs per
:class:`~repro.backend.BackendSettings` (the loop oracle always stays
scalar float64), producing one cell per (solver, CR, backend).  Only
exact (NumPy/float64) cells feed the gated top-level aggregates
(``min_speedup`` / ``max_prd_dev_percent``); fast-path cells report
their measured deviation under ``by_backend`` instead (see
``docs/backends.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backend import BackendSettings
from repro.core.config import FrontEndConfig
from repro.metrics.quality import prd as prd_metric
from repro.recovery.batched import recover_windows, recover_windows_loop
from repro.recovery.fista import lambda_max
from repro.recovery.opcache import problem_for_config
from repro.signals.database import load_record

__all__ = ["SolverBenchCell", "run_solver_bench", "solver_bench_payload"]

#: Solvers the microbenchmark exercises (both have a batched engine).
BENCH_SOLVERS = ("admm", "fista")

#: Iteration controls for the timed solves — enough work per window for
#: the timing to be solver-bound, small enough that a smoke run stays
#: in seconds.
_BENCH_MAX_ITER = 300
_BENCH_TOL = 1e-6


@dataclass(frozen=True)
class SolverBenchCell:
    """Timings and agreement for one (solver, CR, backend) cell."""

    solver: str
    cr_percent: float
    n_measurements: int
    n_windows: int
    loop_s: float
    batched_s: float
    max_abs_alpha_dev: float
    max_prd_dev_percent: float
    backend: str = "numpy"
    precision: str = "float64"

    @property
    def is_exact(self) -> bool:
        """Whether this cell ran the exact (NumPy/float64) path."""
        return self.backend == "numpy" and self.precision == "float64"

    @property
    def backend_label(self) -> str:
        return f"{self.backend}/{self.precision}"

    @property
    def loop_windows_per_sec(self) -> float:
        return self.n_windows / self.loop_s

    @property
    def batched_windows_per_sec(self) -> float:
        return self.n_windows / self.batched_s

    @property
    def speedup(self) -> float:
        """Batched+cached throughput over the per-window loop."""
        return self.loop_s / self.batched_s


def _signal_windows(
    record_name: str, window_len: int, n_windows: int, duration_s: float
) -> List[np.ndarray]:
    """Centered float windows from a synthetic record, shape ``(n,)`` each."""
    record = load_record(record_name, duration_s=duration_s)
    center = 1 << (record.header.resolution_bits - 1)
    windows = []
    for codes in record.windows(window_len):
        windows.append(np.asarray(codes, dtype=float) - center)
        if len(windows) == n_windows:
            break
    if len(windows) < n_windows:
        raise ValueError(
            f"record {record_name!r} too short: {len(windows)} windows "
            f"of {window_len} (need {n_windows})"
        )
    return windows


def _bench_cells(
    config: FrontEndConfig,
    solver: str,
    xs: Sequence[np.ndarray],
    backends: Sequence[BackendSettings],
) -> List[SolverBenchCell]:
    """Time one (solver, CR) grid point: the loop oracle once, then the
    batched engine once per backend (all cells share the loop timing)."""
    problem = problem_for_config(config)
    ys = [problem.measure_signal(x) for x in xs]

    # Solver parameters scaled to the data so both engines converge in a
    # comparable, bounded number of iterations.
    sigma = 0.02 * float(np.median([np.linalg.norm(y) for y in ys]))
    lam = 0.05 * max(lambda_max(problem, y) for y in ys)

    kwargs: Dict[str, object] = dict(
        method=solver,
        sigma=sigma,
        lam=lam,
        batch_size=config.recovery.batch_size,
        warm_start=True,
        max_iter=_BENCH_MAX_ITER,
        tol=_BENCH_TOL,
    )

    # Legacy cost model: fresh operator state per window.
    start = time.perf_counter()
    loop_results = recover_windows_loop(problem, ys, fresh_problem=True, **kwargs)
    loop_s = time.perf_counter() - start

    # Warm the factorizations outside the timed region (in production they
    # are paid once per process, not once per benchmark).
    if solver == "admm":
        problem.admm_factor()
    cells = []
    for settings in backends:
        start = time.perf_counter()
        batch_results = recover_windows(problem, ys, settings=settings, **kwargs)
        batched_s = time.perf_counter() - start

        alpha_dev = max(
            float(np.max(np.abs(b.alpha - s.alpha)))
            for b, s in zip(batch_results, loop_results)
        )
        prd_dev = max(
            float(prd_metric(s.x, b.x))
            if float(np.linalg.norm(s.x)) > 0
            else 0.0
            for b, s in zip(batch_results, loop_results)
        )
        cells.append(
            SolverBenchCell(
                solver=solver,
                cr_percent=float(config.cs_cr_percent),
                n_measurements=config.n_measurements,
                n_windows=len(ys),
                loop_s=loop_s,
                batched_s=batched_s,
                max_abs_alpha_dev=alpha_dev,
                max_prd_dev_percent=prd_dev,
                backend=settings.name,
                precision=settings.precision,
            )
        )
    return cells


def run_solver_bench(
    base_config: FrontEndConfig,
    cr_values: Sequence[float],
    *,
    record_name: str = "100",
    n_windows: int = 12,
    duration_s: float = 30.0,
    solvers: Sequence[str] = BENCH_SOLVERS,
    backends: Sequence[BackendSettings] = (BackendSettings(),),
) -> List[SolverBenchCell]:
    """Run the batched-vs-loop microbenchmark over a CR grid.

    One record's first ``n_windows`` windows are solved at every CR by
    every solver, through both engines; the batched engine additionally
    runs once per entry of ``backends`` (default: exact only).  Returns
    one cell per (solver, CR, backend), solver-major, in input order.
    """
    xs = _signal_windows(
        record_name, base_config.window_len, n_windows, duration_s
    )
    cells = []
    for solver in solvers:
        for cr in cr_values:
            cells.extend(
                _bench_cells(base_config.for_cr(cr), solver, xs, backends)
            )
    return cells


def solver_bench_payload(
    cells: Sequence[SolverBenchCell],
    *,
    smoke: bool,
    cache_stats: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The ``BENCH_solvers.json`` document for a cell list.

    Gated aggregates (``min_speedup`` / ``max_prd_dev_percent``) are
    computed over the *exact* cells only — a fast backend's measured
    deviation is reported per label under ``by_backend``, never mixed
    into the bit-identity gate.
    """
    exact = [c for c in cells if c.is_exact]
    speedups = [c.speedup for c in exact]
    by_backend: Dict[str, Dict[str, object]] = {}
    for c in cells:
        group = by_backend.setdefault(
            c.backend_label,
            {"cells": 0, "min_speedup": None, "max_prd_dev_percent": None},
        )
        group["cells"] = int(group["cells"]) + 1
        if group["min_speedup"] is None or c.speedup < group["min_speedup"]:
            group["min_speedup"] = c.speedup
        if (
            group["max_prd_dev_percent"] is None
            or c.max_prd_dev_percent > group["max_prd_dev_percent"]
        ):
            group["max_prd_dev_percent"] = c.max_prd_dev_percent
    return {
        "schema": "repro-bench-solvers/v1",
        "smoke": bool(smoke),
        "max_iter": _BENCH_MAX_ITER,
        "tol": _BENCH_TOL,
        "cells": [
            {
                "solver": c.solver,
                "cr_percent": c.cr_percent,
                "n_measurements": c.n_measurements,
                "n_windows": c.n_windows,
                "backend": c.backend,
                "precision": c.precision,
                "loop": {
                    "wall_clock_s": c.loop_s,
                    "windows_per_sec": c.loop_windows_per_sec,
                },
                "batched": {
                    "wall_clock_s": c.batched_s,
                    "windows_per_sec": c.batched_windows_per_sec,
                },
                "speedup": c.speedup,
                "max_abs_alpha_dev": c.max_abs_alpha_dev,
                "max_prd_dev_percent": c.max_prd_dev_percent,
            }
            for c in cells
        ],
        "min_speedup": min(speedups) if speedups else None,
        "max_prd_dev_percent": (
            max(c.max_prd_dev_percent for c in exact) if exact else None
        ),
        "by_backend": by_backend,
        "problem_cache": dict(cache_stats) if cache_stats is not None else None,
    }
