"""Fig. 2 driver: a low-resolution window and its reconstruction bounds.

Fig. 2(a) overlays one ~1 s window of the original ECG (raw ADC samples)
with its 7-bit low-resolution quantization; Fig. 2(b) shows the band
``[x_dot, x_dot + d]`` that the low-res samples impose on any admissible
reconstruction — the box constraint of Eq. 1, visualized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensing.quantizers import dequantize_codes, lowres_bounds, requantize_codes
from repro.signals.database import load_record

__all__ = ["Fig2Data", "run_fig2"]


@dataclass(frozen=True)
class Fig2Data:
    """Series behind both panels of Fig. 2.

    All waveform series are raw ADC-code units, as in the paper's plot.
    """

    record_name: str
    fs_hz: float
    time_s: np.ndarray
    original_adu: np.ndarray
    lowres_adu: np.ndarray
    bound_lower_adu: np.ndarray
    bound_upper_adu: np.ndarray
    lowres_bits: int

    @property
    def bound_width_adu(self) -> float:
        """The resolution depth step ``d`` in ADU."""
        return float(self.bound_upper_adu[0] - self.bound_lower_adu[0] + 1)

    def bounds_contain_original(self) -> bool:
        """Sanity: the original always lies inside the band (lossless
        guarantee of deterministic requantization)."""
        return bool(
            np.all(self.original_adu >= self.bound_lower_adu)
            and np.all(self.original_adu <= self.bound_upper_adu)
        )


def run_fig2(
    record_name: str = "100",
    *,
    lowres_bits: int = 7,
    window_start_s: float = 2.0,
    window_len_s: float = 1.0,
    duration_s: float = 10.0,
) -> Fig2Data:
    """Produce the Fig. 2 series for one record window.

    Parameters
    ----------
    record_name:
        Database record to plot.
    lowres_bits:
        Parallel-channel resolution (paper shows 7-bit).
    window_start_s, window_len_s:
        Window position inside the record.
    duration_s:
        Length of the underlying synthetic record.
    """
    record = load_record(record_name, duration_s=duration_s)
    fs = record.header.fs_hz
    start = int(round(window_start_s * fs))
    length = int(round(window_len_s * fs))
    if start < 0 or start + length > len(record):
        raise ValueError("window does not fit inside the record")
    window = record.adu[start : start + length]
    acq_bits = record.header.resolution_bits
    lowres = requantize_codes(window, acq_bits, lowres_bits)
    lowres_adu = dequantize_codes(lowres, acq_bits, lowres_bits)
    lower, upper = lowres_bounds(lowres, acq_bits, lowres_bits)
    return Fig2Data(
        record_name=record_name,
        fs_hz=fs,
        time_s=np.arange(length) / fs,
        original_adu=window.astype(np.int64),
        lowres_adu=lowres_adu,
        bound_lower_adu=lower,
        bound_upper_adu=upper,
        lowres_bits=lowres_bits,
    )
