"""Encoder microbenchmark: batched encode engine vs the per-window loop.

``repro bench`` runs this alongside the solver microbenchmark and writes
the result as ``BENCH_encode.json``.  Two kernels are timed:

* **window encoding** — for each (method, CR) cell the same record
  windows run through the scalar reference
  (:meth:`~repro.core.frontend.HybridFrontEnd.process_record_loop`: one
  GEMV + one symbol-at-a-time Huffman pass per window) and the batch
  engine (:meth:`~repro.core.frontend.HybridFrontEnd.encode_windows`:
  one GEMM + the table-driven vectorized coder of
  :mod:`repro.coding.vectorized`).  Unlike the solver bench, agreement
  here is not a tolerance but an equality: the cell records whether the
  concatenated packet bytes match exactly (they must — see
  ``docs/encoding.md``);
* **signal synthesis** — the vectorized phase-domain integrators
  (:func:`~repro.signals.ecgsyn.synthesize_ecg` and the database's
  per-beat variant) against their per-sample scalar oracles
  (:func:`~repro.signals.ecgsyn.synthesize_loop`,
  :func:`~repro.signals.database.synthesize_with_beats_loop`), again
  with bit-identity recorded alongside samples/sec.

CI gates on ``min_encode_speedup`` (hybrid cells) ≥ 2x, byte identity,
and database-synthesis speedup ≥ 5x.  With extra ``backends`` the batch
engine additionally runs per :class:`~repro.backend.BackendSettings`;
those fast-path cells report their byte-identity *fraction* and worst
measurement-code delta against the scalar oracle (``docs/backends.md``)
and are excluded from the gated exact aggregates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from repro.backend import BackendSettings
from repro.core.codebooks import CodebookKey, build_codebook
from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd, NormalCsFrontEnd
from repro.signals.database import (
    _synthesize_with_beats,
    load_record,
    record_profile,
    synthesize_with_beats_loop,
)
from repro.signals.ecgsyn import synthesize_ecg, synthesize_loop

__all__ = [
    "EncodeBenchCell",
    "SynthBenchCell",
    "run_encode_bench",
    "run_synth_bench",
    "encode_bench_payload",
]

#: Front-end variants the encoder microbenchmark exercises.
BENCH_METHODS = ("hybrid", "normal")


@dataclass(frozen=True)
class EncodeBenchCell:
    """Timings and byte agreement for one (method, CR, backend) cell."""

    method: str
    cr_percent: float
    n_measurements: int
    n_windows: int
    loop_s: float
    batched_s: float
    bytes_identical: bool
    backend: str = "numpy"
    precision: str = "float64"
    #: Fraction of windows whose packet bytes match the scalar oracle
    #: exactly (1.0 on the exact path by contract).
    identical_fraction: float = 1.0
    #: Worst absolute measurement-code difference vs the scalar oracle
    #: (0 on the exact path by contract).
    max_code_delta: int = 0

    @property
    def is_exact(self) -> bool:
        """Whether this cell ran the exact (NumPy/float64) path."""
        return self.backend == "numpy" and self.precision == "float64"

    @property
    def backend_label(self) -> str:
        return f"{self.backend}/{self.precision}"

    @property
    def loop_windows_per_sec(self) -> float:
        return self.n_windows / self.loop_s

    @property
    def batched_windows_per_sec(self) -> float:
        return self.n_windows / self.batched_s

    @property
    def speedup(self) -> float:
        """Batch-engine throughput over the per-window loop."""
        return self.loop_s / self.batched_s


@dataclass(frozen=True)
class SynthBenchCell:
    """Timings and bit agreement for one synthesis kernel."""

    kind: str
    n_samples: int
    loop_s: float
    vectorized_s: float
    identical: bool

    @property
    def loop_samples_per_sec(self) -> float:
        return self.n_samples / self.loop_s

    @property
    def vectorized_samples_per_sec(self) -> float:
        return self.n_samples / self.vectorized_s

    @property
    def speedup(self) -> float:
        """Vectorized-integrator throughput over the per-sample loop."""
        return self.loop_s / self.vectorized_s


def run_encode_bench(
    base_config: FrontEndConfig,
    cr_values: Sequence[float],
    *,
    record_name: str = "100",
    n_windows: int = 32,
    duration_s: float = 60.0,
    methods: Sequence[str] = BENCH_METHODS,
    backends: Sequence[BackendSettings] = (BackendSettings(),),
) -> List[EncodeBenchCell]:
    """Time scalar vs batched encoding over a (method, CR, backend) grid.

    One record's first ``n_windows`` windows are encoded at every CR by
    every front-end variant through both paths; the batch engine
    additionally runs once per entry of ``backends`` (default: exact
    only), every batch arm compared against the one scalar oracle run
    (whose timing the cells share).  Each cell records whole-run byte
    identity plus the per-window identity fraction and the worst
    measurement-code delta.  Cells come back method-major in input
    order.
    """
    record = load_record(record_name, duration_s=duration_s)
    cells: List[EncodeBenchCell] = []
    for method in methods:
        for cr in cr_values:
            config = base_config.for_cr(cr)
            if method == "hybrid":
                codebook = build_codebook(
                    CodebookKey(
                        lowres_bits=config.lowres_bits,
                        acquisition_bits=config.acquisition_bits,
                    )
                )
                frontend = HybridFrontEnd(config, codebook)
                # Build the encode LUTs outside the timed region (paid
                # once per codebook, like the solver bench's warmed
                # factorizations).
                codebook.tables
            else:
                frontend = NormalCsFrontEnd(config)

            start = time.perf_counter()
            loop_packets = frontend.process_record_loop(
                record, max_windows=n_windows
            )
            loop_s = time.perf_counter() - start

            for settings in backends:
                if settings == config.backend:
                    frontend_b = frontend
                else:
                    config_b = replace(config, backend=settings)
                    if method == "hybrid":
                        frontend_b = HybridFrontEnd(config_b, codebook)
                    else:
                        frontend_b = NormalCsFrontEnd(config_b)

                start = time.perf_counter()
                batched_packets = frontend_b.process_record(
                    record, max_windows=n_windows
                )
                batched_s = time.perf_counter() - start

                matches = sum(
                    lp.to_bytes() == bp.to_bytes()
                    for lp, bp in zip(loop_packets, batched_packets)
                )
                code_delta = max(
                    (
                        int(
                            np.max(
                                np.abs(
                                    np.asarray(bp.measurement_codes)
                                    - np.asarray(lp.measurement_codes)
                                )
                            )
                        )
                        for lp, bp in zip(loop_packets, batched_packets)
                    ),
                    default=0,
                )
                cells.append(
                    EncodeBenchCell(
                        method=method,
                        cr_percent=float(config.cs_cr_percent),
                        n_measurements=config.n_measurements,
                        n_windows=len(loop_packets),
                        loop_s=loop_s,
                        batched_s=batched_s,
                        bytes_identical=matches == len(loop_packets),
                        backend=settings.name,
                        precision=settings.precision,
                        identical_fraction=(
                            matches / len(loop_packets)
                            if loop_packets
                            else 1.0
                        ),
                        max_code_delta=code_delta,
                    )
                )
    return cells


def run_synth_bench(
    *,
    duration_s: float = 6.0,
    fs_hz: float = 360.0,
    database_records: Sequence[str] = ("100", "106"),
    database_duration_s: float = 4.0,
) -> List[SynthBenchCell]:
    """Time the vectorized synthesis kernels against their scalar oracles.

    Returns one ``ecgsyn`` cell (plain :func:`synthesize_ecg`) and one
    ``database`` cell (the per-beat variant summed over
    ``database_records``, both leads of each via MLII only is enough for
    throughput — one lead per record keeps the smoke run fast).
    """
    start = time.perf_counter()
    fast = synthesize_ecg(duration_s, fs_hz, seed=0)
    vec_s = time.perf_counter() - start
    start = time.perf_counter()
    slow = synthesize_loop(duration_s, fs_hz, seed=0)
    loop_s = time.perf_counter() - start
    cells = [
        SynthBenchCell(
            kind="ecgsyn",
            n_samples=fast.size,
            loop_s=loop_s,
            vectorized_s=vec_s,
            identical=bool(np.array_equal(fast, slow)),
        )
    ]

    total_samples = 0
    vec_total = 0.0
    loop_total = 0.0
    identical = True
    for name in database_records:
        profile = record_profile(name)
        start = time.perf_counter()
        fast_z, fast_ann = _synthesize_with_beats(
            profile, database_duration_s, fs_hz
        )
        vec_total += time.perf_counter() - start
        start = time.perf_counter()
        slow_z, slow_ann = synthesize_with_beats_loop(
            profile, database_duration_s, fs_hz
        )
        loop_total += time.perf_counter() - start
        total_samples += fast_z.size
        identical = identical and bool(
            np.array_equal(fast_z, slow_z) and fast_ann == slow_ann
        )
    cells.append(
        SynthBenchCell(
            kind="database",
            n_samples=total_samples,
            loop_s=loop_total,
            vectorized_s=vec_total,
            identical=identical,
        )
    )
    return cells


def encode_bench_payload(
    encode_cells: Sequence[EncodeBenchCell],
    synth_cells: Sequence[SynthBenchCell],
    *,
    smoke: bool,
) -> Dict[str, object]:
    """The ``BENCH_encode.json`` document for the two cell lists.

    The gated aggregates (``min_encode_speedup`` /
    ``all_bytes_identical``) cover the *exact* cells only; a fast
    backend's byte-identity fraction and worst code delta are reported
    per label under ``by_backend``.
    """
    exact = [c for c in encode_cells if c.is_exact]
    hybrid_speedups = [c.speedup for c in exact if c.method == "hybrid"]
    database_speedups = [
        c.speedup for c in synth_cells if c.kind == "database"
    ]
    by_backend: Dict[str, Dict[str, object]] = {}
    for c in encode_cells:
        group = by_backend.setdefault(
            c.backend_label,
            {
                "cells": 0,
                "min_speedup": None,
                "all_bytes_identical": True,
                "min_identical_fraction": None,
                "max_code_delta": 0,
            },
        )
        group["cells"] = int(group["cells"]) + 1
        if group["min_speedup"] is None or c.speedup < group["min_speedup"]:
            group["min_speedup"] = c.speedup
        group["all_bytes_identical"] = bool(
            group["all_bytes_identical"] and c.bytes_identical
        )
        if (
            group["min_identical_fraction"] is None
            or c.identical_fraction < group["min_identical_fraction"]
        ):
            group["min_identical_fraction"] = c.identical_fraction
        group["max_code_delta"] = max(
            int(group["max_code_delta"]), c.max_code_delta
        )
    return {
        "schema": "repro-bench-encode/v1",
        "smoke": bool(smoke),
        "cells": [
            {
                "method": c.method,
                "cr_percent": c.cr_percent,
                "n_measurements": c.n_measurements,
                "n_windows": c.n_windows,
                "backend": c.backend,
                "precision": c.precision,
                "loop": {
                    "wall_clock_s": c.loop_s,
                    "windows_per_sec": c.loop_windows_per_sec,
                },
                "batched": {
                    "wall_clock_s": c.batched_s,
                    "windows_per_sec": c.batched_windows_per_sec,
                },
                "speedup": c.speedup,
                "bytes_identical": c.bytes_identical,
                "identical_fraction": c.identical_fraction,
                "max_code_delta": c.max_code_delta,
            }
            for c in encode_cells
        ],
        "min_encode_speedup": (
            min(hybrid_speedups) if hybrid_speedups else None
        ),
        "all_bytes_identical": all(c.bytes_identical for c in exact),
        "by_backend": by_backend,
        "synth": {
            "cells": [
                {
                    "kind": c.kind,
                    "n_samples": c.n_samples,
                    "loop": {
                        "wall_clock_s": c.loop_s,
                        "samples_per_sec": c.loop_samples_per_sec,
                    },
                    "vectorized": {
                        "wall_clock_s": c.vectorized_s,
                        "samples_per_sec": c.vectorized_samples_per_sec,
                    },
                    "speedup": c.speedup,
                    "identical": c.identical,
                }
                for c in synth_cells
            ],
            "database_speedup": (
                min(database_speedups) if database_speedups else None
            ),
            "all_identical": all(c.identical for c in synth_cells),
        },
    }
