"""Figs. 5-6 and Table I driver: the low-resolution channel trade-off.

For every quantizer resolution 3-10 bit the paper reports:

* Fig. 5 — on-node storage (bytes) of the offline Huffman codebook;
* Fig. 6 — average compression ratio of the coded low-res stream (as a
  fraction of its raw ``n*B`` bits; see the notation note in
  :mod:`repro.metrics.compression`);
* Table I — the resulting overhead ``D_i = CR_i * i / 12`` in percent of
  the 12-bit original.

The trio is computed together since they share the trained codebooks and
the encoded streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.coding.codebook import DifferenceCodebook
from repro.core.pipeline import default_codebook
from repro.experiments.runner import ExperimentScale, active_scale
from repro.metrics.compression import lowres_overhead
from repro.sensing.quantizers import requantize_codes

__all__ = [
    "LowresTradeoffRow",
    "LowresTradeoffData",
    "run_lowres_tradeoff",
    "PAPER_TABLE1_OVERHEADS",
    "PAPER_RESOLUTIONS",
]

#: Resolutions swept in Figs. 5-6 / Table I.
PAPER_RESOLUTIONS: Tuple[int, ...] = (3, 4, 5, 6, 7, 8, 9, 10)

#: Paper Table I: resolution → overhead D_i in percent.
PAPER_TABLE1_OVERHEADS: Dict[int, float] = {
    10: 26.3, 9: 17.6, 8: 11.4, 7: 7.8, 6: 5.6, 5: 4.2, 4: 3.1, 3: 2.3,
}


@dataclass(frozen=True)
class LowresTradeoffRow:
    """All three measurements at one resolution."""

    resolution_bits: int
    codebook_entries: int
    storage_bytes: int
    compressed_fraction: float
    overhead_percent: float

    @property
    def bits_per_sample(self) -> float:
        """Mean coded bits per low-res sample."""
        return self.compressed_fraction * self.resolution_bits


@dataclass(frozen=True)
class LowresTradeoffData:
    """Rows for every swept resolution, ascending in bits."""

    rows: Tuple[LowresTradeoffRow, ...]

    def row(self, bits: int) -> LowresTradeoffRow:
        """The row for one resolution."""
        for r in self.rows:
            if r.resolution_bits == bits:
                return r
        raise KeyError(f"resolution {bits} not in sweep")

    def overhead_is_monotone(self) -> bool:
        """Paper's Table I property: D_i increases with resolution."""
        overheads = [r.overhead_percent for r in self.rows]
        return all(a <= b + 1e-12 for a, b in zip(overheads[:-1], overheads[1:]))

    def storage_is_monotone(self) -> bool:
        """Paper's Fig. 5 property: storage grows with resolution."""
        sizes = [r.storage_bytes for r in self.rows]
        return all(a <= b for a, b in zip(sizes[:-1], sizes[1:]))


def run_lowres_tradeoff(
    resolutions: Sequence[int] = PAPER_RESOLUTIONS,
    *,
    scale: Optional[ExperimentScale] = None,
    window_len: int = 512,
    codebooks: Optional[Dict[int, DifferenceCodebook]] = None,
) -> LowresTradeoffData:
    """Measure storage, compression and overhead per resolution.

    Compression fractions are averaged over every full window of every
    record in the scale, encoding real bitstreams (not entropy estimates).
    """
    scale = scale or active_scale()
    records = scale.records()
    rows = []
    for bits in sorted(int(b) for b in resolutions):
        book = (
            codebooks[bits]
            if codebooks is not None
            else default_codebook(bits)
        )
        fractions = []
        for record in records:
            codes = requantize_codes(
                record.adu, record.header.resolution_bits, bits
            )
            n_windows = codes.size // window_len
            for k in range(n_windows):
                window = codes[k * window_len : (k + 1) * window_len]
                fractions.append(book.compressed_fraction(window))
        fraction = float(np.mean(fractions))
        rows.append(
            LowresTradeoffRow(
                resolution_bits=bits,
                codebook_entries=book.n_entries,
                storage_bytes=book.storage_bytes(),
                compressed_fraction=fraction,
                overhead_percent=lowres_overhead(min(fraction, 1.0), bits),
            )
        )
    return LowresTradeoffData(rows=tuple(rows))
