"""Disk-backed memoization of pipeline outcomes for large sweeps.

A full-scale Fig. 7 sweep is 48 records × 9 CRs × 2 methods of convex
solves; at ~0.1-1 s per window that is real wall-clock.  Every outcome is
a pure function of ``(record identity, config, method, window count)``
(tested by ``tests/integration/test_paper_invariants.py``), so results can
be cached on disk and sweeps resumed across processes.

The cache key hashes the full config (solver settings included) plus the
record's identity; any parameter change misses cleanly.  Storage is one
small JSON file per outcome under the cache directory — trivially
inspectable and deletable.

Opt-in: pass a :class:`SweepCache` to
:func:`repro.experiments.runner.sweep_compression_ratios`, or set the
``REPRO_CACHE_DIR`` environment variable to enable it in benchmarks.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Optional

from repro.core.config import FrontEndConfig
from repro.core.outcomes import RecordOutcome, WindowOutcome
from repro.metrics.compression import CompressionBudget
from repro.runtime.engine import RecordJob, StageHook

__all__ = [
    "config_fingerprint",
    "SweepCache",
    "SweepCacheHook",
    "cache_from_env",
]


def config_fingerprint(config: FrontEndConfig) -> str:
    """Stable short hash of every config field (solver settings included)."""
    payload = {
        "window_len": config.window_len,
        "n_measurements": config.n_measurements,
        "lowres_bits": config.lowres_bits,
        "acquisition_bits": config.acquisition_bits,
        "measurement_bits": config.measurement_bits,
        "basis_spec": config.basis_spec,
        "sensing": asdict(config.sensing),
        "solver": asdict(config.solver),
        "sigma_safety": config.sigma_safety,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:20]


def _outcome_to_dict(outcome: RecordOutcome) -> dict:
    return {
        "record_name": outcome.record_name,
        "method": outcome.method,
        "windows": [
            {
                "window_index": w.window_index,
                "prd_percent": w.prd_percent,
                "snr_db": w.snr_db,
                "solver_iterations": w.solver_iterations,
                "solver_converged": w.solver_converged,
                "budget": {
                    "n_samples": w.budget.n_samples,
                    "original_bits": w.budget.original_bits,
                    "cs_bits": w.budget.cs_bits,
                    "lowres_bits": w.budget.lowres_bits,
                    "header_bits": w.budget.header_bits,
                },
            }
            for w in outcome.windows
        ],
    }


def _outcome_from_dict(data: dict) -> RecordOutcome:
    windows = tuple(
        WindowOutcome(
            window_index=w["window_index"],
            prd_percent=w["prd_percent"],
            snr_db=w["snr_db"],
            budget=CompressionBudget(**w["budget"]),
            solver_iterations=w["solver_iterations"],
            solver_converged=w["solver_converged"],
        )
        for w in data["windows"]
    )
    return RecordOutcome(
        record_name=data["record_name"],
        method=data["method"],
        windows=windows,
    )


class SweepCache:
    """File-per-outcome cache of :class:`RecordOutcome` values."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(
        self,
        record_name: str,
        duration_s: float,
        config: FrontEndConfig,
        method: str,
        max_windows: Optional[int],
    ) -> Path:
        key = (
            f"{record_name}-{duration_s:g}-{method}-"
            f"{max_windows if max_windows is not None else 'all'}-"
            f"{config_fingerprint(config)}"
        )
        return self.directory / f"{key}.json"

    def load(
        self,
        record_name: str,
        duration_s: float,
        config: FrontEndConfig,
        method: str,
        max_windows: Optional[int],
    ) -> Optional[RecordOutcome]:
        """The cached outcome, or None on a miss.

        A corrupt or truncated file is deleted and treated as a miss.
        """
        path = self._path(record_name, duration_s, config, method, max_windows)
        if path.exists():
            try:
                outcome = _outcome_from_dict(json.loads(path.read_text()))
                self.hits += 1
                return outcome
            except (ValueError, KeyError, TypeError):
                path.unlink(missing_ok=True)
        self.misses += 1
        return None

    def store(
        self,
        record_name: str,
        duration_s: float,
        config: FrontEndConfig,
        method: str,
        max_windows: Optional[int],
        outcome: RecordOutcome,
    ) -> Path:
        """Persist one outcome atomically; returns its cache path.

        The JSON is written to a temporary file in the cache directory
        and moved into place with :func:`os.replace`, so a concurrent
        reader (or a crashed parallel worker) can never observe a
        truncated outcome — it sees either the old file or the new one.
        """
        path = self._path(record_name, duration_s, config, method, max_windows)
        payload = json.dumps(_outcome_to_dict(outcome))
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.stem}.", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(tmp_name)
            raise
        return path

    def get_or_run(
        self,
        record_name: str,
        duration_s: float,
        config: FrontEndConfig,
        method: str,
        max_windows: Optional[int],
        runner: Callable[[], RecordOutcome],
    ) -> RecordOutcome:
        """Return the cached outcome, or compute, persist and return it."""
        cached = self.load(record_name, duration_s, config, method, max_windows)
        if cached is not None:
            return cached
        outcome = runner()
        self.store(record_name, duration_s, config, method, max_windows, outcome)
        return outcome

    def stage_hook(self) -> "SweepCacheHook":
        """This cache as an engine stage hook (see :class:`SweepCacheHook`)."""
        return SweepCacheHook(self)

    def clear(self) -> int:
        """Delete every cached outcome; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed


class SweepCacheHook(StageHook):
    """Adapter exposing a :class:`SweepCache` as an engine stage hook.

    ``lookup`` hits make the :class:`~repro.runtime.engine.ExecutionEngine`
    skip expanding and scheduling the job entirely (no tasks are created,
    pickled or submitted); misses fall through to computation, whose
    outcome lands back here in ``store`` and is persisted atomically.
    """

    def __init__(self, cache: SweepCache) -> None:
        self.cache = cache

    def lookup(self, job: RecordJob) -> Optional[RecordOutcome]:
        """The cached outcome for this job, or None to schedule it."""
        return self.cache.load(
            job.record.name,
            job.record.duration_s,
            job.config,
            job.method,
            job.max_windows,
        )

    def store(self, job: RecordJob, outcome: RecordOutcome) -> None:
        """Persist a freshly computed job outcome."""
        self.cache.store(
            job.record.name,
            job.record.duration_s,
            job.config,
            job.method,
            job.max_windows,
            outcome,
        )


def cache_from_env() -> Optional[SweepCache]:
    """A :class:`SweepCache` at ``$REPRO_CACHE_DIR``, or None if unset."""
    directory = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if not directory:
        return None
    return SweepCache(Path(directory))
