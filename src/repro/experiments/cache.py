"""Disk-backed memoization of pipeline outcomes for large sweeps.

A full-scale Fig. 7 sweep is 48 records × 9 CRs × 2 methods of convex
solves; at ~0.1-1 s per window that is real wall-clock.  Every outcome is
a pure function of ``(record identity, config, method, window count)``
(tested by ``tests/integration/test_paper_invariants.py``), so results can
be cached on disk and sweeps resumed across processes.

The cache key hashes the full config (solver settings included) plus the
record's identity; any parameter change misses cleanly.  Storage is one
small JSON file per outcome under the cache directory — trivially
inspectable and deletable.

Opt-in: pass a :class:`SweepCache` to
:func:`repro.experiments.runner.sweep_compression_ratios`, or set the
``REPRO_CACHE_DIR`` environment variable to enable it in benchmarks.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Optional

from repro.core.config import FrontEndConfig
from repro.core.pipeline import RecordOutcome, WindowOutcome
from repro.metrics.compression import CompressionBudget

__all__ = ["config_fingerprint", "SweepCache", "cache_from_env"]


def config_fingerprint(config: FrontEndConfig) -> str:
    """Stable short hash of every config field (solver settings included)."""
    payload = {
        "window_len": config.window_len,
        "n_measurements": config.n_measurements,
        "lowres_bits": config.lowres_bits,
        "acquisition_bits": config.acquisition_bits,
        "measurement_bits": config.measurement_bits,
        "basis_spec": config.basis_spec,
        "sensing": asdict(config.sensing),
        "solver": asdict(config.solver),
        "sigma_safety": config.sigma_safety,
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:20]


def _outcome_to_dict(outcome: RecordOutcome) -> dict:
    return {
        "record_name": outcome.record_name,
        "method": outcome.method,
        "windows": [
            {
                "window_index": w.window_index,
                "prd_percent": w.prd_percent,
                "snr_db": w.snr_db,
                "solver_iterations": w.solver_iterations,
                "solver_converged": w.solver_converged,
                "budget": {
                    "n_samples": w.budget.n_samples,
                    "original_bits": w.budget.original_bits,
                    "cs_bits": w.budget.cs_bits,
                    "lowres_bits": w.budget.lowres_bits,
                    "header_bits": w.budget.header_bits,
                },
            }
            for w in outcome.windows
        ],
    }


def _outcome_from_dict(data: dict) -> RecordOutcome:
    windows = tuple(
        WindowOutcome(
            window_index=w["window_index"],
            prd_percent=w["prd_percent"],
            snr_db=w["snr_db"],
            budget=CompressionBudget(**w["budget"]),
            solver_iterations=w["solver_iterations"],
            solver_converged=w["solver_converged"],
        )
        for w in data["windows"]
    )
    return RecordOutcome(
        record_name=data["record_name"],
        method=data["method"],
        windows=windows,
    )


class SweepCache:
    """File-per-outcome cache of :class:`RecordOutcome` values."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(
        self,
        record_name: str,
        duration_s: float,
        config: FrontEndConfig,
        method: str,
        max_windows: Optional[int],
    ) -> Path:
        key = (
            f"{record_name}-{duration_s:g}-{method}-"
            f"{max_windows if max_windows is not None else 'all'}-"
            f"{config_fingerprint(config)}"
        )
        return self.directory / f"{key}.json"

    def get_or_run(
        self,
        record_name: str,
        duration_s: float,
        config: FrontEndConfig,
        method: str,
        max_windows: Optional[int],
        runner: Callable[[], RecordOutcome],
    ) -> RecordOutcome:
        """Return the cached outcome, or compute, persist and return it.

        A corrupt cache file is treated as a miss and overwritten.
        """
        path = self._path(record_name, duration_s, config, method, max_windows)
        if path.exists():
            try:
                outcome = _outcome_from_dict(json.loads(path.read_text()))
                self.hits += 1
                return outcome
            except (ValueError, KeyError, TypeError):
                path.unlink(missing_ok=True)
        self.misses += 1
        outcome = runner()
        path.write_text(json.dumps(_outcome_to_dict(outcome)))
        return outcome

    def clear(self) -> int:
        """Delete every cached outcome; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed


def cache_from_env() -> Optional[SweepCache]:
    """A :class:`SweepCache` at ``$REPRO_CACHE_DIR``, or None if unset."""
    directory = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if not directory:
        return None
    return SweepCache(Path(directory))
