"""Fig. 4 driver: PDF of low-resolution difference values per resolution.

The paper plots the empirical probability density of consecutive-sample
differences of the quantized stream for 10/8/6/4-bit resolutions: the
lower the resolution, the more mass concentrates at zero — the redundancy
the entropy coder exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.coding.differential import difference_histogram
from repro.experiments.runner import ExperimentScale, active_scale
from repro.sensing.quantizers import requantize_codes

__all__ = ["Fig4Data", "run_fig4", "PAPER_FIG4_RESOLUTIONS"]

#: Resolutions plotted in the paper's Fig. 4.
PAPER_FIG4_RESOLUTIONS: Tuple[int, ...] = (10, 8, 6, 4)


@dataclass(frozen=True)
class Fig4Data:
    """Difference PDFs keyed by resolution.

    ``pdfs[bits] = (support, probabilities)`` with support clipped to the
    paper's plotted range of ±15.
    """

    pdfs: Dict[int, Tuple[np.ndarray, np.ndarray]]

    def zero_mass(self, bits: int) -> float:
        """Probability of a zero difference at the given resolution."""
        support, probs = self.pdfs[bits]
        idx = np.nonzero(support == 0)[0]
        return float(probs[idx[0]]) if idx.size else 0.0

    def is_monotone_in_resolution(self) -> bool:
        """The paper's qualitative claim: lower resolution → more mass at
        zero (distributions sharpen as bits decrease)."""
        ordered = sorted(self.pdfs)
        masses = [self.zero_mass(b) for b in ordered]
        return all(m1 >= m2 - 1e-12 for m1, m2 in zip(masses[:-1], masses[1:]))


def run_fig4(
    resolutions: Sequence[int] = PAPER_FIG4_RESOLUTIONS,
    *,
    scale: Optional[ExperimentScale] = None,
    support_halfwidth: int = 15,
) -> Fig4Data:
    """Compute the difference PDFs over the experiment database.

    Differences are pooled across all records in the scale; the support is
    the paper's plotted ±``support_halfwidth`` range.
    """
    scale = scale or active_scale()
    records = scale.records()
    support = np.arange(-support_halfwidth, support_halfwidth + 1)
    pdfs: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for bits in resolutions:
        pooled: Dict[int, int] = {}
        total = 0
        for record in records:
            codes = requantize_codes(
                record.adu, record.header.resolution_bits, bits
            )
            # Histograms are pooled per record so no spurious difference is
            # formed across record boundaries.
            for value, count in difference_histogram(codes).items():
                pooled[value] = pooled.get(value, 0) + count
                total += count
        probs = np.array([pooled.get(int(v), 0) / total for v in support])
        pdfs[int(bits)] = (support.copy(), probs)
    return Fig4Data(pdfs=pdfs)
