"""Bayesian-family benchmark: BSBL vs the paper's hybrid on the CR grid.

``repro bench`` runs this after the solver microbenchmark and writes the
result as ``BENCH_bsbl.json``.  Two questions, two halves:

* **Quality** — :func:`run_bayes_bench` drives the standard Fig. 7 sweep
  (:func:`repro.experiments.runner.sweep_compression_ratios`) with the
  Bayesian methods next to ``"hybrid"`` and reports mean SNR/PRD per
  (method, CR) cell.  The payload's ``comparison`` table then answers
  *where the Bayesian family beats the paper's Eq. 1 solve*: exploiting
  block structure plus the soft de-quantization likelihood,
  ``"bsbl-dequant"`` wins across the CR grid (the gate the CI asserts at
  CR = 50%).
* **Agreement** — :func:`run_bsbl_agreement` differentially verifies the
  batched EM engine against its scalar oracle
  (:func:`~repro.recovery.batched.recover_windows_loop`) on the same
  grid.  Both paths use the identical LU solve per iteration, so the
  deviation sits at BLAS-rounding level (~1e-14), far below the 1e-8
  acceptance bound.

Both halves default to the smoke scale (2 records x 3 windows) so the
whole artifact lands in seconds; pass an explicit scale for full runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import FrontEndConfig
from repro.experiments.runner import ExperimentScale, sweep_compression_ratios
from repro.experiments.solver_bench import _signal_windows
from repro.recovery.batched import recover_windows, recover_windows_loop
from repro.recovery.bsbl import measurement_noise_var
from repro.recovery.methods import resolve_method
from repro.recovery.opcache import problem_for_config
from repro.runtime.executors import Executor

__all__ = [
    "BAYES_BENCH_METHODS",
    "BAYES_SMOKE_CR_VALUES",
    "BAYES_SMOKE_SCALE",
    "BayesBenchCell",
    "BsblAgreementCell",
    "run_bayes_bench",
    "run_bsbl_agreement",
    "bayes_bench_payload",
]

#: Methods the quality sweep compares (the paper's hybrid is the baseline).
BAYES_BENCH_METHODS = ("hybrid", "bsbl", "bsbl-dequant")

#: CR grid points for the smoke artifact; 50% is the CI-gated cell.
BAYES_SMOKE_CR_VALUES = (50.0, 75.0)

#: Smoke scale: small enough that the full artifact lands in ~10 s.
BAYES_SMOKE_SCALE = ExperimentScale(
    record_names=("100", "101"), duration_s=10.0, max_windows=3
)

#: Batched-vs-scalar acceptance bound (see docs/recovery.md).
AGREEMENT_TOLERANCE = 1e-8


@dataclass(frozen=True)
class BayesBenchCell:
    """Aggregated quality at one (method, CR) sweep point."""

    method: str
    cr_percent: float
    n_measurements: int
    n_records: int
    n_windows: int
    mean_snr_db: float
    mean_prd_percent: float


@dataclass(frozen=True)
class BsblAgreementCell:
    """Batched-vs-scalar deviation and timing for one (solver, CR)."""

    solver: str
    cr_percent: float
    n_windows: int
    loop_s: float
    batched_s: float
    max_abs_alpha_dev: float

    @property
    def speedup(self) -> float:
        """Batched EM throughput over the per-window scalar loop."""
        return self.loop_s / self.batched_s


def run_bayes_bench(
    base_config: FrontEndConfig,
    cr_values: Sequence[float] = BAYES_SMOKE_CR_VALUES,
    *,
    methods: Sequence[str] = BAYES_BENCH_METHODS,
    scale: Optional[ExperimentScale] = None,
    executor: Optional[Executor] = None,
) -> List[BayesBenchCell]:
    """Run the hybrid-vs-Bayesian quality sweep; one cell per (CR, method).

    A thin aggregation shim over the standard Fig. 7 sweep so the bench
    exercises exactly the production dispatch path (engine → window task
    → :class:`~repro.core.receiver.HybridReceiver` with an explicit
    method), not a bespoke harness.
    """
    for method in methods:
        resolve_method(method)
    scale = scale or BAYES_SMOKE_SCALE
    points = sweep_compression_ratios(
        base_config,
        cr_values=cr_values,
        methods=methods,
        scale=scale,
        cache=False,
        executor=executor,
    )
    return [
        BayesBenchCell(
            method=p.method,
            cr_percent=p.cr_percent,
            n_measurements=p.n_measurements,
            n_records=len(p.outcomes),
            n_windows=sum(len(o.windows) for o in p.outcomes),
            mean_snr_db=p.mean_snr_db,
            mean_prd_percent=p.mean_prd_percent,
        )
        for p in points
    ]


def run_bsbl_agreement(
    base_config: FrontEndConfig,
    cr_values: Sequence[float] = BAYES_SMOKE_CR_VALUES,
    *,
    record_name: str = "100",
    n_windows: int = 4,
    duration_s: float = 10.0,
) -> List[BsblAgreementCell]:
    """Differentially verify batched BSBL against the scalar loop oracle.

    For each (solver, CR) the same window sequence runs through
    :func:`~repro.recovery.batched.recover_windows` and
    :func:`~repro.recovery.batched.recover_windows_loop` under identical
    warm-start schedules; the cell reports the worst per-coefficient
    deviation.  The de-quantization arm feeds both paths the same cell
    midpoints/variance, derived from the config's low-res depth.
    """
    xs = _signal_windows(
        record_name, base_config.window_len, n_windows, duration_s
    )
    noise_var = measurement_noise_var(
        1.0, base_config.recovery.bsbl.noise_scale
    )
    cells: List[BsblAgreementCell] = []
    for solver in ("bsbl", "bsbl-dequant"):
        for cr in cr_values:
            config = base_config.for_cr(cr)
            problem = problem_for_config(config)
            ys = [problem.measure_signal(x) for x in xs]
            kwargs: Dict[str, object] = dict(
                method=solver,
                noise_var=noise_var,
                bsbl=config.recovery.bsbl,
                batch_size=config.recovery.batch_size,
                warm_start=True,
            )
            if solver == "bsbl-dequant":
                # Synthesize the low-res channel the receiver would see:
                # cell midpoints at the config's coarse depth.
                d = float(
                    1 << (config.acquisition_bits - config.lowres_bits)
                )
                kwargs["x_mids"] = [(np.floor(x / d) + 0.5) * d for x in xs]
                kwargs["quant_var"] = (d * d - 1.0) / 12.0

            start = time.perf_counter()
            loop_results = recover_windows_loop(problem, ys, **kwargs)
            loop_s = time.perf_counter() - start
            start = time.perf_counter()
            batch_results = recover_windows(problem, ys, **kwargs)
            batched_s = time.perf_counter() - start

            dev = max(
                float(np.max(np.abs(b.alpha - s.alpha)))
                for b, s in zip(batch_results, loop_results)
            )
            cells.append(
                BsblAgreementCell(
                    solver=solver,
                    cr_percent=float(config.cs_cr_percent),
                    n_windows=len(ys),
                    loop_s=loop_s,
                    batched_s=batched_s,
                    max_abs_alpha_dev=dev,
                )
            )
    return cells


def bayes_bench_payload(
    cells: Sequence[BayesBenchCell],
    agreement: Sequence[BsblAgreementCell] = (),
    *,
    smoke: bool,
    cache_stats: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The ``BENCH_bsbl.json`` document for a bench run.

    ``comparison`` has one row per CR where the hybrid baseline ran,
    naming the best Bayesian method and its SNR gain; the top-level
    gates are ``bayes_beats_hybrid`` (some CR where the gain is
    positive) and ``agreement.within_tolerance`` (batched EM within
    1e-8 of its scalar oracle) — both asserted by the CI acceptance
    step.
    """
    by_cr: Dict[float, Dict[str, BayesBenchCell]] = {}
    for c in cells:
        by_cr.setdefault(c.cr_percent, {})[c.method] = c

    comparison: List[Dict[str, object]] = []
    for cr in sorted(by_cr):
        row = by_cr[cr]
        hybrid = row.get("hybrid")
        if hybrid is None:
            continue
        bayes = {
            m: c
            for m, c in row.items()
            if resolve_method(m).family == "bayesian"
        }
        if not bayes:
            continue
        best = max(bayes.values(), key=lambda c: c.mean_snr_db)
        gain = best.mean_snr_db - hybrid.mean_snr_db
        comparison.append(
            {
                "cr_percent": cr,
                "hybrid_snr_db": hybrid.mean_snr_db,
                "best_bayes_method": best.method,
                "best_bayes_snr_db": best.mean_snr_db,
                "bayes_gain_db": gain,
                "bayes_wins": gain > 0.0,
            }
        )

    wins_at = [
        float(row["cr_percent"]) for row in comparison if row["bayes_wins"]
    ]
    gains = [float(row["bayes_gain_db"]) for row in comparison]
    max_dev = (
        max(c.max_abs_alpha_dev for c in agreement) if agreement else None
    )
    return {
        "schema": "repro-bench-bsbl/v1",
        "smoke": bool(smoke),
        "methods": sorted({c.method for c in cells}),
        "cr_values": sorted(by_cr),
        "cells": [
            {
                "method": c.method,
                "cr_percent": c.cr_percent,
                "n_measurements": c.n_measurements,
                "n_records": c.n_records,
                "n_windows": c.n_windows,
                "mean_snr_db": c.mean_snr_db,
                "mean_prd_percent": c.mean_prd_percent,
            }
            for c in cells
        ],
        "comparison": comparison,
        "bayes_wins_at": wins_at,
        "best_gain_db": max(gains) if gains else None,
        "bayes_beats_hybrid": bool(wins_at),
        "agreement": {
            "cells": [
                {
                    "solver": c.solver,
                    "cr_percent": c.cr_percent,
                    "n_windows": c.n_windows,
                    "loop": {"wall_clock_s": c.loop_s},
                    "batched": {"wall_clock_s": c.batched_s},
                    "speedup": c.speedup,
                    "max_abs_alpha_dev": c.max_abs_alpha_dev,
                }
                for c in agreement
            ],
            "max_abs_alpha_dev": max_dev,
            "tolerance": AGREEMENT_TOLERANCE,
            "within_tolerance": (
                None if max_dev is None else max_dev <= AGREEMENT_TOLERANCE
            ),
        },
        "problem_cache": (
            dict(cache_stats) if cache_stats is not None else None
        ),
    }
