"""Fig. 9 driver: example reconstructions at delta = m/n of 6/12/25 %.

The paper shows one ~1 s window reconstructed by hybrid CS at extreme
undersampling ratios, quoting the window SNR in each panel title (18.7 dB
at delta = 6 %, 19.7 dB at 12 %).  The driver reconstructs one window per
delta through the *full* packet pipeline and returns waveforms in
millivolts (the paper's y-axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import FrontEndConfig
from repro.core.frontend import HybridFrontEnd
from repro.core.pipeline import default_codebook
from repro.core.receiver import HybridReceiver
from repro.metrics.quality import snr_db
from repro.signals.database import load_record

__all__ = ["Fig9Panel", "Fig9Data", "run_fig9", "PAPER_FIG9_DELTAS"]

#: Undersampling ratios shown in the paper's Fig. 9.
PAPER_FIG9_DELTAS: Tuple[float, ...] = (0.06, 0.12, 0.25)


@dataclass(frozen=True)
class Fig9Panel:
    """One reconstruction panel: waveforms plus the title metrics."""

    delta: float
    n_measurements: int
    snr_db: float
    time_s: np.ndarray
    original_mv: np.ndarray
    reconstructed_mv: np.ndarray


@dataclass(frozen=True)
class Fig9Data:
    """All panels, ordered by increasing delta."""

    record_name: str
    panels: Tuple[Fig9Panel, ...]

    def snr_improves_with_delta(self) -> bool:
        """More measurements should not hurt quality (monotone trend up to
        small solver noise, checked with 1 dB slack)."""
        snrs = [p.snr_db for p in self.panels]
        return all(b >= a - 1.0 for a, b in zip(snrs[:-1], snrs[1:]))


def run_fig9(
    record_name: str = "100",
    deltas: Sequence[float] = PAPER_FIG9_DELTAS,
    *,
    config: Optional[FrontEndConfig] = None,
    window_index: int = 1,
    duration_s: float = 20.0,
) -> Fig9Data:
    """Reconstruct one window at each undersampling ratio.

    Parameters
    ----------
    record_name:
        Database record supplying the window.
    deltas:
        m/n ratios to sweep (paper: 6 %, 12 %, 25 %).
    config:
        Base configuration (measurement count is overridden per delta).
    window_index:
        Which window of the record to use.
    duration_s:
        Synthetic record length.
    """
    base = config or FrontEndConfig()
    record = load_record(record_name, duration_s=duration_s)
    windows = list(record.windows(base.window_len))
    if not 0 <= window_index < len(windows):
        raise ValueError(
            f"record has {len(windows)} windows; index {window_index} invalid"
        )
    window = windows[window_index]
    center = 1 << (base.acquisition_bits - 1)
    gain = record.header.adc_gain
    zero = record.header.adc_zero
    original_mv = (window.astype(float) - zero) / gain

    codebook = default_codebook(base.lowres_bits, base.acquisition_bits)
    panels = []
    for delta in sorted(float(d) for d in deltas):
        m = max(1, int(round(delta * base.window_len)))
        cfg = base.with_measurements(m)
        frontend = HybridFrontEnd(cfg, codebook)
        receiver = HybridReceiver(cfg, codebook)
        packet = frontend.process_window(window, window_index)
        recon = receiver.reconstruct(packet)
        reconstructed_mv = (recon.x_codes - zero) / gain
        panels.append(
            Fig9Panel(
                delta=delta,
                n_measurements=m,
                snr_db=snr_db(
                    window.astype(float) - center,
                    recon.x_centered(center),
                ),
                time_s=np.arange(window.size) / record.header.fs_hz,
                original_mv=original_mv,
                reconstructed_mv=reconstructed_mv,
            )
        )
    return Fig9Data(record_name=record_name, panels=tuple(panels))
