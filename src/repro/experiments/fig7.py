"""Fig. 7 driver: averaged SNR and PRD vs compression ratio, both methods.

The paper's central quality result: hybrid CS beats normal CS at every
compression ratio, with the gap exploding above ~80 % CR where normal CS
"fails to converge or has very poor reconstruction quality"; "good" quality
is reached at 81 % CR for hybrid vs 53 % for normal CS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.config import FrontEndConfig
from repro.experiments.runner import (
    CrSweepPoint,
    ExperimentScale,
    PAPER_CR_VALUES,
    sweep_compression_ratios,
)
from repro.metrics.quality import GOOD_PRD_THRESHOLD

__all__ = ["Fig7Series", "Fig7Data", "run_fig7"]


@dataclass(frozen=True)
class Fig7Series:
    """One method's curve over the CR axis."""

    method: str
    cr_percent: Tuple[float, ...]
    snr_db: Tuple[float, ...]
    prd_percent: Tuple[float, ...]
    net_cr_percent: Tuple[float, ...]

    def snr_at(self, cr: float) -> float:
        """Mean SNR at one swept CR value."""
        return self.snr_db[self.cr_percent.index(cr)]

    def highest_good_cr(
        self, prd_threshold: float = GOOD_PRD_THRESHOLD
    ) -> Optional[float]:
        """Largest swept CR still delivering "good" quality (PRD below the
        Zigel threshold); the paper quotes 81 % (hybrid) vs 53 % (normal).
        Returns None when no swept point qualifies."""
        good = [
            cr
            for cr, prd in zip(self.cr_percent, self.prd_percent)
            if prd < prd_threshold
        ]
        return max(good) if good else None


@dataclass(frozen=True)
class Fig7Data:
    """Both curves plus the underlying sweep points."""

    hybrid: Fig7Series
    normal: Fig7Series
    points: Tuple[CrSweepPoint, ...]

    def hybrid_dominates(self) -> bool:
        """Paper claim: hybrid SNR ≥ normal SNR at every swept CR."""
        return all(
            h >= n
            for h, n in zip(self.hybrid.snr_db, self.normal.snr_db)
        )

    def gap_widens_at_high_cr(self) -> bool:
        """Paper claim: the SNR gap at the highest CR exceeds the gap at
        the lowest CR."""
        gaps = [
            h - n for h, n in zip(self.hybrid.snr_db, self.normal.snr_db)
        ]
        return gaps[-1] > gaps[0]


def _series(points: Sequence[CrSweepPoint], method: str) -> Fig7Series:
    mine = [p for p in points if p.method == method]
    mine.sort(key=lambda p: p.cr_percent)
    return Fig7Series(
        method=method,
        cr_percent=tuple(p.cr_percent for p in mine),
        snr_db=tuple(p.mean_snr_db for p in mine),
        prd_percent=tuple(p.mean_prd_percent for p in mine),
        net_cr_percent=tuple(p.net_cr_percent for p in mine),
    )


def run_fig7(
    base_config: Optional[FrontEndConfig] = None,
    cr_values: Sequence[float] = PAPER_CR_VALUES,
    *,
    scale: Optional[ExperimentScale] = None,
) -> Fig7Data:
    """Run the full Fig. 7 sweep (both methods, all CR values)."""
    config = base_config or FrontEndConfig()
    points = sweep_compression_ratios(
        config, cr_values, methods=("hybrid", "normal"), scale=scale
    )
    return Fig7Data(
        hybrid=_series(points, "hybrid"),
        normal=_series(points, "normal"),
        points=tuple(points),
    )
